// Ablation: acknowledgement packet size (bitmap fragment density).
//
// The paper notes the receiver can track state with "one byte (or even
// one bit) allocated per data packet"; the bit representation is 8x
// denser, so one ACK refreshes 8x more of the sender's view. This
// sweep varies how much bitmap one ACK can carry: small ACKs leave the
// sender's view stale (it retransmits blind), large ones keep it sharp.
// Run on a lossy long haul where the view actually matters.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "fobs/sim_transfer.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());

  auto spec = exp::spec_for(exp::PathId::kLongHaul);
  spec.fwd_loss = 5e-4;  // enough loss that stale views cost real waste

  // 40 MB / 1 KiB = 40960 packets. An ACK with payload P carries about
  // (P-32)*8 bits of bitmap: at 64 B that is 256 packets per ACK, at
  // 4 KiB the whole object fits in ~1.3 ACKs.
  const std::vector<std::int64_t> payloads = {64, 128, 256, 1024, 4096};

  util::TextTable table({"ack payload", "packets / fragment", "% max bw", "waste"});
  std::printf("ACK payload ablation: lossy long haul, ack frequency 64, %zu seed(s)/row\n",
              seeds.size());

  for (std::int64_t payload : payloads) {
    double fraction = 0.0;
    double waste = 0.0;
    int runs = 0;
    for (std::uint64_t seed : seeds) {
      exp::Testbed bed(spec, seed);
      core::SimTransferConfig config;
      config.spec.object_bytes = exp::kPaperObjectBytes;
      config.receiver.ack_frequency = 64;
      config.receiver.ack_payload_bytes = payload;
      const auto result =
          core::run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
      if (!result.completed) continue;
      fraction += result.fraction_of(spec.max_bandwidth);
      waste += result.waste;
      ++runs;
    }
    if (runs > 0) {
      fraction /= runs;
      waste /= runs;
    }
    const std::int64_t coverage = (payload - core::kAckHeaderBytes) * 8;
    table.add_row({std::to_string(payload) + " B", std::to_string(std::max<std::int64_t>(coverage, 0)),
                   util::TextTable::pct(fraction), util::TextTable::pct(waste)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Ablation: acknowledgement payload size (view freshness)");
  return 0;
}
