// Ablation (paper §3.1.1): the number of packets per batch-send
// operation. The paper found that checking for an acknowledgement very
// frequently — two packets per batch — performed best, and used 2 for
// all experiments. The adaptive variant (batch derived from ack deltas,
// the paper's phase-2 sketch) is included as the last row.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());
  const std::vector<int> batch_sizes = {1, 2, 4, 8, 16, 32, 64};

  util::TextTable table({"batch size", "short haul (% max bw)", "long haul (% max bw)",
                         "short waste", "long waste"});
  std::printf("Batch-size ablation: 40 MB object, ack frequency 64, %zu seed(s)/point\n",
              seeds.size());
  std::printf("Paper: 2 packets per batch-send performed best.\n");

  const auto short_spec = exp::spec_for(exp::PathId::kShortHaul);
  const auto long_spec = exp::spec_for(exp::PathId::kLongHaul);

  auto run_row = [&](const exp::FobsRunParams& params, const std::string& label) {
    const auto s = exp::run_fobs_averaged(short_spec, params, seeds);
    const auto l = exp::run_fobs_averaged(long_spec, params, seeds);
    table.add_row({label, util::TextTable::pct(s.fraction), util::TextTable::pct(l.fraction),
                   util::TextTable::pct(s.waste), util::TextTable::pct(l.waste)});
    std::printf(".");
    std::fflush(stdout);
  };

  for (int b : batch_sizes) {
    exp::FobsRunParams params;
    params.batch_size = b;
    run_row(params, std::to_string(b));
  }
  exp::FobsRunParams adaptive;
  adaptive.batch_policy = core::BatchPolicy::kAckAdaptive;
  run_row(adaptive, "adaptive");
  std::printf("\n");

  benchutil::emit(table, "Ablation: packets per batch-send operation");
  return 0;
}
