// Ablation (paper §3.1.1): which unacknowledged packet to send next.
// The paper tried several algorithms and found treating the object as a
// circular buffer best "by far": never retransmit a packet for the
// (n+1)-st time while any packet has been sent fewer than n+1 times.
//
// We compare circular against lowest-sequence-first (head-of-line
// hammering) and uniformly random selection, on a lossy long-haul path
// where the choice matters most.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());

  util::TextTable table({"selection policy", "short haul (% max bw)", "long haul (% max bw)",
                         "long waste"});
  std::printf("Selection-policy ablation: 40 MB object, ack frequency 64, %zu seed(s)/point\n",
              seeds.size());
  std::printf("Paper: the circular-buffer policy was the best approach by far.\n");

  const auto short_spec = exp::spec_for(exp::PathId::kShortHaul);
  // A lossier long haul amplifies the difference between policies.
  auto lossy_spec = exp::spec_for(exp::PathId::kLongHaul);
  lossy_spec.fwd_loss = 5e-4;

  const std::vector<core::SelectionKind> kinds = {core::SelectionKind::kCircular,
                                                  core::SelectionKind::kLowestFirst,
                                                  core::SelectionKind::kRandomUnacked};
  for (auto kind : kinds) {
    exp::FobsRunParams params;
    params.selection = kind;
    const auto s = exp::run_fobs_averaged(short_spec, params, seeds);
    const auto l = exp::run_fobs_averaged(lossy_spec, params, seeds);
    table.add_row({core::to_string(kind), util::TextTable::pct(s.fraction),
                   util::TextTable::pct(l.fraction), util::TextTable::pct(l.waste)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Ablation: packet selection policy");
  return 0;
}
