// Extension: the paper's headline results re-run on the *full* routed
// Abilene backbone (11 PoPs, OC-48 mesh, shortest-path routing,
// background traffic) instead of the calibrated dumbbells — validating
// the abstraction every other benchmark uses.
#include <cstdio>

#include "baselines/tcp_bulk.h"
#include "bench_util.h"
#include "exp/abilene.h"
#include "exp/runner.h"
#include "fobs/sim_transfer.h"

namespace {

using namespace fobs;

struct PathCase {
  const char* label;
  exp::Site src;
  exp::Site dst;
  exp::PathId dumbbell;
  double max_mbps;  ///< bottleneck for the % metric
};

}  // namespace

int main() {
  const std::int64_t bytes = exp::kPaperObjectBytes;
  const PathCase cases[] = {
      {"ANL->LCSE (short haul)", exp::Site::kAnl, exp::Site::kLcse,
       exp::PathId::kShortHaul, 100.0},
      {"ANL->CACR (long haul)", exp::Site::kAnl, exp::Site::kCacr, exp::PathId::kLongHaul,
       100.0},
  };

  std::printf("Abilene-backbone validation: 40 MB transfers, light background traffic\n");
  util::TextTable table({"path", "protocol", "routed Abilene", "dumbbell", "paper"});

  for (const auto& path_case : cases) {
    // --- FOBS ---
    {
      exp::AbileneNetwork net(42);
      net.add_background_traffic(16, util::DataRate::megabits_per_second(150),
                                 util::Duration::milliseconds(40),
                                 util::Duration::milliseconds(160));
      net.set_backbone_loss(5e-6);
      core::SimTransferConfig config;
      config.spec.object_bytes = bytes;
      const auto routed =
          core::run_sim_transfer(net.network(), net.site_host(path_case.src),
                                 net.site_host(path_case.dst), config);
      exp::FobsRunParams params;
      const auto dumbbell = exp::run_fobs(exp::spec_for(path_case.dumbbell), params);
      table.add_row({path_case.label, "FOBS",
                     util::TextTable::pct(routed.goodput_mbps / path_case.max_mbps),
                     util::TextTable::pct(dumbbell.goodput_mbps / path_case.max_mbps),
                     "~90%"});
    }
    // --- TCP with LWE ---
    {
      exp::AbileneNetwork net(42);
      net.add_background_traffic(16, util::DataRate::megabits_per_second(150),
                                 util::Duration::milliseconds(40),
                                 util::Duration::milliseconds(160));
      net.set_backbone_loss(path_case.dumbbell == exp::PathId::kLongHaul ? 1e-5 : 5e-6);
      const auto routed = baselines::run_tcp_transfer(
          net.network(), net.site_host(path_case.src), net.site_host(path_case.dst), bytes,
          baselines::tcp_with_lwe());
      const auto dumbbell = exp::run_tcp_averaged(exp::spec_for(path_case.dumbbell), bytes,
                                                  baselines::tcp_with_lwe(),
                                                  exp::default_seeds(3));
      table.add_row({path_case.label, "TCP+LWE",
                     util::TextTable::pct(routed.goodput_mbps / path_case.max_mbps),
                     util::TextTable::pct(dumbbell.goodput_mbps / path_case.max_mbps),
                     path_case.dumbbell == exp::PathId::kLongHaul ? "51%" : "86%"});
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Extension: routed Abilene backbone vs. dumbbell reduction");
  return 0;
}
