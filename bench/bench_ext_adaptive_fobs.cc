// Extension (paper §7): congestion-adaptive FOBS.
//
// The paper notes FOBS "does not yet provide congestion control" and
// sketches two remedies for congested networks:
//  (1) switch to a high-performance TCP when sustained congestion is
//      detected, switching back once it dissipates, and
//  (2) decrease FOBS's greediness (here: a pacing gap) instead.
// Both are implemented; this bench exercises them in two scenarios:
//
//  A. *Persistent* overload — cross traffic outstrips the spare
//     capacity for the whole transfer. Backing off trades a little
//     throughput for far less waste and friendlier sharing; TCP
//     fallback effectively becomes a TCP transfer.
//  B. *Transient* episode — the path is congested for the first few
//     seconds, then clears. The adaptive variants ride out the episode
//     and return to full greed; plain FOBS burns bandwidth throughout.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "fobs/sim_driver.h"
#include "sim/cross_traffic.h"

namespace {

using namespace fobs;

struct Variant {
  const char* name;
  bool adaptive;
  bool tcp_fallback;
};

constexpr Variant kVariants[] = {
    {"FOBS greedy (paper)", false, false},
    {"FOBS + pacing backoff", true, false},
    {"FOBS + TCP fallback", true, true},
};

struct CellResult {
  bool completed = false;
  double fraction = 0.0;
  double waste = 0.0;
  double cross_delivery = 0.0;
  int fallback_episodes = 0;
  std::int64_t via_tcp = 0;
};

/// Runs one transfer with optional *extra* cross sources that stop at
/// `episode_end` (zero = never started).
CellResult run_cell(const exp::TestbedSpec& spec, const Variant& variant,
                    std::int64_t object_bytes, int extra_sources,
                    util::Duration episode_end, std::uint64_t seed) {
  exp::Testbed bed(spec, seed);
  auto& sim = bed.sim();
  auto& net = bed.network();

  std::vector<std::unique_ptr<sim::OnOffSource>> episode_sources;
  for (int i = 0; i < extra_sources; ++i) {
    auto source = std::make_unique<sim::OnOffSource>(
        sim, bed.backbone(), net.next_node_id(), bed.cross_sink().id(), 1000,
        util::DataRate::megabits_per_second(150), util::Duration::milliseconds(40),
        util::Duration::milliseconds(120), util::Rng(seed * 977 + i));
    source->start();
    episode_sources.push_back(std::move(source));
  }
  if (episode_end > util::Duration::zero()) {
    sim.schedule_in(episode_end, [&episode_sources] {
      for (auto& source : episode_sources) source->stop();
    });
  }

  core::SimTransferConfig config;
  config.spec.object_bytes = object_bytes;
  config.sender.adaptive.enabled = variant.adaptive;
  config.sender.adaptive.tcp_fallback = variant.tcp_fallback;

  core::SimSender sender(bed.src(), config.spec, config.sender, nullptr, bed.dst().id());
  core::SimReceiver receiver(bed.dst(), config.spec, config.receiver, nullptr,
                             bed.src().id(), config.receiver_socket_buffer_bytes);
  bool done = false;
  sender.set_on_finished([&done] { done = true; });
  receiver.start();
  sender.start();
  while (!done && sim.now().seconds() < 600 && sim.step()) {
  }

  CellResult cell;
  cell.completed = done;
  if (receiver.complete()) {
    const double seconds = receiver.completed_at().seconds();
    cell.fraction = static_cast<double>(object_bytes) * 8.0 / seconds /
                    spec.max_bandwidth.bps();
  }
  cell.waste = sender.core().waste();
  cell.fallback_episodes = sender.fallback_episodes();
  cell.via_tcp = sender.packets_sent_via_tcp();
  std::uint64_t offered = 0;
  for (const auto& src : bed.cross_sources()) offered += src->stats().packets_sent;
  for (const auto& src : episode_sources) offered += src->stats().packets_sent;
  if (offered > 0) {
    cell.cross_delivery =
        static_cast<double>(bed.cross_sink().packets_received()) / static_cast<double>(offered);
  }
  return cell;
}

void run_scenario(const char* title, const exp::TestbedSpec& spec, std::int64_t object_bytes,
                  int extra_sources, util::Duration episode_end,
                  const std::vector<std::uint64_t>& seeds) {
  util::TextTable table({"variant", "% max bw", "waste", "cross delivery",
                         "fallback episodes", "pkts via TCP"});
  for (const auto& variant : kVariants) {
    CellResult avg;
    int runs = 0;
    for (std::uint64_t seed : seeds) {
      const auto cell =
          run_cell(spec, variant, object_bytes, extra_sources, episode_end, seed);
      if (!cell.completed) continue;
      avg.fraction += cell.fraction;
      avg.waste += cell.waste;
      avg.cross_delivery += cell.cross_delivery;
      avg.fallback_episodes += cell.fallback_episodes;
      avg.via_tcp += cell.via_tcp;
      ++runs;
      std::printf(".");
      std::fflush(stdout);
    }
    if (runs == 0) {
      table.add_row({variant.name, "did not complete", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({variant.name, util::TextTable::pct(avg.fraction / runs),
                   util::TextTable::pct(avg.waste / runs),
                   util::TextTable::pct(avg.cross_delivery / runs),
                   util::TextTable::num(static_cast<double>(avg.fallback_episodes) / runs, 1),
                   util::TextTable::num(static_cast<double>(avg.via_tcp) / runs, 0)});
  }
  std::printf("\n");
  benchutil::emit(table, title);
}

}  // namespace

int main() {
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());
  std::printf("Adaptive FOBS (paper section 7), %zu seed(s)/row\n", seeds.size());

  // Scenario A: persistent overload for the whole transfer.
  auto overloaded = exp::spec_for(exp::PathId::kGigabitContended);
  overloaded.cross_sources = 8;
  overloaded.cross_peak = util::DataRate::megabits_per_second(150);
  run_scenario("Scenario A: persistent overload (40 MB)", overloaded,
               exp::kPaperObjectBytes, /*extra_sources=*/0, util::Duration::zero(), seeds);

  // Scenario B: a 2.5 s congestion episode at the start of a 160 MB
  // transfer on the normally-contended path.
  const auto episodic = exp::spec_for(exp::PathId::kGigabitContended);
  run_scenario("Scenario B: transient 2.5 s congestion episode (160 MB)", episodic,
               160ll * 1024 * 1024, /*extra_sources=*/8,
               util::Duration::milliseconds(2500), seeds);
  return 0;
}
