// Extension: controlled protocol comparison under scripted network
// weather (the paper's §7 closing direction, realized).
//
// Each scenario replays the *same* cross-traffic and loss trace for
// every protocol, removing the run-to-run network variance the authors
// complained about. One 40 MB transfer per cell.
#include <cstdio>
#include <vector>

#include "baselines/psockets.h"
#include "baselines/rudp.h"
#include "baselines/sabul.h"
#include "baselines/tcp_bulk.h"
#include "bench_util.h"
#include "exp/runner.h"
#include "exp/scenario.h"

namespace {

using namespace fobs;

double pct_of_max(double goodput_mbps, const exp::TestbedSpec& spec) {
  return goodput_mbps * 1e6 / spec.max_bandwidth.bps();
}

}  // namespace

int main() {
  const std::uint64_t seed = 42;
  const std::int64_t bytes = exp::kPaperObjectBytes;

  util::TextTable table({"scenario", "FOBS", "RUDP", "SABUL", "PSockets-16", "TCP+LWE"});
  std::printf("Controlled comparison: identical scripted load/loss per scenario, 40 MB\n");

  for (const auto& scenario : exp::all_scenarios()) {
    std::vector<std::string> row{scenario.name};

    {
      exp::ScenarioRuntime runtime(scenario, seed);
      core::SimTransferConfig config;
      config.spec.object_bytes = bytes;
      const auto r = core::run_sim_transfer(runtime.testbed().network(),
                                            runtime.testbed().src(), runtime.testbed().dst(),
                                            config);
      row.push_back(r.completed
                        ? util::TextTable::pct(pct_of_max(r.goodput_mbps, scenario.base))
                        : "stall");
    }
    {
      exp::ScenarioRuntime runtime(scenario, seed);
      baselines::RudpConfig config;
      config.spec = {bytes, exp::kPaperPacketBytes};
      const auto r = baselines::run_rudp_transfer(runtime.testbed().network(),
                                                  runtime.testbed().src(),
                                                  runtime.testbed().dst(), config);
      row.push_back(r.completed
                        ? util::TextTable::pct(pct_of_max(r.goodput_mbps, scenario.base))
                        : "stall");
    }
    {
      exp::ScenarioRuntime runtime(scenario, seed);
      baselines::SabulConfig config;
      config.spec = {bytes, exp::kPaperPacketBytes};
      config.initial_rate = scenario.base.max_bandwidth * 0.95;
      const auto r = baselines::run_sabul_transfer(runtime.testbed().network(),
                                                   runtime.testbed().src(),
                                                   runtime.testbed().dst(), config);
      row.push_back(r.completed
                        ? util::TextTable::pct(pct_of_max(r.goodput_mbps, scenario.base))
                        : "stall");
    }
    {
      exp::ScenarioRuntime runtime(scenario, seed);
      const auto r = baselines::run_psockets_transfer(
          runtime.testbed().network(), runtime.testbed().src(), runtime.testbed().dst(),
          bytes, 16, baselines::psockets_stream_config());
      row.push_back(r.completed
                        ? util::TextTable::pct(pct_of_max(r.goodput_mbps, scenario.base))
                        : "stall");
    }
    {
      exp::ScenarioRuntime runtime(scenario, seed);
      const auto r = baselines::run_tcp_transfer(runtime.testbed().network(),
                                                 runtime.testbed().src(),
                                                 runtime.testbed().dst(), bytes,
                                                 baselines::tcp_with_lwe());
      row.push_back(r.completed
                        ? util::TextTable::pct(pct_of_max(r.goodput_mbps, scenario.base))
                        : "stall");
    }

    table.add_row(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Extension: controlled comparison under scripted network weather");
  return 0;
}
