// Extension: what happens when several greedy FOBS flows share one
// bottleneck?
//
// The paper's §7 concedes FOBS has no congestion control and that some
// form of it is needed "before the algorithm can become generally
// used". This bench quantifies the concern: N sender sites blast
// through one OC-12 at once. We report per-flow goodput, Jain's
// fairness index, aggregate utilization, and waste — for plain FOBS,
// for the adaptive (§7) variant, and for N TCP flows as the
// well-behaved reference.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "fobs/sim_driver.h"
#include "net/tcp.h"
#include "sim/node.h"

namespace {

using namespace fobs;

/// N independent site pairs sharing one backbone:
///   S_i --1G--> R1 ==622 Mb/s== R2 --1G--> D_i   (and the mirror path)
struct MultiSiteWorld {
  sim::Simulation simulation;
  std::unique_ptr<sim::Network> network;
  std::vector<host::Host*> senders;
  std::vector<host::Host*> receivers;
  sim::Link* backbone = nullptr;

  explicit MultiSiteWorld(int flows) {
    network = std::make_unique<sim::Network>(simulation);
    auto& net = *network;

    host::CpuModel cpu;  // Table 2-era server: ~480 Mb/s UDP send path
    cpu.per_packet_send = util::Duration::microseconds(15);
    cpu.per_kb_send = util::Duration::microseconds(2);
    cpu.per_packet_recv = util::Duration::microseconds(10);
    cpu.per_kb_recv = util::Duration::microseconds(2);
    cpu.ack_build = util::Duration::microseconds(80);

    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");

    auto make_link = [&](const char* name, util::DataRate rate, util::Duration delay,
                         std::int64_t queue) -> sim::Link& {
      sim::LinkConfig cfg;
      cfg.name = name;
      cfg.rate = rate;
      cfg.propagation_delay = delay;
      cfg.queue_capacity_bytes = queue;
      return net.add_link(cfg);
    };

    auto& fwd = make_link("backbone-fwd", util::DataRate::megabits_per_second(622),
                          util::Duration::milliseconds(12), 4 * 1024 * 1024);
    auto& rev = make_link("backbone-rev", util::DataRate::megabits_per_second(622),
                          util::Duration::milliseconds(12), 4 * 1024 * 1024);
    fwd.set_sink(&r2);
    rev.set_sink(&r1);
    backbone = &fwd;

    for (int i = 0; i < flows; ++i) {
      host::HostConfig s_cfg;
      s_cfg.name = "s" + std::to_string(i);
      s_cfg.cpu = cpu;
      host::HostConfig d_cfg;
      d_cfg.name = "d" + std::to_string(i);
      d_cfg.cpu = cpu;
      auto& s = host::Host::create(net, s_cfg);
      auto& d = host::Host::create(net, d_cfg);

      auto& s_nic = make_link(("s-nic" + std::to_string(i)).c_str(),
                              util::DataRate::gigabits_per_second(1),
                              util::Duration::microseconds(500), 256 * 1024);
      auto& d_in = make_link(("d-in" + std::to_string(i)).c_str(),
                             util::DataRate::gigabits_per_second(1),
                             util::Duration::microseconds(500), 256 * 1024);
      auto& d_nic = make_link(("d-nic" + std::to_string(i)).c_str(),
                              util::DataRate::gigabits_per_second(1),
                              util::Duration::microseconds(500), 256 * 1024);
      auto& s_in = make_link(("s-in" + std::to_string(i)).c_str(),
                             util::DataRate::gigabits_per_second(1),
                             util::Duration::microseconds(500), 256 * 1024);
      s_nic.set_sink(&r1);
      d_in.set_sink(&d);
      d_nic.set_sink(&r2);
      s_in.set_sink(&s);
      s.set_egress(&s_nic);
      d.set_egress(&d_nic);
      r1.add_route(d.id(), &fwd);
      r2.add_route(d.id(), &d_in);
      r2.add_route(s.id(), &rev);
      r1.add_route(s.id(), &s_in);
      senders.push_back(&s);
      receivers.push_back(&d);
    }
  }
};

double jain_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

struct FleetResult {
  std::vector<double> per_flow_mbps;
  double aggregate_fraction = 0.0;
  double mean_waste = 0.0;
  bool all_done = false;
};

FleetResult run_fobs_fleet(int flows, bool adaptive, std::int64_t object_bytes) {
  MultiSiteWorld world(flows);
  auto& sim = world.simulation;

  core::TransferSpec spec{object_bytes, 1024};
  core::SenderConfig sender_config;
  sender_config.adaptive.enabled = adaptive;
  core::ReceiverConfig receiver_config;

  std::vector<std::unique_ptr<core::SimSender>> senders;
  std::vector<std::unique_ptr<core::SimReceiver>> receivers;
  int done = 0;
  for (int i = 0; i < flows; ++i) {
    senders.push_back(std::make_unique<core::SimSender>(
        *world.senders[static_cast<std::size_t>(i)], spec, sender_config, nullptr,
        world.receivers[static_cast<std::size_t>(i)]->id()));
    receivers.push_back(std::make_unique<core::SimReceiver>(
        *world.receivers[static_cast<std::size_t>(i)], spec, receiver_config, nullptr,
        world.senders[static_cast<std::size_t>(i)]->id(), 64 * 1024));
    senders.back()->set_on_finished([&done] { ++done; });
  }
  for (auto& r : receivers) r->start();
  for (auto& s : senders) s->start();
  while (done < flows && sim.now().seconds() < 600 && sim.step()) {
  }

  FleetResult result;
  result.all_done = done == flows;
  double aggregate_bits = 0.0;
  double last_finish = 0.0;
  for (int i = 0; i < flows; ++i) {
    const auto& r = *receivers[static_cast<std::size_t>(i)];
    const double seconds = r.complete() ? r.completed_at().seconds() : 0.0;
    const double mbps =
        seconds > 0 ? static_cast<double>(object_bytes) * 8.0 / seconds / 1e6 : 0.0;
    result.per_flow_mbps.push_back(mbps);
    aggregate_bits += static_cast<double>(object_bytes) * 8.0;
    last_finish = std::max(last_finish, seconds);
    result.mean_waste += senders[static_cast<std::size_t>(i)]->core().waste();
  }
  result.mean_waste /= flows;
  if (last_finish > 0) {
    result.aggregate_fraction = aggregate_bits / last_finish / 622e6;
  }
  return result;
}

FleetResult run_tcp_fleet(int flows, std::int64_t object_bytes) {
  MultiSiteWorld world(flows);
  auto& sim = world.simulation;
  const auto config = baselines::tcp_with_lwe();

  struct Flow {
    std::unique_ptr<net::TcpListener> listener;
    std::unique_ptr<net::TcpConnection> server;
    std::unique_ptr<net::TcpConnection> client;
    double finished_at = 0.0;
  };
  std::vector<Flow> flows_state(static_cast<std::size_t>(flows));
  int done = 0;
  for (int i = 0; i < flows; ++i) {
    auto& flow = flows_state[static_cast<std::size_t>(i)];
    flow.listener = std::make_unique<net::TcpListener>(
        *world.receivers[static_cast<std::size_t>(i)], 5001, config,
        [&flow, &sim, &done, object_bytes](std::unique_ptr<net::TcpConnection> conn) {
          flow.server = std::move(conn);
          flow.server->set_on_delivered([&flow, &sim, &done, object_bytes](net::Seq d) {
            if (flow.finished_at == 0.0 && d >= object_bytes) {
              flow.finished_at = sim.now().seconds();
              ++done;
            }
          });
        });
    flow.client = std::make_unique<net::TcpConnection>(
        *world.senders[static_cast<std::size_t>(i)], config);
    auto* raw = flow.client.get();
    raw->set_on_connected([raw, object_bytes] { raw->offer_bytes(object_bytes); });
    raw->connect(world.receivers[static_cast<std::size_t>(i)]->id(), 5001);
  }
  while (done < flows && sim.now().seconds() < 600 && sim.step()) {
  }

  FleetResult result;
  result.all_done = done == flows;
  double last_finish = 0.0;
  for (const auto& flow : flows_state) {
    const double mbps = flow.finished_at > 0
                            ? static_cast<double>(object_bytes) * 8.0 / flow.finished_at / 1e6
                            : 0.0;
    result.per_flow_mbps.push_back(mbps);
    last_finish = std::max(last_finish, flow.finished_at);
  }
  if (last_finish > 0) {
    result.aggregate_fraction =
        static_cast<double>(flows) * static_cast<double>(object_bytes) * 8.0 / last_finish /
        622e6;
  }
  result.mean_waste = -1.0;
  return result;
}

}  // namespace

int main() {
  const std::int64_t object_bytes = 40ll * 1024 * 1024;
  util::TextTable table({"flows", "variant", "aggregate util", "Jain fairness",
                         "min/max flow Mb/s", "mean waste"});
  std::printf("Multi-flow sharing of one OC-12 (each flow 40 MB):\n");

  for (int flows : {1, 2, 4}) {
    struct Row {
      const char* name;
      FleetResult result;
    };
    std::vector<Row> rows;
    rows.push_back({"FOBS greedy", run_fobs_fleet(flows, false, object_bytes)});
    rows.push_back({"FOBS adaptive", run_fobs_fleet(flows, true, object_bytes)});
    rows.push_back({"TCP+LWE", run_tcp_fleet(flows, object_bytes)});
    for (const auto& row : rows) {
      double lo = 1e18, hi = 0;
      for (double x : row.result.per_flow_mbps) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      table.add_row(
          {std::to_string(flows), row.name,
           util::TextTable::pct(row.result.aggregate_fraction),
           util::TextTable::num(jain_index(row.result.per_flow_mbps), 3),
           util::TextTable::num(lo, 0) + " / " + util::TextTable::num(hi, 0),
           row.result.mean_waste < 0 ? "-" : util::TextTable::pct(row.result.mean_waste)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  benchutil::emit(table, "Extension: N flows sharing one bottleneck");
  return 0;
}
