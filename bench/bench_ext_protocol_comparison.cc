// Extension: all four user-level protocols from the paper's related
// work — FOBS, RUDP (Reliable Blast UDP), SABUL, PSockets — plus tuned
// TCP, on the short-haul, long-haul, and contended paths.
//
// Expected shapes (paper §2): RUDP matches FOBS on clean QoS-like paths
// but pays a full feedback round per loss pass; SABUL backs off on loss
// it (mis)attributes to congestion; TCP collapses on lossy long-haul
// paths; FOBS stays near the path ceiling everywhere.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const std::uint64_t seed = 42;

  util::TextTable table(
      {"path", "protocol", "% max bw", "elapsed", "waste/extra"});
  std::printf("Protocol comparison: 40 MB object per cell (single seed)\n");

  for (auto path :
       {exp::PathId::kShortHaul, exp::PathId::kLongHaul, exp::PathId::kGigabitContended}) {
    const auto spec = exp::spec_for(path);
    const std::string name = to_string(path);

    exp::FobsRunParams fobs_params;
    const auto fobs = exp::run_fobs(spec, fobs_params, seed);
    table.add_row({name, "FOBS", util::TextTable::pct(fobs.fraction_of(spec.max_bandwidth)),
                   util::TextTable::num(fobs.receiver_elapsed.seconds(), 2) + " s",
                   "waste " + util::TextTable::pct(fobs.waste)});

    baselines::RudpConfig rudp_config;
    rudp_config.spec = {exp::kPaperObjectBytes, exp::kPaperPacketBytes};
    const auto rudp = exp::run_rudp(spec, rudp_config, seed);
    table.add_row({name, "RUDP", util::TextTable::pct(rudp.fraction_of(spec.max_bandwidth)),
                   util::TextTable::num(rudp.elapsed.seconds(), 2) + " s",
                   std::to_string(rudp.passes) + " passes, waste " +
                       util::TextTable::pct(rudp.waste)});

    baselines::SabulConfig sabul_config;
    sabul_config.spec = {exp::kPaperObjectBytes, exp::kPaperPacketBytes};
    sabul_config.initial_rate = spec.max_bandwidth * 0.95;
    const auto sabul = exp::run_sabul(spec, sabul_config, seed);
    table.add_row({name, "SABUL", util::TextTable::pct(sabul.fraction_of(spec.max_bandwidth)),
                   util::TextTable::num(sabul.elapsed.seconds(), 2) + " s",
                   "final rate " + util::TextTable::num(sabul.final_rate_mbps, 0) + " Mb/s"});

    const auto tcp = exp::run_tcp_averaged(spec, exp::kPaperObjectBytes,
                                           baselines::tcp_with_lwe(), {seed});
    table.add_row({name, "TCP+LWE", util::TextTable::pct(tcp.fraction),
                   util::TextTable::num(tcp.goodput_mbps > 0
                                            ? exp::kPaperObjectBytes * 8.0 /
                                                  (tcp.goodput_mbps * 1e6)
                                            : 0.0,
                                        2) +
                       " s",
                   std::to_string(tcp.retransmissions) + " rtx"});

    const auto psockets = exp::run_psockets(spec, exp::kPaperObjectBytes, 16, seed);
    table.add_row({name, "PSockets-16",
                   util::TextTable::pct(psockets.fraction_of(spec.max_bandwidth)),
                   util::TextTable::num(psockets.elapsed.seconds(), 2) + " s",
                   std::to_string(psockets.retransmissions) + " rtx"});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Extension: user-level protocol comparison");
  return 0;
}
