// Extension: TCP congestion-control variants on the paper's lossy
// long-haul path.
//
// The paper's Table 1 treats "TCP" as one thing; this ablation shows
// how much the loss-recovery machinery matters on a high-delay lossy
// path — context for why user-level schemes like FOBS were attractive
// in 2002: even the best TCP of the day recovered slowly at 65 ms RTT.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"

namespace {

fobs::net::TcpConfig variant_config(bool fast_recovery, bool newreno, bool sack) {
  auto config = fobs::baselines::tcp_with_lwe();
  config.fast_recovery = fast_recovery;
  config.newreno = newreno;
  config.sack_enabled = sack;
  return config;
}

}  // namespace

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env(5));

  auto spec = exp::spec_for(exp::PathId::kLongHaul);
  spec.fwd_loss = 1e-4;  // lossy enough that recovery style dominates

  struct Variant {
    const char* name;
    fobs::net::TcpConfig config;
  };
  const std::vector<Variant> variants = {
      {"Tahoe (no fast recovery)", variant_config(false, false, false)},
      {"Reno", variant_config(true, false, false)},
      {"NewReno", variant_config(true, true, false)},
      {"NewReno + SACK", variant_config(true, true, true)},
  };

  std::printf("TCP congestion-control ablation: 40 MB on a lossy (1e-4) 65 ms path, "
              "%zu seed(s)/row\n",
              seeds.size());

  util::TextTable table({"variant", "% max bw", "goodput", "retransmissions", "timeouts"});
  for (const auto& variant : variants) {
    const auto avg =
        exp::run_tcp_averaged(spec, exp::kPaperObjectBytes, variant.config, seeds);
    table.add_row({variant.name, util::TextTable::pct(avg.fraction),
                   util::TextTable::num(avg.goodput_mbps, 1) + " Mb/s",
                   std::to_string(avg.retransmissions / seeds.size()),
                   std::to_string(avg.timeouts / seeds.size())});
    std::printf(".");
    std::fflush(stdout);
  }
  // FOBS context row.
  exp::FobsRunParams params;
  const auto fobs_avg = exp::run_fobs_averaged(spec, params, seeds);
  table.add_row({"(context) FOBS", util::TextTable::pct(fobs_avg.fraction),
                 util::TextTable::num(fobs_avg.goodput_mbps, 1) + " Mb/s", "-", "-"});
  std::printf("\n");
  benchutil::emit(table, "Extension: TCP loss-recovery variants (lossy long haul)");
  return 0;
}
