// Figure 1: FOBS percentage of maximum available bandwidth as a
// function of the acknowledgement frequency, on the short-haul
// (ANL->LCSE, ~26 ms RTT) and long-haul (ANL->CACR, ~65 ms RTT) paths.
//
// Paper result: ~90% of the available bandwidth on both connections at
// well-chosen ack frequencies, degraded at very small ones (the
// receiver stalls building ACKs and drops packets) and slightly at very
// large ones (the sender's view goes stale).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/report.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());
  const std::vector<std::int64_t> frequencies = {1,  2,   4,   8,    16,   32,  64,
                                                 128, 256, 512, 1024, 2048, 4096};

  util::TextTable table({"ack frequency", "short haul (% max bw)", "long haul (% max bw)"});
  std::printf("Figure 1 reproduction: 40 MB object, 1024 B packets, %zu seed(s)/point\n",
              seeds.size());
  std::printf("Paper: ~90%% of max bandwidth on both paths at good ack frequencies.\n");

  const auto short_spec = exp::spec_for(exp::PathId::kShortHaul);
  const auto long_spec = exp::spec_for(exp::PathId::kLongHaul);

  exp::PlotSpec plot;
  plot.name = "fig1_ack_frequency";
  plot.title = "Figure 1: FOBS % of max bandwidth vs. ack frequency";
  plot.xlabel = "acknowledgement frequency (packets)";
  plot.ylabel = "% of maximum available bandwidth";
  plot.log_x = true;
  plot.series = {{"short haul", {}}, {"long haul", {}}};

  for (const std::int64_t f : frequencies) {
    exp::FobsRunParams params;
    params.ack_frequency = f;
    const auto short_avg = exp::run_fobs_averaged(short_spec, params, seeds);
    const auto long_avg = exp::run_fobs_averaged(long_spec, params, seeds);
    table.add_row({std::to_string(f), util::TextTable::pct(short_avg.fraction),
                   util::TextTable::pct(long_avg.fraction)});
    plot.xs.push_back(static_cast<double>(f));
    plot.series[0].ys.push_back(100 * short_avg.fraction);
    plot.series[1].ys.push_back(100 * long_avg.fraction);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Figure 1: FOBS bandwidth vs. acknowledgement frequency");
  if (const auto dir = benchutil::trace_dir_from_env(); !dir.empty()) {
    exp::FobsRunParams params;
    params.ack_frequency = 64;
    benchutil::dump_fobs_trace(dir, "fig1_short_haul", short_spec, params);
    benchutil::dump_fobs_trace(dir, "fig1_long_haul", long_spec, params);
  }
  if (const auto dir = exp::plot_dir_from_env(); !dir.empty()) {
    std::printf("%s gnuplot files to %s/\n",
                exp::write_plot(dir, plot) ? "wrote" : "FAILED writing", dir.c_str());
  }
  return 0;
}
