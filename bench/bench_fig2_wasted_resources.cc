// Figure 2: wasted network resources — (packets sent - packets needed)
// / packets needed — as a function of the acknowledgement frequency.
//
// Paper result: roughly 3% of the total data transferred at reasonable
// acknowledgement frequencies; waste rises when the receiver stalls
// (tiny frequencies, loss-driven retransmits) and when the sender's
// view goes stale (huge frequencies, blind retransmits).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/report.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());
  const std::vector<std::int64_t> frequencies = {1,  2,   4,   8,    16,   32,  64,
                                                 128, 256, 512, 1024, 2048, 4096};

  util::TextTable table({"ack frequency", "short haul waste", "long haul waste"});
  std::printf("Figure 2 reproduction: 40 MB object, 1024 B packets, %zu seed(s)/point\n",
              seeds.size());
  std::printf("Paper: ~3%% waste at reasonable acknowledgement frequencies.\n");

  const auto short_spec = exp::spec_for(exp::PathId::kShortHaul);
  const auto long_spec = exp::spec_for(exp::PathId::kLongHaul);

  exp::PlotSpec plot;
  plot.name = "fig2_wasted_resources";
  plot.title = "Figure 2: wasted network resources vs. ack frequency";
  plot.xlabel = "acknowledgement frequency (packets)";
  plot.ylabel = "wasted resources (%)";
  plot.log_x = true;
  plot.series = {{"short haul", {}}, {"long haul", {}}};

  for (const std::int64_t f : frequencies) {
    exp::FobsRunParams params;
    params.ack_frequency = f;
    const auto short_avg = exp::run_fobs_averaged(short_spec, params, seeds);
    const auto long_avg = exp::run_fobs_averaged(long_spec, params, seeds);
    table.add_row({std::to_string(f), util::TextTable::pct(short_avg.waste),
                   util::TextTable::pct(long_avg.waste)});
    plot.xs.push_back(static_cast<double>(f));
    plot.series[0].ys.push_back(100 * short_avg.waste);
    plot.series[1].ys.push_back(100 * long_avg.waste);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Figure 2: wasted network resources vs. acknowledgement frequency");
  if (const auto dir = benchutil::trace_dir_from_env(); !dir.empty()) {
    exp::FobsRunParams params;
    params.ack_frequency = 64;
    benchutil::dump_fobs_trace(dir, "fig2_short_haul", short_spec, params);
    benchutil::dump_fobs_trace(dir, "fig2_long_haul", long_spec, params);
  }
  if (const auto dir = exp::plot_dir_from_env(); !dir.empty()) {
    std::printf("%s gnuplot files to %s/\n",
                exp::write_plot(dir, plot) ? "wrote" : "FAILED writing", dir.c_str());
  }
  return 0;
}
