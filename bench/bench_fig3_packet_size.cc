// Figure 3: percentage of maximum available bandwidth as a function of
// the UDP packet size, between GigE endpoints with an OC-12 (622 Mb/s)
// connection to the backbone (NCSA -> LCSE).
//
// Paper result: "the size of the data packet makes a tremendous
// difference in performance", peaking at approximately 52% of the
// maximum available bandwidth (~40 MB/s). The mechanism is the
// endpoints' per-datagram receive cost: small packets drown the host in
// syscalls, large packets amortize them until the per-byte copy cost
// saturates.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/report.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());
  const std::vector<std::int64_t> packet_sizes = {1024, 2048, 4096, 8192, 16384, 32768};
  // Paper's Figure 3 bar chart, read off the plot (approximate).
  const std::vector<double> paper_values = {0.10, 0.19, 0.30, 0.40, 0.49, 0.52};

  util::TextTable table({"packet size", "paper (% max bw)", "measured (% max bw)"});
  std::printf("Figure 3 reproduction: 40 MB object on the GigE/OC-12 path, %zu seed(s)/point\n",
              seeds.size());

  exp::PlotSpec plot;
  plot.name = "fig3_packet_size";
  plot.title = "Figure 3: FOBS % of max bandwidth vs. UDP packet size";
  plot.xlabel = "packet size (bytes)";
  plot.ylabel = "% of maximum available bandwidth";
  plot.log_x = true;
  plot.series = {{"paper", {}}, {"measured", {}}};

  const auto spec = exp::spec_for(exp::PathId::kGigabitOc12);
  for (std::size_t i = 0; i < packet_sizes.size(); ++i) {
    exp::FobsRunParams params;
    params.packet_bytes = packet_sizes[i];
    params.ack_frequency = 64;
    params.receiver_socket_buffer_bytes = 256 * 1024;
    const auto avg = exp::run_fobs_averaged(spec, params, seeds);
    table.add_row({std::to_string(packet_sizes[i] / 1024) + "K",
                   util::TextTable::pct(paper_values[i]),
                   util::TextTable::pct(avg.fraction)});
    plot.xs.push_back(static_cast<double>(packet_sizes[i]));
    plot.series[0].ys.push_back(100 * paper_values[i]);
    plot.series[1].ys.push_back(100 * avg.fraction);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(table, "Figure 3: FOBS bandwidth vs. UDP packet size (GigE/OC-12)");
  if (const auto dir = benchutil::trace_dir_from_env(); !dir.empty()) {
    exp::FobsRunParams params;
    params.packet_bytes = 8192;
    params.ack_frequency = 64;
    params.receiver_socket_buffer_bytes = 256 * 1024;
    benchutil::dump_fobs_trace(dir, "fig3_gige_oc12", spec, params);
  }
  if (const auto dir = exp::plot_dir_from_env(); !dir.empty()) {
    std::printf("%s gnuplot files to %s/\n",
                exp::write_plot(dir, plot) ? "wrote" : "FAILED writing", dir.c_str());
  }
  return 0;
}
