// Microbenchmarks (google-benchmark) for the hot paths the simulator
// and protocol cores hit millions of times per transfer.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/bitmap.h"
#include "common/rng.h"
#include "exp/runner.h"
#include "fobs/ack.h"
#include "fobs/receiver_core.h"
#include "fobs/selection.h"
#include "fobs/sender_core.h"
#include "net/seq_range_set.h"
#include "sim/simulation.h"

namespace {

using fobs::util::Bitmap;
using fobs::util::Rng;

void BM_BitmapSet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Bitmap bitmap(n);
  Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    bitmap.set(i);
    i = (i + 7919) % n;  // prime stride touches everything
    if (bitmap.all_set()) bitmap.clear_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitmapSet)->Arg(40960)->Arg(1 << 20);

void BM_BitmapFirstClearCircular(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Bitmap bitmap(n);
  // Leave every 64th bit clear — the worst realistic density late in a
  // transfer.
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 64 != 0) bitmap.set(i);
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    auto hit = bitmap.first_clear_circular(cursor);
    benchmark::DoNotOptimize(hit);
    cursor = *hit + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitmapFirstClearCircular)->Arg(40960);

void BM_AckBuildAndApply(benchmark::State& state) {
  const std::int64_t packets = state.range(0);
  Bitmap received(static_cast<std::size_t>(packets));
  Rng rng(2);
  for (std::int64_t i = 0; i < packets; ++i) {
    if (!rng.bernoulli(0.02)) received.set(static_cast<std::size_t>(i));
  }
  fobs::core::AckBuilder builder(packets, 1024);
  Bitmap view(static_cast<std::size_t>(packets));
  for (auto _ : state) {
    auto ack = builder.build(received, 0, static_cast<std::int64_t>(received.count()));
    benchmark::DoNotOptimize(fobs::core::apply_ack(ack, view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AckBuildAndApply)->Arg(40960);

void BM_SenderSelectNext(benchmark::State& state) {
  fobs::core::TransferSpec spec{40 * 1024 * 1024, 1024};
  fobs::core::SenderConfig config;
  config.selection = static_cast<fobs::core::SelectionKind>(state.range(0));
  fobs::core::SenderCore sender(spec, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sender.select_next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SenderSelectNext)
    ->Arg(static_cast<int>(fobs::core::SelectionKind::kCircular))
    ->Arg(static_cast<int>(fobs::core::SelectionKind::kRandomUnacked));

void BM_ReceiverOnPacket(benchmark::State& state) {
  fobs::core::TransferSpec spec{40 * 1024 * 1024, 1024};
  fobs::core::ReceiverConfig config;
  config.ack_frequency = 64;
  fobs::core::ReceiverCore receiver(spec, config);
  std::int64_t seq = 0;
  const std::int64_t n = spec.packet_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(receiver.on_data_packet(seq));
    seq = (seq + 7919) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReceiverOnPacket);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  fobs::sim::Simulation sim;
  fobs::util::Rng rng(3);
  for (auto _ : state) {
    sim.schedule_in(fobs::util::Duration::nanoseconds(
                        static_cast<std::int64_t>(rng.uniform_int(0, 10000))),
                    [] {});
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SeqRangeSetInsert(benchmark::State& state) {
  fobs::net::SeqRangeSet set;
  fobs::util::Rng rng(4);
  for (auto _ : state) {
    const auto b = rng.uniform_int(0, 1'000'000) * 1460;
    set.insert(b, b + 1460);
    if (set.range_count() > 4096) set.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SeqRangeSetInsert);

// Wall-clock cost of simulating one whole transfer (how fast the
// simulator itself is — the sweep benches run hundreds of these).
void BM_SimulateWholeTransfer(benchmark::State& state) {
  const std::int64_t mb = state.range(0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fobs::exp::FobsRunParams params;
    params.object_bytes = mb * 1024 * 1024;
    const auto result =
        fobs::exp::run_fobs(fobs::exp::spec_for(fobs::exp::PathId::kShortHaul), params,
                            seed++);
    benchmark::DoNotOptimize(result.packets_sent);
  }
  state.SetItemsProcessed(state.iterations() * mb * 1024);  // packets simulated
}
BENCHMARK(BM_SimulateWholeTransfer)->Arg(4)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
