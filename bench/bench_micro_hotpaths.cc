// Microbenchmarks (google-benchmark) for the hot paths the simulator
// and protocol cores hit millions of times per transfer, plus a
// loopback comparison of the batched (sendmmsg/recvmmsg scatter-gather)
// and fallback (sendto/recvfrom + assembly copy) datagram I/O paths.
// The comparison always runs first and writes its machine-readable
// result to BENCH_io.json (syscalls per packet and MB/s per mode).
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/bitmap.h"
#include "common/rng.h"
#include "exp/runner.h"
#include "fobs/ack.h"
#include "fobs/receiver_core.h"
#include "fobs/selection.h"
#include "fobs/sender_core.h"
#include "net/datagram_channel.h"
#include "net/seq_range_set.h"
#include "sim/simulation.h"

namespace {

using fobs::util::Bitmap;
using fobs::util::Rng;

void BM_BitmapSet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Bitmap bitmap(n);
  Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    bitmap.set(i);
    i = (i + 7919) % n;  // prime stride touches everything
    if (bitmap.all_set()) bitmap.clear_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitmapSet)->Arg(40960)->Arg(1 << 20);

void BM_BitmapFirstClearCircular(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Bitmap bitmap(n);
  // Leave every 64th bit clear — the worst realistic density late in a
  // transfer.
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 64 != 0) bitmap.set(i);
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    auto hit = bitmap.first_clear_circular(cursor);
    benchmark::DoNotOptimize(hit);
    cursor = *hit + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitmapFirstClearCircular)->Arg(40960);

void BM_AckBuildAndApply(benchmark::State& state) {
  const std::int64_t packets = state.range(0);
  Bitmap received(static_cast<std::size_t>(packets));
  Rng rng(2);
  for (std::int64_t i = 0; i < packets; ++i) {
    if (!rng.bernoulli(0.02)) received.set(static_cast<std::size_t>(i));
  }
  fobs::core::AckBuilder builder(packets, 1024);
  Bitmap view(static_cast<std::size_t>(packets));
  for (auto _ : state) {
    auto ack = builder.build(received, 0, static_cast<std::int64_t>(received.count()));
    benchmark::DoNotOptimize(fobs::core::apply_ack(ack, view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AckBuildAndApply)->Arg(40960);

void BM_SenderSelectNext(benchmark::State& state) {
  fobs::core::TransferSpec spec{40 * 1024 * 1024, 1024};
  fobs::core::SenderConfig config;
  config.selection = static_cast<fobs::core::SelectionKind>(state.range(0));
  fobs::core::SenderCore sender(spec, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sender.select_next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SenderSelectNext)
    ->Arg(static_cast<int>(fobs::core::SelectionKind::kCircular))
    ->Arg(static_cast<int>(fobs::core::SelectionKind::kRandomUnacked));

void BM_ReceiverOnPacket(benchmark::State& state) {
  fobs::core::TransferSpec spec{40 * 1024 * 1024, 1024};
  fobs::core::ReceiverConfig config;
  config.ack_frequency = 64;
  fobs::core::ReceiverCore receiver(spec, config);
  std::int64_t seq = 0;
  const std::int64_t n = spec.packet_count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(receiver.on_data_packet(seq));
    seq = (seq + 7919) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReceiverOnPacket);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  fobs::sim::Simulation sim;
  fobs::util::Rng rng(3);
  for (auto _ : state) {
    sim.schedule_in(fobs::util::Duration::nanoseconds(
                        static_cast<std::int64_t>(rng.uniform_int(0, 10000))),
                    [] {});
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SeqRangeSetInsert(benchmark::State& state) {
  fobs::net::SeqRangeSet set;
  fobs::util::Rng rng(4);
  for (auto _ : state) {
    const auto b = rng.uniform_int(0, 1'000'000) * 1460;
    set.insert(b, b + 1460);
    if (set.range_count() > 4096) set.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SeqRangeSetInsert);

// Wall-clock cost of simulating one whole transfer (how fast the
// simulator itself is — the sweep benches run hundreds of these).
void BM_SimulateWholeTransfer(benchmark::State& state) {
  const std::int64_t mb = state.range(0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fobs::exp::FobsRunParams params;
    params.object_bytes = mb * 1024 * 1024;
    const auto result =
        fobs::exp::run_fobs(fobs::exp::spec_for(fobs::exp::PathId::kShortHaul), params,
                            seed++);
    benchmark::DoNotOptimize(result.packets_sent);
  }
  state.SetItemsProcessed(state.iterations() * mb * 1024);  // packets simulated
}
BENCHMARK(BM_SimulateWholeTransfer)->Arg(4)->Arg(40)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Datagram I/O layer: batched vs fallback over loopback
// ---------------------------------------------------------------------------

struct IoRunResult {
  double seconds = 0.0;
  double mb_per_s = 0.0;
  fobs::net::IoStats tx;
};

/// Pumps `count` datagrams of `datagram_bytes` (header + gathered
/// payload) over loopback in one mode, with a drain thread keeping the
/// receive socket empty, and reports sender-side syscall counts and
/// throughput.
IoRunResult pump_loopback(fobs::net::IoMode mode, int count, std::size_t datagram_bytes) {
  IoRunResult result;
  fobs::net::IoOptions io;
  io.mode = mode;
  io.recv_buffer_bytes = 8 << 20;
  std::string error;
  auto rx = fobs::net::DatagramChannel::open(io, datagram_bytes, 0, &error);
  auto tx = fobs::net::DatagramChannel::open(io, datagram_bytes, std::nullopt, &error);
  if (!rx.valid() || !tx.valid()) {
    std::fprintf(stderr, "io bench setup failed: %s\n", error.c_str());
    return result;
  }
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(rx.local_port());
  ::inet_pton(AF_INET, "127.0.0.1", &dest.sin_addr);

  std::atomic<bool> stop{false};
  std::thread drain([&] {
    std::vector<fobs::net::RecvView> views(static_cast<std::size_t>(io.recv_batch));
    while (!stop.load(std::memory_order_relaxed)) {
      if (rx.recv_batch(views, nullptr) <= 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });

  constexpr std::size_t kHeaderBytes = 20;
  std::vector<std::uint8_t> header(kHeaderBytes, 0x5A);
  std::vector<std::uint8_t> payload(datagram_bytes - kHeaderBytes, 0xA5);
  const fobs::net::DatagramView view{std::span<const std::uint8_t>(header),
                                     std::span<const std::uint8_t>(payload)};
  std::vector<fobs::net::DatagramView> batch(static_cast<std::size_t>(io.send_batch), view);

  const auto start = std::chrono::steady_clock::now();
  int sent = 0;
  while (sent < count) {
    const int want = std::min(count - sent, io.send_batch);
    if (!tx.send_batch(std::span(batch.data(), static_cast<std::size_t>(want)), dest,
                       &error)) {
      std::fprintf(stderr, "io bench send failed: %s\n", error.c_str());
      break;
    }
    sent += want;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  stop.store(true);
  drain.join();
  result.tx = tx.stats();
  if (result.seconds > 0) {
    result.mb_per_s = static_cast<double>(result.tx.bytes_sent) / result.seconds / 1e6;
  }
  return result;
}

void append_io_json(std::FILE* f, const char* key, const IoRunResult& r) {
  const double per_packet =
      r.tx.datagrams_sent > 0
          ? static_cast<double>(r.tx.send_syscalls) / static_cast<double>(r.tx.datagrams_sent)
          : 0.0;
  std::fprintf(f,
               "  \"%s\": {\"mb_per_s\": %.1f, \"send_syscalls\": %llu, "
               "\"datagrams\": %llu, \"syscalls_per_packet\": %.4f, "
               "\"copy_bytes_avoided\": %lld}",
               key, r.mb_per_s, static_cast<unsigned long long>(r.tx.send_syscalls),
               static_cast<unsigned long long>(r.tx.datagrams_sent), per_packet,
               static_cast<long long>(r.tx.copy_bytes_avoided));
}

/// Runs the batched-vs-fallback comparison and writes BENCH_io.json.
void write_io_comparison(const char* path) {
  constexpr int kDatagrams = 20'000;
  constexpr std::size_t kDatagramBytes = 8 * 1024;
  const auto fallback = pump_loopback(fobs::net::IoMode::kFallback, kDatagrams, kDatagramBytes);
#if defined(__linux__)
  const auto batched = pump_loopback(fobs::net::IoMode::kBatched, kDatagrams, kDatagramBytes);
#else
  const auto batched = fallback;
#endif
  const double reduction =
      batched.tx.send_syscalls > 0 && fallback.tx.datagrams_sent > 0 &&
              batched.tx.datagrams_sent > 0
          ? (static_cast<double>(fallback.tx.send_syscalls) /
             static_cast<double>(fallback.tx.datagrams_sent)) /
                (static_cast<double>(batched.tx.send_syscalls) /
                 static_cast<double>(batched.tx.datagrams_sent))
          : 0.0;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"datagram_bytes\": %zu,\n  \"datagrams\": %d,\n", kDatagramBytes,
               kDatagrams);
  append_io_json(f, "batched", batched);
  std::fprintf(f, ",\n");
  append_io_json(f, "fallback", fallback);
  std::fprintf(f, ",\n  \"syscall_reduction\": %.1f\n}\n", reduction);
  std::fclose(f);
  std::printf("BENCH_io: batched %.0f MB/s (%.4f syscalls/pkt), fallback %.0f MB/s "
              "(%.4f syscalls/pkt), %.1fx fewer syscalls -> %s\n",
              batched.mb_per_s,
              batched.tx.datagrams_sent > 0
                  ? static_cast<double>(batched.tx.send_syscalls) /
                        static_cast<double>(batched.tx.datagrams_sent)
                  : 0.0,
              fallback.mb_per_s,
              fallback.tx.datagrams_sent > 0
                  ? static_cast<double>(fallback.tx.send_syscalls) /
                        static_cast<double>(fallback.tx.datagrams_sent)
                  : 0.0,
              reduction, path);
}

/// The same comparison as a google-benchmark case: arg 0 = batched,
/// 1 = fallback; items processed = datagrams pushed.
void BM_DatagramChannelSend(benchmark::State& state) {
  const auto mode =
      state.range(0) == 0 ? fobs::net::IoMode::kBatched : fobs::net::IoMode::kFallback;
#if !defined(__linux__)
  if (mode == fobs::net::IoMode::kBatched) {
    state.SkipWithError("sendmmsg unavailable on this platform");
    return;
  }
#endif
  constexpr int kPerIteration = 2'000;
  std::int64_t datagrams = 0;
  for (auto _ : state) {
    const auto run = pump_loopback(mode, kPerIteration, 8 * 1024);
    datagrams += static_cast<std::int64_t>(run.tx.datagrams_sent);
    benchmark::DoNotOptimize(run.mb_per_s);
  }
  state.SetItemsProcessed(datagrams);
}
BENCHMARK(BM_DatagramChannelSend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  write_io_comparison("BENCH_io.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
