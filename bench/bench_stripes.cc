// Striped multi-flow FOBS on real loopback sockets: one object carried
// over N parallel UDP flows (fobs/stripe/striped_transfer.h), N in
// {1, 2, 4, 8}. Prints a table and writes the machine-readable result
// to BENCH_stripes.json — per-count goodput, speedup over the 1-stripe
// baseline, and a `single_flow_bound` marker when 4 stripes fail to
// reach 1.5x on this host (loopback shares one memory bus and one
// kernel UDP stack, so hosts with few cores can be single-flow-bound).
//
// Set FOBS_BENCH_STRIPE_MB to change the object size (default 64) and
// FOBS_BENCH_SEEDS to change repetitions per stripe count (default 2;
// the best run is reported, like repeated tuning runs).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "fobs/object.h"
#include "fobs/posix/engine.h"
#include "fobs/stripe/striped_transfer.h"

namespace {

constexpr std::uint16_t kNegotiationPort = 47101;
constexpr std::uint16_t kDataPortBase = 47200;
constexpr std::uint16_t kControlPortBase = 47300;
constexpr std::int64_t kPacketBytes = 8 * 1024;

struct StripeRun {
  int stripes_requested = 0;
  int stripes_used = 0;
  bool completed = false;
  bool verified = false;
  double elapsed_s = 0.0;
  double goodput_mbps = 0.0;
};

StripeRun run_once(int stripes, const fobs::core::TransferObject& object,
                   std::vector<std::uint8_t>& scratch) {
  using namespace fobs::posix;
  StripeRun run;
  run.stripes_requested = stripes;
  std::memset(scratch.data(), 0, scratch.size());

  EngineOptions sender_options;
  sender_options.workers = static_cast<std::size_t>(stripes);
  sender_options.control_port_base = kControlPortBase;
  sender_options.control_port_count = 64;
  TransferEngine sender_engine(sender_options);
  EngineOptions receiver_options;
  receiver_options.workers = static_cast<std::size_t>(stripes);
  TransferEngine receiver_engine(receiver_options);

  StripedSenderOptions send;
  send.negotiation_port = kNegotiationPort;
  send.max_stripes = stripes;
  send.endpoint.packet_bytes = kPacketBytes;
  StripedResult sender_result;
  std::thread sender([&] { sender_result = sender_engine.run_striped_sender(send, object.view()); });

  StripedReceiverOptions recv;
  recv.negotiation_port = kNegotiationPort;
  recv.data_port_base = kDataPortBase;
  recv.stripes = stripes;
  recv.endpoint.packet_bytes = kPacketBytes;
  const StripedResult receiver_result = receiver_engine.run_striped_receiver(recv, scratch);
  sender.join();

  run.stripes_used = receiver_result.stripes;
  run.completed = receiver_result.completed() && sender_result.completed();
  run.elapsed_s = receiver_result.elapsed_seconds;
  run.goodput_mbps = receiver_result.goodput_mbps;
  run.verified = run.completed &&
                 std::memcmp(scratch.data(), object.view().data(), scratch.size()) == 0;
  return run;
}

int reps_from_env() {
  const char* env = std::getenv("FOBS_BENCH_SEEDS");
  const int n = env != nullptr ? std::atoi(env) : 0;
  return n > 0 ? n : 2;
}

std::int64_t object_bytes_from_env() {
  const char* env = std::getenv("FOBS_BENCH_STRIPE_MB");
  const long long mb = env != nullptr ? std::atoll(env) : 0;
  return (mb > 0 ? mb : 64) * 1024 * 1024;
}

}  // namespace

int main() {
  const std::int64_t object_bytes = object_bytes_from_env();
  const int reps = reps_from_env();
  const std::vector<int> counts = {1, 2, 4, 8};

  std::printf("Striped FOBS over loopback: %lld MiB object, %lld B packets, best of %d\n",
              static_cast<long long>(object_bytes >> 20),
              static_cast<long long>(kPacketBytes), reps);
  auto object = fobs::core::TransferObject::pattern(object_bytes, 0x57121FE5);
  std::vector<std::uint8_t> scratch(static_cast<std::size_t>(object_bytes));

  std::vector<StripeRun> best;
  for (int n : counts) {
    StripeRun win;
    for (int r = 0; r < reps; ++r) {
      const StripeRun run = run_once(n, object, scratch);
      if (!win.verified || (run.verified && run.goodput_mbps > win.goodput_mbps)) win = run;
      std::printf(".");
      std::fflush(stdout);
    }
    best.push_back(win);
  }
  std::printf("\n");

  const double base_mbps = best.front().goodput_mbps;
  fobs::util::TextTable table({"stripes", "goodput (Mb/s)", "speedup", "verified"});
  for (const auto& run : best) {
    char mbps[32], speedup[32];
    std::snprintf(mbps, sizeof mbps, "%.0f", run.goodput_mbps);
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  base_mbps > 0 ? run.goodput_mbps / base_mbps : 0.0);
    table.add_row({std::to_string(run.stripes_used), mbps, speedup,
                   run.verified ? "yes" : "NO"});
  }
  table.print(std::cout);

  double speedup_4x = 0.0;
  bool all_verified = true;
  for (const auto& run : best) {
    if (run.stripes_requested == 4 && base_mbps > 0) speedup_4x = run.goodput_mbps / base_mbps;
    all_verified = all_verified && run.verified;
  }
  const bool single_flow_bound = speedup_4x < 1.5;

  FILE* f = std::fopen("BENCH_stripes.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"striped_loopback\",\n"
                 "  \"object_bytes\": %lld,\n  \"packet_bytes\": %lld,\n  \"runs\": [\n",
                 static_cast<long long>(object_bytes), static_cast<long long>(kPacketBytes));
    for (std::size_t i = 0; i < best.size(); ++i) {
      const auto& run = best[i];
      std::fprintf(f,
                   "    {\"stripes\": %d, \"goodput_mbps\": %.1f, \"elapsed_s\": %.3f, "
                   "\"speedup\": %.3f, \"completed\": %s, \"verified\": %s}%s\n",
                   run.stripes_used, run.goodput_mbps, run.elapsed_s,
                   base_mbps > 0 ? run.goodput_mbps / base_mbps : 0.0,
                   run.completed ? "true" : "false", run.verified ? "true" : "false",
                   i + 1 < best.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"speedup_4x\": %.3f,\n  \"single_flow_bound\": %s,\n"
                 "  \"note\": \"%s\"\n}\n",
                 speedup_4x, single_flow_bound ? "true" : "false",
                 single_flow_bound
                     ? "4-stripe speedup below 1.5x: this host's loopback path is "
                       "single-flow-bound (shared memory bus / kernel UDP stack)"
                     : "4 parallel flows beat one flow by >= 1.5x on this host");
    std::fclose(f);
    std::printf("wrote BENCH_stripes.json (4-stripe speedup %.2fx%s)\n", speedup_4x,
                single_flow_bound ? ", single-flow-bound host" : "");
  }
  return all_verified ? 0 : 1;
}
