// Table 1: percentage of the maximum available bandwidth obtained by
// TCP with and without the Large Window Extensions (window scaling).
//
// Paper:
//   Short haul with LWE   86%
//   Long haul with LWE    51%
//   Long haul without LWE 11%
//
// The without-LWE row is pure protocol arithmetic: a 64 KiB window over
// a 65 ms round trip moves at most ~8 Mb/s. The with-LWE long-haul row
// is contention: light random loss trips TCP's congestion control, and
// recovery at 65 ms RTT is slow. FOBS rows are included for context
// (the paper quotes ~90% / 1.8x over tuned TCP in the text).
#include <cstdio>

#include "bench_util.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env(5));

  std::printf("Table 1 reproduction: 40 MB single-stream TCP transfers, %zu seed(s)/row\n",
              seeds.size());

  const auto short_spec = exp::spec_for(exp::PathId::kShortHaul);
  const auto long_spec = exp::spec_for(exp::PathId::kLongHaul);

  const auto short_lwe = exp::run_tcp_averaged(short_spec, exp::kPaperObjectBytes,
                                               baselines::tcp_with_lwe(), seeds);
  const auto long_lwe =
      exp::run_tcp_averaged(long_spec, exp::kPaperObjectBytes, baselines::tcp_with_lwe(), seeds);
  const auto long_nolwe = exp::run_tcp_averaged(long_spec, exp::kPaperObjectBytes,
                                                baselines::tcp_without_lwe(), seeds);

  exp::FobsRunParams fobs_params;
  const auto fobs_short = exp::run_fobs_averaged(short_spec, fobs_params, seeds);
  const auto fobs_long = exp::run_fobs_averaged(long_spec, fobs_params, seeds);

  util::TextTable table({"network connection", "paper", "measured"});
  table.add_row({"Short haul with LWE", "86%", util::TextTable::pct(short_lwe.fraction)});
  table.add_row({"Long haul with LWE", "51%", util::TextTable::pct(long_lwe.fraction)});
  table.add_row({"Long haul without LWE", "11%", util::TextTable::pct(long_nolwe.fraction)});
  table.add_row({"(context) FOBS short haul", "~90%", util::TextTable::pct(fobs_short.fraction)});
  table.add_row({"(context) FOBS long haul", "~90%", util::TextTable::pct(fobs_long.fraction)});
  benchutil::emit(table, "Table 1: TCP with and without the Large Window Extensions");

  if (long_lwe.fraction > 0) {
    std::printf("\nFOBS / tuned-TCP long-haul ratio: %.2fx (paper: ~1.8x)\n",
                fobs_long.fraction / long_lwe.fraction);
  }
  return 0;
}
