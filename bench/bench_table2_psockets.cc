// Table 2: FOBS vs. PSockets on the contended NCSA -> CACR GigE/OC-12
// path.
//
// Paper:
//   PSockets: 56% of max bandwidth, optimal number of sockets = 20
//   FOBS:     76% of max bandwidth, 2% wasted network resources
//
// PSockets' socket count is tuned experimentally (as in the original
// system); we reproduce that search over a candidate set and report the
// winner.
#include <cstdio>
#include <vector>

#include "baselines/psockets.h"
#include "bench_util.h"
#include "exp/runner.h"

int main() {
  using namespace fobs;
  const auto seeds = exp::default_seeds(benchutil::seed_count_from_env());
  const auto spec = exp::spec_for(exp::PathId::kGigabitContended);
  const std::vector<int> candidates = {1, 2, 4, 8, 12, 16, 20, 24, 28, 32};

  std::printf("Table 2 reproduction: 40 MB transfers on the contended GigE/OC-12 path\n");
  std::printf("PSockets socket-count search over {1,2,4,8,12,16,20,24,28,32}:\n");

  util::TextTable search({"sockets", "measured (% max bw)"});
  double best_fraction = -1.0;
  int best_n = 0;
  for (int n : candidates) {
    // Average the search point over the seeds, like repeated tuning runs.
    double fraction = 0.0;
    int completed = 0;
    for (std::uint64_t seed : seeds) {
      const auto r = exp::run_psockets(spec, exp::kPaperObjectBytes, n, seed);
      if (!r.completed) continue;
      fraction += r.fraction_of(spec.max_bandwidth);
      ++completed;
    }
    if (completed > 0) fraction /= completed;
    search.add_row({std::to_string(n), util::TextTable::pct(fraction)});
    if (completed > 0 && fraction > best_fraction) {
      best_fraction = fraction;
      best_n = n;
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  benchutil::emit(search, "PSockets stream-count search");

  exp::FobsRunParams fobs_params;
  const auto fobs = exp::run_fobs_averaged(spec, fobs_params, seeds);

  util::TextTable table({"metric", "PSockets paper", "PSockets measured", "FOBS paper",
                         "FOBS measured"});
  table.add_row({"% of max bandwidth", "56%", util::TextTable::pct(best_fraction), "76%",
                 util::TextTable::pct(fobs.fraction)});
  table.add_row({"wasted network resources", "-", "-", "2%", util::TextTable::pct(fobs.waste)});
  table.add_row({"optimal parallel sockets", "20", std::to_string(best_n), "-", "-"});
  benchutil::emit(table, "Table 2: FOBS vs. PSockets (contended GigE/OC-12 path)");

  // Machine-readable companion to BENCH_stripes.json: the PSockets
  // baseline the striped-FOBS numbers are read against.
  if (FILE* f = std::fopen("BENCH_psockets.json", "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"table2_psockets\",\n"
                 "  \"path\": \"contended GigE/OC-12\",\n"
                 "  \"object_bytes\": %lld,\n",
                 static_cast<long long>(exp::kPaperObjectBytes));
    std::fprintf(f, "  \"psockets\": {\"paper_fraction\": 0.56, \"measured_fraction\": %.4f, "
                    "\"paper_optimal_sockets\": 20, \"measured_optimal_sockets\": %d},\n",
                 best_fraction, best_n);
    std::fprintf(f, "  \"fobs\": {\"paper_fraction\": 0.76, \"measured_fraction\": %.4f, "
                    "\"paper_waste\": 0.02, \"measured_waste\": %.4f}\n}\n",
                 fobs.fraction, fobs.waste);
    std::fclose(f);
    std::printf("wrote BENCH_psockets.json\n");
  }
  return 0;
}
