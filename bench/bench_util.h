// Shared helpers for the table/figure reproduction binaries.
//
// Each binary prints (a) the paper's reported numbers and (b) our
// measured values, as aligned text tables. Set FOBS_BENCH_SEEDS=<n> to
// change how many simulated runs are averaged per row (default 3), and
// FOBS_BENCH_CSV=1 to emit CSV after the table.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"

namespace fobs::benchutil {

inline int seed_count_from_env(int fallback = 3) {
  const char* env = std::getenv("FOBS_BENCH_SEEDS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

inline bool csv_from_env() {
  const char* env = std::getenv("FOBS_BENCH_CSV");
  return env != nullptr && env[0] == '1';
}

inline void emit(const fobs::util::TextTable& table, const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (csv_from_env()) {
    std::cout << "\n-- CSV --\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

}  // namespace fobs::benchutil
