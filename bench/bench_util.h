// Shared helpers for the table/figure reproduction binaries.
//
// Each binary prints (a) the paper's reported numbers and (b) our
// measured values, as aligned text tables. Set FOBS_BENCH_SEEDS=<n> to
// change how many simulated runs are averaged per row (default 3),
// FOBS_BENCH_CSV=1 to emit CSV after the table, and FOBS_TRACE_DIR=<dir>
// to dump JSONL telemetry traces of one representative run per path
// (see docs/TELEMETRY.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "exp/runner.h"
#include "telemetry/trace.h"

namespace fobs::benchutil {

inline int seed_count_from_env(int fallback = 3) {
  const char* env = std::getenv("FOBS_BENCH_SEEDS");
  if (env == nullptr) return fallback;
  const int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

inline bool csv_from_env() {
  const char* env = std::getenv("FOBS_BENCH_CSV");
  return env != nullptr && env[0] == '1';
}

/// Directory for JSONL telemetry dumps, or "" when tracing is off.
inline std::string trace_dir_from_env() {
  const char* env = std::getenv("FOBS_TRACE_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

/// Re-runs one fixed-seed FOBS transfer with tracers attached and
/// writes `<dir>/<stem>.sender.jsonl` and `<dir>/<stem>.receiver.jsonl`.
/// The figure binaries call this once per path when FOBS_TRACE_DIR is
/// set, so a reproduction run leaves an inspectable event log behind.
inline void dump_fobs_trace(const std::string& dir, const std::string& stem,
                            const fobs::exp::TestbedSpec& spec,
                            fobs::exp::FobsRunParams params, std::uint64_t seed = 1) {
  fobs::telemetry::EventTracer sender_trace;
  fobs::telemetry::EventTracer receiver_trace;
  params.sender_tracer = &sender_trace;
  params.receiver_tracer = &receiver_trace;
  (void)fobs::exp::run_fobs(spec, params, seed);
  const bool ok = sender_trace.write_jsonl_file(dir + "/" + stem + ".sender.jsonl") &&
                  receiver_trace.write_jsonl_file(dir + "/" + stem + ".receiver.jsonl");
  std::printf("%s telemetry traces %s/%s.{sender,receiver}.jsonl\n",
              ok ? "wrote" : "FAILED writing", dir.c_str(), stem.c_str());
}

inline void emit(const fobs::util::TextTable& table, const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (csv_from_env()) {
    std::cout << "\n-- CSV --\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

}  // namespace fobs::benchutil
