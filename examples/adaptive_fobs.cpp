// Congestion-adaptive FOBS (paper §7 extension) in action.
//
// Runs plain and adaptive FOBS on an overloaded shared path and shows
// what the greediness controller trades: a little throughput for a lot
// less waste and far friendlier behaviour toward competing traffic.
#include <cstdio>

#include "exp/runner.h"

namespace {

void run_variant(const fobs::exp::TestbedSpec& spec, bool adaptive) {
  using namespace fobs;
  exp::Testbed bed(spec, 7);
  exp::FobsRunParams params;
  params.adaptive.enabled = adaptive;
  const auto result = core::run_sim_transfer(bed.network(), bed.src(), bed.dst(),
                                             exp::make_fobs_config(params));

  std::uint64_t cross_offered = 0;
  for (const auto& src : bed.cross_sources()) cross_offered += src->stats().packets_sent;
  const double cross_delivered =
      cross_offered > 0 ? static_cast<double>(bed.cross_sink().packets_received()) /
                              static_cast<double>(cross_offered)
                        : 0.0;

  std::printf("\n%s\n", adaptive ? "FOBS with adaptive greediness (extension)"
                                 : "Plain greedy FOBS (as published)");
  std::printf("  throughput:        %.1f Mb/s (%.1f%% of max)\n", result.goodput_mbps,
              100.0 * result.fraction_of(spec.max_bandwidth));
  std::printf("  wasted resources:  %.1f%%\n", 100.0 * result.waste);
  std::printf("  competing traffic delivered: %.1f%%\n", 100.0 * cross_delivered);
  std::printf("  bottleneck overflow drops:   %llu\n",
              static_cast<unsigned long long>(bed.backbone().stats().drops_overflow));
}

}  // namespace

int main() {
  using namespace fobs;
  auto spec = exp::spec_for(exp::PathId::kGigabitContended);
  spec.cross_sources = 8;
  spec.cross_peak = util::DataRate::megabits_per_second(150);

  std::printf("Overloaded GigE/OC-12 path: 8 bursty sources, avg ~%.0f Mb/s of cross traffic\n",
              8 * spec.cross_peak.mbps() * 0.2);
  run_variant(spec, /*adaptive=*/false);
  run_variant(spec, /*adaptive=*/true);
  return 0;
}
