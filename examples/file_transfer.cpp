// Real-socket FOBS file transfer.
//
// Three modes:
//   file_transfer demo                          — in-process loopback demo
//   file_transfer recv <port> <bytes> <out>     — receive a file
//   file_transfer send <host> <port> <file>     — send a file
//
// send/recv pair up across machines (or terminals): start the receiver
// first; the sender listens for the completion signal on <port>+1, the
// data flows over UDP port <port>.
//
// The demo runs both endpoints as sessions of one TransferEngine —
// no hand-rolled threads — and reports outcomes via TransferStatus.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fobs/object.h"
#include "fobs/posix/engine.h"
#include "fobs/sim_transfer.h"

namespace {

bool write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good();
}

int run_demo() {
  std::printf("FOBS loopback demo: sending 16 MiB through real UDP sockets...\n");
  const auto object = fobs::core::make_pattern(16 * 1024 * 1024, 0xD3405EED);
  std::vector<std::uint8_t> sink(object.size(), 0);

  fobs::posix::ReceiverOptions recv_opts;
  recv_opts.data_port = 38000;
  recv_opts.control_port = 38001;
  fobs::posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;

  // Both endpoints run as sessions of one engine; wait() replaces the
  // manual thread-join choreography.
  fobs::posix::TransferEngine engine({.workers = 2});
  auto rx = engine.submit_receive(recv_opts, std::span<std::uint8_t>(sink));
  auto tx = engine.submit_send(send_opts, std::span<const std::uint8_t>(object));
  rx.wait();
  tx.wait();
  const auto& send_result = tx.sender_result();
  const auto& recv_result = rx.receiver_result();

  if (!send_result.completed() || !recv_result.completed()) {
    std::printf("FAILED: sender %s (%s), receiver %s (%s)\n",
                to_string(send_result.status), send_result.error.c_str(),
                to_string(recv_result.status), recv_result.error.c_str());
    return 1;
  }
  const bool ok = sink == object;
  std::printf("  goodput %.0f Mb/s, %lld packets sent for %lld needed (waste %.2f%%)\n",
              send_result.goodput_mbps, static_cast<long long>(send_result.packets_sent),
              static_cast<long long>(send_result.packets_needed), 100.0 * send_result.waste);
  // The batched I/O layer's win, straight from the result counters
  // (force the classic path with FOBS_IO_MODE=fallback to compare).
  const auto& io = send_result.io;
  std::printf("  datagram I/O: %.1f datagrams/send-syscall, %lld MiB of payload "
              "copies avoided\n",
              io.send_syscalls > 0 ? static_cast<double>(io.datagrams_sent) /
                                         static_cast<double>(io.send_syscalls)
                                   : 0.0,
              static_cast<long long>(io.copy_bytes_avoided >> 20));
  std::printf("  bytes verified: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "demo";
  if (mode == "demo") return run_demo();

  if (mode == "recv" && argc == 5) {
    fobs::posix::ReceiverOptions opts;
    opts.data_port = static_cast<std::uint16_t>(std::atoi(argv[2]));
    opts.control_port = static_cast<std::uint16_t>(opts.data_port + 1);
    opts.endpoint.timeout_ms = 300'000;
    std::vector<std::uint8_t> buffer(static_cast<std::size_t>(std::atoll(argv[3])));
    std::printf("receiving %zu bytes on UDP port %u...\n", buffer.size(), opts.data_port);
    const auto result = fobs::posix::receive_object(opts, std::span<std::uint8_t>(buffer));
    if (!result.completed()) {
      std::printf("receive failed [%s]: %s\n", to_string(result.status),
                  result.error.c_str());
      return 1;
    }
    if (!write_file(argv[4], buffer)) {
      std::printf("could not write %s\n", argv[4]);
      return 1;
    }
    std::printf("done: %.0f Mb/s, %lld packets (%lld duplicate)\n", result.goodput_mbps,
                static_cast<long long>(result.packets_received),
                static_cast<long long>(result.duplicates));
    return 0;
  }

  if (mode == "send" && argc == 5) {
    fobs::posix::SenderOptions opts;
    opts.receiver_host = argv[2];
    opts.data_port = static_cast<std::uint16_t>(std::atoi(argv[3]));
    opts.control_port = static_cast<std::uint16_t>(opts.data_port + 1);
    opts.endpoint.timeout_ms = 300'000;
    // Memory-map the file: the object buffer spans the whole file
    // without staging it through the heap.
    const auto object = fobs::core::TransferObject::map_file(argv[4]);
    if (!object) {
      std::printf("could not map %s (missing or empty file)\n", argv[4]);
      return 1;
    }
    std::printf("sending %lld bytes to %s:%u (checksum %016llx)...\n",
                static_cast<long long>(object->size()), opts.receiver_host.c_str(),
                opts.data_port, static_cast<unsigned long long>(object->checksum()));
    const auto result = fobs::posix::send_object(opts, object->view());
    if (!result.completed()) {
      std::printf("send failed [%s]: %s\n", to_string(result.status), result.error.c_str());
      return 1;
    }
    std::printf("done: %.0f Mb/s, waste %.2f%%, %.1f datagrams/send-syscall\n",
                result.goodput_mbps, 100.0 * result.waste,
                result.io.send_syscalls > 0
                    ? static_cast<double>(result.io.datagrams_sent) /
                          static_cast<double>(result.io.send_syscalls)
                    : 0.0);
    return 0;
  }

  std::printf(
      "usage:\n"
      "  %s demo\n"
      "  %s recv <port> <bytes> <outfile>\n"
      "  %s send <host> <port> <file>\n",
      argv[0], argv[0], argv[0]);
  return 2;
}
