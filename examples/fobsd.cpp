// fobsd — a minimal FOBS file server over real sockets.
//
//   fobsd serve <dir> <port>                 # serve files from <dir>
//   fobsd fetch <host> <port> <name> <out>   # fetch one file
//   fobsd demo                               # serve+fetch in one process
//
// Protocol: the client opens a TCP "catalog" connection to <port> and
// sends one request line:  "<name> <client-udp-port>\n". The server
// replies "<size> <control-port>\n" (size -1 = not found), then pushes
// the file with a FOBS transfer: data to the client's UDP port, the
// completion signal accepted on <control-port>. Transfers are served
// one at a time — fobsd is a demonstration of embedding the library in
// a service, not a production daemon.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fobs/object.h"
#include "fobs/posix/posix_transfer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

// With FOBS_TRACE_DIR set, every transfer leaves a JSONL event trace
// behind and the demo prints the process-wide metrics table.
std::string trace_dir() {
  const char* env = std::getenv("FOBS_TRACE_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

void maybe_dump_trace(const fobs::telemetry::EventTracer& trace, const std::string& stem) {
  const auto dir = trace_dir();
  if (dir.empty()) return;
  const std::string path = dir + "/" + stem + ".jsonl";
  std::printf("fobsd: %s trace %s\n",
              trace.write_jsonl_file(path) ? "wrote" : "FAILED writing", path.c_str());
}

bool send_line(int fd, const std::string& line) {
  return ::send(fd, line.data(), line.size(), 0) == static_cast<ssize_t>(line.size());
}

std::string recv_line(int fd) {
  std::string line;
  char ch = 0;
  while (line.size() < 512 && ::recv(fd, &ch, 1, 0) == 1) {
    if (ch == '\n') return line;
    line.push_back(ch);
  }
  return line;
}

bool name_is_safe(const std::string& name) {
  if (name.empty() || name.front() == '/') return false;
  return name.find("..") == std::string::npos;
}

int run_server(const std::string& dir, std::uint16_t port, int max_requests = -1) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = INADDR_ANY;
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listener, 4) != 0) {
    std::perror("fobsd: bind/listen");
    return 1;
  }
  std::printf("fobsd: serving %s on port %u\n", dir.c_str(), port);

  int served = 0;
  while (max_requests < 0 || served < max_requests) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int conn = ::accept(listener, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (conn < 0) continue;
    const std::string request = recv_line(conn);
    const auto space = request.find(' ');
    const std::string name = request.substr(0, space);
    const int client_port = space == std::string::npos
                                ? 0
                                : std::atoi(request.c_str() + space + 1);
    char client_host[64] = {0};
    ::inet_ntop(AF_INET, &peer.sin_addr, client_host, sizeof client_host);

    auto object = name_is_safe(name)
                      ? fobs::core::TransferObject::map_file(dir + "/" + name)
                      : std::nullopt;
    if (!object || client_port <= 0) {
      send_line(conn, "-1 0\n");
      ::close(conn);
      ++served;
      continue;
    }
    const std::uint16_t control_port = static_cast<std::uint16_t>(port + 1);
    send_line(conn,
              std::to_string(object->size()) + " " + std::to_string(control_port) + "\n");
    ::close(conn);  // catalog exchange done; the transfer takes over

    fobs::telemetry::EventTracer trace;
    fobs::posix::SenderOptions opts;
    opts.receiver_host = client_host;
    opts.data_port = static_cast<std::uint16_t>(client_port);
    opts.control_port = control_port;
    opts.tracer = &trace;
    const auto result = fobs::posix::send_object(opts, object->view());
    std::printf("fobsd: %s -> %s:%d  %s (%.0f Mb/s, waste %.2f%%)\n", name.c_str(),
                client_host, client_port, result.completed ? "ok" : "FAILED",
                result.goodput_mbps, 100.0 * result.waste);
    maybe_dump_trace(trace, "fobsd_serve_" + std::to_string(served));
    ++served;
  }
  ::close(listener);
  return 0;
}

int run_fetch(const std::string& host, std::uint16_t port, const std::string& name,
              const std::string& out_path, std::uint16_t data_port) {
  const int conn = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  // The server may still be starting (demo mode): retry briefly.
  int attempts = 0;
  while (::connect(conn, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (++attempts > 100) {
      std::perror("fobsd: connect");
      return 1;
    }
    ::usleep(20'000);
  }
  send_line(conn, name + " " + std::to_string(data_port) + "\n");
  const std::string reply = recv_line(conn);
  ::close(conn);
  long long size = -1;
  int control_port = 0;
  std::sscanf(reply.c_str(), "%lld %d", &size, &control_port);
  if (size < 0 || control_port <= 0) {
    std::printf("fobsd: server refused '%s'\n", name.c_str());
    return 1;
  }

  // Crash resilience: the receive buffer IS the <out>.part file — a
  // writable shared mapping, so every validated packet lands in the
  // page cache the moment it is written and the bitmap sidecar can
  // never record packets whose bytes a hard crash (kill -9, OOM) threw
  // away. The bitmap may lag the data, which only costs resends.
  const std::string partial_path = out_path + ".part";
  const std::string checkpoint_path = out_path + ".ckpt";
  struct stat part_stat{};
  const bool resuming = ::stat(partial_path.c_str(), &part_stat) == 0 &&
                        part_stat.st_size == static_cast<off_t>(size);
  if (!resuming) {
    // No matching partial bytes: a leftover checkpoint describes data we
    // do not have, and restoring it would leave silent zero-filled holes
    // in the fetched file.
    std::remove(checkpoint_path.c_str());
  } else {
    std::printf("fobsd: found partial fetch %s, attempting resume\n", partial_path.c_str());
  }
  auto partial = fobs::core::TransferObject::map_file_rw(partial_path,
                                                         static_cast<std::int64_t>(size));
  fobs::telemetry::EventTracer trace;
  fobs::posix::ReceiverOptions opts;
  opts.sender_host = host;
  opts.data_port = data_port;
  opts.control_port = static_cast<std::uint16_t>(control_port);
  opts.tracer = &trace;
  std::vector<std::uint8_t> fallback;
  std::span<std::uint8_t> buffer;
  if (partial) {
    // Checkpointing is only safe with the file-backed buffer.
    opts.checkpoint_path = checkpoint_path;
    buffer = partial->mutable_view();
  } else {
    std::printf("fobsd: cannot map %s; fetching without resume support\n",
                partial_path.c_str());
    std::remove(checkpoint_path.c_str());
    fallback.resize(static_cast<std::size_t>(size));
    buffer = fallback;
  }
  const auto result = fobs::posix::receive_object(opts, buffer);
  maybe_dump_trace(trace, "fobsd_fetch");
  if (result.packets_restored > 0) {
    std::printf("fobsd: resumed from checkpoint (%lld packets already on disk)\n",
                static_cast<long long>(result.packets_restored));
  }
  if (partial) partial->sync();
  if (!result.completed) {
    std::printf("fobsd: fetch failed: %s\n", result.error.c_str());
    if (partial) {
      std::printf("fobsd: kept partial bytes in %s for resume\n", partial_path.c_str());
    }
    return 1;
  }
  std::uint64_t checksum = 0;
  if (partial) {
    checksum = partial->checksum();
    partial.reset();  // unmap before renaming into place
    if (std::rename(partial_path.c_str(), out_path.c_str()) != 0) {
      std::printf("fobsd: cannot move %s to %s\n", partial_path.c_str(), out_path.c_str());
      return 1;
    }
  } else {
    auto object = fobs::core::TransferObject::from_vector(std::move(fallback));
    if (!object.write_to_file(out_path)) {
      std::printf("fobsd: cannot write %s\n", out_path.c_str());
      return 1;
    }
    checksum = object.checksum();
  }
  std::printf("fobsd: fetched %s (%lld bytes, %.0f Mb/s, checksum %016llx)\n", name.c_str(),
              size, result.goodput_mbps, static_cast<unsigned long long>(checksum));
  return 0;
}

int run_demo() {
  // Stage a file, serve it from a background thread, fetch it back.
  const std::string dir = "/tmp/fobsd_demo";
  (void)::system(("mkdir -p " + dir).c_str());
  auto original = fobs::core::TransferObject::pattern(8 * 1024 * 1024, 0xF0B5D);
  if (!original.write_to_file(dir + "/dataset.bin")) return 1;

  std::thread server([&] { run_server(dir, 39100, /*max_requests=*/1); });
  const int rc = run_fetch("127.0.0.1", 39100, "dataset.bin", dir + "/fetched.bin", 39200);
  server.join();
  if (rc != 0) return rc;

  const auto fetched = fobs::core::TransferObject::map_file(dir + "/fetched.bin");
  const bool ok = fetched && fetched->checksum() == original.checksum();
  std::printf("fobsd demo: content %s\n", ok ? "verified" : "MISMATCH");
  if (!trace_dir().empty()) {
    std::printf("\nprocess metrics:\n");
    fobs::telemetry::MetricsRegistry::global().to_table().print(std::cout);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "demo";
  if (mode == "demo") return run_demo();
  if (mode == "serve" && argc == 4) {
    return run_server(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])));
  }
  if (mode == "fetch" && argc == 6) {
    return run_fetch(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])), argv[4],
                     argv[5], /*data_port=*/39200);
  }
  std::printf("usage:\n  %s demo\n  %s serve <dir> <port>\n  %s fetch <host> <port> <name> <out>\n",
              argv[0], argv[0], argv[0]);
  return 2;
}
