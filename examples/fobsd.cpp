// fobsd — a FOBS file server over real sockets.
//
//   fobsd serve <dir> <port>                 # serve files from <dir>
//   fobsd fetch <host> <port> <name> <out>   # fetch one file
//   fobsd demo                               # serve + 3 concurrent fetches
//
// Protocol: the client opens a TCP "catalog" connection to <port> and
// sends one request line:  "<name> <client-udp-port>\n". The server
// replies "<size> <control-port>\n" (size -1 = refused), then pushes
// the file with a FOBS transfer: data to the client's UDP port, the
// completion signal accepted on the per-session control port.
//
// The heavy lifting lives in the library (fobs/posix/fileserver.h, on
// top of the session engine in fobs/posix/engine.h): requests are
// accepted concurrently, every transfer runs as its own engine session
// with its own control port from [port+1, port+1+32), and a silent
// catalog client times out instead of wedging the server.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fobs/object.h"
#include "fobs/posix/fileserver.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

std::string trace_dir() {
  const char* env = std::getenv("FOBS_TRACE_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

int run_server(const std::string& dir, std::uint16_t port) {
  fobs::posix::FileServerOptions options;
  options.dir = dir;
  options.catalog_port = port;
  options.trace_dir = trace_dir();
  fobs::posix::FileServer server(options);
  if (!server.start()) {
    std::printf("fobsd: cannot serve %s on port %u\n", dir.c_str(), port);
    return 1;
  }
  // Serve until killed.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("fobsd: shutting down (%llu transfers served)\n",
              static_cast<unsigned long long>(server.transfers_completed()));
  server.stop();
  return 0;
}

int run_fetch(const std::string& host, std::uint16_t port, const std::string& name,
              const std::string& out_path, std::uint16_t data_port) {
  fobs::posix::FetchOptions options;
  options.host = host;
  options.catalog_port = port;
  options.name = name;
  options.out_path = out_path;
  options.data_port = data_port;
  fobs::telemetry::EventTracer trace;
  if (!trace_dir().empty()) options.endpoint.tracer = &trace;
  const auto result = fobs::posix::fetch_file(options);
  if (!trace_dir().empty()) {
    (void)trace.write_jsonl_file(trace_dir() + "/fobsd_fetch.jsonl");
  }
  if (result.packets_restored > 0) {
    std::printf("fobsd: resumed from checkpoint (%lld packets already on disk)\n",
                static_cast<long long>(result.packets_restored));
  }
  if (!result.completed()) {
    std::printf("fobsd: fetch failed [%s]: %s\n", to_string(result.status),
                result.error.c_str());
    return 1;
  }
  std::printf("fobsd: fetched %s (%lld bytes, %.0f Mb/s, checksum %016llx)\n", name.c_str(),
              static_cast<long long>(result.bytes), result.goodput_mbps,
              static_cast<unsigned long long>(result.checksum));
  return 0;
}

int run_demo() {
  // Stage three files, serve them, and fetch all three *concurrently*
  // from distinct clients — the one-transfer-at-a-time fobsd is gone.
  const std::string dir = "/tmp/fobsd_demo";
  (void)::system(("mkdir -p " + dir).c_str());
  const std::vector<std::int64_t> sizes = {8 * 1024 * 1024, 3 * 1024 * 1024, 5 * 1024 * 1024};
  std::vector<std::uint64_t> checksums;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto original = fobs::core::TransferObject::pattern(sizes[i], 0xF0B5D + i);
    checksums.push_back(original.checksum());
    if (!original.write_to_file(dir + "/dataset" + std::to_string(i) + ".bin")) return 1;
  }

  fobs::posix::FileServerOptions server_options;
  server_options.dir = dir;
  server_options.catalog_port = 39100;
  server_options.trace_dir = trace_dir();
  fobs::posix::FileServer server(server_options);
  if (!server.start()) return 1;

  std::vector<std::thread> clients;
  std::vector<int> rcs(sizes.size(), 1);
  std::vector<fobs::posix::FetchResult> fetches(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    clients.emplace_back([&, i] {
      fobs::posix::FetchOptions options;
      options.catalog_port = 39100;
      options.name = "dataset" + std::to_string(i) + ".bin";
      options.out_path = dir + "/fetched" + std::to_string(i) + ".bin";
      options.data_port = static_cast<std::uint16_t>(39200 + i);
      fetches[i] = fobs::posix::fetch_file(options);
      rcs[i] = fetches[i].completed() ? 0 : 1;
    });
  }
  for (auto& c : clients) c.join();
  server.stop();

  bool ok = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const bool verified = rcs[i] == 0 && fetches[i].checksum == checksums[i];
    std::printf("fobsd demo: dataset%zu %s (%lld bytes, %.0f Mb/s)\n", i,
                verified ? "verified" : "MISMATCH",
                static_cast<long long>(fetches[i].bytes), fetches[i].goodput_mbps);
    ok = ok && verified;
  }
  std::printf("fobsd demo: %llu concurrent transfers served, content %s\n",
              static_cast<unsigned long long>(server.transfers_completed()),
              ok ? "verified" : "MISMATCH");
  if (!trace_dir().empty()) {
    std::printf("\nprocess metrics:\n");
    fobs::telemetry::MetricsRegistry::global().to_table().print(std::cout);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "demo";
  if (mode == "demo") return run_demo();
  if (mode == "serve" && argc == 4) {
    return run_server(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])));
  }
  if (mode == "fetch" && argc == 6) {
    return run_fetch(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])), argv[4],
                     argv[5], /*data_port=*/39200);
  }
  std::printf("usage:\n  %s demo\n  %s serve <dir> <port>\n  %s fetch <host> <port> <name> <out>\n",
              argv[0], argv[0], argv[0]);
  return 2;
}
