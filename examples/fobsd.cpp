// fobsd — a FOBS file server over real sockets.
//
//   fobsd serve <dir> <port> [--stripes N]   # serve files from <dir>
//   fobsd fetch <host> <port> <name> <out> [--stripes N]
//   fobsd demo [--stripes N]                 # serve + 3 concurrent fetches
//
// Protocol: the client opens a TCP "catalog" connection to <port> and
// sends one request line:  "<name> <client-udp-port>[ <stripes>]\n".
// The server replies "<size> <control-port>\n" (size -1 = refused),
// then pushes the file with a FOBS transfer: data to the client's UDP
// port, the completion signal accepted on the per-session control
// port. With --stripes N the fetch negotiates FOBSSTRP on that control
// port and the object rides N parallel UDP flows (PSockets-style);
// against a pre-striping server it degrades to one flow automatically.
//
// The heavy lifting lives in the library (fobs/posix/fileserver.h, on
// top of the session engine in fobs/posix/engine.h): requests are
// accepted concurrently, every transfer runs as its own engine session
// with its own control port from [port+1, port+1+32), and a silent
// catalog client times out instead of wedging the server.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fobs/object.h"
#include "fobs/posix/fileserver.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

std::string trace_dir() {
  const char* env = std::getenv("FOBS_TRACE_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

int run_server(const std::string& dir, std::uint16_t port, int max_stripes) {
  fobs::posix::FileServerOptions options;
  options.dir = dir;
  options.catalog_port = port;
  options.max_stripes = max_stripes;
  options.trace_dir = trace_dir();
  fobs::posix::FileServer server(options);
  if (!server.start()) {
    std::printf("fobsd: cannot serve %s on port %u\n", dir.c_str(), port);
    return 1;
  }
  // Serve until killed.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("fobsd: shutting down (%llu transfers served)\n",
              static_cast<unsigned long long>(server.transfers_completed()));
  server.stop();
  return 0;
}

int run_fetch(const std::string& host, std::uint16_t port, const std::string& name,
              const std::string& out_path, std::uint16_t data_port, int stripes) {
  fobs::posix::FetchOptions options;
  options.host = host;
  options.catalog_port = port;
  options.name = name;
  options.out_path = out_path;
  options.data_port = data_port;
  options.stripes = stripes;
  fobs::telemetry::EventTracer trace;
  if (!trace_dir().empty()) options.endpoint.tracer = &trace;
  const auto result = fobs::posix::fetch_file(options);
  if (!trace_dir().empty()) {
    (void)trace.write_jsonl_file(trace_dir() + "/fobsd_fetch.jsonl");
  }
  if (result.packets_restored > 0) {
    std::printf("fobsd: resumed from checkpoint (%lld packets already on disk)\n",
                static_cast<long long>(result.packets_restored));
  }
  if (!result.completed()) {
    std::printf("fobsd: fetch failed [%s]: %s\n", to_string(result.status),
                result.error.c_str());
    return 1;
  }
  std::printf("fobsd: fetched %s (%lld bytes, %d stripe%s%s, %.0f Mb/s, checksum %016llx)\n",
              name.c_str(), static_cast<long long>(result.bytes), result.stripes,
              result.stripes == 1 ? "" : "s",
              result.fallback_single_flow ? " [fallback]" : "", result.goodput_mbps,
              static_cast<unsigned long long>(result.checksum));
  return 0;
}

int run_demo(int stripes) {
  // Stage three files, serve them, and fetch all three *concurrently*
  // from distinct clients — the one-transfer-at-a-time fobsd is gone.
  const std::string dir = "/tmp/fobsd_demo";
  (void)::system(("mkdir -p " + dir).c_str());
  const std::vector<std::int64_t> sizes = {8 * 1024 * 1024, 3 * 1024 * 1024, 5 * 1024 * 1024};
  std::vector<std::uint64_t> checksums;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto original = fobs::core::TransferObject::pattern(sizes[i], 0xF0B5D + i);
    checksums.push_back(original.checksum());
    if (!original.write_to_file(dir + "/dataset" + std::to_string(i) + ".bin")) return 1;
  }

  fobs::posix::FileServerOptions server_options;
  server_options.dir = dir;
  server_options.catalog_port = 39100;
  server_options.trace_dir = trace_dir();
  fobs::posix::FileServer server(server_options);
  if (!server.start()) return 1;

  std::vector<std::thread> clients;
  std::vector<int> rcs(sizes.size(), 1);
  std::vector<fobs::posix::FetchResult> fetches(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    clients.emplace_back([&, i] {
      fobs::posix::FetchOptions options;
      options.catalog_port = 39100;
      options.name = "dataset" + std::to_string(i) + ".bin";
      options.out_path = dir + "/fetched" + std::to_string(i) + ".bin";
      // Each client needs `stripes` contiguous UDP ports.
      options.data_port = static_cast<std::uint16_t>(39200 + i * 16);
      options.stripes = stripes;
      fetches[i] = fobs::posix::fetch_file(options);
      rcs[i] = fetches[i].completed() ? 0 : 1;
    });
  }
  for (auto& c : clients) c.join();
  server.stop();

  bool ok = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const bool verified = rcs[i] == 0 && fetches[i].checksum == checksums[i];
    std::printf("fobsd demo: dataset%zu %s (%lld bytes, %.0f Mb/s)\n", i,
                verified ? "verified" : "MISMATCH",
                static_cast<long long>(fetches[i].bytes), fetches[i].goodput_mbps);
    ok = ok && verified;
  }
  std::printf("fobsd demo: %llu concurrent transfers served, content %s\n",
              static_cast<unsigned long long>(server.transfers_completed()),
              ok ? "verified" : "MISMATCH");
  if (!trace_dir().empty()) {
    std::printf("\nprocess metrics:\n");
    fobs::telemetry::MetricsRegistry::global().to_table().print(std::cout);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Split "--stripes N" out of the positional arguments.
  int stripes = 1;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--stripes" && i + 1 < argc) {
      stripes = std::atoi(argv[++i]);
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (stripes < 1) stripes = 1;
  const std::string mode = args.empty() ? "demo" : args[0];
  if (mode == "demo") return run_demo(stripes);
  if (mode == "serve" && args.size() == 3) {
    // For serve, --stripes caps what striped clients may negotiate
    // (default: the library default when the flag is absent).
    return run_server(args[1], static_cast<std::uint16_t>(std::atoi(args[2].c_str())),
                      stripes > 1 ? stripes : fobs::posix::FileServerOptions{}.max_stripes);
  }
  if (mode == "fetch" && args.size() == 5) {
    return run_fetch(args[1], static_cast<std::uint16_t>(std::atoi(args[2].c_str())), args[3],
                     args[4], /*data_port=*/39200, stripes);
  }
  std::printf(
      "usage:\n  %s demo [--stripes N]\n  %s serve <dir> <port> [--stripes N]\n"
      "  %s fetch <host> <port> <name> <out> [--stripes N]\n",
      argv[0], argv[0], argv[0]);
  return 2;
}
