// Grid data staging: the scenario that motivates the paper's
// introduction — moving a large scientific dataset from the site that
// produced it to the sites that will compute on or visualize it.
//
// A 200 MB dataset produced at ANL is staged to LCSE (short haul,
// ~26 ms) for visualization and to CACR (long haul, ~65 ms) for
// analysis. We stage with FOBS and, for contrast, with tuned TCP, and
// report per-destination and campaign-level transfer times. A final
// leg stages real bytes to both "sites" at once over loopback sockets
// using the session engine — the concurrent-staging pattern a grid
// scheduler would embed.
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "baselines/tcp_bulk.h"
#include "exp/runner.h"
#include "fobs/object.h"
#include "fobs/posix/engine.h"

namespace {

// Stage one dataset to two destinations concurrently: four sessions
// (two senders, two receivers) on one engine, distinguished only by
// port pair. Returns true when both copies arrive byte-identical.
bool stage_concurrently(const std::vector<std::uint8_t>& dataset) {
  using namespace fobs::posix;
  struct Leg {
    const char* site;
    std::uint16_t data_port;
    std::uint16_t control_port;
  };
  const std::vector<Leg> legs = {{"LCSE", 38120, 38121}, {"CACR", 38122, 38123}};

  TransferEngine engine({.workers = 4});
  std::vector<std::vector<std::uint8_t>> sinks(legs.size());
  std::vector<TransferHandle> handles;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    sinks[i].assign(dataset.size(), 0);
    ReceiverOptions ropt;
    ropt.data_port = legs[i].data_port;
    ropt.control_port = legs[i].control_port;
    SenderOptions sopt;
    sopt.data_port = legs[i].data_port;
    sopt.control_port = legs[i].control_port;
    handles.push_back(engine.submit_receive(ropt, std::span<std::uint8_t>(sinks[i])));
    handles.push_back(engine.submit_send(sopt, std::span<const std::uint8_t>(dataset)));
  }
  engine.wait_idle();

  bool ok = true;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const auto& rx = handles[2 * i];
    const auto& tx = handles[2 * i + 1];
    const bool verified = tx.sender_result().completed() &&
                          rx.receiver_result().completed() && sinks[i] == dataset;
    std::printf("   -> %s: sender %s, receiver %s, bytes %s (%.0f Mb/s)\n", legs[i].site,
                to_string(tx.status()), to_string(rx.status()),
                verified ? "verified" : "MISMATCH", tx.sender_result().goodput_mbps);
    ok = ok && verified;
  }
  return ok;
}

}  // namespace

int main() {
  using namespace fobs;
  const std::int64_t dataset_bytes = 200ll * 1024 * 1024;

  struct Destination {
    const char* site;
    exp::PathId path;
  };
  const std::vector<Destination> destinations = {
      {"LCSE (visualization)", exp::PathId::kShortHaul},
      {"CACR (analysis)", exp::PathId::kLongHaul},
  };

  std::printf("Staging a %.0f MB dataset from ANL to %zu sites\n",
              static_cast<double>(dataset_bytes) / (1024.0 * 1024.0), destinations.size());

  double fobs_total = 0.0;
  double tcp_total = 0.0;
  for (const auto& dest : destinations) {
    const auto spec = exp::spec_for(dest.path);

    exp::FobsRunParams params;
    params.object_bytes = dataset_bytes;
    const auto fobs_result = exp::run_fobs(spec, params);
    const double fobs_s = fobs_result.receiver_elapsed.seconds();
    fobs_total += fobs_s;

    const auto tcp = exp::run_tcp_averaged(spec, dataset_bytes,
                                           baselines::tcp_with_lwe(), {4});
    const double tcp_s =
        tcp.goodput_mbps > 0
            ? static_cast<double>(dataset_bytes) * 8.0 / (tcp.goodput_mbps * 1e6)
            : 0.0;
    tcp_total += tcp_s;

    std::printf("\n-> %s over %s\n", dest.site, spec.name.c_str());
    std::printf("   FOBS:    %6.1f s  (%.1f Mb/s, %.1f%% of path, waste %.1f%%)\n", fobs_s,
                fobs_result.goodput_mbps,
                100.0 * fobs_result.fraction_of(spec.max_bandwidth),
                100.0 * fobs_result.waste);
    std::printf("   TCP+LWE: %6.1f s  (%.1f Mb/s, %.1f%% of path)\n", tcp_s, tcp.goodput_mbps,
                100.0 * tcp.fraction);
  }

  std::printf("\nCampaign total (sequential staging): FOBS %.1f s vs TCP %.1f s (%.2fx)\n",
              fobs_total, tcp_total, tcp_total > 0 ? tcp_total / fobs_total : 0.0);

  // Real sockets: stage one (smaller) dataset to both sites at once.
  // The engine runs all four endpoints concurrently; the campaign takes
  // one transfer time instead of the sum.
  std::printf("\nConcurrent staging over real loopback sockets (engine sessions):\n");
  const auto dataset = core::make_pattern(6 * 1024 * 1024, 0x57A6E);
  return stage_concurrently(dataset) ? 0 : 1;
}
