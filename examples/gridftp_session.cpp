// A gridftp-style session: staging a whole dataset manifest — many
// files of very different sizes — across a wide-area path.
//
// This is the workload PSockets and grid-ftp were built for (paper §2):
// lots of bulk objects, one after another. Small files are dominated by
// per-transfer latency (handshakes, first ACK round trips), large ones
// by sustained throughput, so the protocols rank differently across the
// manifest.
//
//   ./gridftp_session [short|long|contended]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/tcp_bulk.h"
#include "exp/runner.h"

namespace {

struct ManifestEntry {
  const char* name;
  std::int64_t bytes;
};

// A plausible simulation-output dataset: metadata, a few checkpoint
// slices, and two big field dumps.
constexpr ManifestEntry kManifest[] = {
    {"run_config.xml", 48 * 1024},
    {"provenance.log", 220 * 1024},
    {"checkpoint_000.h5", 6 * 1024 * 1024},
    {"checkpoint_001.h5", 6 * 1024 * 1024},
    {"checkpoint_002.h5", 6 * 1024 * 1024},
    {"field_pressure.raw", 64 * 1024 * 1024},
    {"field_velocity.raw", 96 * 1024 * 1024},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fobs;

  exp::PathId path = exp::PathId::kLongHaul;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "short") path = exp::PathId::kShortHaul;
    else if (arg == "contended") path = exp::PathId::kGigabitContended;
  }
  const auto spec = exp::spec_for(path);

  std::int64_t total_bytes = 0;
  for (const auto& entry : kManifest) total_bytes += entry.bytes;
  std::printf("Staging %zu files (%.1f MB total) over %s\n",
              std::size(kManifest), static_cast<double>(total_bytes) / (1024.0 * 1024.0),
              spec.name.c_str());
  std::printf("%-22s %12s %14s %14s\n", "file", "size", "FOBS", "TCP+LWE");

  double fobs_total_s = 0.0;
  double tcp_total_s = 0.0;
  for (const auto& entry : kManifest) {
    exp::FobsRunParams params;
    params.object_bytes = entry.bytes;
    const auto fobs_result = exp::run_fobs(spec, params);
    const double fobs_s = fobs_result.completed
                              ? fobs_result.sender_elapsed.seconds()
                              : -1.0;

    exp::Testbed bed(spec);
    const auto tcp = baselines::run_tcp_transfer(bed.network(), bed.src(), bed.dst(),
                                                 entry.bytes, baselines::tcp_with_lwe());
    const double tcp_s = tcp.completed ? tcp.elapsed.seconds() : -1.0;

    fobs_total_s += fobs_s;
    tcp_total_s += tcp_s;
    std::printf("%-22s %9.1f MB %11.2f s %11.2f s\n", entry.name,
                static_cast<double>(entry.bytes) / (1024.0 * 1024.0), fobs_s, tcp_s);
  }

  std::printf("%-22s %12s %11.2f s %11.2f s\n", "TOTAL", "", fobs_total_s, tcp_total_s);
  if (fobs_total_s > 0) {
    std::printf("\nSession speedup from FOBS: %.2fx\n", tcp_total_s / fobs_total_s);
  }
  std::printf("(FOBS times include the completion-signal round trip; per-file\n"
              " transfers run back to back like a gridftp session.)\n");
  return 0;
}
