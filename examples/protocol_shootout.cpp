// Protocol shootout: run FOBS, RUDP, SABUL, PSockets and TCP over any
// of the paper's testbed paths and compare.
//
//   ./protocol_shootout [short|long|gigabit|contended] [object MB]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "exp/runner.h"

int main(int argc, char** argv) {
  using namespace fobs;

  exp::PathId path = exp::PathId::kLongHaul;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "short") path = exp::PathId::kShortHaul;
    else if (arg == "long") path = exp::PathId::kLongHaul;
    else if (arg == "gigabit") path = exp::PathId::kGigabitOc12;
    else if (arg == "contended") path = exp::PathId::kGigabitContended;
    else {
      std::printf("usage: %s [short|long|gigabit|contended] [object MB]\n", argv[0]);
      return 2;
    }
  }
  const std::int64_t mb = argc > 2 ? std::atoll(argv[2]) : 40;
  const std::int64_t bytes = mb * 1024 * 1024;
  const auto spec = exp::spec_for(path);

  std::printf("Shooting out a %lld MB transfer over %s (max %.0f Mb/s, RTT %.0f ms)\n",
              static_cast<long long>(mb), spec.name.c_str(), spec.max_bandwidth.mbps(),
              spec.rtt().seconds() * 1e3);

  util::TextTable table({"protocol", "% max bw", "goodput", "elapsed", "notes"});

  exp::FobsRunParams fobs_params;
  fobs_params.object_bytes = bytes;
  const auto fobs = exp::run_fobs(spec, fobs_params);
  table.add_row({"FOBS", util::TextTable::pct(fobs.fraction_of(spec.max_bandwidth)),
                 util::TextTable::num(fobs.goodput_mbps, 1) + " Mb/s",
                 util::TextTable::num(fobs.receiver_elapsed.seconds(), 2) + " s",
                 "waste " + util::TextTable::pct(fobs.waste)});

  baselines::RudpConfig rudp_config;
  rudp_config.spec = {bytes, exp::kPaperPacketBytes};
  const auto rudp = exp::run_rudp(spec, rudp_config);
  table.add_row({"RUDP", util::TextTable::pct(rudp.fraction_of(spec.max_bandwidth)),
                 util::TextTable::num(rudp.goodput_mbps, 1) + " Mb/s",
                 util::TextTable::num(rudp.elapsed.seconds(), 2) + " s",
                 std::to_string(rudp.passes) + " blast passes"});

  baselines::SabulConfig sabul_config;
  sabul_config.spec = {bytes, exp::kPaperPacketBytes};
  sabul_config.initial_rate = spec.max_bandwidth * 0.95;
  const auto sabul = exp::run_sabul(spec, sabul_config);
  table.add_row({"SABUL", util::TextTable::pct(sabul.fraction_of(spec.max_bandwidth)),
                 util::TextTable::num(sabul.goodput_mbps, 1) + " Mb/s",
                 util::TextTable::num(sabul.elapsed.seconds(), 2) + " s",
                 std::to_string(sabul.loss_reports) + " loss reports"});

  for (int streams : {1, 8, 16}) {
    const auto ps = exp::run_psockets(spec, bytes, streams);
    table.add_row({"PSockets-" + std::to_string(streams),
                   util::TextTable::pct(ps.fraction_of(spec.max_bandwidth)),
                   util::TextTable::num(ps.goodput_mbps, 1) + " Mb/s",
                   util::TextTable::num(ps.elapsed.seconds(), 2) + " s",
                   std::to_string(ps.retransmissions) + " rtx"});
  }

  const auto tcp =
      exp::run_tcp_averaged(spec, bytes, baselines::tcp_with_lwe(), exp::default_seeds(3));
  table.add_row({"TCP+LWE", util::TextTable::pct(tcp.fraction),
                 util::TextTable::num(tcp.goodput_mbps, 1) + " Mb/s", "-",
                 "mean of 3 runs"});
  const auto tcp_nolwe =
      exp::run_tcp_averaged(spec, bytes, baselines::tcp_without_lwe(), exp::default_seeds(3));
  table.add_row({"TCP (64K wnd)", util::TextTable::pct(tcp_nolwe.fraction),
                 util::TextTable::num(tcp_nolwe.goodput_mbps, 1) + " Mb/s", "-",
                 "mean of 3 runs"});

  table.print(std::cout);
  return 0;
}
