// Quickstart: move a 40 MB object across a simulated wide-area path
// with FOBS in a dozen lines — then move real bytes through real
// sockets with the session engine in a dozen more.
//
//   $ ./quickstart
//
// Part 1 builds the paper's long-haul testbed (ANL -> CACR, ~65 ms RTT,
// 100 Mb/s bottleneck, light loss), runs one FOBS transfer, and prints
// the metrics the paper reports. Part 2 runs a real loopback transfer
// as two sessions of a TransferEngine — the embedding surface for
// anything that moves more than one object at a time.
#include <cstdio>
#include <span>
#include <vector>

#include "exp/runner.h"
#include "fobs/object.h"
#include "fobs/posix/engine.h"

int main() {
  using namespace fobs;

  // 1. A testbed: the paper's long-haul path.
  const auto spec = exp::spec_for(exp::PathId::kLongHaul);

  // 2. Transfer parameters: the paper's defaults (40 MB object, 1 KiB
  //    packets, batches of 2, circular selection, ack every 64 packets).
  exp::FobsRunParams params;
  params.carry_data = true;  // carry and verify real bytes

  // 3. Run it.
  const auto result = exp::run_fobs(spec, params);

  std::printf("FOBS quickstart on %s\n", spec.name.c_str());
  std::printf("  completed:          %s\n", result.completed ? "yes" : "no");
  std::printf("  data verified:      %s\n", result.data_verified ? "yes" : "no");
  std::printf("  goodput:            %.1f Mb/s (%.1f%% of the %.0f Mb/s bottleneck)\n",
              result.goodput_mbps, 100.0 * result.fraction_of(spec.max_bandwidth),
              spec.max_bandwidth.mbps());
  std::printf("  transfer time:      %.2f s (sender learned at %.2f s)\n",
              result.receiver_elapsed.seconds(), result.sender_elapsed.seconds());
  std::printf("  packets:            %lld sent / %lld needed (waste %.1f%%)\n",
              static_cast<long long>(result.packets_sent),
              static_cast<long long>(result.packets_needed), 100.0 * result.waste);
  std::printf("  receiver acks sent: %llu\n",
              static_cast<unsigned long long>(result.acks_sent));
  if (!result.completed || !result.data_verified) return 1;

  // 4. The same protocol over real sockets: submit both endpoints to a
  //    TransferEngine and wait on the handles. status() / cancel() are
  //    available on the handle while it runs.
  const auto object = core::make_pattern(8 * 1024 * 1024, 0x9015);
  std::vector<std::uint8_t> sink(object.size(), 0);
  posix::ReceiverOptions ropt;
  ropt.data_port = 38100;
  ropt.control_port = 38101;
  posix::SenderOptions sopt;
  sopt.data_port = ropt.data_port;
  sopt.control_port = ropt.control_port;

  posix::TransferEngine engine({.workers = 2});
  auto rx = engine.submit_receive(ropt, std::span<std::uint8_t>(sink));
  auto tx = engine.submit_send(sopt, std::span<const std::uint8_t>(object));
  const auto rx_status = rx.wait();
  const auto tx_status = tx.wait();

  std::printf("\nFOBS over real loopback sockets (engine sessions)\n");
  std::printf("  sender:             %s, %.0f Mb/s\n", to_string(tx_status),
              tx.sender_result().goodput_mbps);
  std::printf("  receiver:           %s, %lld packets\n", to_string(rx_status),
              static_cast<long long>(rx.receiver_result().packets_received));
  const bool ok = tx.sender_result().completed() && rx.receiver_result().completed() &&
                  sink == object;
  std::printf("  bytes verified:     %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
