// Quickstart: move a 40 MB object across a simulated wide-area path
// with FOBS in a dozen lines.
//
//   $ ./quickstart
//
// Builds the paper's long-haul testbed (ANL -> CACR, ~65 ms RTT,
// 100 Mb/s bottleneck, light loss), runs one FOBS transfer, and prints
// the metrics the paper reports.
#include <cstdio>

#include "exp/runner.h"

int main() {
  using namespace fobs;

  // 1. A testbed: the paper's long-haul path.
  const auto spec = exp::spec_for(exp::PathId::kLongHaul);

  // 2. Transfer parameters: the paper's defaults (40 MB object, 1 KiB
  //    packets, batches of 2, circular selection, ack every 64 packets).
  exp::FobsRunParams params;
  params.carry_data = true;  // carry and verify real bytes

  // 3. Run it.
  const auto result = exp::run_fobs(spec, params);

  std::printf("FOBS quickstart on %s\n", spec.name.c_str());
  std::printf("  completed:          %s\n", result.completed ? "yes" : "no");
  std::printf("  data verified:      %s\n", result.data_verified ? "yes" : "no");
  std::printf("  goodput:            %.1f Mb/s (%.1f%% of the %.0f Mb/s bottleneck)\n",
              result.goodput_mbps, 100.0 * result.fraction_of(spec.max_bandwidth),
              spec.max_bandwidth.mbps());
  std::printf("  transfer time:      %.2f s (sender learned at %.2f s)\n",
              result.receiver_elapsed.seconds(), result.sender_elapsed.seconds());
  std::printf("  packets:            %lld sent / %lld needed (waste %.1f%%)\n",
              static_cast<long long>(result.packets_sent),
              static_cast<long long>(result.packets_needed), 100.0 * result.waste);
  std::printf("  receiver acks sent: %llu\n",
              static_cast<unsigned long long>(result.acks_sent));
  return result.completed && result.data_verified ? 0 : 1;
}
