// simctl — run any protocol over any paper path from the command line.
//
//   simctl --path long --protocol fobs --mb 40 --ack-freq 64
//   simctl --path contended --protocol psockets --streams 20
//   simctl --path gigabit --protocol fobs --packet 8192
//   simctl --path short --protocol tcp --no-lwe
//
// Flags:
//   --path short|long|gigabit|contended    (default long)
//   --protocol fobs|tcp|psockets|rudp|sabul (default fobs)
//   --mb N           object size in MiB (default 40)
//   --packet N       FOBS packet size in bytes (default 1024)
//   --ack-freq N     FOBS acknowledgement frequency (default 64)
//   --batch N        FOBS batch size (default 2)
//   --streams N      PSockets stream count (default 16)
//   --adaptive       enable the §7 greediness controller
//   --tcp-fallback   enable the §7 TCP fallback (implies --adaptive)
//   --no-lwe         TCP without window scaling (64 KiB window)
//   --seed N         simulation seed (default 42)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/runner.h"

namespace {

struct Options {
  std::string path = "long";
  std::string protocol = "fobs";
  std::int64_t mb = 40;
  std::int64_t packet = 1024;
  std::int64_t ack_freq = 64;
  int batch = 2;
  int streams = 16;
  bool adaptive = false;
  bool tcp_fallback = false;
  bool no_lwe = false;
  std::uint64_t seed = 42;
};

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--path") {
      const char* v = next();
      if (!v) return false;
      options.path = v;
    } else if (arg == "--protocol") {
      const char* v = next();
      if (!v) return false;
      options.protocol = v;
    } else if (arg == "--mb") {
      options.mb = std::atoll(next());
    } else if (arg == "--packet") {
      options.packet = std::atoll(next());
    } else if (arg == "--ack-freq") {
      options.ack_freq = std::atoll(next());
    } else if (arg == "--batch") {
      options.batch = std::atoi(next());
    } else if (arg == "--streams") {
      options.streams = std::atoi(next());
    } else if (arg == "--adaptive") {
      options.adaptive = true;
    } else if (arg == "--tcp-fallback") {
      options.adaptive = true;
      options.tcp_fallback = true;
    } else if (arg == "--no-lwe") {
      options.no_lwe = true;
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fobs;
  Options options;
  if (!parse(argc, argv, options)) {
    std::fprintf(stderr, "see the header of examples/simctl.cpp for usage\n");
    return 2;
  }

  exp::PathId path;
  if (options.path == "short") path = exp::PathId::kShortHaul;
  else if (options.path == "long") path = exp::PathId::kLongHaul;
  else if (options.path == "gigabit") path = exp::PathId::kGigabitOc12;
  else if (options.path == "contended") path = exp::PathId::kGigabitContended;
  else {
    std::fprintf(stderr, "unknown path: %s\n", options.path.c_str());
    return 2;
  }
  const auto spec = exp::spec_for(path);
  const std::int64_t bytes = options.mb * 1024 * 1024;

  std::printf("%s over %s: %lld MiB, seed %llu\n", options.protocol.c_str(),
              spec.name.c_str(), static_cast<long long>(options.mb),
              static_cast<unsigned long long>(options.seed));

  if (options.protocol == "fobs") {
    exp::FobsRunParams params;
    params.object_bytes = bytes;
    params.packet_bytes = options.packet;
    params.ack_frequency = options.ack_freq;
    params.batch_size = options.batch;
    params.adaptive.enabled = options.adaptive;
    params.adaptive.tcp_fallback = options.tcp_fallback;
    const auto result = exp::run_fobs(spec, params, options.seed);
    std::printf("completed=%s  goodput=%.1f Mb/s (%.1f%% of max)  waste=%.2f%%  time=%.2fs\n",
                result.completed ? "yes" : "NO", result.goodput_mbps,
                100 * result.fraction_of(spec.max_bandwidth), 100 * result.waste,
                result.receiver_elapsed.seconds());
    return result.completed ? 0 : 1;
  }
  if (options.protocol == "tcp") {
    const auto config =
        options.no_lwe ? baselines::tcp_without_lwe() : baselines::tcp_with_lwe();
    const auto result = exp::run_tcp_averaged(spec, bytes, config, {options.seed});
    std::printf("completed=%s  goodput=%.1f Mb/s (%.1f%% of max)  rtx=%llu timeouts=%llu\n",
                result.completed_runs > 0 ? "yes" : "NO", result.goodput_mbps,
                100 * result.fraction, static_cast<unsigned long long>(result.retransmissions),
                static_cast<unsigned long long>(result.timeouts));
    return result.completed_runs > 0 ? 0 : 1;
  }
  if (options.protocol == "psockets") {
    const auto result = exp::run_psockets(spec, bytes, options.streams, options.seed);
    std::printf("completed=%s  streams=%d  goodput=%.1f Mb/s (%.1f%% of max)  rtx=%llu\n",
                result.completed ? "yes" : "NO", result.streams, result.goodput_mbps,
                100 * result.fraction_of(spec.max_bandwidth),
                static_cast<unsigned long long>(result.retransmissions));
    return result.completed ? 0 : 1;
  }
  if (options.protocol == "rudp") {
    baselines::RudpConfig config;
    config.spec = {bytes, options.packet};
    const auto result = exp::run_rudp(spec, config, options.seed);
    std::printf("completed=%s  goodput=%.1f Mb/s (%.1f%% of max)  passes=%d  waste=%.2f%%\n",
                result.completed ? "yes" : "NO", result.goodput_mbps,
                100 * result.fraction_of(spec.max_bandwidth), result.passes,
                100 * result.waste);
    return result.completed ? 0 : 1;
  }
  if (options.protocol == "sabul") {
    baselines::SabulConfig config;
    config.spec = {bytes, options.packet};
    config.initial_rate = spec.max_bandwidth * 0.95;
    const auto result = exp::run_sabul(spec, config, options.seed);
    std::printf(
        "completed=%s  goodput=%.1f Mb/s (%.1f%% of max)  final rate=%.0f Mb/s  waste=%.2f%%\n",
        result.completed ? "yes" : "NO", result.goodput_mbps,
        100 * result.fraction_of(spec.max_bandwidth), result.final_rate_mbps,
        100 * result.waste);
    return result.completed ? 0 : 1;
  }
  std::fprintf(stderr, "unknown protocol: %s\n", options.protocol.c_str());
  return 2;
}
