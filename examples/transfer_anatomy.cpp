// Anatomy of a FOBS transfer: attach a packet tracer to the bottleneck
// and a throughput probe to the receiver, run one lossy long-haul
// transfer, and print a timeline — where the drops happened and how the
// goodput evolved.
//
//   ./transfer_anatomy [ack_frequency]
//
// Also demonstrates the telemetry subsystem: both endpoints carry an
// EventTracer, and the protocol-event summaries print after the
// timeline. Set FOBS_TRACE_DIR=<dir> to dump the full JSONL traces.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "exp/runner.h"
#include "fobs/sim_driver.h"
#include "sim/flow_stats.h"
#include "sim/packet_trace.h"
#include "telemetry/trace.h"

int main(int argc, char** argv) {
  using namespace fobs;
  const std::int64_t ack_frequency = argc > 1 ? std::atoll(argv[1]) : 1;

  auto spec = exp::spec_for(exp::PathId::kShortHaul);
  exp::Testbed bed(spec, 21);

  sim::PacketTrace backbone_trace;
  bed.backbone().set_observer(&backbone_trace);

  core::TransferSpec transfer{16 * 1024 * 1024, 1024};
  core::SenderConfig sender_config;
  core::ReceiverConfig receiver_config;
  receiver_config.ack_frequency = ack_frequency;

  core::SimSender sender(bed.src(), transfer, sender_config, nullptr, bed.dst().id());
  core::SimReceiver receiver(bed.dst(), transfer, receiver_config, nullptr, bed.src().id(),
                             64 * 1024);

  telemetry::EventTracer sender_trace;
  telemetry::EventTracer receiver_trace;
  sender.set_tracer(&sender_trace);
  receiver.set_tracer(&receiver_trace);

  // Goodput probe: unique packets at the receiver, sampled every 100 ms.
  sim::TimeSeriesProbe goodput(bed.sim(), "received", util::Duration::milliseconds(100),
                               [&receiver] {
                                 return static_cast<double>(
                                     receiver.core().stats().packets_received);
                               });
  // Socket-drop probe: the Figure 1 mechanism, live.
  sim::TimeSeriesProbe drops(bed.sim(), "socket-drops", util::Duration::milliseconds(100),
                             [&receiver] { return static_cast<double>(receiver.socket_drops()); });

  bool done = false;
  sender.set_on_finished([&done] { done = true; });
  receiver.start();
  sender.start();
  while (!done && bed.sim().now().seconds() < 120 && bed.sim().step()) {
  }

  std::printf("FOBS transfer anatomy (short haul, ack frequency %lld)\n",
              static_cast<long long>(ack_frequency));
  std::printf("finished: %s in %.2f s; sent %lld for %lld needed (waste %.1f%%)\n",
              done ? "yes" : "NO", bed.sim().now().seconds(),
              static_cast<long long>(sender.core().stats().packets_sent),
              static_cast<long long>(transfer.packet_count()),
              100.0 * sender.core().waste());
  std::printf("backbone: %llu delivered, %llu random drops, %llu overflow drops\n",
              static_cast<unsigned long long>(
                  backbone_trace.count(sim::TraceEvent::Kind::kDelivered)),
              static_cast<unsigned long long>(
                  backbone_trace.count(sim::TraceEvent::Kind::kDropRandom)),
              static_cast<unsigned long long>(
                  backbone_trace.count(sim::TraceEvent::Kind::kDropOverflow)));
  std::printf("receiver socket-buffer drops: %llu\n\n",
              static_cast<unsigned long long>(receiver.socket_drops()));

  std::printf("timeline (100 ms buckets): received packets | new socket drops\n");
  double prev_received = 0;
  double prev_drops = 0;
  for (std::size_t i = 0; i < goodput.samples().size(); ++i) {
    const double received = goodput.samples()[i].value;
    const double dropped = i < drops.samples().size() ? drops.samples()[i].value : prev_drops;
    const auto bar = static_cast<int>((received - prev_received) / 40.0);
    std::printf("t=%4.1fs %6.0f new ", goodput.samples()[i].when.seconds(),
                received - prev_received);
    for (int b = 0; b < bar && b < 60; ++b) std::printf("#");
    if (dropped > prev_drops) std::printf("   (+%.0f drops)", dropped - prev_drops);
    std::printf("\n");
    prev_received = received;
    prev_drops = dropped;
  }
  std::printf("\nsender events:\n");
  sender_trace.summary().print(std::cout);
  std::printf("\nreceiver events:\n");
  receiver_trace.summary().print(std::cout);
  if (const char* dir = std::getenv("FOBS_TRACE_DIR"); dir != nullptr && dir[0] != '\0') {
    const std::string base = std::string(dir) + "/anatomy";
    const bool ok = sender_trace.write_jsonl_file(base + ".sender.jsonl") &&
                    receiver_trace.write_jsonl_file(base + ".receiver.jsonl");
    std::printf("%s traces %s.{sender,receiver}.jsonl\n", ok ? "wrote" : "FAILED writing",
                base.c_str());
  }

  std::printf("\nTip: run with ack frequency 64 to see the drop column vanish and the\n"
              "bars reach the 100 Mb/s ceiling (the Figure 1 story, one bucket at a time).\n");
  return done ? 0 : 1;
}
