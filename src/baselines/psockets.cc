#include "baselines/psockets.h"

#include <cassert>
#include <memory>

#include "fobs/stripe/plan.h"

namespace fobs::baselines {

PsocketsResult run_psockets_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                                     std::int64_t bytes, int streams,
                                     const fobs::net::TcpConfig& per_stream_config,
                                     Duration timeout, fobs::telemetry::EventTracer* tracer) {
  using fobs::net::TcpConnection;
  using fobs::net::TcpListener;
  assert(streams >= 1);

  auto& sim = network.sim();
  const auto start = sim.now();
  const auto deadline = start + timeout;
  constexpr fobs::sim::PortId kPort = 5002;
  if (tracer != nullptr) {
    tracer->set_clock([&sim] { return sim.now().ns(); });
    tracer->record(fobs::telemetry::EventType::kTransferStart, streams, bytes);
  }

  // One shared partition rule with FOBS striping (fobs/stripe/plan.h):
  // even split, remainder spread over the first streams.
  const std::vector<std::int64_t> stripe_bytes = fobs::stripe::round_robin_split(bytes, streams);

  // Receiver-side accounting: sum of per-stream deliveries. Each server
  // connection reports a cumulative count, so track deltas.
  std::vector<std::unique_ptr<TcpConnection>> servers;
  std::int64_t delivered_total = 0;
  bool done = false;
  fobs::util::TimePoint done_at;

  TcpListener listener(dst, kPort, per_stream_config,
                       [&](std::unique_ptr<TcpConnection> conn) {
                         auto* raw = conn.get();
                         servers.push_back(std::move(conn));
                         auto last = std::make_shared<std::int64_t>(0);
                         raw->set_on_delivered([&, last](fobs::net::Seq delivered) {
                           delivered_total += delivered - *last;
                           *last = delivered;
                           if (!done && delivered_total >= bytes) {
                             done = true;
                             done_at = sim.now();
                           }
                         });
                       });

  std::vector<std::unique_ptr<TcpConnection>> clients;
  clients.reserve(static_cast<std::size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    auto client = std::make_unique<TcpConnection>(src, per_stream_config);
    auto* raw = client.get();
    const std::int64_t my_bytes = stripe_bytes[static_cast<std::size_t>(i)];
    raw->set_on_connected([raw, my_bytes] { raw->offer_bytes(my_bytes); });
    // PSockets opens its sockets sequentially; the slight stagger also
    // desynchronizes the streams' slow starts.
    sim.schedule_in(Duration::milliseconds(2) * i,
                    [raw, &dst] { raw->connect(dst.id(), kPort); });
    clients.push_back(std::move(client));
  }

  while (!done && sim.now() < deadline && sim.step()) {
  }

  if (tracer != nullptr) {
    tracer->record(done ? fobs::telemetry::EventType::kCompletion
                        : fobs::telemetry::EventType::kTimeout,
                   streams, delivered_total);
  }

  PsocketsResult result;
  result.completed = done;
  result.streams = streams;
  for (const auto& c : clients) {
    result.retransmissions += c->stats().retransmissions;
    result.timeouts += c->stats().timeouts;
  }
  if (done) {
    result.elapsed = done_at - start;
    result.goodput_mbps =
        fobs::util::rate_of(fobs::util::DataSize::bytes(bytes), result.elapsed).mbps();
  }
  return result;
}

fobs::net::TcpConfig psockets_stream_config(std::int64_t per_socket_buffer_bytes) {
  fobs::net::TcpConfig config;
  config.window_scaling = true;
  config.sack_enabled = true;
  config.recv_buffer_bytes = per_socket_buffer_bytes;
  return config;
}

PsocketsResult find_optimal_stream_count(
    const std::vector<int>& candidates,
    const std::function<PsocketsResult(int streams)>& make_run) {
  PsocketsResult best;
  for (int n : candidates) {
    const PsocketsResult r = make_run(n);
    if (!r.completed) continue;
    if (!best.completed || r.goodput_mbps > best.goodput_mbps) best = r;
  }
  return best;
}

}  // namespace fobs::baselines
