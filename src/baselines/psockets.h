// PSockets baseline: application-level striping over N parallel TCP
// streams (Sivakumar, Bailey, Grossman, SC2000) — the paper's Table 2
// comparator and the technique gridftp uses.
//
// The data is striped round-robin-by-size: each stream carries
// bytes / N (the last stream takes the remainder). PSockets' key idea is
// that the *number* of sockets is determined experimentally; `find_
// optimal_stream_count` reproduces that search.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "host/host.h"
#include "net/tcp.h"
#include "sim/node.h"
#include "telemetry/trace.h"

namespace fobs::baselines {

using fobs::host::Host;
using fobs::util::DataRate;
using fobs::util::Duration;

struct PsocketsResult {
  bool completed = false;
  int streams = 0;
  Duration elapsed = Duration::zero();
  double goodput_mbps = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;

  [[nodiscard]] double fraction_of(DataRate max) const {
    if (max.is_zero()) return 0.0;
    return goodput_mbps * 1e6 / max.bps();
  }
};

/// Transfers `bytes` from `src` to `dst` striped over `streams` TCP
/// connections; completes when every stripe has been delivered.
PsocketsResult run_psockets_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                                     std::int64_t bytes, int streams,
                                     const fobs::net::TcpConfig& per_stream_config,
                                     Duration timeout = Duration::seconds(600),
                                     fobs::telemetry::EventTracer* tracer = nullptr);

/// PSockets' experimental tuning: runs the candidate stream counts on
/// fresh topologies produced by `make_run` and returns the best result.
/// `make_run` receives a stream count and must perform one full
/// transfer (typically on a freshly built Testbed).
PsocketsResult find_optimal_stream_count(
    const std::vector<int>& candidates,
    const std::function<PsocketsResult(int streams)>& make_run);

/// Per-stream TCP configuration matching PSockets' premise: stock
/// sockets with a modest (unprivileged) buffer, so the *number* of
/// sockets is what builds an aggregate window near the path BDP.
[[nodiscard]] fobs::net::TcpConfig psockets_stream_config(
    std::int64_t per_socket_buffer_bytes = 256 * 1024);

}  // namespace fobs::baselines
