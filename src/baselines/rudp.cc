#include "baselines/rudp.h"

#include <any>
#include <memory>
#include <vector>

#include "fobs/wire.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace fobs::baselines {

namespace {

using fobs::core::DataPacketPayload;
using fobs::core::PacketSeq;
using fobs::core::TransferSpec;
using fobs::net::TcpConnection;
using fobs::net::TcpListener;
using fobs::net::UdpEndpoint;
using fobs::sim::PortId;
using fobs::util::Bitmap;
using fobs::util::DataSize;
using fobs::util::TimePoint;

constexpr PortId kRudpDataPort = 6001;
constexpr PortId kRudpControlPort = 6002;

struct PassDone {
  int pass = 0;
};

struct NakList {
  int pass = 0;
  bool complete = false;
  std::shared_ptr<const std::vector<PacketSeq>> missing;
};

class RudpReceiver {
 public:
  RudpReceiver(Host& host, const RudpConfig& config, fobs::sim::NodeId sender)
      : host_(host),
        config_(config),
        sender_(sender),
        received_(static_cast<std::size_t>(config.spec.packet_count())),
        data_in_(host, kRudpDataPort, config.receiver_socket_buffer_bytes),
        listener_(host, kRudpControlPort, fobs::net::TcpConfig{},
                  [this](std::unique_ptr<TcpConnection> conn) {
                    control_ = std::move(conn);
                    control_->set_on_message([this](const std::any& m) { on_control(m); });
                  }) {}

  void start() { poll(); }

  [[nodiscard]] bool complete() const { return received_.all_set(); }
  [[nodiscard]] TimePoint completed_at() const { return completed_at_; }
  [[nodiscard]] std::uint64_t socket_drops() const { return data_in_.stats().rx_overflow_drops; }

 private:
  fobs::sim::Simulation& sim() { return host_.network().sim(); }

  void on_control(const std::any& message) {
    const auto* done = std::any_cast<PassDone>(&message);
    if (done == nullptr) return;
    pending_pass_ = done->pass;
    arm_nak_check();
  }

  /// After a pass-done signal, wait for the data queue to drain and go
  /// quiet before reporting (in-flight packets may still arrive).
  void arm_nak_check() {
    sim().schedule_in(Duration::milliseconds(3), [this] {
      if (pending_pass_ < 0) return;
      if (data_in_.has_data() || sim().now() - last_data_ < Duration::milliseconds(3)) {
        arm_nak_check();
        return;
      }
      send_nak(pending_pass_);
      pending_pass_ = -1;
    });
  }

  void send_nak(int pass) {
    if (control_ == nullptr) return;
    auto missing = std::make_shared<std::vector<PacketSeq>>();
    std::size_t probe = 0;
    while (auto hole = received_.first_clear(probe)) {
      missing->push_back(static_cast<PacketSeq>(*hole));
      probe = *hole + 1;
    }
    NakList nak;
    nak.pass = pass;
    nak.complete = missing->empty();
    nak.missing = std::move(missing);
    const std::int64_t bytes = 16 + 8 * static_cast<std::int64_t>(nak.missing->size());
    control_->send_message(bytes, nak);
  }

  void poll() {
    auto pkt = data_in_.try_recv();
    if (!pkt) {
      data_in_.set_rx_notify([this] { poll(); });
      return;
    }
    last_data_ = sim().now();
    Duration busy = Duration::microseconds(1);
    if (const auto* data = std::any_cast<DataPacketPayload>(&pkt->payload)) {
      busy = host_.cpu().recv_cost(
          DataSize::bytes(data->len + fobs::core::kDataHeaderBytes));
      const bool was_complete = received_.all_set();
      received_.set(static_cast<std::size_t>(data->seq));
      if (!was_complete && received_.all_set()) {
        completed_at_ = sim().now();
        // Short-circuit: tell the sender immediately rather than waiting
        // for its next pass-done round trip.
        send_nak(pending_pass_ >= 0 ? pending_pass_ : -1);
        pending_pass_ = -1;
      }
    }
    sim().schedule_at(host_.reserve_cpu(busy), [this] { poll(); });
  }

  Host& host_;
  RudpConfig config_;
  fobs::sim::NodeId sender_;
  Bitmap received_;
  UdpEndpoint data_in_;
  TcpListener listener_;
  std::unique_ptr<TcpConnection> control_;
  int pending_pass_ = -1;
  TimePoint last_data_;
  TimePoint completed_at_;
};

class RudpSender {
 public:
  RudpSender(Host& host, const RudpConfig& config, fobs::sim::NodeId receiver)
      : host_(host),
        config_(config),
        receiver_(receiver),
        data_out_(host),
        control_(host, fobs::net::TcpConfig{}) {
    missing_.reserve(static_cast<std::size_t>(config.spec.packet_count()));
    for (PacketSeq s = 0; s < config.spec.packet_count(); ++s) missing_.push_back(s);
    if (!config.send_rate.is_zero()) {
      rate_gap_ = fobs::util::transmission_time(
          DataSize::bytes(config.spec.packet_bytes + fobs::core::kDataHeaderBytes +
                          fobs::sim::kUdpIpOverheadBytes),
          config.send_rate);
    }
  }

  void start() {
    control_.set_on_message([this](const std::any& m) { on_control(m); });
    control_.set_on_connected([this] { step(); });
    control_.connect(receiver_, kRudpControlPort);
  }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] TimePoint done_at() const { return done_at_; }
  [[nodiscard]] int passes() const { return pass_; }
  [[nodiscard]] std::int64_t packets_sent() const { return packets_sent_; }

 private:
  fobs::sim::Simulation& sim() { return host_.network().sim(); }

  void on_control(const std::any& message) {
    const auto* nak = std::any_cast<NakList>(&message);
    if (nak == nullptr || done_) return;
    if (nak->complete) {
      done_ = true;
      done_at_ = sim().now();
      return;
    }
    missing_ = *nak->missing;
    index_ = 0;
    awaiting_nak_ = false;
    step();
  }

  void step() {
    if (done_ || awaiting_nak_) return;
    if (index_ >= missing_.size()) {
      ++pass_;
      awaiting_nak_ = true;
      if (config_.tracer != nullptr) {
        config_.tracer->record(fobs::telemetry::EventType::kBatchSent, pass_,
                               static_cast<std::int64_t>(index_));
      }
      control_.send_message(16, PassDone{pass_});
      return;
    }
    const PacketSeq seq = missing_[index_];
    const std::int64_t len = config_.spec.payload_bytes(seq);
    if (!data_out_.writable(len + fobs::core::kDataHeaderBytes)) {
      host_.notify_writable([this] { step(); });
      return;
    }
    DataPacketPayload payload{seq, static_cast<std::int32_t>(len), nullptr};
    data_out_.send_to(receiver_, kRudpDataPort, len + fobs::core::kDataHeaderBytes, payload);
    ++packets_sent_;
    ++index_;
    // CPU cost occupies the core; the pacing gap is idle wire time.
    const auto cpu_done = host_.reserve_cpu(
        host_.cpu().send_cost(DataSize::bytes(len + fobs::core::kDataHeaderBytes)));
    sim().schedule_at(std::max(cpu_done, sim().now() + rate_gap_), [this] { step(); });
  }

  Host& host_;
  RudpConfig config_;
  fobs::sim::NodeId receiver_;
  UdpEndpoint data_out_;
  TcpConnection control_;
  std::vector<PacketSeq> missing_;
  std::size_t index_ = 0;
  int pass_ = 0;
  bool awaiting_nak_ = false;
  bool done_ = false;
  std::int64_t packets_sent_ = 0;
  Duration rate_gap_ = Duration::zero();
  TimePoint done_at_;
};

}  // namespace

RudpResult run_rudp_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                             const RudpConfig& config) {
  auto& sim = network.sim();
  const auto start = sim.now();
  const auto deadline = start + config.timeout;
  if (config.tracer != nullptr) {
    config.tracer->set_clock([&sim] { return sim.now().ns(); });
    config.tracer->record(fobs::telemetry::EventType::kTransferStart, -1,
                          config.spec.packet_count());
  }

  RudpReceiver receiver(dst, config, src.id());
  RudpSender sender(src, config, dst.id());
  receiver.start();
  sender.start();

  while (!sender.done() && sim.now() < deadline && sim.step()) {
  }

  if (config.tracer != nullptr) {
    config.tracer->record(sender.done() ? fobs::telemetry::EventType::kCompletion
                                        : fobs::telemetry::EventType::kTimeout,
                          -1, sender.packets_sent());
  }

  RudpResult result;
  result.completed = sender.done();
  result.passes = sender.passes();
  result.packets_needed = config.spec.packet_count();
  result.packets_sent = sender.packets_sent();
  result.receiver_socket_drops = receiver.socket_drops();
  if (result.packets_needed > 0) {
    result.waste = static_cast<double>(result.packets_sent - result.packets_needed) /
                   static_cast<double>(result.packets_needed);
  }
  if (receiver.complete()) {
    result.elapsed = receiver.completed_at() - start;
    if (result.elapsed > Duration::zero()) {
      result.goodput_mbps =
          fobs::util::rate_of(DataSize::bytes(config.spec.object_bytes), result.elapsed).mbps();
    }
  }
  return result;
}

}  // namespace fobs::baselines
