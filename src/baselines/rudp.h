// Reliable Blast UDP (RUDP, Leigh et al.) baseline.
//
// The sender blasts every (still-missing) packet over UDP at a
// configured rate with no feedback during the pass, then signals
// "pass done" over TCP; the receiver replies with the list of missing
// packets, and the cycle repeats until nothing is missing. RUDP was
// designed for QoS-enabled networks with near-zero loss — on lossy or
// receiver-bound paths its whole-pass feedback delay makes it waste
// bandwidth, which is exactly the contrast the paper draws with FOBS.
#pragma once

#include <cstdint>

#include "fobs/types.h"
#include "host/host.h"
#include "sim/node.h"
#include "telemetry/trace.h"

namespace fobs::baselines {

using fobs::host::Host;
using fobs::util::DataRate;
using fobs::util::Duration;

struct RudpConfig {
  fobs::core::TransferSpec spec;
  /// Blast pacing rate; zero means "as fast as the NIC accepts".
  DataRate send_rate = DataRate::zero();
  std::int64_t receiver_socket_buffer_bytes = 256 * 1024;
  Duration timeout = Duration::seconds(600);
  /// Optional event tracer (must outlive the run): transfer_start, one
  /// batch_sent per blast pass, completion or timeout.
  fobs::telemetry::EventTracer* tracer = nullptr;
};

struct RudpResult {
  bool completed = false;
  int passes = 0;  ///< blast rounds needed
  Duration elapsed = Duration::zero();
  double goodput_mbps = 0.0;
  std::int64_t packets_needed = 0;
  std::int64_t packets_sent = 0;
  double waste = 0.0;
  std::uint64_t receiver_socket_drops = 0;

  [[nodiscard]] double fraction_of(DataRate max) const {
    if (max.is_zero()) return 0.0;
    return goodput_mbps * 1e6 / max.bps();
  }
};

RudpResult run_rudp_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                             const RudpConfig& config);

}  // namespace fobs::baselines
