#include "baselines/sabul.h"

#include <any>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "fobs/wire.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace fobs::baselines {

namespace {

using fobs::core::DataPacketPayload;
using fobs::core::PacketSeq;
using fobs::net::TcpConnection;
using fobs::net::TcpListener;
using fobs::net::UdpEndpoint;
using fobs::sim::PortId;
using fobs::util::Bitmap;
using fobs::util::DataSize;
using fobs::util::TimePoint;

constexpr PortId kSabulDataPort = 6101;
constexpr PortId kSabulControlPort = 6102;

struct SabulReport {
  std::uint64_t report_no = 0;
  std::int64_t total_received = 0;
  bool complete = false;
  std::shared_ptr<const std::vector<PacketSeq>> losses;  ///< newly detected
};

class SabulReceiver {
 public:
  SabulReceiver(Host& host, const SabulConfig& config, fobs::sim::NodeId sender)
      : host_(host),
        config_(config),
        sender_(sender),
        received_(static_cast<std::size_t>(config.spec.packet_count())),
        data_in_(host, kSabulDataPort, config.receiver_socket_buffer_bytes),
        listener_(host, kSabulControlPort, fobs::net::TcpConfig{},
                  [this](std::unique_ptr<TcpConnection> conn) { control_ = std::move(conn); }) {}

  void start() {
    poll();
    arm_report_timer();
  }

  [[nodiscard]] bool complete() const { return received_.all_set(); }
  [[nodiscard]] TimePoint completed_at() const { return completed_at_; }
  [[nodiscard]] std::uint64_t reports_sent() const { return report_no_; }

 private:
  fobs::sim::Simulation& sim() { return host_.network().sim(); }

  void arm_report_timer() {
    sim().schedule_in(config_.report_interval, [this] {
      if (!sent_complete_) {
        send_report();
        arm_report_timer();
      }
    });
  }

  void send_report() {
    if (control_ == nullptr) return;
    SabulReport report;
    report.report_no = ++report_no_;
    report.total_received = static_cast<std::int64_t>(received_.count());
    report.complete = received_.all_set();
    auto losses = std::make_shared<std::vector<PacketSeq>>(pending_losses_.begin(),
                                                           pending_losses_.end());
    // Stalled tail rescue: if data has flowed but nothing arrived for a
    // whole interval and we are not done, report every hole below the
    // highest seen packet so the sender can refill (SABUL's EXP-timer
    // behaviour). Never fires before the first packet, and never
    // invents holes above what was actually observed.
    if (losses->empty() && !report.complete && highest_seen_ >= 0 &&
        sim().now() - last_data_ >= config_.report_interval) {
      // After a longer silence even the packets *above* highest_seen
      // must be presumed lost (an entirely-lost tail produces no gap to
      // detect), so widen the scan to the whole object.
      const bool long_quiet = sim().now() - last_data_ >= config_.report_interval * 3;
      const PacketSeq scan_limit = long_quiet ? config_.spec.packet_count() - 1 : highest_seen_;
      std::size_t probe = 0;
      while (auto hole = received_.first_clear(probe)) {
        if (static_cast<PacketSeq>(*hole) > scan_limit) break;
        losses->push_back(static_cast<PacketSeq>(*hole));
        probe = *hole + 1;
        if (losses->size() >= 4096) break;
      }
    }
    pending_losses_.clear();
    const std::int64_t bytes = 24 + 8 * static_cast<std::int64_t>(losses->size());
    report.losses = std::move(losses);
    if (report.complete) sent_complete_ = true;
    control_->send_message(bytes, report);
  }

  void poll() {
    auto pkt = data_in_.try_recv();
    if (!pkt) {
      data_in_.set_rx_notify([this] { poll(); });
      return;
    }
    Duration busy = Duration::microseconds(1);
    if (const auto* data = std::any_cast<DataPacketPayload>(&pkt->payload)) {
      busy = host_.cpu().recv_cost(DataSize::bytes(data->len + fobs::core::kDataHeaderBytes));
      last_data_ = sim().now();
      const auto seq = data->seq;
      // Gap-based loss detection: a jump past highest_seen+1 marks the
      // skipped sequence numbers as (tentatively) lost.
      if (seq > highest_seen_ + 1) {
        for (PacketSeq s = highest_seen_ + 1; s < seq; ++s) pending_losses_.insert(s);
      }
      highest_seen_ = std::max(highest_seen_, seq);
      pending_losses_.erase(seq);
      const bool was_complete = received_.all_set();
      received_.set(static_cast<std::size_t>(seq));
      if (!was_complete && received_.all_set()) {
        completed_at_ = sim().now();
        send_report();  // immediate completion report
      }
    }
    sim().schedule_at(host_.reserve_cpu(busy), [this] { poll(); });
  }

  Host& host_;
  SabulConfig config_;
  fobs::sim::NodeId sender_;
  Bitmap received_;
  UdpEndpoint data_in_;
  TcpListener listener_;
  std::unique_ptr<TcpConnection> control_;
  PacketSeq highest_seen_ = -1;
  std::unordered_set<PacketSeq> pending_losses_;
  std::uint64_t report_no_ = 0;
  bool sent_complete_ = false;
  TimePoint last_data_;
  TimePoint completed_at_;
};

class SabulSender {
 public:
  SabulSender(Host& host, const SabulConfig& config, fobs::sim::NodeId receiver)
      : host_(host),
        config_(config),
        receiver_(receiver),
        data_out_(host),
        control_(host, fobs::net::TcpConfig{}) {
    const std::int64_t wire = config.spec.packet_bytes + fobs::core::kDataHeaderBytes +
                              fobs::sim::kUdpIpOverheadBytes;
    const DataRate ceiling =
        config.max_rate.is_zero() ? config.initial_rate * 1.25 : config.max_rate;
    min_gap_ = fobs::util::transmission_time(DataSize::bytes(wire), ceiling);
    gap_ = fobs::util::transmission_time(DataSize::bytes(wire), config.initial_rate);
  }

  void start() {
    control_.set_on_message([this](const std::any& m) { on_report(m); });
    control_.set_on_connected([this] { step(); });
    control_.connect(receiver_, kSabulControlPort);
  }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] TimePoint done_at() const { return done_at_; }
  [[nodiscard]] std::int64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] double current_rate_mbps() const {
    const std::int64_t wire = config_.spec.packet_bytes + fobs::core::kDataHeaderBytes +
                              fobs::sim::kUdpIpOverheadBytes;
    if (gap_ <= Duration::zero()) return 0.0;
    return fobs::util::rate_of(DataSize::bytes(wire), gap_).mbps();
  }
  [[nodiscard]] std::uint64_t lossy_reports() const { return lossy_reports_; }

 private:
  fobs::sim::Simulation& sim() { return host_.network().sim(); }

  void on_report(const std::any& message) {
    const auto* report = std::any_cast<SabulReport>(&message);
    if (report == nullptr || done_) return;
    if (report->complete) {
      done_ = true;
      done_at_ = sim().now();
      return;
    }
    if (report->losses != nullptr && !report->losses->empty()) {
      ++lossy_reports_;
      if (config_.tracer != nullptr) {
        config_.tracer->record(fobs::telemetry::EventType::kAckProcessed,
                               static_cast<std::int64_t>(lossy_reports_),
                               static_cast<std::int64_t>(report->losses->size()));
      }
      for (PacketSeq s : *report->losses) {
        if (queued_rtx_.insert(s).second) rtx_queue_.push_back(s);
      }
      // Loss means congestion to SABUL: slow down.
      gap_ = gap_ * config_.backoff_factor;
    } else {
      gap_ = std::max(min_gap_, gap_ * config_.speedup_factor);
    }
    if (idle_) {
      idle_ = false;
      step();
    }
  }

  void step() {
    if (done_) return;
    PacketSeq seq = -1;
    if (!rtx_queue_.empty()) {
      seq = rtx_queue_.front();
      rtx_queue_.pop_front();
      queued_rtx_.erase(seq);
    } else if (next_new_ < config_.spec.packet_count()) {
      seq = next_new_++;
    } else {
      // Everything sent once and no outstanding loss reports: wait for
      // the receiver's next report (or completion).
      idle_ = true;
      return;
    }
    const std::int64_t len = config_.spec.payload_bytes(seq);
    if (!data_out_.writable(len + fobs::core::kDataHeaderBytes)) {
      // Socket buffer full: requeue (front) and wait for writability.
      if (queued_rtx_.insert(seq).second) rtx_queue_.push_front(seq);
      host_.notify_writable([this] { step(); });
      return;
    }
    DataPacketPayload payload{seq, static_cast<std::int32_t>(len), nullptr};
    data_out_.send_to(receiver_, kSabulDataPort, len + fobs::core::kDataHeaderBytes, payload);
    ++packets_sent_;
    // CPU cost occupies the core; the pacing gap is idle wire time.
    const auto cpu_done = host_.reserve_cpu(
        host_.cpu().send_cost(DataSize::bytes(len + fobs::core::kDataHeaderBytes)));
    sim().schedule_at(std::max(cpu_done, sim().now() + gap_), [this] { step(); });
  }

  Host& host_;
  SabulConfig config_;
  fobs::sim::NodeId receiver_;
  UdpEndpoint data_out_;
  TcpConnection control_;
  std::deque<PacketSeq> rtx_queue_;
  std::unordered_set<PacketSeq> queued_rtx_;
  PacketSeq next_new_ = 0;
  Duration gap_;
  Duration min_gap_;
  bool idle_ = false;
  bool done_ = false;
  std::int64_t packets_sent_ = 0;
  std::uint64_t lossy_reports_ = 0;
  TimePoint done_at_;
};

}  // namespace

SabulResult run_sabul_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                               const SabulConfig& config) {
  auto& sim = network.sim();
  const auto start = sim.now();
  const auto deadline = start + config.timeout;
  if (config.tracer != nullptr) {
    config.tracer->set_clock([&sim] { return sim.now().ns(); });
    config.tracer->record(fobs::telemetry::EventType::kTransferStart, -1,
                          config.spec.packet_count());
  }

  SabulReceiver receiver(dst, config, src.id());
  SabulSender sender(src, config, dst.id());
  receiver.start();
  sender.start();

  while (!sender.done() && sim.now() < deadline && sim.step()) {
  }

  if (config.tracer != nullptr) {
    config.tracer->record(sender.done() ? fobs::telemetry::EventType::kCompletion
                                        : fobs::telemetry::EventType::kTimeout,
                          -1, sender.packets_sent());
  }

  SabulResult result;
  result.completed = sender.done();
  result.packets_needed = config.spec.packet_count();
  result.packets_sent = sender.packets_sent();
  result.final_rate_mbps = sender.current_rate_mbps();
  result.loss_reports = sender.lossy_reports();
  if (result.packets_needed > 0) {
    result.waste = static_cast<double>(result.packets_sent - result.packets_needed) /
                   static_cast<double>(result.packets_needed);
  }
  if (receiver.complete()) {
    result.elapsed = receiver.completed_at() - start;
    if (result.elapsed > Duration::zero()) {
      result.goodput_mbps =
          fobs::util::rate_of(DataSize::bytes(config.spec.object_bytes), result.elapsed).mbps();
    }
  }
  return result;
}

}  // namespace fobs::baselines
