// SABUL baseline (Sivakumar, Mazzucco, Zhang, Grossman): a single
// rate-paced UDP data stream with a TCP control stream carrying
// periodic loss reports.
//
// The defining difference from FOBS (paper §2): SABUL interprets packet
// loss as congestion and reduces its sending rate, TCP-style, while
// FOBS assumes some loss is inevitable and stays greedy. On paths with
// non-congestive loss SABUL therefore underutilizes the pipe.
#pragma once

#include <cstdint>

#include "fobs/types.h"
#include "host/host.h"
#include "sim/node.h"
#include "telemetry/trace.h"

namespace fobs::baselines {

using fobs::host::Host;
using fobs::util::DataRate;
using fobs::util::Duration;

struct SabulConfig {
  fobs::core::TransferSpec spec;
  /// Initial pacing rate (the user's estimate of the available
  /// bandwidth, as in SABUL's configuration).
  DataRate initial_rate = DataRate::megabits_per_second(95);
  /// Ceiling for the rate-increase rule; zero means 1.25x initial_rate.
  DataRate max_rate = DataRate::zero();
  /// Receiver report period (SABUL's SYN interval).
  Duration report_interval = Duration::milliseconds(20);
  /// Multiplicative slow-down on a lossy report / speed-up on a clean one.
  double backoff_factor = 1.125;
  double speedup_factor = 0.975;
  std::int64_t receiver_socket_buffer_bytes = 256 * 1024;
  Duration timeout = Duration::seconds(600);
  /// Optional event tracer (must outlive the run): transfer_start, one
  /// ack_processed per lossy receiver report, completion or timeout.
  fobs::telemetry::EventTracer* tracer = nullptr;
};

struct SabulResult {
  bool completed = false;
  Duration elapsed = Duration::zero();
  double goodput_mbps = 0.0;
  std::int64_t packets_needed = 0;
  std::int64_t packets_sent = 0;
  double waste = 0.0;
  double final_rate_mbps = 0.0;  ///< pacing rate at completion
  std::uint64_t loss_reports = 0;

  [[nodiscard]] double fraction_of(DataRate max) const {
    if (max.is_zero()) return 0.0;
    return goodput_mbps * 1e6 / max.bps();
  }
};

SabulResult run_sabul_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                               const SabulConfig& config);

}  // namespace fobs::baselines
