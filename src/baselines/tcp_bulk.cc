#include "baselines/tcp_bulk.h"

#include <memory>

namespace fobs::baselines {

fobs::net::TcpConfig tcp_with_lwe() {
  fobs::net::TcpConfig config;
  config.window_scaling = true;
  config.sack_enabled = true;
  config.recv_buffer_bytes = 4 * 1024 * 1024;  // plenty for a 65 ms BDP
  return config;
}

fobs::net::TcpConfig tcp_without_lwe() {
  fobs::net::TcpConfig config;
  config.window_scaling = false;   // advertised window capped at 64 KiB
  config.sack_enabled = false;     // stock pre-extension stack
  config.recv_buffer_bytes = 64 * 1024;
  return config;
}

TcpTransferResult run_tcp_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                                   std::int64_t bytes, const fobs::net::TcpConfig& config,
                                   Duration timeout, fobs::telemetry::EventTracer* tracer) {
  using fobs::net::TcpConnection;
  using fobs::net::TcpListener;

  auto& sim = network.sim();
  const auto start = sim.now();
  const auto deadline = start + timeout;
  constexpr fobs::sim::PortId kPort = 5001;  // iperf's favourite
  if (tracer != nullptr) {
    tracer->set_clock([&sim] { return sim.now().ns(); });
    tracer->record(fobs::telemetry::EventType::kTransferStart, -1, bytes);
  }

  std::unique_ptr<TcpConnection> server;
  bool done = false;
  fobs::util::TimePoint done_at;

  TcpListener listener(dst, kPort, config, [&](std::unique_ptr<TcpConnection> conn) {
    server = std::move(conn);
    server->set_on_delivered([&](fobs::net::Seq delivered) {
      if (!done && delivered >= bytes) {
        done = true;
        done_at = sim.now();
      }
    });
  });

  TcpConnection client(src, config);
  client.set_on_connected([&] { client.offer_bytes(bytes); });
  client.connect(dst.id(), kPort);

  while (!done && sim.now() < deadline && sim.step()) {
  }

  if (tracer != nullptr) {
    tracer->record(done ? fobs::telemetry::EventType::kCompletion
                        : fobs::telemetry::EventType::kTimeout,
                   -1, bytes);
  }

  TcpTransferResult result;
  result.completed = done;
  result.retransmissions = client.stats().retransmissions;
  result.timeouts = client.stats().timeouts;
  result.fast_retransmits = client.stats().fast_retransmits;
  if (done) {
    result.elapsed = done_at - start;
    result.goodput_mbps =
        fobs::util::rate_of(fobs::util::DataSize::bytes(bytes), result.elapsed).mbps();
  }
  return result;
}

}  // namespace fobs::baselines
