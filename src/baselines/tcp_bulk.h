// Single-stream TCP bulk transfer (the paper's Table 1 baseline).
//
// Runs one TcpConnection across an existing topology and measures the
// time until the receiver has delivered every byte in order. The Large
// Window Extensions case is just `TcpConfig::window_scaling = true` with
// a receive buffer larger than 64 KiB.
#pragma once

#include <cstdint>

#include "host/host.h"
#include "net/tcp.h"
#include "sim/node.h"
#include "telemetry/trace.h"

namespace fobs::baselines {

using fobs::host::Host;
using fobs::util::DataRate;
using fobs::util::Duration;

struct TcpTransferResult {
  bool completed = false;
  Duration elapsed = Duration::zero();
  double goodput_mbps = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;

  [[nodiscard]] double fraction_of(DataRate max) const {
    if (max.is_zero()) return 0.0;
    return goodput_mbps * 1e6 / max.bps();
  }
};

/// Transfers `bytes` from `src` to `dst` over one TCP connection.
/// `tracer` (optional, must outlive the call) records transfer_start
/// and completion/timeout on the sim clock.
TcpTransferResult run_tcp_transfer(fobs::sim::Network& network, Host& src, Host& dst,
                                   std::int64_t bytes, const fobs::net::TcpConfig& config,
                                   Duration timeout = Duration::seconds(600),
                                   fobs::telemetry::EventTracer* tracer = nullptr);

/// Convenience: the paper's two configurations.
[[nodiscard]] fobs::net::TcpConfig tcp_with_lwe();
[[nodiscard]] fobs::net::TcpConfig tcp_without_lwe();

}  // namespace fobs::baselines
