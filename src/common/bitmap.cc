#include "common/bitmap.h"

#include <algorithm>
#include <cassert>

namespace fobs::util {

Bitmap::Bitmap(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

bool Bitmap::set(std::size_t i) {
  assert(i < size_);
  std::uint64_t& w = words_[word_of(i)];
  const std::uint64_t m = mask_of(i);
  if (w & m) return false;
  w |= m;
  ++set_count_;
  return true;
}

bool Bitmap::clear(std::size_t i) {
  assert(i < size_);
  std::uint64_t& w = words_[word_of(i)];
  const std::uint64_t m = mask_of(i);
  if (!(w & m)) return false;
  w &= ~m;
  --set_count_;
  return true;
}

bool Bitmap::test(std::size_t i) const {
  assert(i < size_);
  return (words_[word_of(i)] & mask_of(i)) != 0;
}

std::optional<std::size_t> Bitmap::first_clear(std::size_t from) const {
  if (from >= size_) return std::nullopt;
  std::size_t w = word_of(from);
  // Mask off bits below `from` in the first word (treat them as set).
  std::uint64_t inv = ~words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (inv != 0) {
      const std::size_t bit = w * 64 + static_cast<std::size_t>(std::countr_zero(inv));
      if (bit >= size_) return std::nullopt;
      return bit;
    }
    if (++w >= words_.size()) return std::nullopt;
    inv = ~words_[w];
  }
}

std::optional<std::size_t> Bitmap::first_set(std::size_t from) const {
  if (from >= size_) return std::nullopt;
  std::size_t w = word_of(from);
  std::uint64_t v = words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (v != 0) {
      const std::size_t bit = w * 64 + static_cast<std::size_t>(std::countr_zero(v));
      if (bit >= size_) return std::nullopt;
      return bit;
    }
    if (++w >= words_.size()) return std::nullopt;
    v = words_[w];
  }
}

std::optional<std::size_t> Bitmap::first_clear_circular(std::size_t from) const {
  if (size_ == 0 || all_set()) return std::nullopt;
  from %= size_;
  if (auto hit = first_clear(from)) return hit;
  return first_clear(0);
}

std::size_t Bitmap::count_in_range(std::size_t begin, std::size_t end) const {
  assert(begin <= end && end <= size_);
  std::size_t total = 0;
  std::size_t i = begin;
  while (i < end) {
    const std::size_t w = word_of(i);
    const std::size_t word_end = std::min(end, (w + 1) * 64);
    std::uint64_t v = words_[w];
    // Keep only bits [i, word_end) within this word.
    v &= ~std::uint64_t{0} << (i & 63);
    const std::size_t top = word_end & 63;
    if (top != 0 && word_end == end) v &= (std::uint64_t{1} << top) - 1;
    total += static_cast<std::size_t>(std::popcount(v));
    i = word_end;
  }
  return total;
}

void Bitmap::clear_all() {
  std::fill(words_.begin(), words_.end(), 0);
  set_count_ = 0;
}

void Bitmap::set_all() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  if (!words_.empty() && (size_ & 63) != 0) {
    words_.back() &= (std::uint64_t{1} << (size_ & 63)) - 1;
  }
  set_count_ = size_;
}

std::vector<std::uint8_t> Bitmap::extract_range(std::size_t begin, std::size_t end) const {
  assert(begin <= end && end <= size_);
  const std::size_t nbits = end - begin;
  std::vector<std::uint8_t> out((nbits + 7) / 8, 0);
  for (std::size_t i = 0; i < nbits; ++i) {
    if (test(begin + i)) out[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
  }
  return out;
}

std::size_t Bitmap::merge_range(std::size_t begin, std::size_t nbits,
                                const std::uint8_t* packed, std::size_t packed_len) {
  assert(begin + nbits <= size_);
  assert(packed_len * 8 >= nbits);
  (void)packed_len;
  std::size_t newly_set = 0;
  for (std::size_t i = 0; i < nbits; ++i) {
    if (packed[i >> 3] & (1u << (i & 7))) {
      if (set(begin + i)) ++newly_set;
    }
  }
  return newly_set;
}

bool Bitmap::operator==(const Bitmap& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

}  // namespace fobs::util
