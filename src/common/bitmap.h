// Fixed-capacity bitmap over packet sequence numbers.
//
// This is the data structure the FOBS paper describes: "one byte (or even
// one bit) allocated per data packet ... tracks the received/not received
// status of every packet to be received". We use one bit per packet, with
// 64-bit words and popcount for O(n/64) scans.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace fobs::util {

class Bitmap {
 public:
  Bitmap() = default;
  /// Creates a bitmap of `size` bits, all clear.
  explicit Bitmap(std::size_t size);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Sets bit `i`; returns true when the bit was previously clear
  /// (i.e. this call changed state). Precondition: i < size().
  bool set(std::size_t i);
  /// Clears bit `i`; returns true when the bit was previously set.
  bool clear(std::size_t i);
  [[nodiscard]] bool test(std::size_t i) const;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const { return set_count_; }
  [[nodiscard]] bool all_set() const { return set_count_ == size_; }
  [[nodiscard]] bool none_set() const { return set_count_ == 0; }

  /// Index of the first clear bit at or after `from`, if any.
  [[nodiscard]] std::optional<std::size_t> first_clear(std::size_t from = 0) const;
  /// Index of the first set bit at or after `from`, if any.
  [[nodiscard]] std::optional<std::size_t> first_set(std::size_t from = 0) const;
  /// First clear bit searching circularly from `from` (wraps past the
  /// end). Returns nullopt when all bits are set.
  [[nodiscard]] std::optional<std::size_t> first_clear_circular(std::size_t from) const;
  /// Number of set bits in [begin, end). Precondition: begin<=end<=size.
  [[nodiscard]] std::size_t count_in_range(std::size_t begin, std::size_t end) const;

  void clear_all();
  void set_all();

  /// Copies bits [begin, end) into a packed little-endian byte buffer,
  /// bit 0 of byte 0 holding bit `begin`. Used by the ACK codec.
  [[nodiscard]] std::vector<std::uint8_t> extract_range(std::size_t begin,
                                                        std::size_t end) const;
  /// ORs packed bits (format of `extract_range`) into [begin, begin+nbits).
  /// Returns the number of bits that transitioned clear -> set.
  std::size_t merge_range(std::size_t begin, std::size_t nbits,
                          const std::uint8_t* packed, std::size_t packed_len);

  [[nodiscard]] bool operator==(const Bitmap& other) const;

 private:
  [[nodiscard]] static std::size_t word_of(std::size_t i) { return i >> 6; }
  [[nodiscard]] static std::uint64_t mask_of(std::size_t i) {
    return std::uint64_t{1} << (i & 63);
  }

  std::size_t size_ = 0;
  std::size_t set_count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fobs::util
