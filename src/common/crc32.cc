#include "common/crc32.h"

#include <array>

namespace fobs::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace fobs::util
