// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// Used as the per-packet payload checksum on the POSIX wire format and
// as the integrity seal on resume checkpoints — cheap enough for the
// hot receive path (table-driven, byte at a time) and strong enough to
// reject the random corruption the fault-injection harness produces.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fobs::util {

/// CRC of `len` bytes starting from `seed` (pass the previous return
/// value to checksum discontiguous regions as one stream).
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0);

}  // namespace fobs::util
