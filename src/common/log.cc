#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fobs::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(), message.c_str());
}

}  // namespace fobs::util
