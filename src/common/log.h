// Leveled logging with near-zero cost when disabled.
//
// Simulations are chatty; logging defaults to `kWarn` so benchmark runs
// stay quiet. Tests and examples may raise the level for debugging.
#pragma once

#include <sstream>
#include <string>

namespace fobs::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();
[[nodiscard]] bool log_enabled(LogLevel level);

/// Emits one line to stderr: "[level] component: message".
void log_line(LogLevel level, const std::string& component, const std::string& message);

}  // namespace fobs::util

// Stream-style logging macro; the message expression is not evaluated
// when the level is disabled.
#define FOBS_LOG(level, component, expr)                                  \
  do {                                                                    \
    if (::fobs::util::log_enabled(level)) {                               \
      std::ostringstream fobs_log_oss_;                                   \
      fobs_log_oss_ << expr;                                              \
      ::fobs::util::log_line(level, component, fobs_log_oss_.str());      \
    }                                                                     \
  } while (0)

#define FOBS_TRACE(component, expr) FOBS_LOG(::fobs::util::LogLevel::kTrace, component, expr)
#define FOBS_DEBUG(component, expr) FOBS_LOG(::fobs::util::LogLevel::kDebug, component, expr)
#define FOBS_INFO(component, expr) FOBS_LOG(::fobs::util::LogLevel::kInfo, component, expr)
#define FOBS_WARN(component, expr) FOBS_LOG(::fobs::util::LogLevel::kWarn, component, expr)
#define FOBS_ERROR(component, expr) FOBS_LOG(::fobs::util::LogLevel::kError, component, expr)
