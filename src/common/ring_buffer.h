// Fixed-capacity single-threaded ring buffer.
//
// Used for bounded queues inside the simulator (socket buffers, NIC
// queues) where the bound itself is the model: a full buffer means the
// packet is dropped, exactly like a full kernel socket buffer.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace fobs::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) { assert(capacity > 0); }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Appends an element; returns false (and drops it) when full.
  bool push(T value) {
    if (full()) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// Removes and returns the oldest element. Precondition: !empty().
  T pop() {
    assert(!empty());
    T value = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return value;
  }

  /// Oldest element without removing it. Precondition: !empty().
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fobs::util
