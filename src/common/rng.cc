#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace fobs::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next()); }

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % range);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  // uniform() can return exactly 0; log(0) is -inf, so nudge away.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Duration Rng::exponential(Duration mean) {
  return Duration::from_seconds(exponential(mean.seconds()));
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace fobs::util
