// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component takes an explicit `Rng` (or a seed) so that
// simulation runs are exactly reproducible. The generator is
// xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
// Streams can be split with `fork()` so independent components do not
// share (and therefore perturb) each other's random sequences.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace fobs::util {

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state by running splitmix64 on `seed`; any seed value,
  /// including zero, yields a valid non-degenerate state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// UniformRandomBitGenerator interface.
  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// A generator with a state derived from, but independent of, this one.
  [[nodiscard]] Rng fork();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool bernoulli(double p);
  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);
  /// Exponentially distributed duration with the given mean.
  Duration exponential(Duration mean);
  /// Standard normal via Box-Muller transform.
  double normal(double mean, double stddev);

 private:
  std::uint64_t s_[4];
};

}  // namespace fobs::util
