#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fobs::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  OnlineStats s;
  for (double x : samples_) s.add(x);
  return s.mean();
}

double SampleSet::stddev() const {
  OnlineStats s;
  for (double x : samples_) s.add(x);
  return s.stddev();
}

double SampleSet::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::quantile(double q) const {
  assert(!samples_.empty());
  q = std::clamp(q, 0.0, 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::add(double x) {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else {
    const auto raw = static_cast<std::size_t>((x - lo_) / width_);
    if (raw >= counts_.size()) {
      ++overflow_;
      idx = counts_.size() - 1;
    } else {
      idx = raw;
    }
  }
  ++counts_[idx];
}

double Histogram::bin_lower(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace fobs::util
