// Small statistics toolkit used by the experiment harness and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fobs::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; numerically stable for long runs.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the samples; 0 when empty.
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  /// Sample (n-1) variance; 0 with fewer than two samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Use for modest sample
/// counts (experiment outputs), not per-packet hot paths.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact quantile by linear interpolation, q in [0, 1]. Requires a
  /// non-empty set. Sorts lazily.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are clamped
/// into the first/last bin and counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lower(std::size_t i) const;
  [[nodiscard]] double bin_upper(std::size_t i) const { return bin_lower(i + 1); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace fobs::util
