#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace fobs::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

namespace {
void print_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      print_csv_cell(os, row[c]);
      os << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string TextTable::pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace fobs::util
