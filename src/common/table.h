// Plain-text aligned table and CSV writers for experiment output.
//
// The benchmark binaries print the same rows/series the paper reports;
// this formatter keeps those tables readable in a terminal and emits a
// machine-readable CSV alongside when asked.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fobs::util {

class TextTable {
 public:
  /// Sets the header row. Column count is fixed by this call.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with columns padded to the widest cell.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline
  /// are quoted, embedded quotes doubled).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with `digits` decimal places.
  static std::string num(double v, int digits = 2);
  /// Formats a fraction in [0,1] as a percentage string like "89.7%".
  static std::string pct(double fraction, int digits = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fobs::util
