// Minimal work-stealing-free thread pool for farming out independent
// simulation runs (parameter sweeps). Each submitted task is independent;
// results are returned through std::future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace fobs::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for all.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fobs::util
