#include "common/units.h"

#include <cstdio>

namespace fobs::util {

namespace {

std::string format_double(double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f%s", v, suffix);
  return buf;
}

}  // namespace

std::string to_string(Duration d) {
  const std::int64_t ns = d.ns();
  const std::int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns >= 1'000'000'000) return format_double(d.seconds(), " s");
  if (abs_ns >= 1'000'000) return format_double(static_cast<double>(ns) / 1e6, " ms");
  if (abs_ns >= 1'000) return format_double(static_cast<double>(ns) / 1e3, " us");
  return std::to_string(ns) + " ns";
}

std::string to_string(TimePoint t) { return format_double(t.seconds(), " s"); }

std::string to_string(DataSize s) {
  const std::int64_t b = s.bytes();
  const std::int64_t abs_b = b < 0 ? -b : b;
  if (abs_b >= 1024 * 1024) return format_double(s.megabytes(), " MiB");
  if (abs_b >= 1024) return format_double(s.kilobytes(), " KiB");
  return std::to_string(b) + " B";
}

std::string to_string(DataRate r) {
  const double bps = r.bps();
  const double abs_bps = bps < 0 ? -bps : bps;
  if (abs_bps >= 1e9) return format_double(bps / 1e9, " Gb/s");
  if (abs_bps >= 1e6) return format_double(bps / 1e6, " Mb/s");
  if (abs_bps >= 1e3) return format_double(bps / 1e3, " Kb/s");
  return format_double(bps, " b/s");
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << to_string(d); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << to_string(t); }
std::ostream& operator<<(std::ostream& os, DataSize s) { return os << to_string(s); }
std::ostream& operator<<(std::ostream& os, DataRate r) { return os << to_string(r); }

}  // namespace fobs::util
