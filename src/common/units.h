// Strong types for time, data size, and data rate.
//
// All simulation code uses these types instead of raw integers so that a
// bandwidth can never be added to a duration and unit conversions are
// explicit. Time is kept as signed 64-bit nanoseconds, sizes as signed
// 64-bit bytes, and rates as double bits-per-second (rates are the result
// of division and do not need exactness).
#pragma once

#include <cmath>
#include <compare>
#include <type_traits>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace fobs::util {

/// A span of simulated time. Nanosecond resolution, signed.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1000}; }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Builds a duration from a floating-point number of seconds, rounding
  /// to the nearest nanosecond.
  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t us() const { return ns_ / 1000; }
  [[nodiscard]] constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration other) { ns_ += other.ns_; return *this; }
  constexpr Duration& operator-=(Duration other) { ns_ -= other.ns_; return *this; }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  template <typename Int>
    requires std::is_integral_v<Int>
  friend constexpr Duration operator*(Duration a, Int k) {
    return Duration{a.ns_ * static_cast<std::int64_t>(k)};
  }
  template <typename Int>
    requires std::is_integral_v<Int>
  friend constexpr Duration operator*(Int k, Duration a) {
    return a * k;
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  template <typename Int>
    requires std::is_integral_v<Int>
  friend constexpr Duration operator/(Duration a, Int k) {
    return Duration{a.ns_ / static_cast<std::int64_t>(k)};
  }
  /// Ratio of two durations as a double; denominator must be non-zero.
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock (nanoseconds since start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t us() const { return ns_ / 1000; }
  [[nodiscard]] constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.ns()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ns_ - d.ns()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanoseconds(a.ns_ - b.ns_);
  }

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// A quantity of data in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bytes(std::int64_t b) { return DataSize{b}; }
  [[nodiscard]] static constexpr DataSize kilobytes(std::int64_t kb) { return DataSize{kb * 1024}; }
  [[nodiscard]] static constexpr DataSize megabytes(std::int64_t mb) {
    return DataSize{mb * 1024 * 1024};
  }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize{0}; }

  [[nodiscard]] constexpr std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] constexpr std::int64_t bits() const { return bytes_ * 8; }
  [[nodiscard]] constexpr double kilobytes() const { return static_cast<double>(bytes_) / 1024.0; }
  [[nodiscard]] constexpr double megabytes() const {
    return static_cast<double>(bytes_) / (1024.0 * 1024.0);
  }

  constexpr auto operator<=>(const DataSize&) const = default;

  constexpr DataSize& operator+=(DataSize other) { bytes_ += other.bytes_; return *this; }
  constexpr DataSize& operator-=(DataSize other) { bytes_ -= other.bytes_; return *this; }
  friend constexpr DataSize operator+(DataSize a, DataSize b) { return DataSize{a.bytes_ + b.bytes_}; }
  friend constexpr DataSize operator-(DataSize a, DataSize b) { return DataSize{a.bytes_ - b.bytes_}; }
  friend constexpr DataSize operator*(DataSize a, std::int64_t k) { return DataSize{a.bytes_ * k}; }
  friend constexpr DataSize operator*(std::int64_t k, DataSize a) { return DataSize{a.bytes_ * k}; }
  friend constexpr double operator/(DataSize a, DataSize b) {
    return static_cast<double>(a.bytes_) / static_cast<double>(b.bytes_);
  }

 private:
  explicit constexpr DataSize(std::int64_t b) : bytes_(b) {}
  std::int64_t bytes_ = 0;
};

/// A data rate in bits per second.
///
/// Network link speeds use decimal prefixes (100 Mb/s == 1e8 bit/s), which
/// matches how the paper quotes its 100 Mb/s NICs and the 622 Mb/s OC-12.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bits_per_second(double bps) { return DataRate{bps}; }
  [[nodiscard]] static constexpr DataRate kilobits_per_second(double kbps) {
    return DataRate{kbps * 1e3};
  }
  [[nodiscard]] static constexpr DataRate megabits_per_second(double mbps) {
    return DataRate{mbps * 1e6};
  }
  [[nodiscard]] static constexpr DataRate gigabits_per_second(double gbps) {
    return DataRate{gbps * 1e9};
  }
  [[nodiscard]] static constexpr DataRate zero() { return DataRate{0.0}; }

  [[nodiscard]] constexpr double bps() const { return bps_; }
  [[nodiscard]] constexpr double mbps() const { return bps_ / 1e6; }
  [[nodiscard]] constexpr double bytes_per_second() const { return bps_ / 8.0; }

  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0.0; }

  constexpr auto operator<=>(const DataRate&) const = default;

  friend constexpr DataRate operator*(DataRate r, double k) { return DataRate{r.bps_ * k}; }
  friend constexpr DataRate operator*(double k, DataRate r) { return DataRate{r.bps_ * k}; }
  friend constexpr DataRate operator/(DataRate r, double k) { return DataRate{r.bps_ / k}; }
  friend constexpr double operator/(DataRate a, DataRate b) { return a.bps_ / b.bps_; }
  friend constexpr DataRate operator+(DataRate a, DataRate b) { return DataRate{a.bps_ + b.bps_}; }
  friend constexpr DataRate operator-(DataRate a, DataRate b) { return DataRate{a.bps_ - b.bps_}; }

 private:
  explicit constexpr DataRate(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

/// Time taken to serialize `size` onto a link of rate `rate`.
/// A zero rate means "infinitely fast" and yields a zero duration.
[[nodiscard]] constexpr Duration transmission_time(DataSize size, DataRate rate) {
  if (rate.is_zero()) return Duration::zero();
  return Duration::from_seconds(static_cast<double>(size.bits()) / rate.bps());
}

/// Average rate achieved when `size` is moved in `elapsed` time.
[[nodiscard]] constexpr DataRate rate_of(DataSize size, Duration elapsed) {
  if (elapsed <= Duration::zero()) return DataRate::zero();
  return DataRate::bits_per_second(static_cast<double>(size.bits()) / elapsed.seconds());
}

/// Ideal bandwidth-delay product: how much data fits "in flight".
[[nodiscard]] constexpr DataSize bandwidth_delay_product(DataRate rate, Duration rtt) {
  return DataSize::bytes(static_cast<std::int64_t>(rate.bytes_per_second() * rtt.seconds()));
}

std::string to_string(Duration d);
std::string to_string(TimePoint t);
std::string to_string(DataSize s);
std::string to_string(DataRate r);

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);
std::ostream& operator<<(std::ostream& os, DataSize s);
std::ostream& operator<<(std::ostream& os, DataRate r);

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::microseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::milliseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
constexpr DataSize operator""_B(unsigned long long v) {
  return DataSize::bytes(static_cast<std::int64_t>(v));
}
constexpr DataSize operator""_KiB(unsigned long long v) {
  return DataSize::kilobytes(static_cast<std::int64_t>(v));
}
constexpr DataSize operator""_MiB(unsigned long long v) {
  return DataSize::megabytes(static_cast<std::int64_t>(v));
}
constexpr DataRate operator""_Mbps(unsigned long long v) {
  return DataRate::megabits_per_second(static_cast<double>(v));
}
constexpr DataRate operator""_Mbps(long double v) {
  return DataRate::megabits_per_second(static_cast<double>(v));
}
constexpr DataRate operator""_Gbps(unsigned long long v) {
  return DataRate::gigabits_per_second(static_cast<double>(v));
}
}  // namespace literals

}  // namespace fobs::util
