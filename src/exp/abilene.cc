#include "exp/abilene.h"

#include <cassert>

namespace fobs::exp {

using fobs::host::Host;
using fobs::host::HostConfig;
using fobs::sim::LinkConfig;
using fobs::util::Rng;

const char* to_string(AbilenePop pop) {
  switch (pop) {
    case AbilenePop::kSeattle: return "STTL";
    case AbilenePop::kSunnyvale: return "SNVA";
    case AbilenePop::kLosAngeles: return "LOSA";
    case AbilenePop::kDenver: return "DNVR";
    case AbilenePop::kKansasCity: return "KSCY";
    case AbilenePop::kHouston: return "HSTN";
    case AbilenePop::kIndianapolis: return "IPLS";
    case AbilenePop::kAtlanta: return "ATLA";
    case AbilenePop::kCleveland: return "CLEV";
    case AbilenePop::kNewYork: return "NYCM";
    case AbilenePop::kWashington: return "WASH";
  }
  return "?";
}

const char* to_string(Site site) {
  switch (site) {
    case Site::kAnl: return "ANL";
    case Site::kLcse: return "LCSE";
    case Site::kCacr: return "CACR";
    case Site::kNcsa: return "NCSA";
  }
  return "?";
}

namespace {

constexpr double kOc48Mbps = 2488.0;
constexpr std::int64_t kBackboneQueueBytes = 8 * 1024 * 1024;

constexpr int pop_index(AbilenePop pop) { return static_cast<int>(pop); }

}  // namespace

AbileneNetwork::AbileneNetwork(std::uint64_t seed) : rng_(seed) {
  network_ = std::make_unique<fobs::sim::Network>(sim_);
  build_backbone(seed);
  attach_sites();
  install_routes();
}

void AbileneNetwork::build_backbone(std::uint64_t seed) {
  (void)seed;
  auto& net = *network_;
  for (int i = 0; i < kAbilenePopCount; ++i) {
    pops_[static_cast<std::size_t>(i)] =
        &net.add_router(to_string(static_cast<AbilenePop>(i)));
    pop_sinks_.push_back(
        &net.add_blackhole(std::string(to_string(static_cast<AbilenePop>(i))) + "-sink"));
  }

  // 2002 Abilene OC-48 segments with approximate one-way delays.
  using P = AbilenePop;
  const std::vector<PopLink> segments = {
      {pop_index(P::kSeattle), pop_index(P::kSunnyvale), Duration::milliseconds(9)},
      {pop_index(P::kSeattle), pop_index(P::kDenver), Duration::milliseconds(13)},
      {pop_index(P::kSunnyvale), pop_index(P::kLosAngeles), Duration::milliseconds(4)},
      {pop_index(P::kSunnyvale), pop_index(P::kDenver), Duration::milliseconds(11)},
      {pop_index(P::kLosAngeles), pop_index(P::kHouston), Duration::milliseconds(15)},
      {pop_index(P::kDenver), pop_index(P::kKansasCity), Duration::milliseconds(6)},
      {pop_index(P::kKansasCity), pop_index(P::kHouston), Duration::milliseconds(8)},
      {pop_index(P::kKansasCity), pop_index(P::kIndianapolis), Duration::milliseconds(6)},
      {pop_index(P::kHouston), pop_index(P::kAtlanta), Duration::milliseconds(9)},
      {pop_index(P::kIndianapolis), pop_index(P::kAtlanta), Duration::milliseconds(6)},
      {pop_index(P::kIndianapolis), pop_index(P::kCleveland), Duration::milliseconds(4)},
      {pop_index(P::kAtlanta), pop_index(P::kWashington), Duration::milliseconds(7)},
      {pop_index(P::kCleveland), pop_index(P::kNewYork), Duration::milliseconds(5)},
      {pop_index(P::kNewYork), pop_index(P::kWashington), Duration::milliseconds(3)},
  };

  auto add_direction = [&](int from, int to, Duration delay) {
    LinkConfig cfg;
    cfg.name = std::string(to_string(static_cast<AbilenePop>(from))) + "->" +
               to_string(static_cast<AbilenePop>(to));
    cfg.rate = DataRate::megabits_per_second(kOc48Mbps);
    cfg.propagation_delay = delay;
    cfg.queue_capacity_bytes = kBackboneQueueBytes;
    auto& link = network_->add_link(cfg);
    link.set_sink(pops_[static_cast<std::size_t>(to)]);
    links_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] = &link;
  };
  for (const auto& segment : segments) {
    add_direction(segment.a, segment.b, segment.delay);
    add_direction(segment.b, segment.a, segment.delay);
  }

  // All-pairs shortest paths by delay (Floyd–Warshall; 11 nodes).
  constexpr auto kInf = Duration::max();
  for (int i = 0; i < kAbilenePopCount; ++i) {
    for (int j = 0; j < kAbilenePopCount; ++j) {
      pop_delay_[i][j] = i == j ? Duration::zero() : kInf;
      next_hop_[i][j] = -1;
    }
  }
  for (const auto& segment : segments) {
    pop_delay_[segment.a][segment.b] = segment.delay;
    pop_delay_[segment.b][segment.a] = segment.delay;
    next_hop_[segment.a][segment.b] = segment.b;
    next_hop_[segment.b][segment.a] = segment.a;
  }
  for (int k = 0; k < kAbilenePopCount; ++k) {
    for (int i = 0; i < kAbilenePopCount; ++i) {
      if (pop_delay_[i][k] == kInf) continue;
      for (int j = 0; j < kAbilenePopCount; ++j) {
        if (pop_delay_[k][j] == kInf) continue;
        const Duration through = pop_delay_[i][k] + pop_delay_[k][j];
        if (through < pop_delay_[i][j]) {
          pop_delay_[i][j] = through;
          next_hop_[i][j] = next_hop_[i][k];
        }
      }
    }
  }
}

void AbileneNetwork::attach_sites() {
  using P = AbilenePop;
  // Access delays are tuned so ANL<->LCSE ~ 26 ms RTT and
  // ANL<->CACR ~ 65 ms RTT, as measured in the paper.
  site_specs_ = {
      {Site::kAnl, P::kIndianapolis, DataRate::megabits_per_second(100),
       Duration::microseconds(3500), desktop_pc_cpu()},
      {Site::kLcse, P::kKansasCity, DataRate::gigabits_per_second(1),
       Duration::microseconds(3500), desktop_pc_cpu()},
      {Site::kCacr, P::kLosAngeles, DataRate::megabits_per_second(100),
       Duration::milliseconds(2), fast_server_cpu()},
      {Site::kNcsa, P::kIndianapolis, DataRate::gigabits_per_second(1),
       Duration::milliseconds(2), slow_gige_receiver_cpu()},
  };

  for (const auto& spec : site_specs_) {
    HostConfig config;
    config.name = to_string(spec.site);
    config.cpu = spec.cpu;
    auto& host = Host::create(*network_, config);
    auto* pop = pops_[static_cast<std::size_t>(pop_index(spec.attachment))];

    LinkConfig up;
    up.name = std::string(to_string(spec.site)) + "->pop";
    up.rate = spec.nic;
    up.propagation_delay = spec.access_delay;
    up.queue_capacity_bytes = 256 * 1024;
    auto& uplink = network_->add_link(up);
    uplink.set_sink(pop);
    host.set_egress(&uplink);

    LinkConfig down = up;
    down.name = std::string("pop->") + to_string(spec.site);
    auto& downlink = network_->add_link(down);
    downlink.set_sink(&host);
    pop->add_route(host.id(), &downlink);

    site_hosts_.push_back(&host);
  }
}

void AbileneNetwork::install_routes() {
  // Every PoP can reach every site host and every PoP sink: forward
  // toward the destination's attachment PoP along the shortest path.
  for (int from = 0; from < kAbilenePopCount; ++from) {
    auto* router = pops_[static_cast<std::size_t>(from)];
    for (std::size_t s = 0; s < site_specs_.size(); ++s) {
      const int attach = pop_index(site_specs_[s].attachment);
      if (attach == from) continue;  // local delivery installed in attach_sites
      const int next = next_hop_[from][attach];
      assert(next >= 0);
      router->add_route(site_hosts_[s]->id(), backbone_link(from, next));
    }
    for (int to = 0; to < kAbilenePopCount; ++to) {
      auto* sink = pop_sinks_[static_cast<std::size_t>(to)];
      if (to == from) {
        router->add_route(sink->id(), sink);
      } else {
        const int next = next_hop_[from][to];
        assert(next >= 0);
        router->add_route(sink->id(), backbone_link(from, next));
      }
    }
  }
}

fobs::sim::Link* AbileneNetwork::backbone_link(int from, int to) {
  auto* link = links_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  assert(link != nullptr);
  return link;
}

Host& AbileneNetwork::site_host(Site site) {
  for (std::size_t s = 0; s < site_specs_.size(); ++s) {
    if (site_specs_[s].site == site) return *site_hosts_[s];
  }
  assert(false && "unknown site");
  return *site_hosts_[0];
}

Duration AbileneNetwork::path_delay(Site a, Site b) const {
  const SiteSpec* sa = nullptr;
  const SiteSpec* sb = nullptr;
  for (const auto& spec : site_specs_) {
    if (spec.site == a) sa = &spec;
    if (spec.site == b) sb = &spec;
  }
  assert(sa != nullptr && sb != nullptr);
  return sa->access_delay + pop_delay_[pop_index(sa->attachment)][pop_index(sb->attachment)] +
         sb->access_delay;
}

int AbileneNetwork::backbone_hops(Site a, Site b) const {
  const SiteSpec* sa = nullptr;
  const SiteSpec* sb = nullptr;
  for (const auto& spec : site_specs_) {
    if (spec.site == a) sa = &spec;
    if (spec.site == b) sb = &spec;
  }
  int from = pop_index(sa->attachment);
  const int to = pop_index(sb->attachment);
  int hops = 0;
  while (from != to) {
    from = next_hop_[from][to];
    ++hops;
    assert(hops <= kAbilenePopCount);
  }
  return hops;
}

void AbileneNetwork::add_background_traffic(int flows, DataRate peak, Duration mean_on,
                                            Duration mean_off) {
  for (int i = 0; i < flows; ++i) {
    const int from = static_cast<int>(rng_.uniform_int(0, kAbilenePopCount - 1));
    int to = static_cast<int>(rng_.uniform_int(0, kAbilenePopCount - 2));
    if (to >= from) ++to;
    const int next = next_hop_[from][to];
    auto source = std::make_unique<fobs::sim::OnOffSource>(
        sim_, *backbone_link(from, next), network_->next_node_id(),
        pop_sinks_[static_cast<std::size_t>(to)]->id(), 1000, peak, mean_on, mean_off,
        rng_.fork());
    source->start();
    background_.push_back(std::move(source));
  }
}

void AbileneNetwork::set_backbone_loss(double per_fragment_loss) {
  for (int a = 0; a < kAbilenePopCount; ++a) {
    for (int b = 0; b < kAbilenePopCount; ++b) {
      auto* link = links_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      if (link == nullptr) continue;
      link->set_loss_model(std::make_unique<fobs::sim::BernoulliLoss>(per_fragment_loss),
                           rng_.fork());
    }
  }
}

}  // namespace fobs::exp
