// The Abilene backbone (circa 2002) as a full multi-hop topology.
//
// The paper's dumbbell testbeds abstract the real network into a single
// bottleneck. This module builds the actual thing — the eleven Abilene
// core routers with their OC-48 links, the four measurement sites hung
// off them through access links, and delay-based shortest-path routing —
// so that the dumbbell reduction can be *validated*: a FOBS or TCP
// transfer across the routed backbone should match the corresponding
// dumbbell result (tests/test_abilene.cc, bench_ext_abilene).
//
// Geography is approximated; the access-link delays are tuned so the
// end-to-end RTTs match the paper's measurements (~26 ms ANL<->LCSE,
// ~65 ms ANL<->CACR).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/testbeds.h"
#include "host/host.h"
#include "sim/cross_traffic.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs::exp {

/// The eleven 2002 Abilene core nodes.
enum class AbilenePop : int {
  kSeattle = 0,
  kSunnyvale,
  kLosAngeles,
  kDenver,
  kKansasCity,
  kHouston,
  kIndianapolis,
  kAtlanta,
  kCleveland,
  kNewYork,
  kWashington,
};
inline constexpr int kAbilenePopCount = 11;

[[nodiscard]] const char* to_string(AbilenePop pop);

/// The paper's four measurement sites.
enum class Site { kAnl, kLcse, kCacr, kNcsa };
[[nodiscard]] const char* to_string(Site site);

struct SiteSpec {
  Site site;
  AbilenePop attachment;       ///< backbone PoP the site connects through
  DataRate nic;                ///< site NIC / campus egress rate
  Duration access_delay;       ///< one-way site<->PoP delay
  fobs::host::CpuModel cpu;
};

class AbileneNetwork {
 public:
  explicit AbileneNetwork(std::uint64_t seed = 42);

  AbileneNetwork(const AbileneNetwork&) = delete;
  AbileneNetwork& operator=(const AbileneNetwork&) = delete;

  [[nodiscard]] fobs::sim::Simulation& sim() { return sim_; }
  [[nodiscard]] fobs::sim::Network& network() { return *network_; }
  [[nodiscard]] fobs::host::Host& site_host(Site site);

  /// One-way propagation along the routed path (access + backbone).
  [[nodiscard]] Duration path_delay(Site a, Site b) const;
  /// Number of backbone hops between two sites' attachment points.
  [[nodiscard]] int backbone_hops(Site a, Site b) const;

  /// Starts `flows` on/off background flows between random PoP pairs,
  /// routed like real traffic (they share queues with the transfers).
  void add_background_traffic(int flows, DataRate peak, Duration mean_on, Duration mean_off);

  /// Uniform random loss on every backbone link (per fragment).
  void set_backbone_loss(double per_fragment_loss);

 private:
  struct PopLink {
    int a;
    int b;
    Duration delay;
  };

  void build_backbone(std::uint64_t seed);
  void attach_sites();
  void install_routes();
  [[nodiscard]] fobs::sim::Link* backbone_link(int from, int to);

  fobs::sim::Simulation sim_;
  std::unique_ptr<fobs::sim::Network> network_;
  fobs::util::Rng rng_;
  std::array<fobs::sim::Router*, kAbilenePopCount> pops_{};
  // links_[a][b] = link from PoP a to PoP b (nullptr when not adjacent)
  std::array<std::array<fobs::sim::Link*, kAbilenePopCount>, kAbilenePopCount> links_{};
  // Delay-based shortest paths: next_hop_[from][to] = next PoP index.
  std::array<std::array<int, kAbilenePopCount>, kAbilenePopCount> next_hop_{};
  std::array<std::array<Duration, kAbilenePopCount>, kAbilenePopCount> pop_delay_{};
  std::vector<SiteSpec> site_specs_;
  std::vector<fobs::host::Host*> site_hosts_;
  std::vector<fobs::sim::BlackholeNode*> pop_sinks_;
  std::vector<std::unique_ptr<fobs::sim::CrossTrafficSource>> background_;
};

}  // namespace fobs::exp
