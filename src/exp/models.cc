#include "exp/models.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fobs/types.h"
#include "sim/packet.h"

namespace fobs::exp::models {

DataRate tcp_window_limited(DataSize window, Duration rtt) {
  assert(rtt > Duration::zero());
  return fobs::util::rate_of(window, rtt);
}

DataRate tcp_mathis(std::int64_t mss_bytes, Duration rtt, double loss, double c) {
  assert(loss > 0.0);
  assert(rtt > Duration::zero());
  const double bytes_per_second =
      static_cast<double>(mss_bytes) / rtt.seconds() * c / std::sqrt(loss);
  return DataRate::bits_per_second(bytes_per_second * 8.0);
}

Duration slow_start_time(DataSize initial, DataSize target, Duration rtt, double per_rtt) {
  assert(per_rtt > 1.0);
  if (initial.bytes() <= 0 || target <= initial) return Duration::zero();
  const double rtts = std::log(target / initial) / std::log(per_rtt);
  return rtt * rtts;
}

DataRate receiver_cpu_ceiling(const fobs::host::CpuModel& cpu, DataSize payload) {
  const Duration per_packet = cpu.recv_cost(payload);
  if (per_packet <= Duration::zero()) return DataRate::zero();
  return fobs::util::rate_of(payload, per_packet);
}

DataRate receiver_cpu_ceiling_with_acks(const fobs::host::CpuModel& cpu, DataSize payload,
                                        std::int64_t ack_frequency) {
  assert(ack_frequency > 0);
  const Duration per_packet =
      cpu.recv_cost(payload) + cpu.ack_build / ack_frequency;
  if (per_packet <= Duration::zero()) return DataRate::zero();
  return fobs::util::rate_of(payload, per_packet);
}

DataRate sender_cpu_ceiling(const fobs::host::CpuModel& cpu, DataSize payload) {
  const Duration per_packet = cpu.send_cost(payload);
  if (per_packet <= Duration::zero()) return DataRate::zero();
  return fobs::util::rate_of(payload, per_packet);
}

FobsPrediction fobs_throughput(DataRate bottleneck, const fobs::host::CpuModel& sender_cpu,
                               const fobs::host::CpuModel& receiver_cpu,
                               std::int64_t packet_bytes, std::int64_t ack_frequency) {
  const DataSize on_host =
      DataSize::bytes(packet_bytes + fobs::core::kDataHeaderBytes);
  // Wire carries headers too; goodput over the bottleneck is derated by
  // the payload share of the wire size.
  const double payload_share =
      static_cast<double>(packet_bytes) /
      static_cast<double>(packet_bytes + fobs::core::kDataHeaderBytes +
                          fobs::sim::kUdpIpOverheadBytes);
  const DataRate wire = bottleneck * payload_share;
  // CPU ceilings move header+payload per syscall, goodput counts
  // payload only.
  const double host_share = static_cast<double>(packet_bytes) /
                            static_cast<double>(on_host.bytes());
  const DataRate send = sender_cpu_ceiling(sender_cpu, on_host) * host_share;
  const DataRate recv =
      receiver_cpu_ceiling_with_acks(receiver_cpu, on_host, ack_frequency) * host_share;

  FobsPrediction prediction;
  prediction.goodput = std::min({wire, send, recv});
  if (prediction.goodput == wire) {
    prediction.constraint = FobsPrediction::Constraint::kWire;
    prediction.binding_constraint_rate = wire;
  } else if (prediction.goodput == send) {
    prediction.constraint = FobsPrediction::Constraint::kSenderCpu;
    prediction.binding_constraint_rate = send;
  } else {
    prediction.constraint = FobsPrediction::Constraint::kReceiverCpu;
    prediction.binding_constraint_rate = recv;
  }
  return prediction;
}

double endgame_waste_floor(DataRate send_rate, Duration one_way_delay,
                           std::int64_t object_bytes) {
  if (object_bytes <= 0) return 0.0;
  const double stale_bytes = send_rate.bytes_per_second() * one_way_delay.seconds();
  return stale_bytes / static_cast<double>(object_bytes);
}

}  // namespace fobs::exp::models
