// Closed-form performance models.
//
// Every headline number in the paper has a back-of-envelope model; this
// module writes them down so the simulator can be *validated* against
// them (tests/test_models.cc) and so EXPERIMENTS.md discrepancies can
// be attributed. All rates are applications-level goodput.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "host/host.h"

namespace fobs::exp::models {

using fobs::util::DataRate;
using fobs::util::DataSize;
using fobs::util::Duration;

/// Window-limited TCP throughput: window / RTT (Table 1 without LWE).
[[nodiscard]] DataRate tcp_window_limited(DataSize window, Duration rtt);

/// Mathis et al. steady-state TCP throughput under random loss p:
///   rate = MSS / RTT * C / sqrt(p),  C ~ sqrt(3/2) for delayed acks.
[[nodiscard]] DataRate tcp_mathis(std::int64_t mss_bytes, Duration rtt, double loss,
                                  double c = 1.22);

/// Time for TCP slow start to grow cwnd from `initial` to `target`
/// with growth factor `per_rtt` (1.5 with delayed acks, 2 without).
[[nodiscard]] Duration slow_start_time(DataSize initial, DataSize target, Duration rtt,
                                       double per_rtt = 1.5);

/// Receive-path CPU ceiling for a UDP protocol: one datagram of
/// `payload` costs recv_cost(payload); the host can accept at most
/// payload/recv_cost bytes per second (Figure 3's curve).
[[nodiscard]] DataRate receiver_cpu_ceiling(const fobs::host::CpuModel& cpu,
                                            DataSize payload);

/// Same ceiling when every `ack_frequency`-th packet also pays the
/// ACK-construction stall (Figure 1's left edge).
[[nodiscard]] DataRate receiver_cpu_ceiling_with_acks(const fobs::host::CpuModel& cpu,
                                                      DataSize payload,
                                                      std::int64_t ack_frequency);

/// Send-path CPU ceiling (the Table 2 sender cap).
[[nodiscard]] DataRate sender_cpu_ceiling(const fobs::host::CpuModel& cpu, DataSize payload);

/// Expected FOBS goodput as the min of wire, sender-CPU, and
/// receiver-CPU ceilings, derated by the wire overhead per packet.
struct FobsPrediction {
  DataRate goodput;
  DataRate binding_constraint_rate;
  enum class Constraint { kWire, kSenderCpu, kReceiverCpu } constraint;
};
[[nodiscard]] FobsPrediction fobs_throughput(DataRate bottleneck,
                                             const fobs::host::CpuModel& sender_cpu,
                                             const fobs::host::CpuModel& receiver_cpu,
                                             std::int64_t packet_bytes,
                                             std::int64_t ack_frequency);

/// Greedy-endgame waste floor: a sender whose view lags by `one_way`
/// keeps re-sending ~rate*one_way packets it cannot know arrived.
[[nodiscard]] double endgame_waste_floor(DataRate send_rate, Duration one_way_delay,
                                         std::int64_t object_bytes);

}  // namespace fobs::exp::models
