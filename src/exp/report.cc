#include "exp/report.h"

#include <cassert>
#include <cstdlib>
#include <fstream>

namespace fobs::exp {

std::string plot_dir_from_env() {
  const char* dir = std::getenv("FOBS_BENCH_PLOT");
  return dir != nullptr ? dir : "";
}

bool write_plot(const std::string& dir, const PlotSpec& spec) {
  assert(!spec.xs.empty());
  for (const auto& series : spec.series) {
    assert(series.ys.size() == spec.xs.size());
    (void)series;
  }

  const std::string dat_path = dir + "/" + spec.name + ".dat";
  {
    std::ofstream dat(dat_path);
    if (!dat) return false;
    dat << "# x";
    for (const auto& series : spec.series) dat << ' ' << series.label;
    dat << '\n';
    for (std::size_t i = 0; i < spec.xs.size(); ++i) {
      dat << spec.xs[i];
      for (const auto& series : spec.series) dat << ' ' << series.ys[i];
      dat << '\n';
    }
    if (!dat.good()) return false;
  }

  const std::string gp_path = dir + "/" + spec.name + ".gp";
  std::ofstream gp(gp_path);
  if (!gp) return false;
  gp << "set terminal pngcairo size 800,500\n";
  gp << "set output '" << spec.name << ".png'\n";
  gp << "set title '" << spec.title << "'\n";
  gp << "set xlabel '" << spec.xlabel << "'\n";
  gp << "set ylabel '" << spec.ylabel << "'\n";
  gp << "set key bottom right\n";
  gp << "set grid\n";
  if (spec.log_x) gp << "set logscale x 2\n";
  gp << "plot ";
  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    if (s > 0) gp << ", ";
    gp << "'" << spec.name << ".dat' using 1:" << s + 2 << " with linespoints title '"
       << spec.series[s].label << "'";
  }
  gp << '\n';
  return gp.good();
}

}  // namespace fobs::exp
