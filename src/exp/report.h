// Plot-ready output: writes .dat series and a matching gnuplot script
// so every figure bench can regenerate a visual of its curve.
//
// Benches call this when FOBS_BENCH_PLOT=<dir> is set; the user then
// runs `gnuplot <dir>/<name>.gp` to render a PNG.
#pragma once

#include <string>
#include <vector>

namespace fobs::exp {

struct PlotSeries {
  std::string label;
  std::vector<double> ys;
};

struct PlotSpec {
  std::string name;        ///< file stem, e.g. "fig1_ack_frequency"
  std::string title;
  std::string xlabel;
  std::string ylabel;
  bool log_x = false;
  std::vector<double> xs;
  std::vector<PlotSeries> series;
};

/// Writes <dir>/<name>.dat and <dir>/<name>.gp. Returns false on I/O
/// failure (missing directory, permissions).
bool write_plot(const std::string& dir, const PlotSpec& spec);

/// Directory from FOBS_BENCH_PLOT, empty when unset.
[[nodiscard]] std::string plot_dir_from_env();

}  // namespace fobs::exp
