#include "exp/runner.h"

namespace fobs::exp {

fobs::core::SimTransferConfig make_fobs_config(const FobsRunParams& params) {
  fobs::core::SimTransferConfig config;
  config.spec.object_bytes = params.object_bytes;
  config.spec.packet_bytes = params.packet_bytes;
  config.sender.batch_size = params.batch_size;
  config.sender.selection = params.selection;
  config.sender.batch_policy = params.batch_policy;
  config.sender.adaptive = params.adaptive;
  config.receiver.ack_frequency = params.ack_frequency;
  config.receiver_socket_buffer_bytes = params.receiver_socket_buffer_bytes;
  config.carry_data = params.carry_data;
  config.sender_tracer = params.sender_tracer;
  config.receiver_tracer = params.receiver_tracer;
  return config;
}

fobs::core::SimTransferResult run_fobs(const TestbedSpec& spec, const FobsRunParams& params,
                                       std::uint64_t seed) {
  Testbed bed(spec, seed);
  return fobs::core::run_sim_transfer(bed.network(), bed.src(), bed.dst(),
                                      make_fobs_config(params));
}

AveragedFobs run_fobs_averaged(const TestbedSpec& spec, const FobsRunParams& params,
                               const std::vector<std::uint64_t>& seeds) {
  AveragedFobs avg;
  for (std::uint64_t seed : seeds) {
    const auto result = run_fobs(spec, params, seed);
    if (!result.completed) continue;
    avg.fraction += result.fraction_of(spec.max_bandwidth);
    avg.waste += result.waste;
    avg.goodput_mbps += result.goodput_mbps;
    ++avg.completed_runs;
  }
  if (avg.completed_runs > 0) {
    avg.fraction /= avg.completed_runs;
    avg.waste /= avg.completed_runs;
    avg.goodput_mbps /= avg.completed_runs;
  }
  return avg;
}

AveragedTcp run_tcp_averaged(const TestbedSpec& spec, std::int64_t bytes,
                             const fobs::net::TcpConfig& config,
                             const std::vector<std::uint64_t>& seeds) {
  AveragedTcp avg;
  for (std::uint64_t seed : seeds) {
    Testbed bed(spec, seed);
    const auto result =
        fobs::baselines::run_tcp_transfer(bed.network(), bed.src(), bed.dst(), bytes, config);
    if (!result.completed) continue;
    avg.fraction += result.fraction_of(spec.max_bandwidth);
    avg.goodput_mbps += result.goodput_mbps;
    avg.retransmissions += result.retransmissions;
    avg.timeouts += result.timeouts;
    ++avg.completed_runs;
  }
  if (avg.completed_runs > 0) {
    avg.fraction /= avg.completed_runs;
    avg.goodput_mbps /= avg.completed_runs;
  }
  return avg;
}

fobs::baselines::PsocketsResult run_psockets(const TestbedSpec& spec, std::int64_t bytes,
                                             int streams, std::uint64_t seed) {
  Testbed bed(spec, seed);
  return fobs::baselines::run_psockets_transfer(bed.network(), bed.src(), bed.dst(), bytes,
                                                streams,
                                                fobs::baselines::psockets_stream_config());
}

fobs::baselines::RudpResult run_rudp(const TestbedSpec& spec,
                                     const fobs::baselines::RudpConfig& config,
                                     std::uint64_t seed) {
  Testbed bed(spec, seed);
  return fobs::baselines::run_rudp_transfer(bed.network(), bed.src(), bed.dst(), config);
}

fobs::baselines::SabulResult run_sabul(const TestbedSpec& spec,
                                       const fobs::baselines::SabulConfig& config,
                                       std::uint64_t seed) {
  Testbed bed(spec, seed);
  return fobs::baselines::run_sabul_transfer(bed.network(), bed.src(), bed.dst(), config);
}

std::vector<std::uint64_t> default_seeds(int count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) seeds.push_back(static_cast<std::uint64_t>(i + 1));
  return seeds;
}

}  // namespace fobs::exp
