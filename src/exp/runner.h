// Uniform experiment API: run protocol X over paper path Y, get the
// metrics the paper's tables/figures report. Used by the bench binaries
// and the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/psockets.h"
#include "baselines/rudp.h"
#include "baselines/sabul.h"
#include "baselines/tcp_bulk.h"
#include "exp/testbeds.h"
#include "fobs/sim_transfer.h"

namespace fobs::exp {

/// The paper's canonical workload: a 40 MB object in 1024-byte packets.
inline constexpr std::int64_t kPaperObjectBytes = 40ll * 1024 * 1024;
inline constexpr std::int64_t kPaperPacketBytes = 1024;

/// Common result row for cross-protocol comparisons.
struct RunResult {
  std::string protocol;
  bool completed = false;
  double fraction = 0.0;  ///< of the path's max available bandwidth
  double goodput_mbps = 0.0;
  double elapsed_s = 0.0;
  double waste = -1.0;  ///< <0 when the metric does not apply (TCP)
  std::string detail;   ///< protocol-specific extras for the table
};

struct FobsRunParams {
  std::int64_t object_bytes = kPaperObjectBytes;
  std::int64_t packet_bytes = kPaperPacketBytes;
  std::int64_t ack_frequency = 64;
  int batch_size = 2;
  fobs::core::SelectionKind selection = fobs::core::SelectionKind::kCircular;
  fobs::core::BatchPolicy batch_policy = fobs::core::BatchPolicy::kFixed;
  std::int64_t receiver_socket_buffer_bytes = 64 * 1024;
  bool carry_data = false;  ///< benches default to size-only for speed
  fobs::core::AdaptiveConfig adaptive;  ///< §7 extension, off by default
  /// Optional telemetry tracers (must outlive the run).
  fobs::telemetry::EventTracer* sender_tracer = nullptr;
  fobs::telemetry::EventTracer* receiver_tracer = nullptr;
};

/// Builds the SimTransferConfig corresponding to FobsRunParams.
[[nodiscard]] fobs::core::SimTransferConfig make_fobs_config(const FobsRunParams& params);

/// One FOBS transfer on a fresh testbed; returns the full result.
fobs::core::SimTransferResult run_fobs(const TestbedSpec& spec, const FobsRunParams& params,
                                       std::uint64_t seed = 42);

/// Averages `fraction`/`waste` over several seeds (network conditions in
/// the paper varied run to run; so do ours).
struct AveragedFobs {
  double fraction = 0.0;
  double waste = 0.0;
  double goodput_mbps = 0.0;
  int completed_runs = 0;
};
AveragedFobs run_fobs_averaged(const TestbedSpec& spec, const FobsRunParams& params,
                               const std::vector<std::uint64_t>& seeds);

/// TCP transfer averaged across seeds.
struct AveragedTcp {
  double fraction = 0.0;
  double goodput_mbps = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  int completed_runs = 0;
};
AveragedTcp run_tcp_averaged(const TestbedSpec& spec, std::int64_t bytes,
                             const fobs::net::TcpConfig& config,
                             const std::vector<std::uint64_t>& seeds);

/// PSockets with a given stream count on a fresh testbed.
fobs::baselines::PsocketsResult run_psockets(const TestbedSpec& spec, std::int64_t bytes,
                                             int streams, std::uint64_t seed = 42);

/// RUDP / SABUL on fresh testbeds.
fobs::baselines::RudpResult run_rudp(const TestbedSpec& spec,
                                     const fobs::baselines::RudpConfig& config,
                                     std::uint64_t seed = 42);
fobs::baselines::SabulResult run_sabul(const TestbedSpec& spec,
                                       const fobs::baselines::SabulConfig& config,
                                       std::uint64_t seed = 42);

/// Default seed set used by the benches.
[[nodiscard]] std::vector<std::uint64_t> default_seeds(int count = 5);

}  // namespace fobs::exp
