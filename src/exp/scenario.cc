#include "exp/scenario.h"

#include <cassert>

namespace fobs::exp {

using fobs::sim::OnOffSource;
using fobs::util::Rng;

bool ScheduledLoss::should_drop(const fobs::sim::Packet& packet, fobs::util::Rng& rng) {
  if (p_ <= 0.0) return false;
  const std::int64_t frags = fobs::sim::fragment_count(packet.size_bytes, mtu_);
  for (std::int64_t i = 0; i < frags; ++i) {
    if (rng.bernoulli(p_)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Prebuilt scenarios
// ---------------------------------------------------------------------------

namespace {

TestbedSpec contended_base() {
  auto spec = spec_for(PathId::kGigabitContended);
  // Scenario phases inject all cross traffic and loss themselves.
  spec.cross_sources = 0;
  spec.fwd_loss = 0.0;
  spec.rev_loss = 0.0;
  return spec;
}

}  // namespace

Scenario scenario_clean_long_haul() {
  Scenario scenario;
  scenario.name = "clean-long-haul";
  scenario.base = spec_for(PathId::kLongHaul);
  scenario.base.fwd_loss = 0.0;
  scenario.base.rev_loss = 0.0;
  return scenario;
}

Scenario scenario_steady_contention() {
  Scenario scenario;
  scenario.name = "steady-contention";
  scenario.base = contended_base();
  scenario.traffic.push_back(TrafficPhase{.sources = 5,
                                          .peak = DataRate::megabits_per_second(100)});
  scenario.loss.push_back(LossPhase{.per_fragment_loss = 1e-5});
  return scenario;
}

Scenario scenario_congestion_episode() {
  Scenario scenario;
  scenario.name = "congestion-episode";
  scenario.base = contended_base();
  // Background load throughout...
  scenario.traffic.push_back(TrafficPhase{.sources = 3,
                                          .peak = DataRate::megabits_per_second(100)});
  // ...plus a hot 2-second episode early in the transfer.
  scenario.traffic.push_back(TrafficPhase{.start = Duration::milliseconds(500),
                                          .stop = Duration::milliseconds(2500),
                                          .sources = 8,
                                          .peak = DataRate::megabits_per_second(150)});
  return scenario;
}

Scenario scenario_flash_crowd() {
  Scenario scenario;
  scenario.name = "flash-crowd";
  scenario.base = contended_base();
  // Load ramps up in three steps, like an audience arriving.
  for (int step = 0; step < 3; ++step) {
    scenario.traffic.push_back(
        TrafficPhase{.start = Duration::seconds(step),
                     .sources = 2,
                     .peak = DataRate::megabits_per_second(120)});
  }
  return scenario;
}

Scenario scenario_lossy_wan() {
  Scenario scenario;
  scenario.name = "lossy-wan";
  scenario.base = spec_for(PathId::kLongHaul);
  scenario.base.fwd_loss = 0.0;
  // Loss comes and goes in weather fronts.
  scenario.loss.push_back(LossPhase{.start = Duration::zero(),
                                    .stop = Duration::seconds(1),
                                    .per_fragment_loss = 1e-4});
  scenario.loss.push_back(LossPhase{.start = Duration::seconds(1),
                                    .stop = Duration::seconds(2),
                                    .per_fragment_loss = 2e-3});
  scenario.loss.push_back(LossPhase{.start = Duration::seconds(2),
                                    .per_fragment_loss = 5e-5});
  return scenario;
}

std::vector<Scenario> all_scenarios() {
  return {scenario_clean_long_haul(), scenario_steady_contention(),
          scenario_congestion_episode(), scenario_flash_crowd(), scenario_lossy_wan()};
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

ScenarioRuntime::ScenarioRuntime(const Scenario& scenario, std::uint64_t seed)
    : scenario_(scenario), testbed_(std::make_unique<Testbed>(scenario.base, seed)) {
  auto& sim = testbed_->sim();
  auto& net = testbed_->network();
  Rng rng(seed ^ 0x5CE7A710);

  // Install the scheduled loss model on the forward backbone and arm
  // the loss phases.
  if (!scenario_.loss.empty()) {
    auto loss = std::make_unique<ScheduledLoss>();
    loss_ = loss.get();
    testbed_->backbone().set_loss_model(std::move(loss), rng.fork());
    for (const auto& phase : scenario_.loss) {
      const double p = phase.per_fragment_loss;
      sim.schedule_in(phase.start, [this, p] { loss_->set_probability(p); });
      if (phase.stop < Duration::max()) {
        sim.schedule_in(phase.stop, [this] { loss_->set_probability(0.0); });
      }
    }
  }

  // Arm the traffic phases.
  for (const auto& phase : scenario_.traffic) {
    for (int i = 0; i < phase.sources; ++i) {
      auto source = std::make_unique<OnOffSource>(
          sim, testbed_->backbone(), net.next_node_id(), testbed_->cross_sink().id(),
          phase.packet_bytes, phase.peak, phase.mean_on, phase.mean_off, rng.fork());
      auto* raw = source.get();
      if (phase.start <= Duration::zero()) {
        raw->start();
      } else {
        sim.schedule_in(phase.start, [raw] { raw->start(); });
      }
      if (phase.stop < Duration::max()) {
        sim.schedule_in(phase.stop, [raw] { raw->stop(); });
      }
      sources_.push_back(std::move(source));
    }
  }
}

std::uint64_t ScenarioRuntime::cross_packets_offered() const {
  std::uint64_t total = 0;
  for (const auto& source : sources_) total += source->stats().packets_sent;
  return total;
}

}  // namespace fobs::exp
