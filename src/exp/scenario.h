// Scripted network scenarios: identical, replayable load and loss
// traces for controlled protocol comparisons.
//
// The paper closes on exactly this need: "since network conditions are
// constantly changing it is very difficult to find windows of time when
// two or more approaches can be compared in a meaningful way. For this
// reason, we are also engaged in the development of simulation models
// that can be used to compare the various algorithms under similar
// (albeit simulated) loads and traffic mixes." A Scenario is such a
// model: a base testbed plus time-phased cross traffic and loss, driven
// deterministically from a seed, so every protocol experiences the
// *same* network weather.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/testbeds.h"
#include "sim/loss.h"

namespace fobs::exp {

/// A burst of on/off cross-traffic sources active during [start, stop).
struct TrafficPhase {
  Duration start = Duration::zero();
  Duration stop = Duration::max();
  int sources = 1;
  DataRate peak = DataRate::megabits_per_second(100);
  Duration mean_on = Duration::milliseconds(40);
  Duration mean_off = Duration::milliseconds(120);
  std::int64_t packet_bytes = 1000;
};

/// Random per-fragment loss on the forward backbone during [start, stop).
struct LossPhase {
  Duration start = Duration::zero();
  Duration stop = Duration::max();
  double per_fragment_loss = 0.0;
};

struct Scenario {
  std::string name;
  TestbedSpec base;
  std::vector<TrafficPhase> traffic;
  std::vector<LossPhase> loss;
};

/// Prebuilt scenarios for the controlled-comparison bench.
[[nodiscard]] Scenario scenario_clean_long_haul();
[[nodiscard]] Scenario scenario_steady_contention();
[[nodiscard]] Scenario scenario_congestion_episode();
[[nodiscard]] Scenario scenario_flash_crowd();
[[nodiscard]] Scenario scenario_lossy_wan();
[[nodiscard]] std::vector<Scenario> all_scenarios();

/// Loss model whose probability can be changed while the simulation
/// runs (phases flip it); fragmentation-aware like BernoulliLoss.
class ScheduledLoss final : public fobs::sim::LossModel {
 public:
  explicit ScheduledLoss(std::int64_t mtu_bytes = 1500) : mtu_(mtu_bytes) {}

  void set_probability(double p) { p_ = p; }
  [[nodiscard]] double probability() const { return p_; }

  bool should_drop(const fobs::sim::Packet& packet, fobs::util::Rng& rng) override;

 private:
  double p_ = 0.0;
  std::int64_t mtu_;
};

/// Instantiates a scenario on a fresh Testbed: builds the topology,
/// installs the scheduled loss model, and arms every phase. Keep the
/// runtime alive while the simulation runs.
class ScenarioRuntime {
 public:
  ScenarioRuntime(const Scenario& scenario, std::uint64_t seed);

  [[nodiscard]] Testbed& testbed() { return *testbed_; }
  [[nodiscard]] const Scenario& scenario() const { return scenario_; }
  /// Cross-traffic packets offered so far across all phases.
  [[nodiscard]] std::uint64_t cross_packets_offered() const;

 private:
  Scenario scenario_;
  std::unique_ptr<Testbed> testbed_;
  ScheduledLoss* loss_ = nullptr;  // owned by the backbone link
  std::vector<std::unique_ptr<fobs::sim::CrossTrafficSource>> sources_;
};

}  // namespace fobs::exp
