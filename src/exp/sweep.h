// Parallel parameter-sweep engine.
//
// Every simulation run is an independent, deterministic function of its
// parameters and seed, so sweeps parallelize embarrassingly well: each
// worker owns a whole Simulation. The engine preserves input order in
// the output regardless of completion order.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.h"

namespace fobs::exp {

/// Runs `fn(param)` for each parameter across a thread pool and returns
/// the results in input order.
template <typename Param, typename Result>
std::vector<Result> sweep(const std::vector<Param>& params,
                          const std::function<Result(const Param&)>& fn,
                          std::size_t threads = 0) {
  fobs::util::ThreadPool pool(threads);
  std::vector<Result> results(params.size());
  pool.parallel_for(params.size(),
                    [&](std::size_t i) { results[i] = fn(params[i]); });
  return results;
}

/// Cartesian product helper for two-axis sweeps.
template <typename A, typename B>
std::vector<std::pair<A, B>> grid(const std::vector<A>& as, const std::vector<B>& bs) {
  std::vector<std::pair<A, B>> out;
  out.reserve(as.size() * bs.size());
  for (const A& a : as) {
    for (const B& b : bs) out.emplace_back(a, b);
  }
  return out;
}

}  // namespace fobs::exp
