#include "exp/testbeds.h"

#include <cassert>

namespace fobs::exp {

using fobs::sim::LinkConfig;
using fobs::util::Rng;

const char* to_string(PathId id) {
  switch (id) {
    case PathId::kShortHaul: return "short-haul (ANL->LCSE)";
    case PathId::kLongHaul: return "long-haul (ANL->CACR)";
    case PathId::kGigabitOc12: return "gigabit OC-12 (NCSA->LCSE)";
    case PathId::kGigabitContended: return "gigabit contended (NCSA->CACR)";
  }
  return "?";
}

CpuModel desktop_pc_cpu() {
  // Pentium3-era desktop: cheap per-datagram path relative to the
  // 100 Mb/s wire, but a noticeable stall to build + send a FOBS ACK.
  CpuModel cpu;
  cpu.per_packet_send = Duration::microseconds(6);
  cpu.per_kb_send = Duration::microseconds(2);
  cpu.per_packet_recv = Duration::microseconds(6);
  cpu.per_kb_recv = Duration::microseconds(2);
  cpu.ack_build = Duration::microseconds(150);
  return cpu;
}

CpuModel slow_gige_receiver_cpu() {
  // The Figure 3 endpoints (SGI Origin2000 / Windows 2000 box with GigE
  // NICs): the per-datagram syscall+copy path, not the wire, is the
  // bottleneck. The per-KB cost sets the large-packet asymptote at
  // ~52% of the OC-12.
  CpuModel cpu;
  cpu.per_packet_send = Duration::microseconds(15);
  cpu.per_kb_send = Duration::microseconds(4);
  cpu.per_packet_recv = Duration::microseconds(70);
  cpu.per_kb_recv = Duration::microseconds(19);
  cpu.ack_build = Duration::microseconds(100);
  return cpu;
}

CpuModel fast_server_cpu() {
  // Table 2 endpoints (Origin2000, HP V2500): faster than the Figure 3
  // machines, but the user-level per-datagram send path still caps a
  // single UDP blaster below the OC-12 (~480 Mb/s at 1 KiB packets).
  // That cap is what keeps FOBS's greedy waste at the paper's ~2%: the
  // sender physically cannot overdrive the path by much.
  CpuModel cpu;
  cpu.per_packet_send = Duration::microseconds(15);
  cpu.per_kb_send = Duration::microseconds(2);
  cpu.per_packet_recv = Duration::microseconds(10);
  cpu.per_kb_recv = Duration::microseconds(2);
  cpu.ack_build = Duration::microseconds(80);
  return cpu;
}

TestbedSpec spec_for(PathId id) {
  TestbedSpec spec;
  spec.name = to_string(id);
  switch (id) {
    case PathId::kShortHaul:
      // RTT ~26 ms; bottleneck = 100 Mb/s NIC at ANL; clean path.
      spec.src_nic = DataRate::megabits_per_second(100);
      spec.backbone_delay = Duration::milliseconds(12);
      spec.fwd_loss = 1e-6;
      spec.rev_loss = 1e-6;
      spec.src_cpu = desktop_pc_cpu();
      spec.dst_cpu = desktop_pc_cpu();
      spec.max_bandwidth = DataRate::megabits_per_second(100);
      break;
    case PathId::kLongHaul:
      // RTT ~65 ms; same NIC bottleneck; light random loss from shared
      // Abilene segments — enough to trip TCP's congestion control,
      // negligible for a loss-tolerant protocol.
      spec.src_nic = DataRate::megabits_per_second(100);
      spec.backbone_delay = Duration::milliseconds(31500) / 1000;  // 31.5 ms
      spec.fwd_loss = 9e-5;  // calibrated so TCP+LWE averages ~51% (Table 1)
      spec.rev_loss = 2e-6;
      spec.src_cpu = desktop_pc_cpu();
      spec.dst_cpu = desktop_pc_cpu();
      spec.max_bandwidth = DataRate::megabits_per_second(100);
      break;
    case PathId::kGigabitOc12:
      // GigE endpoints, OC-12 backbone; the receive path CPU dominates.
      spec.src_nic = DataRate::gigabits_per_second(1);
      spec.backbone = DataRate::megabits_per_second(622);
      spec.backbone_delay = Duration::milliseconds(12);
      spec.fwd_loss = 1e-6;
      spec.rev_loss = 1e-6;
      spec.src_cpu = slow_gige_receiver_cpu();
      spec.dst_cpu = slow_gige_receiver_cpu();
      spec.max_bandwidth = DataRate::megabits_per_second(622);
      break;
    case PathId::kGigabitContended:
      // Long RTT, OC-12 bottleneck shared with heavy bursty traffic.
      spec.src_nic = DataRate::gigabits_per_second(1);
      spec.backbone = DataRate::megabits_per_second(622);
      spec.backbone_delay = Duration::milliseconds(31500) / 1000;
      spec.fwd_loss = 1e-5;
      spec.rev_loss = 2e-6;
      spec.src_cpu = fast_server_cpu();
      spec.dst_cpu = fast_server_cpu();
      spec.cross_sources = 5;
      spec.cross_peak = DataRate::megabits_per_second(100);
      spec.cross_mean_on = Duration::milliseconds(40);
      spec.cross_mean_off = Duration::milliseconds(160);
      spec.backbone_queue_bytes = 4 * 1024 * 1024;
      spec.max_bandwidth = DataRate::megabits_per_second(622);
      break;
  }
  return spec;
}

Testbed::Testbed(const TestbedSpec& spec, std::uint64_t seed) : spec_(spec) {
  network_ = std::make_unique<fobs::sim::Network>(sim_);
  auto& net = *network_;
  Rng rng(seed);

  fobs::host::HostConfig src_cfg;
  src_cfg.name = "src";
  src_cfg.cpu = spec.src_cpu;
  fobs::host::HostConfig dst_cfg;
  dst_cfg.name = "dst";
  dst_cfg.cpu = spec.dst_cpu;
  src_ = &Host::create(net, src_cfg);
  dst_ = &Host::create(net, dst_cfg);

  auto& r1 = net.add_router("r1");
  auto& r2 = net.add_router("r2");
  auto& blackhole = net.add_blackhole("cross-sink");

  auto make_link = [&](const char* name, DataRate rate, Duration delay,
                       std::int64_t queue) -> fobs::sim::Link& {
    LinkConfig cfg;
    cfg.name = name;
    cfg.rate = rate;
    cfg.propagation_delay = delay;
    cfg.queue_capacity_bytes = queue;
    return net.add_link(cfg);
  };

  // Forward path: src -> r1 -> r2 -> dst.
  auto& l_src = make_link("src-nic", spec.src_nic, spec.src_nic_delay, spec.nic_queue_bytes);
  auto& l_fwd =
      make_link("backbone-fwd", spec.backbone, spec.backbone_delay, spec.backbone_queue_bytes);
  auto& l_in = make_link("dst-ingress", spec.dst_ingress, spec.dst_ingress_delay,
                         spec.nic_queue_bytes);
  l_src.set_sink(&r1);
  l_fwd.set_sink(&r2);
  l_in.set_sink(dst_);
  if (spec.fwd_loss > 0) {
    l_fwd.set_loss_model(std::make_unique<fobs::sim::BernoulliLoss>(spec.fwd_loss), rng.fork());
  }

  // Reverse path: dst -> r2 -> r1 -> src (ACKs and TCP control/acks).
  auto& l_dst = make_link("dst-nic", spec.dst_ingress, spec.dst_ingress_delay,
                          spec.nic_queue_bytes);
  auto& l_rev =
      make_link("backbone-rev", spec.backbone, spec.backbone_delay, spec.backbone_queue_bytes);
  auto& l_out = make_link("src-ingress", spec.src_nic, spec.src_nic_delay, spec.nic_queue_bytes);
  l_dst.set_sink(&r2);
  l_rev.set_sink(&r1);
  l_out.set_sink(src_);
  if (spec.rev_loss > 0) {
    l_rev.set_loss_model(std::make_unique<fobs::sim::BernoulliLoss>(spec.rev_loss), rng.fork());
  }

  src_->set_egress(&l_src);
  dst_->set_egress(&l_dst);

  r1.add_route(dst_->id(), &l_fwd);
  r1.add_route(blackhole.id(), &l_fwd);
  r1.add_route(src_->id(), &l_out);
  r2.add_route(dst_->id(), &l_in);
  r2.add_route(src_->id(), &l_rev);
  r2.add_route(blackhole.id(), &blackhole);

  backbone_fwd_ = &l_fwd;
  cross_sink_ = &blackhole;

  // Cross traffic competes for the forward backbone queue.
  for (int i = 0; i < spec.cross_sources; ++i) {
    auto src_node = net.next_node_id();  // phantom source id
    auto source = std::make_unique<fobs::sim::OnOffSource>(
        sim_, l_fwd, src_node, blackhole.id(), spec.cross_packet_bytes, spec.cross_peak,
        spec.cross_mean_on, spec.cross_mean_off, rng.fork());
    source->start();
    cross_.push_back(std::move(source));
  }
}

}  // namespace fobs::exp
