// Simulated replicas of the paper's four Abilene testbed paths.
//
// Each testbed is a dumbbell:   S --nic--> R1 --backbone--> R2 --in--> D
// (and the mirror path for the reverse direction), with optional random
// loss and cross traffic on the backbone. The table in DESIGN.md maps
// each path to the paper's endpoints:
//   kShortHaul          ANL -> LCSE,  RTT ~26 ms, 100 Mb/s NIC bottleneck
//   kLongHaul           ANL -> CACR,  RTT ~65 ms, 100 Mb/s NIC bottleneck
//   kGigabitOc12        NCSA -> LCSE, RTT ~26 ms, GigE hosts, OC-12 path,
//                       slow per-datagram receive path (Figure 3)
//   kGigabitContended   NCSA -> CACR, RTT ~65 ms, GigE/OC-12 with heavy
//                       bursty cross traffic (Table 2)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/host.h"
#include "sim/cross_traffic.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs::exp {

using fobs::host::CpuModel;
using fobs::host::Host;
using fobs::sim::Duration;
using fobs::util::DataRate;

enum class PathId { kShortHaul, kLongHaul, kGigabitOc12, kGigabitContended };

[[nodiscard]] const char* to_string(PathId id);

/// Raw parameters of a testbed; edit to explore what-if scenarios.
struct TestbedSpec {
  std::string name;
  // Forward direction (data).
  DataRate src_nic = DataRate::megabits_per_second(100);
  DataRate backbone = DataRate::megabits_per_second(622);
  DataRate dst_ingress = DataRate::gigabits_per_second(1);
  Duration src_nic_delay = Duration::microseconds(500);
  Duration backbone_delay = Duration::milliseconds(12);
  Duration dst_ingress_delay = Duration::microseconds(500);
  std::int64_t nic_queue_bytes = 256 * 1024;
  std::int64_t backbone_queue_bytes = 1024 * 1024;
  double fwd_loss = 0.0;  ///< per-fragment random loss on the backbone
  double rev_loss = 0.0;
  // Hosts.
  CpuModel src_cpu;
  CpuModel dst_cpu;
  // Cross traffic (on/off sources injected at the forward backbone link).
  int cross_sources = 0;
  DataRate cross_peak = DataRate::megabits_per_second(200);
  Duration cross_mean_on = Duration::milliseconds(50);
  Duration cross_mean_off = Duration::milliseconds(150);
  std::int64_t cross_packet_bytes = 1000;
  /// The denominator for "percentage of maximum available bandwidth".
  DataRate max_bandwidth = DataRate::megabits_per_second(100);

  [[nodiscard]] Duration one_way_delay() const {
    return src_nic_delay + backbone_delay + dst_ingress_delay;
  }
  [[nodiscard]] Duration rtt() const { return one_way_delay() * 2; }
};

/// Canonical parameters for each paper path.
[[nodiscard]] TestbedSpec spec_for(PathId id);

/// The calibrated end-system CPU models (shared with the Abilene
/// topology and the multi-flow benches).
[[nodiscard]] CpuModel desktop_pc_cpu();        ///< ANL/LCSE Pentium3 desktops
[[nodiscard]] CpuModel slow_gige_receiver_cpu();///< Figure 3 GigE endpoints
[[nodiscard]] CpuModel fast_server_cpu();       ///< Table 2 SMP servers

/// A fully built simulation: two endpoint hosts joined by the dumbbell,
/// cross traffic already started (if configured).
class Testbed {
 public:
  explicit Testbed(const TestbedSpec& spec, std::uint64_t seed = 42);
  Testbed(PathId id, std::uint64_t seed = 42) : Testbed(spec_for(id), seed) {}

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] fobs::sim::Simulation& sim() { return sim_; }
  [[nodiscard]] fobs::sim::Network& network() { return *network_; }
  [[nodiscard]] Host& src() { return *src_; }
  [[nodiscard]] Host& dst() { return *dst_; }
  [[nodiscard]] const TestbedSpec& spec() const { return spec_; }
  /// Forward bottleneck link (for queue/drop statistics).
  [[nodiscard]] fobs::sim::Link& backbone() { return *backbone_fwd_; }
  /// Cross-traffic sink (counts competing traffic actually delivered).
  [[nodiscard]] fobs::sim::BlackholeNode& cross_sink() { return *cross_sink_; }
  [[nodiscard]] const std::vector<std::unique_ptr<fobs::sim::CrossTrafficSource>>&
  cross_sources() const {
    return cross_;
  }

 private:
  TestbedSpec spec_;
  fobs::sim::Simulation sim_;
  std::unique_ptr<fobs::sim::Network> network_;
  Host* src_ = nullptr;
  Host* dst_ = nullptr;
  fobs::sim::Link* backbone_fwd_ = nullptr;
  fobs::sim::BlackholeNode* cross_sink_ = nullptr;
  std::vector<std::unique_ptr<fobs::sim::CrossTrafficSource>> cross_;
};

}  // namespace fobs::exp
