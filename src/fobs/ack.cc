#include "fobs/ack.h"

#include <algorithm>
#include <cassert>

namespace fobs::core {

AckBuilder::AckBuilder(std::int64_t packet_count, std::int64_t max_payload_bytes)
    : packet_count_(packet_count),
      fragment_bits_(std::max<std::int64_t>(0, (max_payload_bytes - kAckHeaderBytes) * 8)) {
  assert(packet_count_ >= 0);
}

AckMessage AckBuilder::build(const fobs::util::Bitmap& received, PacketSeq frontier,
                             std::int64_t total_received) {
  assert(static_cast<std::int64_t>(received.size()) == packet_count_);
  AckMessage ack;
  ack.ack_no = next_ack_no_++;
  ack.total_received = total_received;
  ack.frontier = frontier;
  ack.complete = received.all_set();
  if (ack.complete || fragment_bits_ == 0 || frontier >= packet_count_) {
    return ack;  // nothing beyond the frontier worth reporting
  }
  // Rotate the fragment start over [frontier, packet_count). Successive
  // ACKs walk the unfinished region so the sender's whole view refreshes.
  if (rotate_cursor_ < frontier || rotate_cursor_ >= packet_count_) {
    rotate_cursor_ = frontier;
  }
  const PacketSeq start = rotate_cursor_;
  const PacketSeq end = std::min<PacketSeq>(start + fragment_bits_, packet_count_);
  ack.fragment_start = start;
  ack.fragment_bits = static_cast<std::int32_t>(end - start);
  ack.fragment = received.extract_range(static_cast<std::size_t>(start),
                                        static_cast<std::size_t>(end));
  rotate_cursor_ = end >= packet_count_ ? frontier : end;
  return ack;
}

std::int64_t apply_ack(const AckMessage& ack, fobs::util::Bitmap& view) {
  std::int64_t newly = 0;
  // Frontier: everything below it is received.
  for (PacketSeq seq = 0; seq < ack.frontier; ++seq) {
    // Fast path: skip whole set words via first_clear.
    auto clear = view.first_clear(static_cast<std::size_t>(seq));
    if (!clear || static_cast<PacketSeq>(*clear) >= ack.frontier) break;
    seq = static_cast<PacketSeq>(*clear);
    view.set(static_cast<std::size_t>(seq));
    ++newly;
  }
  if (ack.fragment_bits > 0) {
    newly += static_cast<std::int64_t>(
        view.merge_range(static_cast<std::size_t>(ack.fragment_start),
                         static_cast<std::size_t>(ack.fragment_bits), ack.fragment.data(),
                         ack.fragment.size()));
  }
  if (ack.complete && !view.all_set()) {
    newly += static_cast<std::int64_t>(view.size() - view.count());
    view.set_all();
  }
  return newly;
}

}  // namespace fobs::core
