// FOBS acknowledgement messages.
//
// An ACK carries (a) the cumulative frontier — every packet below it has
// been received — and (b) one bitmap fragment covering a window of
// packets at/above the frontier. The receiver rotates the fragment start
// across the unfinished region on successive ACKs, so the sender's view
// of the whole object converges even when a single ACK cannot hold the
// entire bitmap. Together with the per-object bitmap this realizes the
// paper's "selective acknowledgement window [that] is also in a sense
// infinite".
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmap.h"
#include "fobs/types.h"

namespace fobs::core {

struct AckMessage {
  std::uint64_t ack_no = 0;  ///< monotonically increasing per receiver
  /// Receiver-incarnation id (0 = unversioned). A restarted receiver
  /// picks a fresh epoch and announces it on the control channel, so
  /// the sender can discard ACKs still in flight from the previous
  /// incarnation instead of applying them to its reset view.
  std::uint32_t epoch = 0;
  /// Total packets received so far (sender uses deltas for rate feedback).
  std::int64_t total_received = 0;
  /// All packets with seq < frontier have been received.
  PacketSeq frontier = 0;
  /// Bitmap fragment covering [fragment_start, fragment_start + fragment_bits).
  PacketSeq fragment_start = 0;
  std::int32_t fragment_bits = 0;
  std::vector<std::uint8_t> fragment;  ///< packed, bit i = packet fragment_start+i
  /// Set when the receiver has every packet (also signalled via TCP).
  bool complete = false;

  /// Wire size of this message in bytes.
  [[nodiscard]] std::int64_t wire_bytes() const {
    return kAckHeaderBytes + static_cast<std::int64_t>(fragment.size());
  }
};

/// Builds ACK messages from the receiver's bitmap, rotating the bitmap
/// fragment across the not-yet-complete region.
class AckBuilder {
 public:
  /// @param max_payload_bytes upper bound on the ACK packet payload; the
  ///        fragment is sized to fit (kAckHeaderBytes included).
  AckBuilder(std::int64_t packet_count, std::int64_t max_payload_bytes);

  /// Creates the next ACK from the receiver's current state.
  AckMessage build(const fobs::util::Bitmap& received, PacketSeq frontier,
                   std::int64_t total_received);

  [[nodiscard]] std::int64_t fragment_capacity_bits() const { return fragment_bits_; }

 private:
  std::int64_t packet_count_;
  std::int64_t fragment_bits_;
  std::uint64_t next_ack_no_ = 1;
  PacketSeq rotate_cursor_ = 0;
};

/// Sender-side application of an ACK to its view of the receiver state.
/// Returns the number of packets newly learned to be received.
std::int64_t apply_ack(const AckMessage& ack, fobs::util::Bitmap& view);

}  // namespace fobs::core
