#include "fobs/adaptive.h"

#include <algorithm>

namespace fobs::core {

void GreedinessController::on_ack(std::int64_t sent_since_last, std::int64_t newly_received) {
  if (!config_.enabled) return;
  if (sent_since_last <= 0) return;  // nothing launched: no information
  // Instantaneous shortfall. When the pipe is in steady state the
  // receiver's delta matches the send rate; a persistent shortfall is
  // loss (transient mismatches are smoothed away by the EWMA).
  double inst = 1.0 - static_cast<double>(newly_received) / static_cast<double>(sent_since_last);
  inst = std::clamp(inst, 0.0, 1.0);
  loss_ewma_ = (1.0 - config_.ewma_alpha) * loss_ewma_ + config_.ewma_alpha * inst;

  // "Of more than temporary duration": both the instantaneous and the
  // smoothed estimates must stay high for a run of ACKs. A single bad
  // ACK leaves an EWMA tail but its instantaneous successors are clean,
  // so the streak resets.
  if (inst > config_.high_loss_threshold && loss_ewma_ > config_.high_loss_threshold) {
    if (++high_streak_ >= config_.sustain_acks) {
      gap_ = gap_ == Duration::zero()
                 ? config_.seed_gap
                 : std::min(config_.max_gap, gap_ * config_.backoff_factor);
      high_streak_ = 0;  // require sustained loss again before growing more
    }
  } else {
    high_streak_ = 0;
    if (loss_ewma_ < config_.low_loss_threshold && gap_ > Duration::zero()) {
      gap_ = gap_ * config_.recovery_factor;
      if (gap_ < Duration::microseconds(1)) gap_ = Duration::zero();
    }
  }
}

}  // namespace fobs::core
