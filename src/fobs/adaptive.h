// Congestion-adaptive greediness (the paper's §7 future work).
//
// Plain FOBS is deliberately greedy: it never slows down, assuming loss
// is inevitable and tolerable. The paper closes by sketching two
// remedies for congested networks; this implements the second one —
// "mechanisms to decrease the greediness of FOBS when congestion in the
// network is detected (and is of sufficient duration)".
//
// The controller estimates the loss rate from acknowledgement deltas:
// between two ACKs the sender knows how many packets it launched and
// how many the receiver reports newly received; a sustained shortfall
// is congestion. When the smoothed loss estimate stays above a high
// threshold the controller inserts a growing inter-batch pacing gap;
// when it falls below a low threshold the gap decays back toward zero
// (full greediness).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace fobs::core {

using fobs::util::Duration;

struct AdaptiveConfig {
  bool enabled = false;
  /// §7's *first* option: on sustained congestion, switch the transfer
  /// to a TCP data channel (congestion-controlled), then probe and
  /// switch back to greedy UDP once the congestion dissipates.
  /// Requires `enabled`; without it only the pacing-gap mechanism runs.
  bool tcp_fallback = false;
  /// Enter fallback when the pacing gap has grown to at least this.
  /// The default requires a *second* sustained-congestion verdict
  /// (seed_gap * backoff_factor), so the ordinary burstiness of a
  /// shared path does not flap the transfer onto TCP.
  Duration fallback_when_gap_at_least = Duration::microseconds(30);
  /// While in fallback, inspect the TCP channel at this period...
  Duration fallback_probe_interval = Duration::milliseconds(250);
  /// ...and return to greedy UDP after this many consecutive probe
  /// intervals without TCP retransmissions.
  int fallback_clear_probes = 4;
  /// Cap on un-acked bytes offered to the fallback TCP channel. Sized
  /// generously so TCP's own congestion window is the real limiter;
  /// this bound only stops the whole object being buffered at once.
  std::int64_t fallback_window_bytes = 4 * 1024 * 1024;
  /// EWMA smoothing factor for the loss estimate.
  double ewma_alpha = 0.2;
  /// Loss estimate above this (for `sustain_acks` ACKs) means back off.
  double high_loss_threshold = 0.08;
  /// Loss estimate below this means speed back up.
  double low_loss_threshold = 0.02;
  /// Consecutive high-loss ACKs required before the first backoff
  /// ("congestion of more than temporary duration").
  int sustain_acks = 4;
  /// Gap growth/decay factors.
  double backoff_factor = 1.5;
  double recovery_factor = 0.8;
  /// Gap bounds. The initial backoff jumps straight to `seed_gap`.
  Duration seed_gap = Duration::microseconds(20);
  Duration max_gap = Duration::milliseconds(2);
};

/// Loss-estimating pacing controller. Sans-io: the sender core feeds it
/// ACK deltas; the driver adds `gap()` of idle time per batch.
class GreedinessController {
 public:
  explicit GreedinessController(AdaptiveConfig config) : config_(config) {}

  /// Feeds one acknowledgement: `sent_since_last` packets were launched
  /// since the previous ACK, of which the receiver newly reports
  /// `newly_received`.
  void on_ack(std::int64_t sent_since_last, std::int64_t newly_received);

  /// Extra idle time the sender should insert per batch right now.
  [[nodiscard]] Duration gap() const { return gap_; }
  [[nodiscard]] double loss_estimate() const { return loss_ewma_; }
  [[nodiscard]] bool backing_off() const { return gap_ > Duration::zero(); }
  /// True when pacing alone is not containing the loss — the trigger
  /// for the TCP-fallback mode.
  [[nodiscard]] bool congested() const {
    return config_.tcp_fallback && gap_ >= config_.fallback_when_gap_at_least;
  }
  /// Forgets all congestion state (used when returning from fallback:
  /// the network is being re-probed from a clean slate).
  void reset() {
    loss_ewma_ = 0.0;
    high_streak_ = 0;
    gap_ = Duration::zero();
  }
  [[nodiscard]] const AdaptiveConfig& config() const { return config_; }

 private:
  AdaptiveConfig config_;
  double loss_ewma_ = 0.0;
  int high_streak_ = 0;
  Duration gap_ = Duration::zero();
};

}  // namespace fobs::core
