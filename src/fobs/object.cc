#include "fobs/object.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cstring>
#include <fstream>

#include "common/rng.h"

namespace fobs::core {

TransferObject::~TransferObject() { reset(); }

void TransferObject::reset() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, static_cast<std::size_t>(size_));
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  writable_ = false;
  owned_.clear();
}

TransferObject::TransferObject(TransferObject&& other) noexcept { *this = std::move(other); }

TransferObject& TransferObject::operator=(TransferObject&& other) noexcept {
  if (this != &other) {
    reset();
    owned_ = std::move(other.owned_);
    size_ = other.size_;
    mapped_ = other.mapped_;
    writable_ = other.writable_;
    // For owned objects the pointer must track the moved vector.
    data_ = mapped_ ? other.data_ : owned_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.writable_ = false;
  }
  return *this;
}

TransferObject TransferObject::allocate(std::int64_t bytes) {
  assert(bytes >= 0);
  TransferObject object;
  object.owned_.assign(static_cast<std::size_t>(bytes), 0);
  object.data_ = object.owned_.data();
  object.size_ = bytes;
  return object;
}

TransferObject TransferObject::pattern(std::int64_t bytes, std::uint64_t seed) {
  TransferObject object = allocate(bytes);
  fobs::util::Rng rng(seed);
  auto span = object.mutable_view();
  std::size_t i = 0;
  for (; i + 8 <= span.size(); i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(span.data() + i, &v, 8);
  }
  if (i < span.size()) {
    const std::uint64_t v = rng.next();
    std::memcpy(span.data() + i, &v, span.size() - i);
  }
  return object;
}

TransferObject TransferObject::from_vector(std::vector<std::uint8_t> data) {
  TransferObject object;
  object.owned_ = std::move(data);
  object.data_ = object.owned_.data();
  object.size_ = static_cast<std::int64_t>(object.owned_.size());
  return object;
}

std::optional<TransferObject> TransferObject::map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return std::nullopt;
  }
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                      fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) return std::nullopt;
  TransferObject object;
  object.data_ = static_cast<std::uint8_t*>(addr);
  object.size_ = static_cast<std::int64_t>(st.st_size);
  object.mapped_ = true;
  return object;
}

std::optional<TransferObject> TransferObject::map_file_rw(const std::string& path,
                                                          std::int64_t bytes) {
  if (bytes <= 0) return std::nullopt;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      (st.st_size != bytes && ::ftruncate(fd, bytes) != 0)) {
    ::close(fd);
    return std::nullopt;
  }
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(bytes), PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) return std::nullopt;
  TransferObject object;
  object.data_ = static_cast<std::uint8_t*>(addr);
  object.size_ = bytes;
  object.mapped_ = true;
  object.writable_ = true;
  return object;
}

std::span<std::uint8_t> TransferObject::mutable_view() {
  assert(is_writable() && "read-only mapped objects cannot be written");
  return {data_, static_cast<std::size_t>(size_)};
}

bool TransferObject::sync() {
  if (!mapped_ || !writable_ || data_ == nullptr) return true;
  return ::msync(data_, static_cast<std::size_t>(size_), MS_SYNC) == 0;
}

std::uint64_t TransferObject::checksum() const {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::int64_t i = 0; i < size_; ++i) {
    hash ^= data_[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

bool TransferObject::write_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data_), static_cast<std::streamsize>(size_));
  return out.good();
}

}  // namespace fobs::core
