// The "object" in object-based transfer: a contiguous buffer that is
// fully allocated before the transfer starts (the paper's fundamental
// assumption — "the user-level data buffer spans the entire object").
//
// Backing stores: owned memory (allocated or generated test patterns),
// read-only memory-mapped files (so multi-gigabyte files can be sent
// without loading them through the heap), and writable shared mappings
// (so a receive buffer persists to disk as it fills — the basis for
// crash-safe resumable fetches).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace fobs::core {

class TransferObject {
 public:
  TransferObject() = default;
  ~TransferObject();

  TransferObject(TransferObject&& other) noexcept;
  TransferObject& operator=(TransferObject&& other) noexcept;
  TransferObject(const TransferObject&) = delete;
  TransferObject& operator=(const TransferObject&) = delete;

  /// Zero-filled writable buffer (receive side).
  static TransferObject allocate(std::int64_t bytes);
  /// Deterministic pseudo-random content (tests, benchmarks).
  static TransferObject pattern(std::int64_t bytes, std::uint64_t seed);
  /// Adopts an existing vector.
  static TransferObject from_vector(std::vector<std::uint8_t> data);
  /// Memory-maps `path` read-only; nullopt on failure (missing file,
  /// empty file, mmap error).
  static std::optional<TransferObject> map_file(const std::string& path);
  /// Creates (or opens) `path`, resizes it to exactly `bytes`, and maps
  /// it read-write and *shared*: every byte written through
  /// mutable_view() lands in the file's page cache immediately, so the
  /// on-disk file tracks the buffer even if the process is killed.
  /// Existing content within `bytes` is preserved. nullopt on failure.
  static std::optional<TransferObject> map_file_rw(const std::string& path,
                                                   std::int64_t bytes);

  [[nodiscard]] std::int64_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return {data_, static_cast<std::size_t>(size_)}; }
  /// Writable view; invalid for read-only mapped objects — asserts.
  [[nodiscard]] std::span<std::uint8_t> mutable_view();
  [[nodiscard]] bool is_mapped() const { return mapped_; }
  [[nodiscard]] bool is_writable() const { return !mapped_ || writable_; }

  /// Flushes a writable mapping to stable storage (msync). True for
  /// non-mapped objects (nothing to flush) and on success.
  bool sync();

  /// FNV-1a 64-bit content checksum (integrity spot check).
  [[nodiscard]] std::uint64_t checksum() const;

  /// Writes the content to `path`; false on I/O error.
  bool write_to_file(const std::string& path) const;

 private:
  void reset();

  std::uint8_t* data_ = nullptr;
  std::int64_t size_ = 0;
  bool mapped_ = false;               ///< via mmap
  bool writable_ = false;             ///< mapped MAP_SHARED read-write
  std::vector<std::uint8_t> owned_;   ///< backing store when not mapped
};

}  // namespace fobs::core
