#include "fobs/posix/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.h"

namespace fobs::posix {

namespace {

// "FOBSCKP" + format version 1.
constexpr std::uint64_t kCheckpointMagic = 0x464F4253434B5031ull;
constexpr std::size_t kHeaderSize = 8 + 8 + 8 + 8 + 8;  // magic + 3 counts + bitmap len

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> blob(kHeaderSize + checkpoint.bitmap.size() + 4);
  put_u64(blob.data(), kCheckpointMagic);
  put_u64(blob.data() + 8, static_cast<std::uint64_t>(checkpoint.object_bytes));
  put_u64(blob.data() + 16, static_cast<std::uint64_t>(checkpoint.packet_bytes));
  put_u64(blob.data() + 24, static_cast<std::uint64_t>(checkpoint.received_count));
  put_u64(blob.data() + 32, static_cast<std::uint64_t>(checkpoint.bitmap.size()));
  if (!checkpoint.bitmap.empty()) {
    std::memcpy(blob.data() + kHeaderSize, checkpoint.bitmap.data(),
                checkpoint.bitmap.size());
  }
  const std::uint32_t crc =
      fobs::util::crc32(blob.data() + 8, kHeaderSize - 8 + checkpoint.bitmap.size());
  for (int i = 0; i < 4; ++i) {
    blob[kHeaderSize + checkpoint.bitmap.size() + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) return false;
  }
  // rename() is atomic within a filesystem: readers see either the old
  // checkpoint or the new one, never a torn file.
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (blob.size() < kHeaderSize + 4) return std::nullopt;
  if (get_u64(blob.data()) != kCheckpointMagic) return std::nullopt;

  Checkpoint checkpoint;
  checkpoint.object_bytes = static_cast<std::int64_t>(get_u64(blob.data() + 8));
  checkpoint.packet_bytes = static_cast<std::int64_t>(get_u64(blob.data() + 16));
  checkpoint.received_count = static_cast<std::int64_t>(get_u64(blob.data() + 24));
  const std::uint64_t bitmap_len = get_u64(blob.data() + 32);
  if (checkpoint.object_bytes < 0 || checkpoint.packet_bytes <= 0 ||
      checkpoint.received_count < 0 ||
      checkpoint.object_bytes > (std::int64_t{1} << 50)) {  // overflow guard
    return std::nullopt;
  }
  if (blob.size() != kHeaderSize + bitmap_len + 4) return std::nullopt;
  if (bitmap_len !=
      static_cast<std::uint64_t>((checkpoint.packet_count() + 7) / 8)) {
    return std::nullopt;
  }

  const std::uint32_t expected =
      fobs::util::crc32(blob.data() + 8, kHeaderSize - 8 + bitmap_len);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored = (stored << 8) | blob[kHeaderSize + bitmap_len + static_cast<std::size_t>(i)];
  }
  if (stored != expected) return std::nullopt;

  checkpoint.bitmap.assign(blob.begin() + kHeaderSize,
                           blob.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + bitmap_len));
  return checkpoint;
}

void remove_checkpoint(const std::string& path) { std::remove(path.c_str()); }

}  // namespace fobs::posix
