// Resume checkpoints: the receiver's bitmap persisted to a sidecar file.
//
// The bitmap the FOBS receiver already maintains is a complete restart
// marker (FT-LADS' object-logging insight applied to this protocol):
// persist it periodically and a crashed receiver can restart, reload
// it, and — via the resume handshake on the control channel — have the
// sender skip every packet the previous incarnation already stored.
//
// The file is written atomically (temp file + rename) so a crash
// mid-checkpoint leaves the previous checkpoint intact, and sealed with
// a CRC32 so a torn or foreign file is rejected instead of resuming
// from garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fobs::posix {

struct Checkpoint {
  std::int64_t object_bytes = 0;
  std::int64_t packet_bytes = 0;
  std::int64_t received_count = 0;
  std::vector<std::uint8_t> bitmap;  ///< packed, Bitmap::extract_range format

  [[nodiscard]] std::int64_t packet_count() const {
    return packet_bytes > 0 ? (object_bytes + packet_bytes - 1) / packet_bytes : 0;
  }
};

/// Serializes `checkpoint` to `path` atomically. False on I/O failure.
bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Loads and validates a checkpoint; nullopt when the file is missing,
/// torn (CRC mismatch), or structurally inconsistent.
std::optional<Checkpoint> load_checkpoint(const std::string& path);

/// Removes a checkpoint file (used after a successful transfer).
void remove_checkpoint(const std::string& path);

}  // namespace fobs::posix
