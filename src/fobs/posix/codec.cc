#include "fobs/posix/codec.h"

#include <cstring>

namespace fobs::posix {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v >> 32));
  put_u32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

constexpr std::size_t kAckFixedSize = 4 + 8 + 8 + 8 + 8 + 4 + 4;  // 44 bytes

}  // namespace

void encode_data_header(const DataHeader& header, std::uint8_t* out) {
  put_u32(out, kMagic);
  out[4] = kTypeData;
  out[5] = out[6] = out[7] = 0;
  put_u64(out + 8, static_cast<std::uint64_t>(header.seq));
}

std::optional<DataHeader> decode_data_header(const std::uint8_t* data, std::size_t len) {
  if (len < kDataHeaderSize) return std::nullopt;
  if (get_u32(data) != kMagic || data[4] != kTypeData) return std::nullopt;
  DataHeader header;
  header.seq = static_cast<fobs::core::PacketSeq>(get_u64(data + 8));
  return header;
}

std::vector<std::uint8_t> encode_ack(const fobs::core::AckMessage& ack) {
  std::vector<std::uint8_t> out(kAckFixedSize + ack.fragment.size());
  put_u32(out.data(), kMagic);
  out[4] = kTypeAck;
  out[5] = ack.complete ? 1 : 0;
  out[6] = out[7] = 0;
  put_u64(out.data() + 8, ack.ack_no);
  put_u64(out.data() + 16, static_cast<std::uint64_t>(ack.total_received));
  put_u64(out.data() + 24, static_cast<std::uint64_t>(ack.frontier));
  put_u64(out.data() + 32, static_cast<std::uint64_t>(ack.fragment_start));
  put_u32(out.data() + 40, static_cast<std::uint32_t>(ack.fragment_bits));
  if (!ack.fragment.empty()) {
    std::memcpy(out.data() + kAckFixedSize, ack.fragment.data(), ack.fragment.size());
  }
  return out;
}

std::optional<fobs::core::AckMessage> decode_ack(const std::uint8_t* data, std::size_t len) {
  if (len < kAckFixedSize) return std::nullopt;
  if (get_u32(data) != kMagic || data[4] != kTypeAck) return std::nullopt;
  fobs::core::AckMessage ack;
  ack.complete = data[5] != 0;
  ack.ack_no = get_u64(data + 8);
  ack.total_received = static_cast<std::int64_t>(get_u64(data + 16));
  ack.frontier = static_cast<fobs::core::PacketSeq>(get_u64(data + 24));
  ack.fragment_start = static_cast<fobs::core::PacketSeq>(get_u64(data + 32));
  ack.fragment_bits = static_cast<std::int32_t>(get_u32(data + 40));
  const std::size_t expected = (static_cast<std::size_t>(ack.fragment_bits) + 7) / 8;
  if (len < kAckFixedSize + expected) return std::nullopt;
  ack.fragment.assign(data + kAckFixedSize, data + kAckFixedSize + expected);
  return ack;
}

}  // namespace fobs::posix
