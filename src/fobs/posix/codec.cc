#include "fobs/posix/codec.h"

#include <cstring>

#include "common/crc32.h"

namespace fobs::posix {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v >> 32));
  put_u32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

constexpr std::size_t kAckFixedSize = 4 + 8 + 8 + 8 + 8 + 4 + 4 + 4;  // 48 bytes

}  // namespace

void encode_data_header(const DataHeader& header, std::uint8_t* out) {
  put_u32(out, kMagic);
  out[4] = kTypeData;
  out[5] = out[6] = out[7] = 0;
  put_u64(out + 8, static_cast<std::uint64_t>(header.seq));
  put_u32(out + 16, header.payload_crc);
}

std::optional<DataHeader> decode_data_header(const std::uint8_t* data, std::size_t len) {
  if (len < kDataHeaderSize) return std::nullopt;
  if (get_u32(data) != kMagic || data[4] != kTypeData) return std::nullopt;
  DataHeader header;
  header.seq = static_cast<fobs::core::PacketSeq>(get_u64(data + 8));
  header.payload_crc = get_u32(data + 16);
  return header;
}

std::uint32_t payload_crc(const std::uint8_t* payload, std::size_t len) {
  return fobs::util::crc32(payload, len);
}

std::vector<std::uint8_t> encode_ack(const fobs::core::AckMessage& ack) {
  std::vector<std::uint8_t> out(kAckFixedSize + ack.fragment.size());
  put_u32(out.data(), kMagic);
  out[4] = kTypeAck;
  out[5] = ack.complete ? 1 : 0;
  out[6] = out[7] = 0;
  put_u64(out.data() + 8, ack.ack_no);
  put_u64(out.data() + 16, static_cast<std::uint64_t>(ack.total_received));
  put_u64(out.data() + 24, static_cast<std::uint64_t>(ack.frontier));
  put_u64(out.data() + 32, static_cast<std::uint64_t>(ack.fragment_start));
  put_u32(out.data() + 40, static_cast<std::uint32_t>(ack.fragment_bits));
  put_u32(out.data() + 44, ack.epoch);
  if (!ack.fragment.empty()) {
    std::memcpy(out.data() + kAckFixedSize, ack.fragment.data(), ack.fragment.size());
  }
  return out;
}

std::optional<fobs::core::AckMessage> decode_ack(const std::uint8_t* data, std::size_t len) {
  if (len < kAckFixedSize) return std::nullopt;
  if (get_u32(data) != kMagic || data[4] != kTypeAck) return std::nullopt;
  fobs::core::AckMessage ack;
  ack.complete = data[5] != 0;
  ack.ack_no = get_u64(data + 8);
  ack.total_received = static_cast<std::int64_t>(get_u64(data + 16));
  ack.frontier = static_cast<fobs::core::PacketSeq>(get_u64(data + 24));
  ack.fragment_start = static_cast<fobs::core::PacketSeq>(get_u64(data + 32));
  ack.fragment_bits = static_cast<std::int32_t>(get_u32(data + 40));
  ack.epoch = get_u32(data + 44);
  // Reject absurd fragment sizes before touching any allocation path: a
  // legitimate fragment fits in one datagram, so a hostile/corrupt
  // 2^31-ish bit count cannot force a giant allocation here.
  if (ack.fragment_bits < 0 || ack.fragment_bits > kMaxAckFragmentBits) return std::nullopt;
  const std::size_t expected = (static_cast<std::size_t>(ack.fragment_bits) + 7) / 8;
  if (len < kAckFixedSize + expected) return std::nullopt;
  ack.fragment.assign(data + kAckFixedSize, data + kAckFixedSize + expected);
  return ack;
}

std::vector<std::uint8_t> encode_resume(std::int64_t packet_count,
                                        std::int64_t received_count,
                                        const std::vector<std::uint8_t>& bitmap) {
  std::vector<std::uint8_t> out(kResumeFixedSize + bitmap.size() + kResumeTrailerSize);
  put_u64(out.data(), kResumeToken);
  put_u64(out.data() + 8, static_cast<std::uint64_t>(packet_count));
  put_u64(out.data() + 16, static_cast<std::uint64_t>(received_count));
  put_u32(out.data() + 24, static_cast<std::uint32_t>(bitmap.size()));
  if (!bitmap.empty()) {
    std::memcpy(out.data() + kResumeFixedSize, bitmap.data(), bitmap.size());
  }
  // Seal everything after the token so a desynced stream cannot smuggle
  // a plausible-looking bitmap through.
  const std::uint32_t crc =
      fobs::util::crc32(out.data() + 8, kResumeFixedSize - 8 + bitmap.size());
  put_u32(out.data() + kResumeFixedSize + bitmap.size(), crc);
  return out;
}

std::size_t resume_frame_size(std::int64_t packet_count) {
  const auto bitmap_bytes = static_cast<std::size_t>((packet_count + 7) / 8);
  return kResumeFixedSize + bitmap_bytes + kResumeTrailerSize;
}

std::optional<ResumeFrame> decode_resume(const std::uint8_t* data, std::size_t len) {
  if (len < kResumeFixedSize + kResumeTrailerSize) return std::nullopt;
  if (get_u64(data) != kResumeToken) return std::nullopt;
  ResumeFrame frame;
  frame.packet_count = static_cast<std::int64_t>(get_u64(data + 8));
  frame.received_count = static_cast<std::int64_t>(get_u64(data + 16));
  const std::size_t bitmap_len = get_u32(data + 24);
  if (frame.packet_count < 0 || frame.received_count < 0) return std::nullopt;
  // The bitmap length field is 32-bit, so any packet count its 8x can't
  // express is malformed (also avoids overflow in the division below).
  if (frame.packet_count > static_cast<std::int64_t>(0xFFFFFFFFull) * 8) return std::nullopt;
  if (bitmap_len != static_cast<std::size_t>((frame.packet_count + 7) / 8)) {
    return std::nullopt;
  }
  if (len < kResumeFixedSize + bitmap_len + kResumeTrailerSize) return std::nullopt;
  const std::uint32_t crc = fobs::util::crc32(data + 8, kResumeFixedSize - 8 + bitmap_len);
  if (crc != get_u32(data + kResumeFixedSize + bitmap_len)) return std::nullopt;
  frame.bitmap.assign(data + kResumeFixedSize, data + kResumeFixedSize + bitmap_len);
  return frame;
}

}  // namespace fobs::posix
