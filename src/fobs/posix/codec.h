// Binary wire codec for real-socket FOBS (network byte order).
//
// Data packet:  20-byte header (magic, type, flags, seq, payload CRC32)
//               + payload.
// ACK packet:   fixed header (including the receiver's incarnation
//               epoch) + packed bitmap fragment.
// Control stream (TCP): a hello frame announcing the receiver's epoch,
//               an 8-byte completion token, and an optional resume
//               frame (receiver's full bitmap, CRC-sealed) sent by a
//               restarted receiver so the sender skips packets the
//               previous incarnation already stored.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fobs/ack.h"
#include "fobs/types.h"

namespace fobs::posix {

inline constexpr std::uint32_t kMagic = 0x464F4253;  // "FOBS"
inline constexpr std::uint8_t kTypeData = 1;
inline constexpr std::uint8_t kTypeAck = 2;
inline constexpr std::uint64_t kCompletionToken = 0x464F4253444F4E45ull;  // "FOBSDONE"
inline constexpr std::uint64_t kResumeToken = 0x464F425352534D45ull;      // "FOBSRSME"
inline constexpr std::uint64_t kHelloToken = 0x464F425348454C4Full;       // "FOBSHELO"

/// Hello frame: token + u64 carrying the receiver's epoch in its low
/// 32 bits. Sent first on every control connection; the sender applies
/// only ACKs stamped with the announced epoch from then on.
inline constexpr std::size_t kHelloFrameSize = 8 + 8;

inline constexpr std::size_t kDataHeaderSize = 20;
/// Fixed part of a resume frame: token, packet_count, received_count,
/// bitmap byte length. A CRC32 trailer follows the bitmap.
inline constexpr std::size_t kResumeFixedSize = 8 + 8 + 8 + 4;
inline constexpr std::size_t kResumeTrailerSize = 4;

/// Largest UDP datagram payload; bounds every length field an ACK can
/// legitimately declare (a hostile value past this is rejected before
/// any allocation happens).
inline constexpr std::int64_t kMaxDatagramBytes = 64 * 1024;
inline constexpr std::int64_t kMaxAckFragmentBits = kMaxDatagramBytes * 8;

struct DataHeader {
  fobs::core::PacketSeq seq = 0;
  /// CRC32 (IEEE) over the payload bytes that follow the header.
  std::uint32_t payload_crc = 0;
};

/// Writes the data-packet header into `out` (size >= kDataHeaderSize).
void encode_data_header(const DataHeader& header, std::uint8_t* out);
/// Parses a data-packet header; nullopt when magic/type mismatch. The
/// caller checks `payload_crc` against the payload (see payload_crc()).
std::optional<DataHeader> decode_data_header(const std::uint8_t* data, std::size_t len);

/// CRC32 of a data packet's payload bytes.
[[nodiscard]] std::uint32_t payload_crc(const std::uint8_t* payload, std::size_t len);

/// Serializes an AckMessage into a datagram payload.
std::vector<std::uint8_t> encode_ack(const fobs::core::AckMessage& ack);
/// Parses an ACK datagram; nullopt when malformed or when declared
/// sizes exceed what a datagram could physically carry.
std::optional<fobs::core::AckMessage> decode_ack(const std::uint8_t* data, std::size_t len);

/// A resume frame decoded from the control stream.
struct ResumeFrame {
  std::int64_t packet_count = 0;
  std::int64_t received_count = 0;
  std::vector<std::uint8_t> bitmap;  ///< packed, Bitmap::extract_range format
};

/// Serializes a resume frame (token + counts + bitmap + CRC32 trailer).
std::vector<std::uint8_t> encode_resume(std::int64_t packet_count,
                                        std::int64_t received_count,
                                        const std::vector<std::uint8_t>& bitmap);
/// Total frame size implied by a packet count (for stream reassembly).
[[nodiscard]] std::size_t resume_frame_size(std::int64_t packet_count);
/// Parses a complete resume frame; nullopt on bad token/CRC/shape.
std::optional<ResumeFrame> decode_resume(const std::uint8_t* data, std::size_t len);

}  // namespace fobs::posix
