// Binary wire codec for real-socket FOBS (network byte order).
//
// Data packet:  16-byte header (magic, type, flags, seq) + payload.
// ACK packet:   fixed header + packed bitmap fragment.
// Completion:   8-byte magic token on the TCP control stream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fobs/ack.h"
#include "fobs/types.h"

namespace fobs::posix {

inline constexpr std::uint32_t kMagic = 0x464F4253;  // "FOBS"
inline constexpr std::uint8_t kTypeData = 1;
inline constexpr std::uint8_t kTypeAck = 2;
inline constexpr std::uint64_t kCompletionToken = 0x464F4253444F4E45ull;  // "FOBSDONE"

inline constexpr std::size_t kDataHeaderSize = 16;

struct DataHeader {
  fobs::core::PacketSeq seq = 0;
};

/// Writes the data-packet header into `out` (size >= kDataHeaderSize).
void encode_data_header(const DataHeader& header, std::uint8_t* out);
/// Parses a data-packet header; nullopt when magic/type mismatch.
std::optional<DataHeader> decode_data_header(const std::uint8_t* data, std::size_t len);

/// Serializes an AckMessage into a datagram payload.
std::vector<std::uint8_t> encode_ack(const fobs::core::AckMessage& ack);
/// Parses an ACK datagram; nullopt when malformed.
std::optional<fobs::core::AckMessage> decode_ack(const std::uint8_t* data, std::size_t len);

}  // namespace fobs::posix
