#include "fobs/posix/engine.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "fobs/posix/port_allocator.h"
#include "telemetry/metrics.h"

namespace fobs::posix {

namespace detail {

/// One engine session: submission inputs, lifecycle state, and the
/// final result. Shared between the engine, the worker running it, and
/// every TransferHandle pointing at it.
struct Session {
  std::uint64_t id = 0;
  bool is_sender = false;
  SenderOptions send_options;
  ReceiverOptions recv_options;
  std::span<const std::uint8_t> object;
  std::span<std::uint8_t> buffer;
  std::shared_ptr<void> keepalive;
  std::uint16_t owned_control_port = 0;
  std::function<void(const TransferHandle&)> on_exit;
  /// Engine-owned tracer (EngineOptions::session_tracers) when the
  /// submitted options carried none.
  std::unique_ptr<fobs::telemetry::EventTracer> owned_tracer;

  /// Polled by the driver loop once per iteration.
  std::atomic<bool> cancel{false};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  TransferStatus status = TransferStatus::kPending;  ///< guarded by mu
  SenderResult sender_result;                        ///< guarded by mu until terminal
  ReceiverResult receiver_result;                    ///< guarded by mu until terminal

  void set_status(TransferStatus next) {
    {
      std::lock_guard lock(mu);
      status = next;
    }
    cv.notify_all();
  }

  [[nodiscard]] TransferStatus current_status() const {
    std::lock_guard lock(mu);
    return status;
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// TransferHandle
// ---------------------------------------------------------------------------

std::uint64_t TransferHandle::id() const { return session_ ? session_->id : 0; }

TransferStatus TransferHandle::status() const {
  return session_ ? session_->current_status() : TransferStatus::kPending;
}

TransferStatus TransferHandle::wait() const {
  if (!session_) return TransferStatus::kPending;
  std::unique_lock lock(session_->mu);
  session_->cv.wait(lock, [&] { return is_terminal(session_->status); });
  return session_->status;
}

bool TransferHandle::wait_for(std::chrono::milliseconds timeout) const {
  if (!session_) return false;
  std::unique_lock lock(session_->mu);
  return session_->cv.wait_for(lock, timeout, [&] { return is_terminal(session_->status); });
}

void TransferHandle::cancel() const {
  if (session_) session_->cancel.store(true, std::memory_order_relaxed);
}

const SenderResult& TransferHandle::sender_result() const {
  static const SenderResult kNoSenderResult{};
  if (!session_) return kNoSenderResult;
  std::lock_guard lock(session_->mu);
  return session_->sender_result;
}

const ReceiverResult& TransferHandle::receiver_result() const {
  static const ReceiverResult kNoReceiverResult{};
  if (!session_) return kNoReceiverResult;
  std::lock_guard lock(session_->mu);
  return session_->receiver_result;
}

bool TransferHandle::is_sender() const { return session_ && session_->is_sender; }

fobs::telemetry::EventTracer* TransferHandle::tracer() const {
  if (!session_) return nullptr;
  if (session_->owned_tracer) return session_->owned_tracer.get();
  return session_->is_sender ? session_->send_options.endpoint.tracer
                             : session_->recv_options.endpoint.tracer;
}

// ---------------------------------------------------------------------------
// TransferEngine
// ---------------------------------------------------------------------------

struct TransferEngine::Impl {
  explicit Impl(EngineOptions opts)
      : options(opts),
        ports(opts.control_port_base, opts.control_port_count),
        pool(opts.workers == 0 ? 0 : std::max<std::size_t>(1, opts.workers)) {}

  EngineOptions options;
  /// Range clamping (wrap past 65535, base 0 = disabled) lives in the
  /// allocator itself; internally synchronized, so no `mu` here.
  PortAllocator ports;

  mutable std::mutex mu;
  std::condition_variable idle_cv;
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::Session>> live;
  std::uint64_t next_id = 1;

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};

  // Acceptor state. The listener fd is only mutated while no acceptor
  // thread runs; the stop flag and a close() wake the poll loop.
  std::atomic<bool> acceptor_stop{false};
  int acceptor_fd = -1;
  std::function<void(int, std::string)> acceptor_handler;
  std::thread acceptor_thread;
  // Handler tasks dispatched to the pool and not yet finished. They run
  // user code that calls back into the engine, so stop_acceptor() must
  // not return (and teardown must not proceed) while any are in flight.
  std::size_t inflight_handlers = 0;  ///< guarded by mu
  std::condition_variable handlers_cv;

  // Declared last: destroyed first, so workers (which touch the fields
  // above through run_session) finish before anything else goes away.
  fobs::util::ThreadPool pool;
};

TransferEngine::TransferEngine(EngineOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

TransferEngine::~TransferEngine() {
  stop_acceptor();
  cancel_all();
  wait_idle();
  // impl_ destruction joins the pool; queued sessions (already flagged
  // cancelled) drain through their fast cancel path first.
}

TransferHandle TransferEngine::submit(std::shared_ptr<detail::Session> session,
                                      SessionParams params) {
  session->keepalive = std::move(params.keepalive);
  session->owned_control_port = params.owned_control_port;
  session->on_exit = std::move(params.on_exit);
  {
    std::lock_guard lock(impl_->mu);
    session->id = impl_->next_id++;
    impl_->live.emplace(session->id, session);
  }
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  telemetry::MetricsRegistry::global().counter("fobs.engine.sessions_submitted").inc();
  TransferHandle handle(session);
  impl_->pool.submit([this, session] { run_session(session); });
  return handle;
}

TransferHandle TransferEngine::submit_send(const SenderOptions& options,
                                           std::span<const std::uint8_t> object,
                                           SessionParams params) {
  auto session = std::make_shared<detail::Session>();
  session->is_sender = true;
  session->send_options = options;
  session->object = object;
  if (impl_->options.session_tracers && session->send_options.endpoint.tracer == nullptr) {
    session->owned_tracer = std::make_unique<fobs::telemetry::EventTracer>();
    session->send_options.endpoint.tracer = session->owned_tracer.get();
  }
  return submit(std::move(session), std::move(params));
}

TransferHandle TransferEngine::submit_receive(const ReceiverOptions& options,
                                              std::span<std::uint8_t> buffer,
                                              SessionParams params) {
  auto session = std::make_shared<detail::Session>();
  session->is_sender = false;
  session->recv_options = options;
  session->buffer = buffer;
  if (impl_->options.session_tracers && session->recv_options.endpoint.tracer == nullptr) {
    session->owned_tracer = std::make_unique<fobs::telemetry::EventTracer>();
    session->recv_options.endpoint.tracer = session->owned_tracer.get();
  }
  return submit(std::move(session), std::move(params));
}

void TransferEngine::run_session(const std::shared_ptr<detail::Session>& session) {
  session->set_status(TransferStatus::kRunning);
  TransferStatus final_status;
  if (session->is_sender) {
    auto result = detail::run_sender(session->send_options, session->object, &session->cancel);
    final_status = result.status;
    {
      std::lock_guard lock(session->mu);
      session->sender_result = std::move(result);
      session->status = final_status;
    }
  } else {
    auto result =
        detail::run_receiver(session->recv_options, session->buffer, &session->cancel);
    final_status = result.status;
    {
      std::lock_guard lock(session->mu);
      session->receiver_result = std::move(result);
      session->status = final_status;
    }
  }
  session->cv.notify_all();
  if (final_status == TransferStatus::kCompleted) {
    impl_->completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    impl_->failed.fetch_add(1, std::memory_order_relaxed);
  }
  finish_session(session);
  if (session->on_exit) session->on_exit(TransferHandle(session));
  // The keepalive (e.g. an mmap'd file) is dropped with the session's
  // last handle, not here: on_exit observers may still read the spans.
}

void TransferEngine::finish_session(const std::shared_ptr<detail::Session>& session) {
  bool idle = false;
  impl_->ports.release(session->owned_control_port);
  {
    std::lock_guard lock(impl_->mu);
    impl_->live.erase(session->id);
    idle = impl_->live.empty();
  }
  if (idle) impl_->idle_cv.notify_all();
}

std::optional<std::uint16_t> TransferEngine::allocate_control_port() {
  return impl_->ports.allocate();
}

void TransferEngine::release_control_port(std::uint16_t port) { impl_->ports.release(port); }

std::size_t TransferEngine::free_control_ports() const { return impl_->ports.free_count(); }

std::size_t TransferEngine::control_port_capacity() const { return impl_->ports.capacity(); }

std::optional<std::uint16_t> TransferEngine::allocate_control_port_block(std::size_t count) {
  return impl_->ports.allocate_block(count);
}

void TransferEngine::release_control_port_block(std::uint16_t first, std::size_t count) {
  impl_->ports.release_block(first, count);
}

bool TransferEngine::start_acceptor(std::uint16_t port,
                                    std::function<void(int, std::string)> handler) {
  if (impl_->acceptor_thread.joinable() || !handler) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = INADDR_ANY;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  impl_->acceptor_fd = fd;
  impl_->acceptor_handler = std::move(handler);
  impl_->acceptor_stop.store(false);
  impl_->acceptor_thread = std::thread([this] { acceptor_loop(); });
  return true;
}

void TransferEngine::acceptor_loop() {
  while (!impl_->acceptor_stop.load(std::memory_order_relaxed)) {
    pollfd pfd{impl_->acceptor_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int conn = ::accept(impl_->acceptor_fd, reinterpret_cast<sockaddr*>(&peer),
                              &peer_len);
    if (conn < 0) continue;
    char host[64] = {0};
    ::inet_ntop(AF_INET, &peer.sin_addr, host, sizeof host);
    telemetry::MetricsRegistry::global().counter("fobs.engine.connections_accepted").inc();
    // Each connection is handled on the pool, so a slow client never
    // blocks the accept loop — this is what makes the catalog
    // concurrent. The in-flight count covers the task from enqueue to
    // return, including time spent queued behind busy workers.
    {
      std::lock_guard lock(impl_->mu);
      ++impl_->inflight_handlers;
    }
    impl_->pool.submit(
        [this, handler = impl_->acceptor_handler, conn, peer_host = std::string(host)]() mutable {
          handler(conn, std::move(peer_host));
          std::lock_guard lock(impl_->mu);
          if (--impl_->inflight_handlers == 0) impl_->handlers_cv.notify_all();
        });
  }
}

void TransferEngine::stop_acceptor() {
  if (!impl_->acceptor_thread.joinable()) return;
  impl_->acceptor_stop.store(true);
  impl_->acceptor_thread.join();
  ::close(impl_->acceptor_fd);
  impl_->acceptor_fd = -1;
  // Quiesce dispatched handlers before the caller may tear anything
  // down: a handler mid-flight still holds the engine (and whatever the
  // handler closure captured).
  {
    std::unique_lock lock(impl_->mu);
    impl_->handlers_cv.wait(lock, [&] { return impl_->inflight_handlers == 0; });
  }
  impl_->acceptor_handler = nullptr;
}

bool TransferEngine::acceptor_running() const { return impl_->acceptor_thread.joinable(); }

std::size_t TransferEngine::active_sessions() const {
  std::lock_guard lock(impl_->mu);
  return impl_->live.size();
}

std::uint64_t TransferEngine::sessions_submitted() const {
  return impl_->submitted.load(std::memory_order_relaxed);
}

std::uint64_t TransferEngine::sessions_completed() const {
  return impl_->completed.load(std::memory_order_relaxed);
}

std::uint64_t TransferEngine::sessions_failed() const {
  return impl_->failed.load(std::memory_order_relaxed);
}

void TransferEngine::cancel_all() {
  std::lock_guard lock(impl_->mu);
  for (auto& [id, session] : impl_->live) {
    session->cancel.store(true, std::memory_order_relaxed);
  }
}

void TransferEngine::wait_idle() {
  std::unique_lock lock(impl_->mu);
  impl_->idle_cv.wait(lock, [&] { return impl_->live.empty(); });
}

// ---------------------------------------------------------------------------
// Blocking compatibility wrappers: exactly one session on a one-worker
// engine, waited to completion. Semantics (and results) match the
// pre-engine free functions.
// ---------------------------------------------------------------------------

SenderResult send_object(const SenderOptions& options, std::span<const std::uint8_t> object) {
  TransferEngine engine(EngineOptions{.workers = 1});
  auto handle = engine.submit_send(options, object);
  handle.wait();
  return handle.sender_result();
}

ReceiverResult receive_object(const ReceiverOptions& options, std::span<std::uint8_t> buffer) {
  TransferEngine engine(EngineOptions{.workers = 1});
  auto handle = engine.submit_receive(options, buffer);
  handle.wait();
  return handle.receiver_result();
}

}  // namespace fobs::posix
