// Concurrent multi-session FOBS transfer engine.
//
// A TransferEngine owns a worker pool, a registry of live sessions,
// an allocator of per-session control ports, and (optionally) a TCP
// acceptor for service front-ends. Each submitted transfer becomes a
// *session*: it runs the blocking POSIX driver loop on a pool worker
// with its own batched DatagramChannel for the data plane (tuned via
// EndpointOptions::io — sendmmsg/recvmmsg batch sizes, socket buffers,
// forced batched/fallback mode), its own control connection, its own
// EventTracer (when requested), and the full PR-2 fault/checkpoint
// machinery. The caller holds a TransferHandle and can wait(),
// poll status(), or cancel() the session at any time.
//
// The engine is what lets one process serve many transfers at once —
// fobsd's serve loop, the file server (fobs/posix/fileserver.h), and
// any embedding that out-grows the blocking free functions.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "fobs/posix/posix_transfer.h"

namespace fobs::posix {

class TransferEngine;

// Striped-transfer types (fobs/stripe/striped_transfer.h). Forward
// declared so plain engine users don't pull the striping layer in.
struct StripedSenderOptions;
struct StripedReceiverOptions;
struct StripedResult;
struct StripedSessionParams;

namespace detail {
struct Session;
}

/// A caller's reference to one engine session. Cheap to copy (shared
/// ownership of the session record); safe to use after the engine has
/// finished the session, and — for status/results — after the engine
/// itself is gone.
class TransferHandle {
 public:
  TransferHandle() = default;

  [[nodiscard]] bool valid() const { return session_ != nullptr; }
  /// Engine-unique session id (1-based, in submission order).
  [[nodiscard]] std::uint64_t id() const;
  /// Current lifecycle state; terminal states never change again.
  [[nodiscard]] TransferStatus status() const;
  /// True once the session reached a terminal status.
  [[nodiscard]] bool done() const { return is_terminal(status()); }

  /// Blocks until the session is terminal; returns the final status.
  TransferStatus wait() const;
  /// Blocks up to `timeout`; true when the session finished in time.
  bool wait_for(std::chrono::milliseconds timeout) const;

  /// Requests cancellation. The session's driver loop notices within
  /// one poll interval and exits with TransferStatus::kCancelled. A
  /// session that already finished is unaffected. Never blocks.
  void cancel() const;

  /// Final results — meaningful once done(); sender_result() for
  /// sessions submitted via submit_send, receiver_result() for
  /// submit_receive. The reference stays valid while any handle to the
  /// session exists.
  [[nodiscard]] const SenderResult& sender_result() const;
  [[nodiscard]] const ReceiverResult& receiver_result() const;
  [[nodiscard]] bool is_sender() const;

  /// The session's tracer: the caller-supplied one if the options had
  /// one, else the engine-owned per-session tracer when the engine was
  /// created with `session_tracers`, else nullptr.
  [[nodiscard]] fobs::telemetry::EventTracer* tracer() const;

 private:
  friend class TransferEngine;
  explicit TransferHandle(std::shared_ptr<detail::Session> session)
      : session_(std::move(session)) {}

  std::shared_ptr<detail::Session> session_;
};

struct EngineOptions {
  /// Worker threads = max concurrently running sessions. Further
  /// submissions queue until a worker frees up. 0 = hardware
  /// concurrency.
  std::size_t workers = 4;
  /// Per-session control-port allocation range [base, base + count).
  /// Zero count disables the allocator.
  std::uint16_t control_port_base = 0;
  std::uint16_t control_port_count = 0;
  /// When true, every session whose options carry no tracer gets an
  /// engine-owned EventTracer, reachable via TransferHandle::tracer().
  bool session_tracers = false;
};

/// Per-submission extras beyond the transfer options.
struct SessionParams {
  /// Kept alive until the session ends — typically the mmap'd
  /// TransferObject backing the spans handed to submit_*.
  std::shared_ptr<void> keepalive;
  /// A control port previously taken from allocate_control_port();
  /// returned to the allocator automatically when the session ends.
  std::uint16_t owned_control_port = 0;
  /// Runs on the session's worker right after the session turns
  /// terminal (results are final, port already released). Keep it
  /// short; it blocks that worker.
  std::function<void(const TransferHandle&)> on_exit;
};

class TransferEngine {
 public:
  explicit TransferEngine(EngineOptions options = {});
  /// Cancels every live session, waits for all of them to finish, and
  /// stops the acceptor.
  ~TransferEngine();

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  /// Schedules one send/receive session. The object/buffer span (and
  /// anything else the options reference, e.g. a tracer) must stay
  /// valid until the session is terminal — use SessionParams::keepalive
  /// for engine-managed lifetime. Invalid options are not rejected
  /// here; the session turns kBadOptions immediately on its worker.
  TransferHandle submit_send(const SenderOptions& options,
                             std::span<const std::uint8_t> object, SessionParams params = {});
  TransferHandle submit_receive(const ReceiverOptions& options,
                                std::span<std::uint8_t> buffer, SessionParams params = {});

  /// Takes a free port from [control_port_base, base + count); nullopt
  /// when the range is exhausted or the allocator is disabled. Pass it
  /// back via release_control_port — or hand it to a session as
  /// SessionParams::owned_control_port for automatic release.
  std::optional<std::uint16_t> allocate_control_port();
  void release_control_port(std::uint16_t port);
  [[nodiscard]] std::size_t free_control_ports() const;
  /// Configured (post-clamp) allocator range size; 0 = disabled.
  [[nodiscard]] std::size_t control_port_capacity() const;

  /// Leases `count` *contiguous* ports (returns the first) for striped
  /// transfers, which address per-stripe ports as base-plus-index.
  /// nullopt when no contiguous run is free. Each port may be released
  /// individually (e.g. as a session's owned_control_port) or all at
  /// once via release_control_port_block.
  std::optional<std::uint16_t> allocate_control_port_block(std::size_t count);
  void release_control_port_block(std::uint16_t first, std::size_t count);

  /// Striped transfers (see fobs/stripe/striped_transfer.h): negotiate
  /// FOBSSTRP with the peer, run one session per stripe on this
  /// engine's pool, and aggregate. Blocking — do not call from a pool
  /// worker of this engine (the stripes need those workers); service
  /// front-ends use submit_striped_send, whose negotiation runs inline
  /// but whose aggregation completes via StripedSessionParams callbacks.
  StripedResult run_striped_sender(const StripedSenderOptions& options,
                                   std::span<const std::uint8_t> object);
  StripedResult run_striped_receiver(const StripedReceiverOptions& options,
                                     std::span<std::uint8_t> buffer);
  /// Negotiates inline, then launches the per-stripe sender sessions
  /// without waiting for them. Returns the accepted stripe count
  /// (0 = negotiation produced a clean single-flow fallback session);
  /// nullopt when nothing was launched (`error` says why).
  std::optional<int> submit_striped_send(const StripedSenderOptions& options,
                                         std::span<const std::uint8_t> object,
                                         StripedSessionParams params, std::string* error = nullptr);

  /// Binds a TCP listener on `port` and dispatches every accepted
  /// connection to the worker pool as `handler(fd, peer_host)`. The
  /// handler owns `fd` and must close it. One acceptor per engine;
  /// false when the bind/listen fails or one is already running.
  bool start_acceptor(std::uint16_t port,
                      std::function<void(int fd, std::string peer_host)> handler);
  /// Stops accepting and blocks until every already-dispatched handler
  /// task has returned, so callers can tear down state the handlers
  /// capture. Handlers queued behind busy workers still run first;
  /// cancel sessions beforehand if stop latency matters.
  void stop_acceptor();
  [[nodiscard]] bool acceptor_running() const;

  /// Sessions submitted and not yet terminal (running or queued).
  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] std::uint64_t sessions_submitted() const;
  [[nodiscard]] std::uint64_t sessions_completed() const;  ///< terminal with kCompleted
  [[nodiscard]] std::uint64_t sessions_failed() const;     ///< terminal, not kCompleted

  /// Requests cancellation of every live session (non-blocking).
  void cancel_all();
  /// Blocks until no session is active. Submissions racing with this
  /// call may keep it waiting; quiesce callers first.
  void wait_idle();

 private:
  TransferHandle submit(std::shared_ptr<detail::Session> session, SessionParams params);
  void run_session(const std::shared_ptr<detail::Session>& session);
  void finish_session(const std::shared_ptr<detail::Session>& session);
  void acceptor_loop();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fobs::posix
