#include "fobs/posix/fileserver.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/log.h"
#include "fobs/object.h"
#include "fobs/stripe/striped_transfer.h"
#include "telemetry/metrics.h"

namespace fobs::posix {

namespace {

using Clock = std::chrono::steady_clock;

bool send_line(int fd, const std::string& line) {
  return ::send(fd, line.data(), line.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(line.size());
}

/// Reads one '\n'-terminated line (newline stripped) from a stream
/// socket, giving up at `deadline` or as soon as `abort` (optional) is
/// set. The timeout is what keeps a connected-but-silent client from
/// wedging a catalog worker forever; the abort flag lets a server
/// shutdown reclaim such a worker without waiting out the timeout.
/// Returns false on timeout/abort/EOF/error; `line` holds whatever
/// arrived.
bool recv_line(int fd, Clock::time_point deadline, std::string& line,
               const std::atomic<bool>* abort = nullptr) {
  line.clear();
  char ch = 0;
  while (line.size() < 512) {
    if (abort != nullptr && abort->load(std::memory_order_relaxed)) return false;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(std::min<std::int64_t>(
                                          remaining.count(), 100)));
    if (ready < 0 && errno != EINTR) return false;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n == 0) return false;  // EOF before the newline
    if (n < 0) {
      if (errno == EWOULDBLOCK || errno == EAGAIN || errno == EINTR) continue;
      return false;
    }
    if (ch == '\n') return true;
    line.push_back(ch);
  }
  return false;  // over-long request line
}

bool name_is_safe(const std::string& name) {
  if (name.empty() || name.front() == '/') return false;
  return name.find("..") == std::string::npos;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileServer
// ---------------------------------------------------------------------------

FileServer::FileServer(FileServerOptions options) : options_(std::move(options)) {
  if (options_.control_port_base == 0) {
    options_.control_port_base = static_cast<std::uint16_t>(options_.catalog_port + 1);
  }
}

FileServer::~FileServer() { stop(); }

bool FileServer::start() {
  if (engine_) return false;  // already started
  if (options_.dir.empty() || options_.catalog_port == 0 ||
      options_.control_port_count == 0) {
    return false;
  }
  EngineOptions engine_options;
  engine_options.workers = options_.workers;
  engine_options.control_port_base = options_.control_port_base;
  engine_options.control_port_count = options_.control_port_count;
  engine_options.session_tracers = !options_.trace_dir.empty();
  engine_ = std::make_unique<TransferEngine>(engine_options);
  if (!engine_->start_acceptor(options_.catalog_port, [this](int fd, std::string peer) {
        handle_catalog(fd, peer);
      })) {
    engine_.reset();
    return false;
  }
  if (!options_.quiet) {
    std::printf("fobsd: serving %s on port %u (%zu workers, %u control ports)\n",
                options_.dir.c_str(), options_.catalog_port, options_.workers,
                options_.control_port_count);
  }
  return true;
}

void FileServer::stop() {
  if (!engine_) return;
  // Quiesce order matters: the stopping flag makes catalog handlers
  // bail out of recv_line and refuse new sessions; cancelling live
  // sessions first frees pool workers so queued handlers drain fast;
  // stop_acceptor() then blocks until every dispatched handler has
  // returned — only after that is it safe to destroy the engine the
  // handlers call into.
  stopping_.store(true);
  engine_->cancel_all();
  engine_->stop_acceptor();
  engine_->cancel_all();  // sessions submitted by handlers mid-shutdown
  engine_->wait_idle();
  engine_.reset();
  stopping_.store(false);
}

bool FileServer::running() const { return engine_ != nullptr && engine_->acceptor_running(); }

void FileServer::handle_catalog(int fd, const std::string& peer_host) {
  if (stopping_.load(std::memory_order_relaxed)) {
    ::close(fd);
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max(1, options_.catalog_recv_timeout_ms));
  std::string request;
  if (!recv_line(fd, deadline, request, &stopping_)) {
    if (!stopping_.load(std::memory_order_relaxed)) {
      catalog_timeouts_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::global().counter("fobs.fileserver.catalog_timeouts").inc();
    }
    ::close(fd);
    return;
  }
  const auto space = request.find(' ');
  const std::string name = request.substr(0, space);
  int client_port = 0;
  int client_stripes = 1;  // optional third token: requested stripes
  if (space != std::string::npos) {
    std::sscanf(request.c_str() + space + 1, "%d %d", &client_port, &client_stripes);
  }
  const bool striped = client_stripes > 1 && options_.max_stripes > 1;

  if (stopping_.load(std::memory_order_relaxed)) {
    // Shed the request instead of starting a session the shutdown
    // would immediately cancel.
    refused_.fetch_add(1, std::memory_order_relaxed);
    send_line(fd, "-1 0\n");
    ::close(fd);
    return;
  }
  auto mapped = name_is_safe(name)
                    ? fobs::core::TransferObject::map_file(options_.dir + "/" + name)
                    : std::nullopt;
  if (!mapped || client_port <= 0 || client_port > 65535) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    send_line(fd, "-1 0\n");
    ::close(fd);
    return;
  }
  const auto control_port = engine_->allocate_control_port();
  if (!control_port) {
    // Every control port is carrying a transfer: shed load instead of
    // queueing a session that could not listen anywhere.
    refused_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::global().counter("fobs.fileserver.port_exhausted").inc();
    send_line(fd, "-1 0\n");
    ::close(fd);
    return;
  }
  auto object = std::make_shared<fobs::core::TransferObject>(std::move(*mapped));
  send_line(fd,
            std::to_string(object->size()) + " " + std::to_string(*control_port) + "\n");
  ::close(fd);  // catalog exchange done; the transfer session takes over

  if (striped) {
    // The replied control port becomes the FOBSSTRP negotiation port;
    // per-stripe control ports come out of the same engine allocator.
    StripedSenderOptions striped_options;
    striped_options.negotiation_port = *control_port;
    striped_options.negotiation_port_owned = true;
    striped_options.max_stripes =
        std::min(options_.max_stripes, std::min(client_stripes, stripe::kMaxStripes));
    striped_options.endpoint = options_.endpoint;
    StripedSessionParams striped_params;
    striped_params.keepalive = object;
    striped_params.on_complete = [this, name, peer_host,
                                  client_port](const StripedResult& result) {
      if (result.completed()) {
        completed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!options_.quiet) {
        std::printf("fobsd: %s -> %s:%d  %s (%d stripe%s%s, %.0f Mb/s)\n", name.c_str(),
                    peer_host.c_str(), client_port, to_string(result.status),
                    result.stripes, result.stripes == 1 ? "" : "s",
                    result.fallback_single_flow ? ", fallback" : "", result.goodput_mbps);
      }
    };
    started_.fetch_add(1, std::memory_order_relaxed);
    std::string striped_error;
    if (!engine_->submit_striped_send(striped_options, object->view(),
                                      std::move(striped_params), &striped_error)) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (!options_.quiet) {
        std::printf("fobsd: %s -> %s:%d  striped launch failed: %s\n", name.c_str(),
                    peer_host.c_str(), client_port, striped_error.c_str());
      }
    }
    return;
  }

  SenderOptions send_options;
  send_options.receiver_host = peer_host;
  send_options.data_port = static_cast<std::uint16_t>(client_port);
  send_options.control_port = *control_port;
  send_options.endpoint = options_.endpoint;

  SessionParams params;
  params.keepalive = object;
  params.owned_control_port = *control_port;
  params.on_exit = [this, name, peer_host, client_port](const TransferHandle& handle) {
    const auto& result = handle.sender_result();
    if (result.completed()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!options_.quiet) {
      std::printf("fobsd: %s -> %s:%d  %s (%.0f Mb/s, waste %.2f%%)\n", name.c_str(),
                  peer_host.c_str(), client_port, to_string(result.status),
                  result.goodput_mbps, 100.0 * result.waste);
    }
    if (!options_.trace_dir.empty() && handle.tracer() != nullptr) {
      const std::string path = options_.trace_dir + "/fobsd_serve_" +
                               std::to_string(handle.id()) + ".jsonl";
      if (!handle.tracer()->write_jsonl_file(path)) {
        FOBS_WARN("fobs.fileserver", "failed writing trace " << path);
      }
    }
  };
  started_.fetch_add(1, std::memory_order_relaxed);
  engine_->submit_send(send_options, object->view(), std::move(params));
}

// ---------------------------------------------------------------------------
// fetch_file
// ---------------------------------------------------------------------------

FetchResult fetch_file(const FetchOptions& options) {
  FetchResult result;
  result.status = TransferStatus::kBadOptions;
  if (options.catalog_port == 0 || options.data_port == 0 || options.name.empty() ||
      options.out_path.empty()) {
    result.error = "invalid options: catalog_port, data_port, name, out_path are required";
    return result;
  }

  // Catalog exchange, retrying the connect (the server may still be
  // starting). Each attempt gets a fresh socket: POSIX leaves a socket
  // in an unspecified state after a failed connect(), so reusing it can
  // fail spuriously off-Linux.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.catalog_port);
  ::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr);
  int conn = -1;
  int attempts = 0;
  for (;;) {
    conn = ::socket(AF_INET, SOCK_STREAM, 0);
    if (conn < 0) {
      result.status = TransferStatus::kSocketError;
      result.error = "socket failed";
      return result;
    }
    if (::connect(conn, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) break;
    ::close(conn);
    if (++attempts > std::max(1, options.connect_attempts)) {
      result.status = TransferStatus::kPeerLost;
      result.error = "catalog connect failed";
      return result;
    }
    ::usleep(20'000);
  }
  const int stripes = std::min(std::max(options.stripes, 1), stripe::kMaxStripes);
  std::string catalog_line = options.name + " " + std::to_string(options.data_port);
  if (stripes > 1) catalog_line += " " + std::to_string(stripes);
  send_line(conn, catalog_line + "\n");
  std::string reply;
  const bool got_reply = recv_line(
      conn, Clock::now() + std::chrono::milliseconds(std::max(1, options.endpoint.timeout_ms)),
      reply);
  ::close(conn);
  long long size = -1;
  int control_port = 0;
  if (got_reply) std::sscanf(reply.c_str(), "%lld %d", &size, &control_port);
  if (size < 0 || control_port <= 0) {
    result.status = TransferStatus::kPeerLost;
    result.error = "server refused '" + options.name + "'";
    return result;
  }
  result.bytes = size;

  // Crash resilience: the receive buffer IS the <out>.part file — a
  // writable shared mapping, so every validated packet lands in the
  // page cache the moment it is written and the bitmap sidecar can
  // never record packets whose bytes a hard crash (kill -9, OOM) threw
  // away. The bitmap may lag the data, which only costs resends.
  const std::string partial_path = options.out_path + ".part";
  const std::string checkpoint_path = options.out_path + ".ckpt";
  struct stat part_stat{};
  const bool resuming = options.resume && ::stat(partial_path.c_str(), &part_stat) == 0 &&
                        part_stat.st_size == static_cast<off_t>(size);
  if (!resuming) {
    // No matching partial bytes: a leftover checkpoint (object-level or
    // per-stripe sidecar) describes data we do not have, and restoring
    // it would leave silent zero-filled holes in the fetched file.
    remove_striped_checkpoints(checkpoint_path);
  } else if (!options.quiet) {
    std::printf("fobsd: found partial fetch %s, attempting resume\n", partial_path.c_str());
  }
  auto partial = fobs::core::TransferObject::map_file_rw(partial_path,
                                                         static_cast<std::int64_t>(size));
  ReceiverOptions recv_options;
  recv_options.sender_host = options.host;
  recv_options.data_port = options.data_port;
  recv_options.control_port = static_cast<std::uint16_t>(control_port);
  recv_options.endpoint = options.endpoint;
  std::vector<std::uint8_t> fallback;
  std::span<std::uint8_t> buffer;
  if (partial) {
    // Checkpointing is only safe with the file-backed buffer.
    recv_options.checkpoint_path = checkpoint_path;
    buffer = partial->mutable_view();
  } else {
    if (!options.quiet) {
      std::printf("fobsd: cannot map %s; fetching without resume support\n",
                  partial_path.c_str());
    }
    remove_striped_checkpoints(checkpoint_path);
    fallback.resize(static_cast<std::size_t>(size));
    buffer = fallback;
  }
  if (stripes > 1) {
    // Striped fetch: negotiate FOBSSTRP on the replied control port and
    // run one receive session per stripe on a local engine, all writing
    // the shared mapping at plan offsets.
    StripedReceiverOptions striped;
    striped.sender_host = options.host;
    striped.negotiation_port = static_cast<std::uint16_t>(control_port);
    striped.data_port_base = options.data_port;
    striped.stripes = stripes;
    striped.layout = options.layout;
    if (partial) striped.checkpoint_base = checkpoint_path;
    striped.endpoint = options.endpoint;
    EngineOptions engine_options;
    engine_options.workers = static_cast<std::size_t>(stripes);
    TransferEngine engine(engine_options);
    const StripedResult striped_result = engine.run_striped_receiver(striped, buffer);
    result.status = striped_result.status;
    result.error = striped_result.error;
    result.packets_restored = striped_result.packets_restored;
    result.goodput_mbps = striped_result.goodput_mbps;
    result.stripes = striped_result.stripes;
    result.fallback_single_flow = striped_result.fallback_single_flow;
    if (!options.quiet && striped_result.fallback_single_flow) {
      std::printf("fobsd: server declined striping; fetched over one flow\n");
    }
  } else {
    const auto recv_result = receive_object(recv_options, buffer);
    result.status = recv_result.status;
    result.error = recv_result.error;
    result.packets_restored = recv_result.packets_restored;
    result.goodput_mbps = recv_result.goodput_mbps;
    result.stripes = 1;
  }
  if (partial) partial->sync();
  if (!result.completed()) {
    if (partial && !options.quiet) {
      std::printf("fobsd: kept partial bytes in %s for resume\n", partial_path.c_str());
    }
    return result;
  }
  if (partial) {
    result.checksum = partial->checksum();
    partial.reset();  // unmap before renaming into place
    if (std::rename(partial_path.c_str(), options.out_path.c_str()) != 0) {
      result.status = TransferStatus::kSocketError;
      result.error = "cannot move " + partial_path + " to " + options.out_path;
      return result;
    }
  } else {
    auto object = fobs::core::TransferObject::from_vector(std::move(fallback));
    if (!object.write_to_file(options.out_path)) {
      result.status = TransferStatus::kSocketError;
      result.error = "cannot write " + options.out_path;
      return result;
    }
    result.checksum = object.checksum();
  }
  return result;
}

}  // namespace fobs::posix
