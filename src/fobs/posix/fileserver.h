// A concurrent FOBS file server (and its fetch client) built on the
// session engine — the library form of `fobsd`.
//
// Catalog protocol (one TCP connection per request):
//   client -> "<name> <client-udp-port>[ <stripes>]\n"
//   server -> "<size> <control-port>\n"     (size -1 = refused)
// then the server pushes the file with a FOBS transfer: data to the
// client's UDP port, the completion signal accepted on the per-session
// control port, which is allocated from a range so many transfers can
// run at once. A client that wants a striped transfer appends the
// optional third token; the server then treats the replied control
// port as a FOBSSTRP negotiation port (fobs/stripe/striped_transfer.h)
// instead of a plain control port — pre-striping servers parse the
// port with atoi and ignore the extra token, so a striped-capable
// client degrades to one flow against them automatically. Catalog
// sockets carry a receive timeout: a client that connects and sends
// nothing stalls only its own pool worker for
// `catalog_recv_timeout_ms`, never the accept loop.
//
// The fetch client is crash-resilient: it receives into a writable
// mapping of `<out>.part` with a `<out>.ckpt` bitmap sidecar, resumes
// from both when they match, and renames into place when complete.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "fobs/posix/engine.h"

namespace fobs::posix {

struct FileServerOptions {
  std::string dir;                   ///< directory served (required)
  std::uint16_t catalog_port = 0;    ///< TCP catalog listener (required)
  /// Per-session control ports come from [base, base + count);
  /// 0 base = catalog_port + 1.
  std::uint16_t control_port_base = 0;
  std::uint16_t control_port_count = 32;
  /// Worker threads: bounds concurrently running transfers (plus
  /// in-flight catalog exchanges).
  std::size_t workers = 4;
  /// Catalog-socket receive timeout — the serve loop can no longer be
  /// wedged by a silent client.
  int catalog_recv_timeout_ms = 5'000;
  /// Per-session JSONL traces are written here when non-empty.
  std::string trace_dir;
  /// Suppress per-request stdout lines (tests).
  bool quiet = false;
  /// Most stripes the server grants one striped request (further
  /// clamped by free control ports and the object's packet count).
  /// 1 refuses striping: striped clients degrade to a single flow.
  int max_stripes = 8;
  /// Applied to every transfer session (timeout, packet size, ...).
  EndpointOptions endpoint;
};

class FileServer {
 public:
  explicit FileServer(FileServerOptions options);
  ~FileServer();

  FileServer(const FileServer&) = delete;
  FileServer& operator=(const FileServer&) = delete;

  /// Binds the catalog listener and starts accepting. False when the
  /// options are invalid or the port cannot be bound.
  bool start();
  /// Stops accepting, cancels live sessions, waits for them to finish.
  void stop();
  [[nodiscard]] bool running() const;

  [[nodiscard]] const FileServerOptions& options() const { return options_; }

  // Lifetime counters (monotonic).
  [[nodiscard]] std::uint64_t requests_handled() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t requests_refused() const { return refused_.load(); }
  [[nodiscard]] std::uint64_t catalog_timeouts() const { return catalog_timeouts_.load(); }
  [[nodiscard]] std::uint64_t transfers_started() const { return started_.load(); }
  [[nodiscard]] std::uint64_t transfers_completed() const { return completed_.load(); }
  [[nodiscard]] std::uint64_t transfers_failed() const { return failed_.load(); }

 private:
  void handle_catalog(int fd, const std::string& peer_host);

  FileServerOptions options_;
  std::unique_ptr<TransferEngine> engine_;
  /// Set for the duration of stop(): catalog handlers still in flight
  /// abort their recv and refuse new sessions, so the engine can be
  /// quiesced and destroyed without racing them.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> catalog_timeouts_{0};
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
};

struct FetchOptions {
  std::string host = "127.0.0.1";
  std::uint16_t catalog_port = 0;  ///< server's catalog port (required)
  std::string name;                ///< file name in the server's directory
  std::string out_path;            ///< local destination path
  std::uint16_t data_port = 0;     ///< local UDP port for the data (required)
  /// Catalog connect retry budget (the server may still be starting).
  int connect_attempts = 100;
  /// Resume from `<out>.part` + `<out>.ckpt` when they match.
  bool resume = true;
  bool quiet = false;
  /// Stripe count to request (> 1 enables FOBSSTRP negotiation; the
  /// server may grant fewer). Data flows use ports
  /// [data_port, data_port + stripes). Falls back to a single flow
  /// against pre-striping servers.
  int stripes = 1;
  stripe::StripeLayout layout = stripe::StripeLayout::kContiguous;
  /// Applied to the receive session(s).
  EndpointOptions endpoint;
};

struct FetchResult {
  TransferStatus status = TransferStatus::kPending;
  std::string error;
  std::int64_t bytes = 0;
  std::int64_t packets_restored = 0;  ///< resumed from a checkpoint
  double goodput_mbps = 0.0;
  std::uint64_t checksum = 0;  ///< FNV-1a of the fetched content
  int stripes = 0;             ///< flows actually used (post-negotiation)
  /// Striping was requested but the transfer ran as one plain flow.
  bool fallback_single_flow = false;

  [[nodiscard]] bool completed() const { return status == TransferStatus::kCompleted; }
};

/// Fetches one file from a FileServer (or `fobsd serve`). Blocking.
FetchResult fetch_file(const FetchOptions& options);

}  // namespace fobs::posix
