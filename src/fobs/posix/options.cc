#include "fobs/posix/options.h"

namespace fobs::posix {

const char* to_string(TransferStatus status) {
  switch (status) {
    case TransferStatus::kPending: return "pending";
    case TransferStatus::kRunning: return "running";
    case TransferStatus::kCompleted: return "completed";
    case TransferStatus::kTimeout: return "timeout";
    case TransferStatus::kStalled: return "stalled";
    case TransferStatus::kPeerLost: return "peer_lost";
    case TransferStatus::kSocketError: return "socket_error";
    case TransferStatus::kBadOptions: return "bad_options";
    case TransferStatus::kCancelled: return "cancelled";
    case TransferStatus::kCrashed: return "crashed";
  }
  return "unknown";
}

bool is_terminal(TransferStatus status) {
  return status != TransferStatus::kPending && status != TransferStatus::kRunning;
}

}  // namespace fobs::posix
