// Shared option and status types for the real-socket FOBS surface.
//
// EndpointOptions carries the knobs every endpoint has — packet size,
// the progress-based give-up budget, fault injection, tracing — so
// SenderOptions/ReceiverOptions no longer duplicate them field by
// field. TransferStatus is the machine-readable outcome of a transfer:
// callers branch on the enum and keep `error` purely as the
// human-readable detail, instead of string-matching against it.
#pragma once

#include <cstdint>
#include <string>

#include "net/datagram_channel.h"
#include "telemetry/trace.h"

namespace fobs::posix {

/// Machine-readable outcome (and lifecycle state) of one transfer
/// session. Values at or past kCompleted are terminal.
enum class TransferStatus : std::uint8_t {
  kPending = 0,   ///< submitted, not yet picked up by a worker
  kRunning,       ///< transfer loop in progress
  kCompleted,     ///< object delivered end to end
  kTimeout,       ///< gave up with zero protocol progress (peer never appeared)
  kStalled,       ///< made progress, then none for the whole stall budget
  kPeerLost,      ///< the peer's control endpoint could not be (re)reached
  kSocketError,   ///< socket setup or I/O failed (detail in `error`)
  kBadOptions,    ///< options rejected before any socket was touched
  kCancelled,     ///< cancelled via TransferHandle::cancel()
  kCrashed,       ///< fault-injection crash schedule fired
};

[[nodiscard]] const char* to_string(TransferStatus status);

/// True for every status a finished session can report (everything
/// except kPending/kRunning).
[[nodiscard]] bool is_terminal(TransferStatus status);

/// Options common to both transfer endpoints. Embedded as
/// `SenderOptions::endpoint` / `ReceiverOptions::endpoint`.
struct EndpointOptions {
  std::int64_t packet_bytes = 1024;
  /// Progress-based give-up: the transfer is abandoned only after
  /// `stall_intervals` consecutive intervals of `timeout_ms /
  /// stall_intervals` each with zero protocol progress. A transfer that
  /// never progresses still dies after ~`timeout_ms`; one that keeps
  /// moving is never killed by the clock alone.
  int timeout_ms = 60'000;
  int stall_intervals = 8;
  /// Fault-injection plan (grammar in docs/ROBUSTNESS.md). Empty means
  /// "use the FOBS_FAULT_PLAN environment variable, if set".
  std::string fault_plan;
  /// Optional event tracer (must outlive the transfer). The driver
  /// installs a steady clock (ns since transfer start) and records
  /// transfer_start, batch, ACK, completion, and timeout/error events.
  fobs::telemetry::EventTracer* tracer = nullptr;
  /// Datagram I/O tuning: sendmmsg/recvmmsg batch sizes, the
  /// batched-vs-fallback mode switch, and SO_SNDBUF/SO_RCVBUF sizing
  /// (see net/datagram_channel.h). Validated before any socket is
  /// touched; a bad value yields TransferStatus::kBadOptions.
  fobs::net::IoOptions io;
};

}  // namespace fobs::posix
