#include "fobs/posix/port_allocator.h"

#include <algorithm>

namespace fobs::posix {

PortAllocator::PortAllocator(std::uint16_t base, std::uint16_t count) : base_(base) {
  std::uint32_t size = count;
  if (base == 0) {
    size = 0;
  } else {
    const std::uint32_t room = 0x1'0000u - base;
    size = std::min<std::uint32_t>(size, room);
  }
  in_use_.assign(size, false);
  free_ = size;
}

std::optional<std::uint16_t> PortAllocator::allocate() {
  std::lock_guard lock(mu_);
  if (free_ == 0) return std::nullopt;
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      --free_;
      return static_cast<std::uint16_t>(base_ + i);
    }
  }
  return std::nullopt;
}

std::optional<std::uint16_t> PortAllocator::allocate_block(std::size_t count) {
  if (count == 0) return std::nullopt;
  std::lock_guard lock(mu_);
  if (free_ < count || count > in_use_.size()) return std::nullopt;
  std::size_t run = 0;
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    run = in_use_[i] ? 0 : run + 1;
    if (run == count) {
      const std::size_t first = i + 1 - count;
      for (std::size_t j = first; j <= i; ++j) in_use_[j] = true;
      free_ -= count;
      return static_cast<std::uint16_t>(base_ + first);
    }
  }
  return std::nullopt;
}

void PortAllocator::release(std::uint16_t port) {
  std::lock_guard lock(mu_);
  if (port < base_) return;
  const std::size_t i = static_cast<std::size_t>(port) - base_;
  if (i >= in_use_.size() || !in_use_[i]) return;
  in_use_[i] = false;
  ++free_;
}

void PortAllocator::release_block(std::uint16_t first, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    release(static_cast<std::uint16_t>(first + i));
  }
}

std::size_t PortAllocator::free_count() const {
  std::lock_guard lock(mu_);
  return free_;
}

}  // namespace fobs::posix
