// Port allocator for per-session control ports and per-stripe port
// blocks.
//
// Pure bookkeeping over a configured range [base, base + count) —
// nothing binds here; callers bind whatever they are handed. Extracted
// from TransferEngine so striped transfers can lease a *contiguous*
// block of K ports in one shot (per-stripe control/data ports are
// base-plus-index on the wire, so they must be adjacent) while plain
// sessions keep taking single ports.
//
// Thread-safe: every method takes an internal lock, so the engine's
// session teardown, concurrent striped negotiations, and user calls can
// all hit it at once.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace fobs::posix {

class PortAllocator {
 public:
  /// A range reaching past port 65535 would wrap uint16_t arithmetic
  /// and hand out unintended low-numbered ports; the constructor clamps
  /// it to the valid tail. Base 0 is not a usable listening port and
  /// disables the allocator (capacity 0), as does count 0.
  PortAllocator(std::uint16_t base, std::uint16_t count);

  PortAllocator(const PortAllocator&) = delete;
  PortAllocator& operator=(const PortAllocator&) = delete;

  /// Lowest free port, or nullopt when exhausted/disabled.
  std::optional<std::uint16_t> allocate();
  /// Lowest-based contiguous run of `count` free ports (first fit), or
  /// nullopt when no such run exists. Release with release_block — or
  /// port-by-port via release(); the block has no identity beyond its
  /// members.
  std::optional<std::uint16_t> allocate_block(std::size_t count);

  /// Returns one port to the pool. Ports outside the configured range
  /// (including 0) and double releases are ignored.
  void release(std::uint16_t port);
  void release_block(std::uint16_t first, std::size_t count);

  [[nodiscard]] std::size_t free_count() const;
  [[nodiscard]] std::uint16_t base() const { return base_; }
  /// Post-clamp range size.
  [[nodiscard]] std::size_t capacity() const { return in_use_.size(); }

 private:
  std::uint16_t base_ = 0;
  mutable std::mutex mu_;
  std::vector<bool> in_use_;  ///< guarded by mu_
  std::size_t free_ = 0;      ///< guarded by mu_
};

}  // namespace fobs::posix
