#include "fobs/posix/posix_transfer.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/log.h"
#include "fobs/posix/codec.h"
#include "telemetry/metrics.h"

namespace fobs::posix {

namespace {

using Clock = std::chrono::steady_clock;

/// Installs a "nanoseconds since `start`" clock on `tracer` and records
/// the transfer_start event. No-op on a null tracer.
void begin_trace(fobs::telemetry::EventTracer* tracer, Clock::time_point start,
                 std::int64_t packet_count) {
  if (tracer == nullptr) return;
  tracer->set_clock([start] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
  });
  tracer->record(telemetry::EventType::kTransferStart, -1, packet_count);
}

/// Records the terminal timeout/error event matching `error` ("" = none).
void end_trace(fobs::telemetry::EventTracer* tracer, const std::string& error) {
  if (tracer == nullptr || error.empty()) return;
  tracer->record(error == "timeout" || error == "control connect timeout"
                     ? telemetry::EventType::kTimeout
                     : telemetry::EventType::kError);
}

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  return addr;
}

double mbps(std::int64_t bytes, double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / seconds / 1e6;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

SenderResult send_object(const SenderOptions& options, std::span<const std::uint8_t> object) {
  SenderResult result;
  fobs::core::TransferSpec spec{static_cast<std::int64_t>(object.size()),
                                options.packet_bytes};
  result.packets_needed = spec.packet_count();

  // UDP socket for data out / ACKs in.
  Fd udp(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!udp.valid() || !set_nonblocking(udp.get())) {
    result.error = "udp socket setup failed";
    return result;
  }
  if (options.send_buffer_bytes > 0) {
    const int buf = options.send_buffer_bytes;
    ::setsockopt(udp.get(), SOL_SOCKET, SO_SNDBUF, &buf, sizeof buf);
  }
  const sockaddr_in peer = make_addr(options.receiver_host, options.data_port);

  // TCP listener for the completion signal.
  Fd listener(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listener.valid()) {
    result.error = "tcp socket failed";
    return result;
  }
  const int one = 1;
  ::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in listen_addr = make_addr("0.0.0.0", options.control_port);
  if (::bind(listener.get(), reinterpret_cast<sockaddr*>(&listen_addr), sizeof listen_addr) !=
          0 ||
      ::listen(listener.get(), 1) != 0 || !set_nonblocking(listener.get())) {
    result.error = "tcp listen failed";
    return result;
  }

  fobs::core::SenderCore core(spec, options.core);
  std::vector<std::uint8_t> packet(kDataHeaderSize +
                                   static_cast<std::size_t>(options.packet_bytes));
  std::uint8_t ack_buf[64 * 1024];

  Fd control;
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.timeout_ms);
  core.set_tracer(options.tracer);
  begin_trace(options.tracer, start, spec.packet_count());
  auto& metrics = telemetry::MetricsRegistry::global();
  metrics.counter("fobs.posix.sender.transfers").inc();

  while (!core.completion_received()) {
    if (Clock::now() >= deadline) {
      result.error = "timeout";
      break;
    }

    // Accept / read the completion channel.
    if (!control.valid()) {
      const int fd = ::accept(listener.get(), nullptr, nullptr);
      if (fd >= 0) {
        control = Fd(fd);
        set_nonblocking(fd);
      }
    } else {
      std::uint64_t token = 0;
      const ssize_t n = ::recv(control.get(), &token, sizeof token, MSG_DONTWAIT);
      if (n == sizeof token && token == kCompletionToken) {
        core.on_completion_signal();
        break;
      }
    }

    // Phase 2: one non-blocking ACK check.
    const ssize_t ack_len = ::recv(udp.get(), ack_buf, sizeof ack_buf, MSG_DONTWAIT);
    if (ack_len > 0) {
      if (auto ack = decode_ack(ack_buf, static_cast<std::size_t>(ack_len))) {
        core.on_ack(*ack);
      }
    }

    if (core.all_acked()) {
      // Nothing useful to send; nap briefly while waiting for the
      // completion signal instead of spinning.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }

    // Phase 1: batch-send.
    const int batch = core.current_batch_size();
    int sent_in_batch = 0;
    for (int i = 0; i < batch && !core.all_acked(); ++i) {
      // Peek the next packet by selecting only after the socket is
      // known writable: try a zero-copy check via poll with 0 timeout.
      const auto seq = core.select_next();
      if (!seq) break;
      const std::int64_t len = spec.payload_bytes(*seq);
      encode_data_header(DataHeader{*seq}, packet.data());
      std::memcpy(packet.data() + kDataHeaderSize, object.data() + spec.offset_of(*seq),
                  static_cast<std::size_t>(len));
      while (true) {
        const ssize_t sent =
            ::sendto(udp.get(), packet.data(), kDataHeaderSize + static_cast<std::size_t>(len),
                     0, reinterpret_cast<const sockaddr*>(&peer), sizeof peer);
        if (sent >= 0) break;
        if (errno == EWOULDBLOCK || errno == EAGAIN || errno == ENOBUFS) {
          // The select()-style wait from the paper: block until the
          // socket can take the datagram.
          pollfd pfd{udp.get(), POLLOUT, 0};
          ::poll(&pfd, 1, 10);
          continue;
        }
        result.error = std::string("sendto failed: ") + std::strerror(errno);
        break;
      }
      if (result.error.empty()) ++sent_in_batch;
      if (!result.error.empty()) break;
    }
    if (options.tracer != nullptr && sent_in_batch > 0) {
      options.tracer->record(telemetry::EventType::kBatchSent, -1, sent_in_batch);
    }
    if (!result.error.empty()) break;

    // The adaptive extension's pacing gap, when enabled.
    const auto gap = core.pacing_gap();
    if (gap > fobs::util::Duration::zero()) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(gap.ns()));
    }
  }

  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  result.completed = core.completion_received();
  result.elapsed_seconds = elapsed;
  result.packets_sent = core.stats().packets_sent;
  result.waste = core.waste();
  if (result.completed) {
    result.goodput_mbps = mbps(spec.object_bytes, elapsed);
    result.error.clear();
  }
  end_trace(options.tracer, result.error);
  metrics.counter("fobs.posix.sender.packets_sent").inc(result.packets_sent);
  if (result.completed) {
    metrics.counter("fobs.posix.sender.completed").inc();
    metrics
        .histogram("fobs.posix.sender.elapsed_ms",
                   {1, 10, 100, 1'000, 10'000, 60'000, 600'000})
        .observe(static_cast<std::int64_t>(elapsed * 1e3));
  } else if (result.error == "timeout") {
    metrics.counter("fobs.posix.sender.timeouts").inc();
  } else {
    metrics.counter("fobs.posix.sender.errors").inc();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

ReceiverResult receive_object(const ReceiverOptions& options, std::span<std::uint8_t> buffer) {
  ReceiverResult result;
  fobs::core::TransferSpec spec{static_cast<std::int64_t>(buffer.size()),
                                options.packet_bytes};
  auto& metrics = telemetry::MetricsRegistry::global();
  metrics.counter("fobs.posix.receiver.transfers").inc();

  Fd udp(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!udp.valid() || !set_nonblocking(udp.get())) {
    result.error = "udp socket setup failed";
    return result;
  }
  if (options.recv_buffer_bytes > 0) {
    const int buf = options.recv_buffer_bytes;
    ::setsockopt(udp.get(), SOL_SOCKET, SO_RCVBUF, &buf, sizeof buf);
  }
  sockaddr_in bind_addr = make_addr("0.0.0.0", options.data_port);
  if (::bind(udp.get(), reinterpret_cast<sockaddr*>(&bind_addr), sizeof bind_addr) != 0) {
    result.error = "udp bind failed";
    return result;
  }

  // Completion channel: connect to the sender (retry while it starts).
  Fd control(::socket(AF_INET, SOCK_STREAM, 0));
  if (!control.valid()) {
    result.error = "tcp socket failed";
    return result;
  }
  const sockaddr_in control_addr = make_addr(options.sender_host, options.control_port);
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.timeout_ms);
  begin_trace(options.tracer, start, spec.packet_count());
  while (::connect(control.get(), reinterpret_cast<const sockaddr*>(&control_addr),
                   sizeof control_addr) != 0) {
    if (Clock::now() >= deadline) {
      result.error = "control connect timeout";
      end_trace(options.tracer, result.error);
      metrics.counter("fobs.posix.receiver.timeouts").inc();
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  fobs::core::ReceiverCore core(spec, options.core);
  core.set_tracer(options.tracer);
  std::vector<std::uint8_t> datagram(kDataHeaderSize +
                                     static_cast<std::size_t>(options.packet_bytes));
  sockaddr_in from{};
  bool have_sender_addr = false;

  while (!core.complete()) {
    if (Clock::now() >= deadline) {
      result.error = "timeout";
      break;
    }
    socklen_t from_len = sizeof from;
    const ssize_t n = ::recvfrom(udp.get(), datagram.data(), datagram.size(), MSG_DONTWAIT,
                                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EWOULDBLOCK || errno == EAGAIN) {
        pollfd pfd{udp.get(), POLLIN, 0};
        ::poll(&pfd, 1, 10);
        continue;
      }
      result.error = std::string("recvfrom failed: ") + std::strerror(errno);
      break;
    }
    have_sender_addr = true;
    const auto header = decode_data_header(datagram.data(), static_cast<std::size_t>(n));
    if (!header || header->seq < 0 || header->seq >= spec.packet_count()) continue;
    const std::int64_t len = spec.payload_bytes(header->seq);
    if (n - static_cast<ssize_t>(kDataHeaderSize) < len) continue;  // truncated

    const auto outcome = core.on_data_packet(header->seq);
    if (outcome.newly_received) {
      std::memcpy(buffer.data() + spec.offset_of(header->seq),
                  datagram.data() + kDataHeaderSize, static_cast<std::size_t>(len));
    }
    if (outcome.ack_due && have_sender_addr) {
      const auto msg = core.make_ack();
      const auto ack = encode_ack(msg);
      ::sendto(udp.get(), ack.data(), ack.size(), 0, reinterpret_cast<sockaddr*>(&from),
               from_len);
      if (options.tracer != nullptr) {
        options.tracer->record(telemetry::EventType::kAckSent,
                               static_cast<std::int64_t>(msg.ack_no),
                               static_cast<std::int64_t>(ack.size()));
      }
    }
  }

  if (core.complete()) {
    const std::uint64_t token = kCompletionToken;
    // Best-effort blocking-ish send of 8 bytes.
    ::send(control.get(), &token, sizeof token, 0);
    result.completed = true;
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  result.elapsed_seconds = elapsed;
  result.packets_received = core.stats().packets_received;
  result.duplicates = core.stats().duplicates;
  if (result.completed) result.goodput_mbps = mbps(spec.object_bytes, elapsed);
  end_trace(options.tracer, result.completed ? std::string() : result.error);
  metrics.counter("fobs.posix.receiver.packets_received").inc(result.packets_received);
  metrics.counter("fobs.posix.receiver.duplicates").inc(result.duplicates);
  if (result.completed) {
    metrics.counter("fobs.posix.receiver.completed").inc();
  } else if (result.error == "timeout") {
    metrics.counter("fobs.posix.receiver.timeouts").inc();
  } else {
    metrics.counter("fobs.posix.receiver.errors").inc();
  }
  return result;
}

}  // namespace fobs::posix
