#include "fobs/posix/posix_transfer.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "common/log.h"
#include "fobs/posix/checkpoint.h"
#include "fobs/posix/codec.h"
#include "net/datagram_channel.h"
#include "telemetry/metrics.h"

namespace fobs::posix {

namespace {

using Clock = std::chrono::steady_clock;

/// Installs a "nanoseconds since `start`" clock on `tracer` and records
/// the transfer_start event. No-op on a null tracer.
void begin_trace(fobs::telemetry::EventTracer* tracer, Clock::time_point start,
                 std::int64_t packet_count) {
  if (tracer == nullptr) return;
  tracer->set_clock([start] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
  });
  tracer->record(telemetry::EventType::kTransferStart, -1, packet_count);
}

/// Records the terminal trace event for a non-completed status: the
/// give-up statuses map to a timeout event, hard failures to an error
/// event, and completion/cancellation to none.
void end_trace(fobs::telemetry::EventTracer* tracer, TransferStatus status) {
  if (tracer == nullptr) return;
  switch (status) {
    case TransferStatus::kCompleted:
    case TransferStatus::kCancelled:
      return;
    case TransferStatus::kTimeout:
    case TransferStatus::kStalled:
    case TransferStatus::kPeerLost:
      tracer->record(telemetry::EventType::kTimeout);
      return;
    default:
      tracer->record(telemetry::EventType::kError);
      return;
  }
}

/// Classifies a completed run into the per-outcome metrics counters.
void count_outcome(telemetry::MetricsRegistry& metrics, const char* side,
                   TransferStatus status) {
  const std::string prefix = std::string("fobs.posix.") + side;
  switch (status) {
    case TransferStatus::kCompleted: metrics.counter(prefix + ".completed").inc(); break;
    case TransferStatus::kTimeout:
    case TransferStatus::kStalled:
    case TransferStatus::kPeerLost:
      metrics.counter(prefix + ".timeouts").inc();
      break;
    case TransferStatus::kCancelled: metrics.counter(prefix + ".cancelled").inc(); break;
    default: metrics.counter(prefix + ".errors").inc(); break;
  }
}

/// Scope guard that feeds the final status to count_outcome on every
/// exit path — the early option/socket failures included, so the
/// per-outcome counters always sum to the number of runs.
class OutcomeScope {
 public:
  OutcomeScope(telemetry::MetricsRegistry& metrics, const char* side,
               const TransferStatus& status)
      : metrics_(metrics), side_(side), status_(status) {}
  ~OutcomeScope() { count_outcome(metrics_, side_, status_); }
  OutcomeScope(const OutcomeScope&) = delete;
  OutcomeScope& operator=(const OutcomeScope&) = delete;

 private:
  telemetry::MetricsRegistry& metrics_;
  const char* side_;
  const TransferStatus& status_;
};

bool cancel_requested(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

/// Validates a striped session's StripeRef against the full-object span
/// and swaps `spec` for the stripe-local geometry. The drivers then run
/// completely unchanged in local sequence space; only payload offsets
/// go through the plan. False (with `error` set) on any mismatch — a
/// wrong plan silently corrupting offsets is the failure mode guarded
/// against here.
bool resolve_stripe(const stripe::StripeRef& ref, std::int64_t span_bytes,
                    fobs::core::TransferSpec& spec, std::string& error) {
  if (!ref.active()) return true;
  const auto& plan = *ref.plan;
  if (ref.index < 0 || ref.index >= plan.stripe_count()) {
    error = "invalid options: stripe index outside the plan";
    return false;
  }
  if (plan.spec().object_bytes != span_bytes ||
      plan.spec().packet_bytes != spec.packet_bytes) {
    error = "invalid options: stripe plan does not match this transfer's geometry";
    return false;
  }
  spec = plan.stripe_spec(ref.index);
  return true;
}

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  return addr;
}

double mbps(std::int64_t bytes, double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / seconds / 1e6;
}

void put_u64be(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

std::uint64_t get_u64be(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

/// Resolves the fault plan for one endpoint: the options field wins,
/// otherwise FOBS_FAULT_PLAN from the environment. Returns false (and
/// sets `error`) on a malformed plan.
bool resolve_fault_plan(const std::string& from_options,
                        std::optional<fobs::net::FaultInjector>& injector,
                        std::string& error) {
  std::string spec = from_options;
  if (spec.empty()) {
    if (const char* env = std::getenv("FOBS_FAULT_PLAN")) spec = env;
  }
  if (spec.empty()) return true;
  std::string parse_error;
  const auto plan = fobs::net::FaultPlan::parse(spec, &parse_error);
  if (!plan) {
    error = "invalid fault plan: " + parse_error;
    return false;
  }
  if (!plan->empty()) injector.emplace(*plan);
  return true;
}

/// Writes `len` bytes to a non-blocking stream socket, polling for
/// writability, until done, failure, or `deadline`.
bool send_all(int fd, const std::uint8_t* data, std::size_t len, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN || errno == EINTR)) {
      if (Clock::now() >= deadline) return false;
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 10);
      continue;
    }
    return false;
  }
  return true;
}

/// Connects a fresh TCP socket to the control port, retrying with
/// capped exponential backoff until `deadline` (or cancellation).
/// Invalid Fd on failure.
Fd connect_control(const std::string& host, std::uint16_t port, Clock::time_point deadline,
                   const std::atomic<bool>* cancel) {
  auto backoff = std::chrono::milliseconds(5);
  constexpr auto kMaxBackoff = std::chrono::milliseconds(200);
  while (Clock::now() < deadline && !cancel_requested(cancel)) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return {};
    const sockaddr_in addr = make_addr(host, port);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      set_nonblocking(fd.get());
      return fd;
    }
    // A failed connect() leaves the socket in an unusable state on some
    // platforms; start over with a fresh one after the backoff.
    fd.reset();
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, kMaxBackoff);
  }
  return {};
}

/// Wall-clock stall checker shared by both endpoints: `tick` forwards
/// to the core once per elapsed interval and reports whether the
/// consecutive-empty streak has reached the give-up limit.
class StallClock {
 public:
  StallClock(Clock::time_point start, int timeout_ms, int intervals)
      : limit_(std::max(1, intervals)),
        interval_(std::chrono::milliseconds(std::max(1, timeout_ms / std::max(1, intervals)))),
        next_check_(start + interval_) {}

  template <typename Core>
  [[nodiscard]] bool expired(Core& core) {
    const auto now = Clock::now();
    while (now >= next_check_) {
      streak_ = core.on_stall_interval();
      next_check_ += interval_;
    }
    return streak_ >= limit_;
  }

 private:
  int limit_;
  Clock::duration interval_;
  Clock::time_point next_check_;
  int streak_ = 0;
};

/// Classification of one received ACK datagram.
enum class AckClass : std::uint8_t {
  kApply,    ///< decoded, epoch matches: apply to the core
  kStale,    ///< decoded, wrong incarnation epoch: count and ignore
  kCorrupt,  ///< undecodable (corrupted in flight or garbage): count and drop
};

/// The one place ACK datagrams are classified — shared by the sender's
/// main loop and its completion drain, so the drop counters and trace
/// events can never diverge between the two code paths.
class AckClassifier {
 public:
  AckClassifier(SenderResult& result, telemetry::MetricsRegistry& metrics,
                fobs::telemetry::EventTracer* tracer)
      : result_(result), metrics_(metrics), tracer_(tracer) {}

  /// A hello frame announced the receiver's incarnation epoch; from now
  /// on only ACKs stamped with it are applied.
  void on_hello(std::uint32_t epoch) {
    epoch_ = epoch;
    filtering_ = true;
  }

  /// The control channel reconnected: the dead incarnation's in-flight
  /// ACKs are poison, so reject everything until the new hello arrives
  /// (receivers always pick nonzero epochs).
  void on_peer_reconnect() { epoch_ = 0; }

  AckClass classify(const std::uint8_t* data, std::size_t len,
                    std::optional<fobs::core::AckMessage>& decoded) {
    decoded = decode_ack(data, len);
    if (!decoded) {
      ++result_.corrupt_acks_dropped;
      metrics_.counter("fobs.fault.corrupt_drops").inc();
      if (tracer_ != nullptr) {
        tracer_->record(telemetry::EventType::kCorruptDrop, -1,
                        result_.corrupt_acks_dropped);
      }
      return AckClass::kCorrupt;
    }
    if (filtering_ && decoded->epoch != epoch_) {
      ++result_.stale_acks_dropped;
      metrics_.counter("fobs.fault.stale_acks").inc();
      return AckClass::kStale;
    }
    return AckClass::kApply;
  }

 private:
  SenderResult& result_;
  telemetry::MetricsRegistry& metrics_;
  fobs::telemetry::EventTracer* tracer_;
  std::uint32_t epoch_ = 0;
  bool filtering_ = false;
};

}  // namespace

namespace detail {

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

SenderResult run_sender(const SenderOptions& options, std::span<const std::uint8_t> object,
                        const std::atomic<bool>* cancel) {
  SenderResult result;
  result.status = TransferStatus::kBadOptions;
  auto& metrics = telemetry::MetricsRegistry::global();
  OutcomeScope outcome(metrics, "sender", result.status);
  if (options.data_port == 0 || options.control_port == 0) {
    result.error = "invalid options: data_port and control_port must be non-zero";
    return result;
  }
  if (options.endpoint.packet_bytes <= 0) {
    result.error = "invalid options: packet_bytes must be positive";
    return result;
  }
  if (const std::string io_invalid = options.endpoint.io.validate(); !io_invalid.empty()) {
    result.error = "invalid options: " + io_invalid;
    return result;
  }
  if (object.empty()) {
    result.error = "invalid options: cannot send an empty object";
    return result;
  }
  fobs::core::TransferSpec spec{static_cast<std::int64_t>(object.size()),
                                options.endpoint.packet_bytes};
  if (!resolve_stripe(options.stripe, spec.object_bytes, spec, result.error)) return result;
  // Striped sessions: sequence numbers below are stripe-local; only the
  // payload offset into the (whole-object) span goes through the plan.
  const stripe::StripePlan* stripe_plan = options.stripe.plan.get();
  const int stripe_index = options.stripe.index;
  result.packets_needed = spec.packet_count();

  std::optional<fobs::net::FaultInjector> faults;
  if (!resolve_fault_plan(options.endpoint.fault_plan, faults, result.error)) return result;

  // Datagram channel for data out / ACKs in. Left unbound — the kernel
  // assigns the source port on first send and the receiver replies to
  // it. Receive slots are sized for the largest ACK datagram.
  result.status = TransferStatus::kSocketError;
  std::string io_error;
  auto channel = fobs::net::DatagramChannel::open(
      options.endpoint.io, static_cast<std::size_t>(kMaxDatagramBytes), std::nullopt,
      &io_error);
  if (!channel.valid()) {
    result.error = io_error;
    return result;
  }
  const sockaddr_in peer = make_addr(options.receiver_host, options.data_port);

  // TCP listener for the control channel (completion + resume frames).
  Fd listener(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listener.valid()) {
    result.error = "tcp socket failed";
    return result;
  }
  const int one = 1;
  ::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in listen_addr = make_addr("0.0.0.0", options.control_port);
  if (::bind(listener.get(), reinterpret_cast<sockaddr*>(&listen_addr), sizeof listen_addr) !=
          0 ||
      ::listen(listener.get(), 1) != 0 || !set_nonblocking(listener.get())) {
    result.error = "tcp listen failed";
    return result;
  }

  fobs::core::SenderCore core(spec, options.core);
  // Per-batch scatter-gather state. Headers live in `headers` so every
  // view's iovec stays valid for the whole send_batch call; payload
  // views point straight into the caller's (typically mmap'd) object —
  // zero payload copies — except when a fault corrupts a private copy.
  std::vector<std::array<std::uint8_t, kDataHeaderSize>> headers;
  std::vector<fobs::net::DatagramView> views;
  std::vector<std::vector<std::uint8_t>> corrupt_payloads;
  std::vector<fobs::net::RecvView> ack_views(
      static_cast<std::size_t>(options.endpoint.io.recv_batch));

  Fd control;
  bool control_ever_connected = false;
  std::vector<std::uint8_t> control_buf;
  const auto start = Clock::now();
  StallClock stall(start, options.endpoint.timeout_ms, options.endpoint.stall_intervals);
  fobs::telemetry::EventTracer* tracer = options.endpoint.tracer;
  // ACK-stream versioning: once a receiver announces its incarnation
  // epoch via a hello frame, only ACKs stamped with that epoch are
  // applied. After a reconnect the expected epoch is cleared, so late
  // datagrams from the dead incarnation can never re-mark packets the
  // new receiver does not have.
  AckClassifier acks(result, metrics, tracer);
  core.set_tracer(tracer);
  begin_trace(tracer, start, spec.packet_count());
  metrics.counter("fobs.posix.sender.transfers").inc();
  result.status = TransferStatus::kRunning;

  while (!core.completion_received()) {
    if (cancel_requested(cancel)) {
      result.status = TransferStatus::kCancelled;
      result.error = "cancelled";
      break;
    }
    if (stall.expired(core)) {
      // Zero progress ever means the peer never showed up (a plain
      // timeout); progress that then stopped for the whole budget is a
      // stall — callers may want to treat those very differently.
      const bool progressed = control_ever_connected || core.stats().packets_acked > 0;
      result.status = progressed ? TransferStatus::kStalled : TransferStatus::kTimeout;
      result.error = progressed ? "stalled: no progress for the whole stall budget"
                                : "timeout";
      metrics.counter("fobs.fault.stalls").inc();
      break;
    }

    // Accept / read the control channel. A restarted receiver shows up
    // as EOF on the old connection followed by a fresh accept; its
    // resume frame (full bitmap) then pre-acks everything the previous
    // incarnation stored.
    if (!control.valid()) {
      const int fd = ::accept(listener.get(), nullptr, nullptr);
      if (fd >= 0) {
        control = Fd(fd);
        set_nonblocking(fd);
        if (control_ever_connected) {
          ++result.reconnects;
          metrics.counter("fobs.fault.reconnects").inc();
          if (tracer != nullptr) {
            tracer->record(telemetry::EventType::kReconnect, -1, result.reconnects);
          }
          // The peer's state is unknown (possibly a from-scratch
          // restart): drop the ACK view so everything is resent unless
          // the resume frame that may follow restores it.
          core.on_peer_restart();
          // Discard ACKs queued by the previous incarnation — applying
          // one after the reset would re-mark packets the new receiver
          // does not have. (An early ACK from the new incarnation can be
          // discarded too; the next snapshot ACK supersedes it.) The
          // drain handles what is already queued; the epoch filter
          // handles stale ACKs still in flight after it.
          while (channel.recv_batch(ack_views, nullptr) > 0) {
          }
          acks.on_peer_reconnect();
        }
        control_ever_connected = true;
      }
    } else {
      std::uint8_t tmp[4096];
      const ssize_t n = ::recv(control.get(), tmp, sizeof tmp, MSG_DONTWAIT);
      if (n > 0) {
        control_buf.insert(control_buf.end(), tmp, tmp + n);
      } else if (n == 0 ||
                 (n < 0 && errno != EWOULDBLOCK && errno != EAGAIN && errno != EINTR)) {
        control.reset();
        control_buf.clear();
      }
      // Parse whole frames off the buffered stream.
      while (control_buf.size() >= 8) {
        const std::uint64_t token = get_u64be(control_buf.data());
        if (token == kCompletionToken) {
          core.on_completion_signal();
          break;
        }
        if (token == kHelloToken) {
          if (control_buf.size() < kHelloFrameSize) break;  // wait for the rest
          acks.on_hello(static_cast<std::uint32_t>(get_u64be(control_buf.data() + 8)));
          control_buf.erase(control_buf.begin(),
                            control_buf.begin() + static_cast<std::ptrdiff_t>(kHelloFrameSize));
          continue;
        }
        if (token != kResumeToken) {
          // Desynced or garbage stream: drop the connection and let the
          // receiver re-establish it cleanly.
          control.reset();
          control_buf.clear();
          break;
        }
        const std::size_t frame_size = resume_frame_size(spec.packet_count());
        if (control_buf.size() < frame_size) break;  // wait for the rest
        const auto frame = decode_resume(control_buf.data(), frame_size);
        control_buf.erase(control_buf.begin(),
                          control_buf.begin() + static_cast<std::ptrdiff_t>(frame_size));
        if (frame && frame->packet_count == spec.packet_count()) {
          core.on_resume(frame->bitmap.data(), frame->bitmap.size(), frame->packet_count);
          metrics.counter("fobs.fault.resumes").inc();
        }
      }
      if (core.completion_received()) break;
    }

    // Phase 2: one non-blocking batched drain of the ACK socket.
    // Undecodable datagrams (corrupted in flight or plain garbage) are
    // counted and dropped; they never reach the core.
    const int n_acks = channel.recv_batch(ack_views, nullptr);
    for (int i = 0; i < n_acks; ++i) {
      std::optional<fobs::core::AckMessage> ack;
      if (acks.classify(ack_views[static_cast<std::size_t>(i)].data.data(),
                        ack_views[static_cast<std::size_t>(i)].data.size(),
                        ack) == AckClass::kApply) {
        core.on_ack(*ack);
      }
    }

    if (core.all_acked()) {
      // Nothing useful to send; sleep on the actual fds (fresher ACKs
      // on the data socket, the completion token on the control side)
      // instead of napping a fixed interval, so completion latency does
      // not quantize to a nap period. Bounded at 10 ms so the
      // cancel/stall checks keep running.
      pollfd pfds[2] = {{channel.fd(), POLLIN, 0},
                        {control.valid() ? control.get() : listener.get(), POLLIN, 0}};
      ::poll(pfds, 2, 10);
      continue;
    }

    // Phase 1: gather one FOBS batch as scatter-gather views (header
    // buffer + a pointer into the object) and push it with as few send
    // syscalls as the channel can manage.
    const int batch = core.current_batch_size();
    headers.resize(static_cast<std::size_t>(std::max(batch, 1)));
    views.clear();
    corrupt_payloads.clear();
    int selected = 0;
    bool crash_pending = false;
    for (int i = 0; i < batch && !core.all_acked(); ++i) {
      if (faults && faults->crash_due()) {
        crash_pending = true;  // what is already gathered still goes out
        break;
      }
      const auto seq = core.select_next();
      if (!seq) break;
      const std::int64_t len = spec.payload_bytes(*seq);
      const std::uint8_t* payload =
          object.data() + (stripe_plan != nullptr ? stripe_plan->global_offset(stripe_index, *seq)
                                                  : spec.offset_of(*seq));
      auto& header_buf = headers[static_cast<std::size_t>(selected)];
      encode_data_header(DataHeader{*seq, payload_crc(payload, static_cast<std::size_t>(len))},
                         header_buf.data());
      int copies = 1;
      if (faults) {
        switch (faults->next(fobs::net::FaultChannel::kData)) {
          case fobs::net::FaultAction::kDrop: copies = 0; break;
          case fobs::net::FaultAction::kCorrupt: {
            // Flip a byte in a private copy after the CRC was computed,
            // so the receiver's checksum test fails deterministically —
            // on exactly this datagram of the batch. The mapped object
            // itself must stay pristine.
            auto& copy = corrupt_payloads.emplace_back(payload, payload + len);
            copy[0] ^= 0xFF;
            payload = copy.data();
            break;
          }
          case fobs::net::FaultAction::kDuplicate: copies = 2; break;
          case fobs::net::FaultAction::kPass: break;
        }
      }
      for (int copy = 0; copy < copies; ++copy) {
        views.push_back({std::span<const std::uint8_t>(header_buf),
                         std::span<const std::uint8_t>(payload,
                                                       static_cast<std::size_t>(len))});
      }
      ++selected;
    }
    if (!views.empty() && !channel.send_batch(views, peer, &io_error)) {
      result.status = TransferStatus::kSocketError;
      result.error = io_error;
      break;
    }
    if (tracer != nullptr && selected > 0) {
      tracer->record(telemetry::EventType::kBatchSent, -1, selected);
    }
    if (crash_pending) {
      result.status = TransferStatus::kCrashed;
      result.error = "injected crash";
      break;
    }

    // The adaptive extension's pacing gap, when enabled.
    const auto gap = core.pacing_gap();
    if (gap > fobs::util::Duration::zero()) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(gap.ns()));
    }
  }

  // Drain ACK datagrams still queued at exit so the corrupt/stale drop
  // counters reflect everything that actually arrived. A fast transfer
  // can complete over the control channel with most ACKs unread; their
  // classification must not depend on that race.
  if (core.completion_received()) {
    int drained = 0;
    while ((drained = channel.recv_batch(ack_views, nullptr)) > 0) {
      for (int i = 0; i < drained; ++i) {
        std::optional<fobs::core::AckMessage> ack;
        // Classification only — the transfer is over, so a kApply ACK
        // is simply discarded while corrupt/stale ones are counted.
        acks.classify(ack_views[static_cast<std::size_t>(i)].data.data(),
                      ack_views[static_cast<std::size_t>(i)].data.size(), ack);
      }
    }
  }

  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  result.elapsed_seconds = elapsed;
  result.packets_sent = core.stats().packets_sent;
  result.waste = core.waste();
  if (core.completion_received()) {
    result.status = TransferStatus::kCompleted;
    result.goodput_mbps = mbps(spec.object_bytes, elapsed);
    result.error.clear();
    metrics
        .histogram("fobs.posix.sender.elapsed_ms",
                   {1, 10, 100, 1'000, 10'000, 60'000, 600'000})
        .observe(static_cast<std::int64_t>(elapsed * 1e3));
  }
  end_trace(tracer, result.status);
  if (faults) metrics.counter("fobs.fault.injected").inc(faults->total_injected());
  metrics.counter("fobs.posix.sender.packets_sent").inc(result.packets_sent);
  result.io = channel.stats();
  return result;
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

ReceiverResult run_receiver(const ReceiverOptions& options, std::span<std::uint8_t> buffer,
                            const std::atomic<bool>* cancel) {
  ReceiverResult result;
  result.status = TransferStatus::kBadOptions;
  auto& metrics = telemetry::MetricsRegistry::global();
  OutcomeScope outcome(metrics, "receiver", result.status);
  if (options.data_port == 0 || options.control_port == 0) {
    result.error = "invalid options: data_port and control_port must be non-zero";
    return result;
  }
  if (options.endpoint.packet_bytes <= 0) {
    result.error = "invalid options: packet_bytes must be positive";
    return result;
  }
  if (const std::string io_invalid = options.endpoint.io.validate(); !io_invalid.empty()) {
    result.error = "invalid options: " + io_invalid;
    return result;
  }
  if (buffer.empty()) {
    result.error = "invalid options: cannot receive into an empty buffer";
    return result;
  }
  fobs::core::TransferSpec spec{static_cast<std::int64_t>(buffer.size()),
                                options.endpoint.packet_bytes};
  if (!resolve_stripe(options.stripe, spec.object_bytes, spec, result.error)) return result;
  const stripe::StripePlan* stripe_plan = options.stripe.plan.get();
  const int stripe_index = options.stripe.index;

  std::optional<fobs::net::FaultInjector> faults;
  if (!resolve_fault_plan(options.endpoint.fault_plan, faults, result.error)) return result;
  metrics.counter("fobs.posix.receiver.transfers").inc();

  // Datagram channel bound at the data port. Receive slots are sized
  // for exactly one full data packet; anything larger is truncated by
  // the kernel and rejected as garbage below.
  result.status = TransferStatus::kSocketError;
  std::string io_error;
  auto channel = fobs::net::DatagramChannel::open(
      options.endpoint.io,
      kDataHeaderSize + static_cast<std::size_t>(options.endpoint.packet_bytes),
      options.data_port, &io_error);
  if (!channel.valid()) {
    result.error = io_error;
    return result;
  }

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.endpoint.timeout_ms);
  fobs::telemetry::EventTracer* tracer = options.endpoint.tracer;
  begin_trace(tracer, start, spec.packet_count());

  fobs::core::ReceiverCore core(spec, options.core);
  core.set_tracer(tracer);
  result.status = TransferStatus::kRunning;

  // Resume: pre-seed the bitmap from a compatible checkpoint. The data
  // bytes themselves must already be in `buffer` (the caller persisted
  // the partial object, e.g. via a file-backed buffer).
  if (!options.checkpoint_path.empty()) {
    if (const auto checkpoint = load_checkpoint(options.checkpoint_path)) {
      if (checkpoint->object_bytes == spec.object_bytes &&
          checkpoint->packet_bytes == spec.packet_bytes) {
        const auto restored = core.restore(checkpoint->bitmap.data(),
                                           checkpoint->bitmap.size(), spec.packet_count());
        if (restored >= 0) {
          result.packets_restored = restored;
          metrics.counter("fobs.fault.resumes").inc();
        }
      } else {
        FOBS_WARN("fobs.receiver", "checkpoint at " << options.checkpoint_path
                                                    << " does not match this transfer; ignoring");
      }
    }
  }

  // Incarnation epoch: stamps every ACK and is announced on each
  // control connection, so the sender can tell this incarnation's ACKs
  // from stale ones still in flight after a restart. Monotonic time
  // xor'd with the pid makes a collision across incarnations
  // vanishingly unlikely; zero is reserved for "no epoch yet".
  std::uint32_t epoch = static_cast<std::uint32_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      (static_cast<std::uint64_t>(::getpid()) << 16));
  if (epoch == 0) epoch = 1;
  std::uint8_t hello[kHelloFrameSize];
  put_u64be(hello, kHelloToken);
  put_u64be(hello + 8, epoch);

  // Control channel: connect with capped exponential backoff (the
  // sender may not be up yet, or we may be a restarted incarnation).
  Fd control = connect_control(options.sender_host, options.control_port, deadline, cancel);
  if (!control.valid()) {
    if (cancel_requested(cancel)) {
      result.status = TransferStatus::kCancelled;
      result.error = "cancelled";
    } else {
      result.status = TransferStatus::kPeerLost;
      result.error = "control connect timeout";
    }
    end_trace(tracer, result.status);
    return result;
  }
  if (!send_all(control.get(), hello, sizeof hello, deadline)) {
    FOBS_WARN("fobs.receiver", "hello frame send failed; sender keeps its previous epoch");
  }

  // Announce a restored bitmap so the sender skips what we already have.
  if (result.packets_restored > 0 || core.complete()) {
    const auto bitmap = core.received().extract_range(
        0, static_cast<std::size_t>(spec.packet_count()));
    const auto frame = encode_resume(spec.packet_count(), result.packets_restored, bitmap);
    if (!send_all(control.get(), frame.data(), frame.size(), deadline)) {
      FOBS_WARN("fobs.receiver", "resume frame send failed; sender will re-send everything");
    }
  }

  std::vector<fobs::net::RecvView> rx_views(
      static_cast<std::size_t>(options.endpoint.io.recv_batch));
  bool sender_known = false;
  sockaddr_in sender_addr{};  // learned from the first *valid* data packet
  // The stall budget measures the data-transfer phase only: a slow
  // control connect must not be double-counted as empty stall intervals
  // the moment data starts flowing.
  StallClock stall(Clock::now(), options.endpoint.timeout_ms, options.endpoint.stall_intervals);
  int acks_since_checkpoint = 0;
  bool crashed = false;

  while (!core.complete() && !crashed) {
    if (cancel_requested(cancel)) {
      result.status = TransferStatus::kCancelled;
      result.error = "cancelled";
      break;
    }
    if (stall.expired(core)) {
      const bool progressed = core.stats().packets_received > 0;
      result.status = progressed ? TransferStatus::kStalled : TransferStatus::kTimeout;
      result.error = progressed ? "stalled: no progress for the whole stall budget"
                                : "timeout";
      metrics.counter("fobs.fault.stalls").inc();
      break;
    }
    if (faults && faults->crash_due()) {
      crashed = true;
      break;
    }
    const int n_rx = channel.recv_batch(rx_views, &io_error);
    if (n_rx < 0) {
      result.status = TransferStatus::kSocketError;
      result.error = io_error;
      break;
    }
    if (n_rx == 0) {
      pollfd pfd{channel.fd(), POLLIN, 0};
      ::poll(&pfd, 1, 10);
      continue;
    }
    for (int i = 0; i < n_rx && !core.complete(); ++i) {
      // The crash schedule fires mid-batch too: datagrams already
      // processed from this recvmmsg stay processed, the rest are lost
      // with the incarnation — exactly what a kill -9 between two
      // recvfrom calls used to look like.
      if (faults && faults->crash_due()) {
        crashed = true;
        break;
      }
      const std::uint8_t* data = rx_views[static_cast<std::size_t>(i)].data.data();
      const std::size_t size = rx_views[static_cast<std::size_t>(i)].data.size();
      const auto header = decode_data_header(data, size);
      if (!header || header->seq < 0 || header->seq >= spec.packet_count()) continue;
      const std::int64_t len = spec.payload_bytes(header->seq);
      if (size < kDataHeaderSize + static_cast<std::size_t>(len)) continue;  // truncated
      if (payload_crc(data + kDataHeaderSize, static_cast<std::size_t>(len)) !=
          header->payload_crc) {
        // Checksum failure: reject before the payload can touch the
        // object buffer; the greedy sender will resend it.
        ++result.corrupt_packets_dropped;
        metrics.counter("fobs.fault.corrupt_drops").inc();
        if (tracer != nullptr) {
          tracer->record(telemetry::EventType::kCorruptDrop, header->seq,
                         result.corrupt_packets_dropped);
        }
        continue;
      }
      // Only a fully validated packet may teach us where ACKs go — a
      // garbage datagram must not be able to redirect the ACK stream.
      sender_addr = rx_views[static_cast<std::size_t>(i)].from;
      sender_known = true;

      if (faults) {
        // The receiver-side data schedule models incoming damage beyond
        // what the checksum caught: drop = pretend it never arrived.
        // Drawn per datagram, so a fault hits one slot of the batch.
        switch (faults->next(fobs::net::FaultChannel::kData)) {
          case fobs::net::FaultAction::kDrop: continue;
          case fobs::net::FaultAction::kCorrupt: {
            ++result.corrupt_packets_dropped;
            metrics.counter("fobs.fault.corrupt_drops").inc();
            if (tracer != nullptr) {
              tracer->record(telemetry::EventType::kCorruptDrop, header->seq,
                             result.corrupt_packets_dropped);
            }
            continue;
          }
          default: break;
        }
      }

      const auto outcome = core.on_data_packet(header->seq);
      if (outcome.newly_received) {
        const std::int64_t at = stripe_plan != nullptr
                                    ? stripe_plan->global_offset(stripe_index, header->seq)
                                    : spec.offset_of(header->seq);
        std::memcpy(buffer.data() + at, data + kDataHeaderSize, static_cast<std::size_t>(len));
      }
      if (outcome.ack_due && sender_known) {
        auto msg = core.make_ack();
        msg.epoch = epoch;
        auto ack = encode_ack(msg);
        int copies = 1;
        if (faults) {
          switch (faults->next(fobs::net::FaultChannel::kAck)) {
            case fobs::net::FaultAction::kDrop: copies = 0; break;
            case fobs::net::FaultAction::kCorrupt:
              // Smash the magic so the sender counts + rejects it.
              ack[0] ^= 0xFF;
              break;
            case fobs::net::FaultAction::kDuplicate: copies = 2; break;
            case fobs::net::FaultAction::kPass: break;
          }
        }
        if (copies > 0) {
          // A duplicated ACK goes out as one two-view batch — one
          // syscall where the per-packet path used two sendto calls.
          const fobs::net::DatagramView ack_view{
              std::span<const std::uint8_t>(ack.data(), ack.size())};
          std::array<fobs::net::DatagramView, 2> ack_batch{ack_view, ack_view};
          channel.send_batch(
              std::span<const fobs::net::DatagramView>(ack_batch.data(),
                                                       static_cast<std::size_t>(copies)),
              sender_addr, nullptr);
        }
        if (tracer != nullptr) {
          tracer->record(telemetry::EventType::kAckSent,
                         static_cast<std::int64_t>(msg.ack_no),
                         static_cast<std::int64_t>(ack.size()));
        }
        if (!options.checkpoint_path.empty() &&
            ++acks_since_checkpoint >= std::max(1, options.checkpoint_every_acks)) {
          acks_since_checkpoint = 0;
          Checkpoint checkpoint;
          checkpoint.object_bytes = spec.object_bytes;
          checkpoint.packet_bytes = spec.packet_bytes;
          checkpoint.received_count = static_cast<std::int64_t>(core.received().count());
          checkpoint.bitmap = core.received().extract_range(
              0, static_cast<std::size_t>(spec.packet_count()));
          save_checkpoint(options.checkpoint_path, checkpoint);
        }
      }
    }
  }
  if (crashed) {
    // Simulated kill -9: abandon the transfer without cleanup. Any
    // checkpoint written so far stays behind for the next incarnation.
    result.status = TransferStatus::kCrashed;
    result.error = "injected crash";
  }

  if (core.complete()) {
    // Deliver the completion token; if the control connection died in
    // the meantime, reconnect (with backoff) and retry a few times.
    std::uint8_t token[8];
    put_u64be(token, kCompletionToken);
    const auto token_deadline = Clock::now() + std::chrono::seconds(2);
    bool delivered = control.valid() && send_all(control.get(), token, sizeof token,
                                                 token_deadline);
    for (int attempt = 0; !delivered && attempt < 3; ++attempt) {
      control = connect_control(options.sender_host, options.control_port,
                                Clock::now() + std::chrono::seconds(1), cancel);
      if (!control.valid()) continue;
      ++result.reconnects;
      metrics.counter("fobs.fault.reconnects").inc();
      if (tracer != nullptr) {
        tracer->record(telemetry::EventType::kReconnect, -1, result.reconnects);
      }
      // Hello first, as on every control connection.
      delivered = send_all(control.get(), hello, sizeof hello,
                           Clock::now() + std::chrono::seconds(1)) &&
                  send_all(control.get(), token, sizeof token,
                           Clock::now() + std::chrono::seconds(1));
    }
    result.status = TransferStatus::kCompleted;
    result.error.clear();
    if (!options.checkpoint_path.empty()) remove_checkpoint(options.checkpoint_path);
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  result.elapsed_seconds = elapsed;
  result.packets_received = core.stats().packets_received;
  result.duplicates = core.stats().duplicates;
  if (result.completed()) result.goodput_mbps = mbps(spec.object_bytes, elapsed);
  end_trace(tracer, result.status);
  if (faults) metrics.counter("fobs.fault.injected").inc(faults->total_injected());
  metrics.counter("fobs.posix.receiver.packets_received").inc(result.packets_received);
  metrics.counter("fobs.posix.receiver.duplicates").inc(result.duplicates);
  result.io = channel.stats();
  return result;
}

}  // namespace detail

}  // namespace fobs::posix
