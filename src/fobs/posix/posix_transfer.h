// Real-socket (POSIX) FOBS drivers.
//
// The same SenderCore/ReceiverCore state machines that run in the
// simulator, driven by non-blocking UDP sockets plus a TCP completion
// channel — the paper's deployment shape. One UDP socket per side
// carries both data and acknowledgements (the receiver replies to the
// source address of the data packets, so no ack-port configuration is
// needed); a TCP connection from receiver to sender delivers the
// "all data received" signal.
//
// Both calls are blocking; run them in two threads (see
// examples/file_transfer.cpp) or two processes.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fobs/receiver_core.h"
#include "fobs/sender_core.h"
#include "net/faults.h"
#include "telemetry/trace.h"

namespace fobs::posix {

struct SenderOptions {
  std::string receiver_host = "127.0.0.1";
  std::uint16_t data_port = 0;     ///< receiver's UDP port (required)
  std::uint16_t control_port = 0;  ///< sender's TCP listen port (required)
  std::int64_t packet_bytes = 1024;
  fobs::core::SenderConfig core;
  /// Progress-based give-up: the transfer is abandoned only after
  /// `stall_intervals` consecutive intervals of `timeout_ms /
  /// stall_intervals` each with zero protocol progress. A transfer that
  /// never progresses still dies after ~`timeout_ms`; one that keeps
  /// moving is never killed by the clock alone.
  int timeout_ms = 60'000;
  int stall_intervals = 8;
  /// SO_SNDBUF request (0 = system default).
  int send_buffer_bytes = 1 << 20;
  /// Fault-injection plan (grammar in docs/ROBUSTNESS.md). Empty means
  /// "use the FOBS_FAULT_PLAN environment variable, if set".
  std::string fault_plan;
  /// Optional event tracer (must outlive the call). send_object installs
  /// a steady clock (ns since call start) and records transfer_start,
  /// batch, ACK, completion, and timeout/error events on it.
  fobs::telemetry::EventTracer* tracer = nullptr;
};

struct SenderResult {
  bool completed = false;
  double elapsed_seconds = 0.0;
  std::int64_t packets_sent = 0;
  std::int64_t packets_needed = 0;
  double waste = 0.0;
  double goodput_mbps = 0.0;
  /// ACK datagrams that arrived but failed to decode (corrupt/garbage).
  std::int64_t corrupt_acks_dropped = 0;
  /// Valid ACKs discarded because their epoch did not match the current
  /// receiver incarnation (late datagrams from before a reconnect).
  std::int64_t stale_acks_dropped = 0;
  /// Control-channel connections accepted after the first one (a
  /// restarted receiver reconnecting).
  int reconnects = 0;
  std::string error;  ///< empty on success
};

/// Sends `object` to a receive_object() peer. Blocks until the
/// completion signal arrives or the timeout expires.
SenderResult send_object(const SenderOptions& options, std::span<const std::uint8_t> object);

struct ReceiverOptions {
  std::string sender_host = "127.0.0.1";
  std::uint16_t data_port = 0;     ///< local UDP port to bind (required)
  std::uint16_t control_port = 0;  ///< sender's TCP port (required)
  std::int64_t packet_bytes = 1024;
  fobs::core::ReceiverConfig core;
  /// Progress-based give-up; see SenderOptions::timeout_ms.
  int timeout_ms = 60'000;
  int stall_intervals = 8;
  /// SO_RCVBUF request (0 = system default). This is the buffer whose
  /// overflow during ACK construction the paper's Figure 1 studies.
  int recv_buffer_bytes = 1 << 20;
  /// Fault-injection plan; see SenderOptions::fault_plan.
  std::string fault_plan;
  /// When non-empty, the receiver's bitmap is persisted here every
  /// `checkpoint_every_acks` acknowledgements, an existing compatible
  /// checkpoint is loaded on start (the caller must supply the same
  /// partially-filled buffer the previous incarnation wrote into —
  /// typically a TransferObject::map_file_rw mapping, which keeps the
  /// bytes on disk even across a hard crash; restoring a checkpoint
  /// over a buffer that lacks those bytes silently corrupts the
  /// object), and the file is removed after a completed transfer. A restarted
  /// receiver announces its restored bitmap to the sender over the
  /// control channel so already-received packets are not re-sent.
  std::string checkpoint_path;
  int checkpoint_every_acks = 16;
  /// Optional event tracer, as in SenderOptions.
  fobs::telemetry::EventTracer* tracer = nullptr;
};

struct ReceiverResult {
  bool completed = false;
  double elapsed_seconds = 0.0;
  std::int64_t packets_received = 0;
  std::int64_t duplicates = 0;
  double goodput_mbps = 0.0;
  /// Data packets rejected because their payload CRC32 failed.
  std::int64_t corrupt_packets_dropped = 0;
  /// Packets pre-seeded from a checkpoint instead of the network.
  std::int64_t packets_restored = 0;
  /// Control-channel reconnects performed after losing the connection.
  int reconnects = 0;
  std::string error;
};

/// Receives an object of exactly `buffer.size()` bytes into `buffer`.
ReceiverResult receive_object(const ReceiverOptions& options, std::span<std::uint8_t> buffer);

}  // namespace fobs::posix
