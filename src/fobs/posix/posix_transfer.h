// Real-socket (POSIX) FOBS drivers.
//
// The same SenderCore/ReceiverCore state machines that run in the
// simulator, driven by non-blocking UDP sockets plus a TCP completion
// channel — the paper's deployment shape. One UDP socket per side
// carries both data and acknowledgements (the receiver replies to the
// source address of the data packets, so no ack-port configuration is
// needed); a TCP connection from receiver to sender delivers the
// "all data received" signal.
//
// Two surfaces exist:
//   * the session engine (fobs/posix/engine.h) — N concurrent
//     transfers on a worker pool, each addressable through a
//     TransferHandle (wait/status/cancel);
//   * the blocking free functions below — thin wrappers over a
//     one-session engine, kept for callers that want exactly one
//     transfer and are happy to block for it.
//
// Results carry a TransferStatus (see fobs/posix/options.h); `error`
// is only the human-readable detail and `completed()` is derived from
// the status, so callers never classify outcomes by string matching.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "fobs/posix/options.h"
#include "fobs/receiver_core.h"
#include "fobs/sender_core.h"
#include "fobs/stripe/plan.h"
#include "net/faults.h"

namespace fobs::posix {

struct SenderOptions {
  std::string receiver_host = "127.0.0.1";
  std::uint16_t data_port = 0;     ///< receiver's UDP port (required)
  std::uint16_t control_port = 0;  ///< sender's TCP listen port (required)
  fobs::core::SenderConfig core;
  /// Knobs shared with the receive side (packet size, stall budget,
  /// fault plan, tracer, datagram I/O tuning — SO_SNDBUF now lives at
  /// `endpoint.io.send_buffer_bytes`).
  EndpointOptions endpoint;
  /// When active, this session carries one stripe of a striped
  /// transfer: sequence numbers (and ACKs, bitmaps, checkpoints) are
  /// stripe-local, while `object` must still span the *whole* object —
  /// payload bytes are gathered at plan-computed global offsets. Both
  /// peers must agree on the plan (see fobs/stripe/negotiate.h).
  stripe::StripeRef stripe;
};

struct SenderResult {
  TransferStatus status = TransferStatus::kPending;
  std::string error;  ///< human-readable detail; empty on success
  double elapsed_seconds = 0.0;
  std::int64_t packets_sent = 0;
  std::int64_t packets_needed = 0;
  double waste = 0.0;
  double goodput_mbps = 0.0;
  /// ACK datagrams that arrived but failed to decode (corrupt/garbage).
  std::int64_t corrupt_acks_dropped = 0;
  /// Valid ACKs discarded because their epoch did not match the current
  /// receiver incarnation (late datagrams from before a reconnect).
  std::int64_t stale_acks_dropped = 0;
  /// Control-channel connections accepted after the first one (a
  /// restarted receiver reconnecting).
  int reconnects = 0;
  /// Data-plane I/O counters for this transfer's datagram channel
  /// (syscalls, datagrams, payload copy bytes avoided by the gather
  /// path).
  fobs::net::IoStats io;

  [[nodiscard]] bool completed() const { return status == TransferStatus::kCompleted; }
};

/// Sends `object` to a receive_object() peer. Blocks until the
/// completion signal arrives or the stall budget expires.
SenderResult send_object(const SenderOptions& options, std::span<const std::uint8_t> object);

struct ReceiverOptions {
  std::string sender_host = "127.0.0.1";
  std::uint16_t data_port = 0;     ///< local UDP port to bind (required)
  std::uint16_t control_port = 0;  ///< sender's TCP port (required)
  fobs::core::ReceiverConfig core;
  /// When non-empty, the receiver's bitmap is persisted here every
  /// `checkpoint_every_acks` acknowledgements, an existing compatible
  /// checkpoint is loaded on start (the caller must supply the same
  /// partially-filled buffer the previous incarnation wrote into —
  /// typically a TransferObject::map_file_rw mapping, which keeps the
  /// bytes on disk even across a hard crash; restoring a checkpoint
  /// over a buffer that lacks those bytes silently corrupts the
  /// object), and the file is removed after a completed transfer. A restarted
  /// receiver announces its restored bitmap to the sender over the
  /// control channel so already-received packets are not re-sent.
  std::string checkpoint_path;
  int checkpoint_every_acks = 16;
  /// Knobs shared with the send side. SO_RCVBUF — the buffer whose
  /// overflow during ACK construction the paper's Figure 1 studies —
  /// now lives at `endpoint.io.recv_buffer_bytes`.
  EndpointOptions endpoint;
  /// When active, this session receives one stripe into its plan-
  /// computed disjoint offsets of the whole-object `buffer` (which all
  /// stripes share — zero merge copies). checkpoint_path then persists
  /// the stripe-local bitmap; see fobs/stripe/striped_transfer.h for
  /// the merge into an object-level checkpoint.
  stripe::StripeRef stripe;
};

struct ReceiverResult {
  TransferStatus status = TransferStatus::kPending;
  std::string error;  ///< human-readable detail; empty on success
  double elapsed_seconds = 0.0;
  std::int64_t packets_received = 0;
  std::int64_t duplicates = 0;
  double goodput_mbps = 0.0;
  /// Data packets rejected because their payload CRC32 failed.
  std::int64_t corrupt_packets_dropped = 0;
  /// Packets pre-seeded from a checkpoint instead of the network.
  std::int64_t packets_restored = 0;
  /// Control-channel reconnects performed after losing the connection.
  int reconnects = 0;
  /// Data-plane I/O counters for this transfer's datagram channel.
  fobs::net::IoStats io;

  [[nodiscard]] bool completed() const { return status == TransferStatus::kCompleted; }
};

/// Receives an object of exactly `buffer.size()` bytes into `buffer`.
ReceiverResult receive_object(const ReceiverOptions& options, std::span<std::uint8_t> buffer);

namespace detail {

/// The actual blocking transfer loops. `cancel` (nullable) is polled
/// once per loop iteration; setting it makes the loop exit with
/// TransferStatus::kCancelled. The engine runs these on its workers;
/// the public free functions reach them through a one-session engine.
SenderResult run_sender(const SenderOptions& options, std::span<const std::uint8_t> object,
                        const std::atomic<bool>* cancel);
ReceiverResult run_receiver(const ReceiverOptions& options, std::span<std::uint8_t> buffer,
                            const std::atomic<bool>* cancel);

}  // namespace detail

}  // namespace fobs::posix
