#include "fobs/receiver_core.h"

#include <cassert>

namespace fobs::core {

ReceiverCore::ReceiverCore(TransferSpec spec, ReceiverConfig config)
    : spec_(spec),
      config_(config),
      received_(static_cast<std::size_t>(spec.packet_count())),
      ack_builder_(spec.packet_count(), config.ack_payload_bytes) {
  assert(config_.ack_frequency > 0);
}

ReceiverCore::PacketResult ReceiverCore::on_data_packet(PacketSeq seq) {
  assert(seq >= 0 && seq < spec_.packet_count());
  PacketResult result;
  ++stats_.packets_seen;
  if (!received_.set(static_cast<std::size_t>(seq))) {
    ++stats_.duplicates;
    return result;
  }
  result.newly_received = true;
  ++stats_.packets_received;
  ++new_since_ack_;
  if (seq == frontier_) {
    const auto next = received_.first_clear(static_cast<std::size_t>(frontier_));
    frontier_ = next ? static_cast<PacketSeq>(*next) : spec_.packet_count();
  }
  result.just_completed = received_.all_set();
  result.ack_due = new_since_ack_ >= config_.ack_frequency || result.just_completed;
  return result;
}

AckMessage ReceiverCore::make_ack() {
  new_since_ack_ = 0;
  ++stats_.acks_built;
  return ack_builder_.build(received_, frontier_, stats_.packets_received);
}

}  // namespace fobs::core
