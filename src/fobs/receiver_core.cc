#include "fobs/receiver_core.h"

#include <cassert>

namespace fobs::core {

ReceiverCore::ReceiverCore(TransferSpec spec, ReceiverConfig config)
    : spec_(spec),
      config_(config),
      received_(static_cast<std::size_t>(spec.packet_count())),
      ack_builder_(spec.packet_count(), config.ack_payload_bytes) {
  assert(config_.ack_frequency > 0);
}

ReceiverCore::PacketResult ReceiverCore::on_data_packet(PacketSeq seq) {
  assert(seq >= 0 && seq < spec_.packet_count());
  PacketResult result;
  ++stats_.packets_seen;
  if (!received_.set(static_cast<std::size_t>(seq))) {
    ++stats_.duplicates;
    if (tracer_ != nullptr) tracer_->record(telemetry::EventType::kDuplicate, seq);
    return result;
  }
  result.newly_received = true;
  ++stats_.packets_received;
  ++new_since_ack_;
  if (seq == frontier_) {
    const auto next = received_.first_clear(static_cast<std::size_t>(frontier_));
    frontier_ = next ? static_cast<PacketSeq>(*next) : spec_.packet_count();
  }
  result.just_completed = received_.all_set();
  result.ack_due = new_since_ack_ >= config_.ack_frequency || result.just_completed;
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kPacketPlaced, seq, stats_.packets_received);
    if (result.just_completed) {
      tracer_->record(telemetry::EventType::kCompletion, -1, stats_.packets_received);
    }
  }
  return result;
}

AckMessage ReceiverCore::make_ack() {
  new_since_ack_ = 0;
  ++stats_.acks_built;
  auto ack =
      ack_builder_.build(received_, frontier_, stats_.packets_received + stats_.restored);
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kAckBuilt,
                    static_cast<std::int64_t>(ack.ack_no), ack.total_received);
  }
  return ack;
}

std::int64_t ReceiverCore::restore(const std::uint8_t* packed, std::size_t packed_len,
                                   std::int64_t nbits) {
  if (nbits != spec_.packet_count() || nbits < 0) return -1;
  const std::int64_t restored = static_cast<std::int64_t>(
      received_.merge_range(0, static_cast<std::size_t>(nbits), packed, packed_len));
  stats_.restored += restored;
  const auto next = received_.first_clear(0);
  frontier_ = next ? static_cast<PacketSeq>(*next) : spec_.packet_count();
  // Restored packets are progress the stall detector must not re-count.
  progress_at_last_interval_ = static_cast<std::int64_t>(received_.count());
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kResume, -1, restored);
  }
  return restored;
}

int ReceiverCore::on_stall_interval() {
  const std::int64_t progress = static_cast<std::int64_t>(received_.count());
  if (progress > progress_at_last_interval_ || complete()) {
    progress_at_last_interval_ = progress;
    empty_intervals_ = 0;
    return 0;
  }
  ++empty_intervals_;
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kStall, -1, empty_intervals_);
  }
  return empty_intervals_;
}

}  // namespace fobs::core
