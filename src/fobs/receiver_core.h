// Transport-agnostic FOBS receiver state machine (paper §3.2).
//
// The receiver polls the network, places each arriving packet into the
// pre-allocated object buffer by sequence number, and after every
// `ack_frequency` *new* packets builds an acknowledgement. The ack
// frequency is the paper's central tunable: it sets the level of
// synchronization between sender and receiver (Figures 1 and 2).
#pragma once

#include <cstdint>

#include "common/bitmap.h"
#include "fobs/ack.h"
#include "fobs/types.h"
#include "telemetry/trace.h"

namespace fobs::core {

struct ReceiverConfig {
  /// New packets received before an acknowledgement is generated.
  std::int64_t ack_frequency = 64;
  /// Max ACK packet payload; bounds the bitmap fragment size.
  std::int64_t ack_payload_bytes = 1024;
};

struct ReceiverStats {
  std::int64_t packets_seen = 0;      ///< all arrivals, incl. duplicates
  std::int64_t packets_received = 0;  ///< unique, this run only
  std::int64_t duplicates = 0;
  std::int64_t acks_built = 0;
  std::int64_t restored = 0;          ///< packets pre-seeded from a checkpoint
};

class ReceiverCore {
 public:
  ReceiverCore(TransferSpec spec, ReceiverConfig config);

  struct PacketResult {
    bool newly_received = false;
    /// The ack-frequency threshold was reached (or the object just
    /// completed): the driver should build and send an ACK now.
    bool ack_due = false;
    /// This packet completed the object.
    bool just_completed = false;
  };

  /// Processes one arriving data packet.
  PacketResult on_data_packet(PacketSeq seq);

  /// Builds the next acknowledgement (resets the ack-frequency counter).
  AckMessage make_ack();

  /// Pre-seeds the received bitmap from a checkpoint (`packed` in
  /// Bitmap::extract_range format, `nbits` packets from seq 0); call
  /// before any packets arrive. Recomputes the frontier and records a
  /// `resume` trace event. Returns the number of packets restored, or
  /// -1 when `nbits` does not match this transfer's packet count.
  std::int64_t restore(const std::uint8_t* packed, std::size_t packed_len,
                       std::int64_t nbits);

  /// Progress-based stall detection: the driver calls this once per
  /// stall interval. An interval with zero newly-received packets on a
  /// still-incomplete object is "empty" and traced as a `stall` event;
  /// returns the streak of consecutive empty intervals (0 on progress).
  int on_stall_interval();

  /// Attaches a per-transfer event tracer (nullptr = telemetry off, the
  /// default; must outlive the core). Records packet placement,
  /// duplicates, ACK construction, and completion.
  void set_tracer(telemetry::EventTracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] telemetry::EventTracer* tracer() const { return tracer_; }

  [[nodiscard]] bool complete() const { return received_.all_set(); }
  /// All packets below the frontier have been received.
  [[nodiscard]] PacketSeq frontier() const { return frontier_; }
  [[nodiscard]] const fobs::util::Bitmap& received() const { return received_; }
  [[nodiscard]] const TransferSpec& spec() const { return spec_; }
  [[nodiscard]] const ReceiverConfig& config() const { return config_; }
  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }

 private:
  TransferSpec spec_;
  ReceiverConfig config_;
  fobs::util::Bitmap received_;
  AckBuilder ack_builder_;
  PacketSeq frontier_ = 0;
  std::int64_t new_since_ack_ = 0;
  // Stall-detection bookkeeping.
  std::int64_t progress_at_last_interval_ = 0;
  int empty_intervals_ = 0;
  ReceiverStats stats_;
  telemetry::EventTracer* tracer_ = nullptr;
};

}  // namespace fobs::core
