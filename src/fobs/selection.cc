#include "fobs/selection.h"

#include <cassert>

namespace fobs::core {

const char* to_string(SelectionKind kind) {
  switch (kind) {
    case SelectionKind::kCircular: return "circular";
    case SelectionKind::kLowestFirst: return "lowest-first";
    case SelectionKind::kRandomUnacked: return "random";
  }
  return "?";
}

namespace {

class CircularPolicy final : public SelectionPolicy {
 public:
  std::optional<PacketSeq> select(const fobs::util::Bitmap& acked) override {
    const auto hit = acked.first_clear_circular(cursor_);
    if (!hit) return std::nullopt;
    cursor_ = *hit + 1;
    if (cursor_ >= acked.size()) cursor_ = 0;
    return static_cast<PacketSeq>(*hit);
  }

 private:
  std::size_t cursor_ = 0;
};

class LowestFirstPolicy final : public SelectionPolicy {
 public:
  std::optional<PacketSeq> select(const fobs::util::Bitmap& acked) override {
    const auto hit = acked.first_clear(0);
    if (!hit) return std::nullopt;
    return static_cast<PacketSeq>(*hit);
  }
};

class RandomPolicy final : public SelectionPolicy {
 public:
  explicit RandomPolicy(fobs::util::Rng rng) : rng_(rng) {}

  std::optional<PacketSeq> select(const fobs::util::Bitmap& acked) override {
    const std::size_t n = acked.size();
    if (n == 0 || acked.all_set()) return std::nullopt;
    // Rejection sampling: expected tries = n / unacked; over a whole
    // transfer this sums to O(n log n) bit tests.
    for (int tries = 0; tries < 256; ++tries) {
      const auto seq = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (!acked.test(seq)) return static_cast<PacketSeq>(seq);
    }
    // Pathologically few unacked packets: fall back to a scan from a
    // random start so selection stays uniform-ish and O(n) bounded.
    const auto start = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto hit = acked.first_clear_circular(start);
    assert(hit.has_value());
    return static_cast<PacketSeq>(*hit);
  }

 private:
  fobs::util::Rng rng_;
};

}  // namespace

std::unique_ptr<SelectionPolicy> make_selection_policy(SelectionKind kind,
                                                       fobs::util::Rng rng) {
  switch (kind) {
    case SelectionKind::kCircular: return std::make_unique<CircularPolicy>();
    case SelectionKind::kLowestFirst: return std::make_unique<LowestFirstPolicy>();
    case SelectionKind::kRandomUnacked: return std::make_unique<RandomPolicy>(rng);
  }
  return nullptr;
}

}  // namespace fobs::core
