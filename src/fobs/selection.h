// Packet-selection policies for the FOBS sender (paper §3.1, phase 3).
//
// The policy answers: out of all unacknowledged packets, which goes onto
// the network next? The paper evaluated several and found the circular-
// buffer rule best "by far"; the alternatives are kept for the ablation
// benchmark.
#pragma once

#include <memory>
#include <optional>

#include "common/bitmap.h"
#include "common/rng.h"
#include "fobs/types.h"

namespace fobs::core {

enum class SelectionKind {
  /// Treat the object as a circular buffer: never send a packet for the
  /// (n+1)-st time while any unacked packet has been sent fewer than
  /// n+1 times.
  kCircular,
  /// Always hammer the lowest unacknowledged sequence number.
  kLowestFirst,
  /// Uniformly random unacknowledged packet.
  kRandomUnacked,
};

[[nodiscard]] const char* to_string(SelectionKind kind);

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;
  /// Next packet to transmit given the sender's view of what the
  /// receiver has (`acked`). Returns nullopt when everything is acked.
  virtual std::optional<PacketSeq> select(const fobs::util::Bitmap& acked) = 0;
};

/// Factory. `rng` is used only by the random policy.
std::unique_ptr<SelectionPolicy> make_selection_policy(SelectionKind kind,
                                                       fobs::util::Rng rng);

}  // namespace fobs::core
