#include "fobs/sender_core.h"

#include <algorithm>
#include <cassert>

namespace fobs::core {

SenderCore::SenderCore(TransferSpec spec, SenderConfig config)
    : spec_(spec),
      config_(config),
      acked_view_(static_cast<std::size_t>(spec.packet_count())),
      policy_(make_selection_policy(config.selection, fobs::util::Rng(config.seed))),
      send_counts_(static_cast<std::size_t>(spec.packet_count()), 0),
      batch_size_(std::max(1, config.batch_size)),
      adaptive_(config.adaptive) {
  assert(spec_.object_bytes >= 0);
  assert(spec_.packet_bytes > 0);
}

std::optional<PacketSeq> SenderCore::select_next() {
  const auto seq = policy_->select(acked_view_);
  if (!seq) return std::nullopt;
  auto& count = send_counts_[static_cast<std::size_t>(*seq)];
  if (count > 0) ++stats_.duplicate_sends;
  ++count;
  ++stats_.packets_sent;
  return seq;
}

void SenderCore::record_external_send(PacketSeq seq) {
  auto& count = send_counts_[static_cast<std::size_t>(seq)];
  if (count > 0) ++stats_.duplicate_sends;
  ++count;
  ++stats_.packets_sent;
}

std::int64_t SenderCore::on_ack(const AckMessage& ack) {
  ++stats_.acks_processed;
  const std::int64_t newly = apply_ack(ack, acked_view_);
  stats_.packets_acked += newly;
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kAckProcessed,
                    static_cast<std::int64_t>(ack.ack_no), newly);
  }
  if (config_.batch_policy == BatchPolicy::kAckAdaptive) update_adaptive_batch(ack);
  if (config_.adaptive.enabled) {
    // Feed the greediness controller with what happened since the last
    // ACK: how much we launched vs. how much the receiver got.
    const std::int64_t sent_since = stats_.packets_sent - sent_at_last_ack_;
    const std::int64_t received_since = ack.total_received - received_at_last_ack_;
    adaptive_.on_ack(sent_since, received_since);
    sent_at_last_ack_ = stats_.packets_sent;
    received_at_last_ack_ = ack.total_received;
  }
  return newly;
}

void SenderCore::update_adaptive_batch(const AckMessage& ack) {
  if (ack.ack_no <= last_ack_no_) return;  // stale/reordered ack
  if (last_ack_no_ != 0) {
    const std::int64_t delta = ack.total_received - last_total_received_;
    const std::uint64_t acks = ack.ack_no - last_ack_no_;
    if (acks > 0 && delta >= 0) {
      // Target roughly half the observed per-ACK delivery rate: enough
      // to keep the pipe fed, small enough to check for ACKs often.
      const auto per_ack = static_cast<double>(delta) / static_cast<double>(acks);
      batch_size_ = static_cast<int>(std::clamp(per_ack / 2.0, 1.0, 64.0));
    }
  }
  last_ack_no_ = ack.ack_no;
  last_total_received_ = ack.total_received;
}

}  // namespace fobs::core
