#include "fobs/sender_core.h"

#include <algorithm>
#include <cassert>

namespace fobs::core {

SenderCore::SenderCore(TransferSpec spec, SenderConfig config)
    : spec_(spec),
      config_(config),
      acked_view_(static_cast<std::size_t>(spec.packet_count())),
      policy_(make_selection_policy(config.selection, fobs::util::Rng(config.seed))),
      send_counts_(static_cast<std::size_t>(spec.packet_count()), 0),
      batch_size_(std::max(1, config.batch_size)),
      adaptive_(config.adaptive) {
  assert(spec_.object_bytes >= 0);
  assert(spec_.packet_bytes > 0);
}

std::optional<PacketSeq> SenderCore::select_next() {
  const auto seq = policy_->select(acked_view_);
  if (!seq) return std::nullopt;
  auto& count = send_counts_[static_cast<std::size_t>(*seq)];
  if (count > 0) ++stats_.duplicate_sends;
  ++count;
  ++stats_.packets_sent;
  return seq;
}

void SenderCore::record_external_send(PacketSeq seq) {
  auto& count = send_counts_[static_cast<std::size_t>(seq)];
  if (count > 0) ++stats_.duplicate_sends;
  ++count;
  ++stats_.packets_sent;
}

std::int64_t SenderCore::on_ack(const AckMessage& ack) {
  ++stats_.acks_processed;
  const std::int64_t newly = apply_ack(ack, acked_view_);
  stats_.packets_acked += newly;
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kAckProcessed,
                    static_cast<std::int64_t>(ack.ack_no), newly);
  }
  if (config_.batch_policy == BatchPolicy::kAckAdaptive) update_adaptive_batch(ack);
  if (config_.adaptive.enabled) {
    // Feed the greediness controller with what happened since the last
    // ACK: how much we launched vs. how much the receiver got.
    const std::int64_t sent_since = stats_.packets_sent - sent_at_last_ack_;
    const std::int64_t received_since = ack.total_received - received_at_last_ack_;
    adaptive_.on_ack(sent_since, received_since);
    sent_at_last_ack_ = stats_.packets_sent;
    received_at_last_ack_ = ack.total_received;
  }
  return newly;
}

std::int64_t SenderCore::on_resume(const std::uint8_t* packed, std::size_t packed_len,
                                   std::int64_t nbits) {
  if (nbits != spec_.packet_count() || nbits < 0) return -1;
  const std::int64_t newly = static_cast<std::int64_t>(
      acked_view_.merge_range(0, static_cast<std::size_t>(nbits), packed, packed_len));
  stats_.packets_acked += newly;
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kResume, -1, newly);
  }
  return newly;
}

void SenderCore::on_peer_restart() {
  acked_view_.clear_all();
  stats_.packets_acked = 0;
  // The replacement receiver numbers its ACKs from 1 again and reports
  // totals for its own incarnation only.
  last_ack_no_ = 0;
  last_total_received_ = 0;
  sent_at_last_ack_ = stats_.packets_sent;
  received_at_last_ack_ = 0;
  // A reconnect is progress; restart the stall budget from a zero view.
  progress_at_last_interval_ = 0;
  empty_intervals_ = 0;
}

int SenderCore::on_stall_interval() {
  // Progress = unique packets known received, plus the completion
  // signal itself (a completing-but-quiet interval is not a stall).
  const std::int64_t progress = static_cast<std::int64_t>(acked_view_.count()) +
                                (completion_received_ ? 1 : 0);
  if (progress > progress_at_last_interval_) {
    progress_at_last_interval_ = progress;
    empty_intervals_ = 0;
    return 0;
  }
  ++empty_intervals_;
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::EventType::kStall, -1, empty_intervals_);
  }
  return empty_intervals_;
}

void SenderCore::update_adaptive_batch(const AckMessage& ack) {
  if (ack.ack_no <= last_ack_no_) return;  // stale/reordered ack
  if (last_ack_no_ != 0) {
    const std::int64_t delta = ack.total_received - last_total_received_;
    const std::uint64_t acks = ack.ack_no - last_ack_no_;
    if (acks > 0 && delta >= 0) {
      // Target roughly half the observed per-ACK delivery rate: enough
      // to keep the pipe fed, small enough to check for ACKs often.
      const auto per_ack = static_cast<double>(delta) / static_cast<double>(acks);
      batch_size_ = static_cast<int>(std::clamp(per_ack / 2.0, 1.0, 64.0));
    }
  }
  last_ack_no_ = ack.ack_no;
  last_total_received_ = ack.total_received;
}

}  // namespace fobs::core
