// Transport-agnostic FOBS sender state machine (paper §3.1).
//
// The sender iterates over three phases:
//   1. batch-send `batch_size` packets without blocking,
//   2. check for (but never block on) an acknowledgement and fold it
//      into the local view of the receiver's bitmap,
//   3. pick the next packets via the selection policy.
// It is *greedy*: it keeps (re)transmitting until the receiver's
// completion signal arrives over the TCP control channel.
//
// This class is sans-io: drivers (simulator or POSIX sockets) ask it
// which packet to send next and feed it ACK/completion events. All
// protocol behaviour is testable without a network.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bitmap.h"
#include "common/rng.h"
#include "fobs/ack.h"
#include "fobs/adaptive.h"
#include "fobs/selection.h"
#include "fobs/types.h"
#include "telemetry/trace.h"

namespace fobs::core {

/// How the per-iteration batch size is chosen (paper §3.1.1 studies the
/// fixed value; adaptive is the "use ack deltas" variant the paper
/// sketches for phase 2).
enum class BatchPolicy {
  kFixed,
  /// Batch grows toward the observed receive rate between ACKs (half of
  /// the last inter-ACK delivery count), clamped to [1, 64].
  kAckAdaptive,
};

struct SenderConfig {
  int batch_size = 2;  ///< paper's best value
  BatchPolicy batch_policy = BatchPolicy::kFixed;
  SelectionKind selection = SelectionKind::kCircular;
  std::uint64_t seed = 1;  ///< for the random selection policy
  /// §7 extension: congestion-adaptive greediness (off by default —
  /// plain FOBS has no congestion control).
  AdaptiveConfig adaptive;
};

struct SenderStats {
  std::int64_t packets_sent = 0;       ///< total, incl. retransmissions
  std::int64_t acks_processed = 0;
  std::int64_t packets_acked = 0;      ///< unique packets known received
  std::int64_t duplicate_sends = 0;    ///< sends beyond the first per packet
};

class SenderCore {
 public:
  SenderCore(TransferSpec spec, SenderConfig config);

  [[nodiscard]] const TransferSpec& spec() const { return spec_; }
  [[nodiscard]] const SenderConfig& config() const { return config_; }

  /// Picks the next packet to transmit and records it as sent. Call only
  /// when the datagram can actually be handed to the network (the driver
  /// has already checked writability — the paper's select() check).
  /// Returns nullopt when every packet is acked in the local view.
  std::optional<PacketSeq> select_next();

  /// Number of packets to send in the current batch (phase 1).
  [[nodiscard]] int current_batch_size() const { return batch_size_; }

  /// Folds an acknowledgement into the local view (phase 2).
  /// Returns the number of packets newly learned to be received.
  std::int64_t on_ack(const AckMessage& ack);

  /// Folds a resume handshake — the receiver's full packed bitmap
  /// (extract_range format, `nbits` packets from seq 0) — into the
  /// local view, so a restarted pair skips already-received packets.
  /// Returns the number of packets newly learned to be received, or -1
  /// when `nbits` does not match this transfer's packet count.
  std::int64_t on_resume(const std::uint8_t* packed, std::size_t packed_len,
                         std::int64_t nbits);

  /// The control channel was re-established by a (possibly restarted)
  /// receiver whose state is unknown: forget everything learned from
  /// ACKs so every packet becomes eligible for retransmission again. A
  /// restarted receiver that kept a checkpoint follows up with a resume
  /// frame (see on_resume) restoring exactly the bits it still holds; a
  /// from-scratch restart sends nothing and gets a full resend. For a
  /// receiver that merely lost the TCP connection this only costs some
  /// duplicate sends, which the receiver discards.
  void on_peer_restart();

  /// Progress-based stall detection: the driver calls this once per
  /// stall interval. An interval with zero newly-acked packets (and no
  /// completion) is "empty" and traced as a `stall` event; returns the
  /// current streak of consecutive empty intervals (0 after progress).
  int on_stall_interval();

  /// Records a send performed outside the selection policy (the TCP
  /// fallback channel): keeps the waste accounting truthful.
  void record_external_send(PacketSeq seq);

  /// Clears the adaptive controller (used when returning from TCP
  /// fallback to re-probe the network from a clean slate).
  void reset_adaptive() { adaptive_.reset(); }

  /// Attaches a per-transfer event tracer (nullptr = telemetry off, the
  /// default). The tracer must outlive the core; the core records
  /// protocol events (ACK processed, completion) and leaves transport
  /// events (batches, timeouts) to the driver.
  void set_tracer(telemetry::EventTracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] telemetry::EventTracer* tracer() const { return tracer_; }

  /// The receiver's TCP "all data received" signal.
  void on_completion_signal() {
    completion_received_ = true;
    if (tracer_ != nullptr) {
      tracer_->record(telemetry::EventType::kCompletion, -1, stats_.packets_sent);
    }
  }
  [[nodiscard]] bool completion_received() const { return completion_received_; }

  /// True when the local view believes everything was received. The
  /// greedy sender keeps going until `completion_received()` regardless.
  [[nodiscard]] bool all_acked() const { return acked_view_.all_set(); }

  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] const fobs::util::Bitmap& acked_view() const { return acked_view_; }
  [[nodiscard]] const std::vector<std::uint32_t>& send_counts() const { return send_counts_; }

  /// Extra per-batch idle time requested by the adaptive controller
  /// (zero when the extension is disabled or the path looks clean).
  [[nodiscard]] fobs::util::Duration pacing_gap() const { return adaptive_.gap(); }
  [[nodiscard]] const GreedinessController& adaptive() const { return adaptive_; }

  /// Wasted network resources per the paper's definition:
  /// (total sent - needed) / needed.
  [[nodiscard]] double waste() const {
    const auto needed = static_cast<double>(spec_.packet_count());
    if (needed == 0) return 0.0;
    return (static_cast<double>(stats_.packets_sent) - needed) / needed;
  }

 private:
  void update_adaptive_batch(const AckMessage& ack);

  TransferSpec spec_;
  SenderConfig config_;
  fobs::util::Bitmap acked_view_;
  std::unique_ptr<SelectionPolicy> policy_;
  std::vector<std::uint32_t> send_counts_;
  int batch_size_;
  bool completion_received_ = false;
  // Adaptive batch bookkeeping.
  std::uint64_t last_ack_no_ = 0;
  std::int64_t last_total_received_ = 0;
  // Adaptive greediness bookkeeping.
  GreedinessController adaptive_;
  std::int64_t sent_at_last_ack_ = 0;
  std::int64_t received_at_last_ack_ = 0;
  // Stall-detection bookkeeping.
  std::int64_t progress_at_last_interval_ = 0;
  int empty_intervals_ = 0;
  SenderStats stats_;
  telemetry::EventTracer* tracer_ = nullptr;
};

}  // namespace fobs::core
