#include "fobs/sim_driver.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "telemetry/metrics.h"

namespace fobs::core {

namespace {
fobs::net::TcpConfig control_channel_config() {
  // The control channel moves a handful of bytes; defaults are fine.
  return fobs::net::TcpConfig{};
}
}  // namespace

// ---------------------------------------------------------------------------
// SimSender
// ---------------------------------------------------------------------------

SimSender::SimSender(Host& host, TransferSpec spec, SenderConfig config,
                     const std::uint8_t* data, NodeId receiver_node, PortId port_base)
    : host_(host),
      spec_(spec),
      core_(spec, config),
      data_(data),
      receiver_node_(receiver_node),
      port_base_(port_base),
      data_out_(host),
      ack_in_(host, static_cast<PortId>(port_base + kAckPortOffset)),
      completion_listener_(host, static_cast<PortId>(port_base + kCompletionPortOffset),
                           control_channel_config(),
                           [this](std::unique_ptr<fobs::net::TcpConnection> conn) {
                             control_conn_ = std::move(conn);
                             control_conn_->set_on_message(
                                 [this](const std::any& m) { on_control_message(m); });
                           }) {}

void SimSender::start() {
  if (started_) return;
  started_ = true;
  if (auto* tracer = core_.tracer()) {
    tracer->set_clock([this] { return host_.network().sim().now().ns(); });
    tracer->record(telemetry::EventType::kTransferStart, -1, spec_.packet_count());
  }
  step();
}

void SimSender::on_control_message(const std::any& message) {
  const auto* signal = std::any_cast<CompletionSignal>(&message);
  if (signal == nullptr) return;
  if (signal->corrupted) {
    // A completion frame whose (modelled) checksum fails: discard it and
    // keep the transfer alive rather than trusting a garbled "done".
    telemetry::MetricsRegistry::global().counter("fobs.fault.corrupt_drops").inc();
    if (auto* tracer = core_.tracer()) {
      tracer->record(telemetry::EventType::kCorruptDrop, -1, 1);
    }
    return;
  }
  core_.on_completion_signal();
  if (!finished_) {
    finished_ = true;
    finished_at_ = host_.network().sim().now();
    FOBS_DEBUG("fobs.sender", "completion signal at " << finished_at_.seconds() << "s, sent="
                                                      << core_.stats().packets_sent);
    if (on_finished_) on_finished_();
  }
}

void SimSender::step() {
  if (finished_ || mode_ != Mode::kUdp) return;
  auto& sim = host_.network().sim();
  Duration busy = Duration::zero();

  // Phase 2: look for (but do not block on) one acknowledgement.
  if (auto pkt = ack_in_.try_recv()) {
    const auto* payload = std::any_cast<AckPacketPayload>(&pkt->payload);
    if (payload != nullptr && payload->ack != nullptr) {
      busy += host_.cpu().recv_cost(fobs::util::DataSize::bytes(payload->ack->wire_bytes()));
      if (payload->corrupted) {
        ++corrupt_acks_dropped_;
        telemetry::MetricsRegistry::global().counter("fobs.fault.corrupt_drops").inc();
        if (auto* tracer = core_.tracer()) {
          tracer->record(telemetry::EventType::kCorruptDrop, -1, corrupt_acks_dropped_);
        }
      } else {
        core_.on_ack(*payload->ack);
      }
    }
  }

  // §7 first option: sustained congestion hands the transfer to TCP.
  if (core_.adaptive().congested()) {
    enter_fallback();
    return;
  }

  // Phase 1: batch-send without blocking.
  const int batch = core_.current_batch_size();
  const std::int64_t max_payload = spec_.packet_bytes + kDataHeaderBytes;
  int sent_in_batch = 0;
  for (int i = 0; i < batch; ++i) {
    if (core_.all_acked()) break;
    if (!data_out_.writable(max_payload)) {
      // Socket buffer full: wait for writability (the select() call),
      // then continue the loop. CPU consumed so far still elapses.
      host_.notify_writable([this] {
        if (!step_scheduled_) {
          step_scheduled_ = true;
          host_.network().sim().schedule_in(Duration::zero(), [this] {
            step_scheduled_ = false;
            step();
          });
        }
      });
      if (sent_in_batch > 0 && core_.tracer() != nullptr) {
        core_.tracer()->record(telemetry::EventType::kBatchSent, -1, sent_in_batch);
      }
      if (busy > Duration::zero()) {
        // Model the CPU time of this iteration before the wait ends.
        return;  // resume comes from the writability callback
      }
      return;
    }
    const auto seq = core_.select_next();
    if (!seq) break;
    const std::int64_t len = spec_.payload_bytes(*seq);
    DataPacketPayload payload;
    payload.seq = *seq;
    payload.len = static_cast<std::int32_t>(len);
    payload.data = data_ != nullptr ? data_ + spec_.offset_of(*seq) : nullptr;
    // The injector models in-flight damage: a dropped packet is sent by
    // the core's accounting but never reaches the wire, a corrupted one
    // arrives with a failing checksum, a duplicated one arrives twice.
    int copies = 1;
    if (faults_ != nullptr) {
      switch (faults_->next(fobs::net::FaultChannel::kData)) {
        case fobs::net::FaultAction::kDrop: copies = 0; break;
        case fobs::net::FaultAction::kCorrupt: payload.corrupted = true; break;
        case fobs::net::FaultAction::kDuplicate: copies = 2; break;
        case fobs::net::FaultAction::kPass: break;
      }
    }
    for (int copy = 0; copy < copies; ++copy) {
      const bool ok =
          data_out_.send_to(receiver_node_, static_cast<PortId>(port_base_ + kDataPortOffset),
                            len + kDataHeaderBytes, payload);
      assert(ok);
      (void)ok;
    }
    ++sent_in_batch;
    busy += host_.cpu().send_cost(fobs::util::DataSize::bytes(len + kDataHeaderBytes));
  }
  if (sent_in_batch > 0 && core_.tracer() != nullptr) {
    core_.tracer()->record(telemetry::EventType::kBatchSent, -1, sent_in_batch);
  }

  if (core_.all_acked()) {
    // Everything acked in the local view: idle until either a (stray)
    // ACK or the completion signal arrives.
    ack_in_.set_rx_notify([this] { step(); });
    return;
  }

  // Reserve the CPU time this iteration consumed (co-located transfers
  // contend for the host's core), plus any pacing gap the adaptive-
  // greediness controller requests (idle, not CPU). A tiny floor keeps
  // the loop from spinning in zero simulated time.
  const auto resume =
      host_.reserve_cpu(std::max(busy, Duration::nanoseconds(500))) + core_.pacing_gap();
  sim.schedule_at(resume, [this] { step(); });
}

// ---------------------------------------------------------------------------
// §7 TCP fallback: hand the remainder of the object to a congestion-
// controlled TCP channel; probe it and return to greedy UDP once the
// congestion has dissipated.
// ---------------------------------------------------------------------------

void SimSender::enter_fallback() {
  if (mode_ == Mode::kTcpFallback || finished_) return;
  mode_ = Mode::kTcpFallback;
  ++fallback_episodes_;
  // Note: tcp_cursor_ is intentionally NOT reset — packets offered to
  // the TCP channel in an earlier episode are still reliably in flight
  // there, and re-offering them would be pure duplication.
  probe_clear_streak_ = 0;
  FOBS_INFO("fobs.sender", "entering TCP fallback (loss estimate "
                               << core_.adaptive().loss_estimate() << ")");
  if (auto* tracer = core_.tracer()) {
    tracer->record(telemetry::EventType::kFallbackEnter, -1, fallback_episodes_);
  }
  auto& sim = host_.network().sim();
  if (tcp_data_ == nullptr) {
    tcp_data_ = std::make_unique<fobs::net::TcpConnection>(host_, control_channel_config());
    tcp_data_->connect(receiver_node_,
                       static_cast<PortId>(port_base_ + kTcpDataPortOffset));
  }
  probe_rtx_snapshot_ = tcp_data_->stats().retransmissions;
  pump_tcp();
  sim.schedule_in(core_.config().adaptive.fallback_probe_interval, [this] { probe_tick(); });
}

void SimSender::exit_fallback() {
  if (mode_ != Mode::kTcpFallback) return;
  mode_ = Mode::kUdp;
  core_.reset_adaptive();
  FOBS_INFO("fobs.sender", "congestion dissipated; resuming greedy UDP");
  if (auto* tracer = core_.tracer()) {
    tracer->record(telemetry::EventType::kFallbackExit, -1, packets_via_tcp_);
  }
  step();
}

void SimSender::pump_tcp() {
  if (finished_ || mode_ != Mode::kTcpFallback) return;
  const auto& adaptive = core_.config().adaptive;
  if (tcp_data_->established()) {
    while (true) {
      const std::int64_t outstanding = tcp_data_->offered_bytes() - tcp_data_->acked_bytes();
      if (outstanding >= adaptive.fallback_window_bytes) break;
      auto seq = core_.acked_view().first_clear(static_cast<std::size_t>(tcp_cursor_));
      if (!seq && outstanding == 0) {
        // One full pass done and nothing in flight: any remaining holes
        // mean the FOBS acks lag; rescan from the start.
        tcp_cursor_ = 0;
        seq = core_.acked_view().first_clear(0);
      }
      if (!seq) break;
      tcp_cursor_ = static_cast<PacketSeq>(*seq) + 1;
      const std::int64_t len = spec_.payload_bytes(static_cast<PacketSeq>(*seq));
      DataPacketPayload payload;
      payload.seq = static_cast<PacketSeq>(*seq);
      payload.len = static_cast<std::int32_t>(len);
      payload.data = data_ != nullptr ? data_ + spec_.offset_of(payload.seq) : nullptr;
      core_.record_external_send(payload.seq);
      ++packets_via_tcp_;
      tcp_data_->send_message(len + kDataHeaderBytes, payload);
    }
  }
  // Fold in any FOBS acknowledgements that arrived meanwhile.
  while (auto pkt = ack_in_.try_recv()) {
    if (const auto* ack = std::any_cast<AckPacketPayload>(&pkt->payload)) {
      if (ack->ack == nullptr) continue;
      if (ack->corrupted) {
        ++corrupt_acks_dropped_;
        telemetry::MetricsRegistry::global().counter("fobs.fault.corrupt_drops").inc();
        continue;
      }
      core_.on_ack(*ack->ack);
    }
  }
  host_.network().sim().schedule_in(Duration::milliseconds(2), [this] { pump_tcp(); });
}

void SimSender::probe_tick() {
  if (finished_ || mode_ != Mode::kTcpFallback) return;
  const auto& adaptive = core_.config().adaptive;
  const std::uint64_t rtx = tcp_data_->stats().retransmissions;
  if (rtx == probe_rtx_snapshot_) {
    ++probe_clear_streak_;
  } else {
    probe_clear_streak_ = 0;
  }
  probe_rtx_snapshot_ = rtx;
  if (probe_clear_streak_ >= adaptive.fallback_clear_probes) {
    exit_fallback();
    return;
  }
  host_.network().sim().schedule_in(adaptive.fallback_probe_interval,
                                    [this] { probe_tick(); });
}

// ---------------------------------------------------------------------------
// SimReceiver
// ---------------------------------------------------------------------------

SimReceiver::SimReceiver(Host& host, TransferSpec spec, ReceiverConfig config,
                         std::uint8_t* buffer, NodeId sender_node,
                         std::int64_t socket_buffer_bytes, PortId port_base)
    : host_(host),
      spec_(spec),
      core_(spec, config),
      buffer_(buffer),
      sender_node_(sender_node),
      port_base_(port_base),
      data_in_(host, static_cast<PortId>(port_base + kDataPortOffset), socket_buffer_bytes),
      ack_out_(host),
      control_conn_(host, control_channel_config()),
      fallback_listener_(host, static_cast<PortId>(port_base + kTcpDataPortOffset),
                         control_channel_config(),
                         [this](std::unique_ptr<fobs::net::TcpConnection> conn) {
                           fallback_conn_ = std::move(conn);
                           fallback_conn_->set_on_message(
                               [this](const std::any& m) { on_tcp_data(m); });
                         }) {}

void SimReceiver::start() {
  if (started_) return;
  started_ = true;
  if (auto* tracer = core_.tracer()) {
    tracer->set_clock([this] { return host_.network().sim().now().ns(); });
    tracer->record(telemetry::EventType::kTransferStart, -1, spec_.packet_count());
  }
  control_conn_.connect(sender_node_,
                        static_cast<PortId>(port_base_ + kCompletionPortOffset));
  step();
}

Duration SimReceiver::process_packet(const DataPacketPayload& payload) {
  auto& sim = host_.network().sim();
  Duration busy =
      host_.cpu().recv_cost(fobs::util::DataSize::bytes(payload.len + kDataHeaderBytes));
  if (crashed_) return busy;
  if (faults_ != nullptr && faults_->crash_due()) {
    // Peer-crash point reached: this incarnation goes silent without
    // cleanup (no ACKs, no completion), exactly like a killed process.
    crashed_ = true;
    FOBS_INFO("fobs.receiver", "fault plan crash point reached; going silent");
    return busy;
  }
  if (payload.corrupted) {
    // Checksum-failing packet: reject before it can touch the object
    // buffer, count it, and rely on retransmission for the real bytes.
    ++corrupt_data_dropped_;
    telemetry::MetricsRegistry::global().counter("fobs.fault.corrupt_drops").inc();
    if (auto* tracer = core_.tracer()) {
      tracer->record(telemetry::EventType::kCorruptDrop, payload.seq, corrupt_data_dropped_);
    }
    return busy;
  }
  const auto result = core_.on_data_packet(payload.seq);
  if (result.newly_received && buffer_ != nullptr && payload.data != nullptr) {
    std::memcpy(buffer_ + spec_.offset_of(payload.seq), payload.data,
                static_cast<std::size_t>(payload.len));
  }
  if (result.ack_due) {
    // Building + sending the ACK stalls the poll loop — the Figure 1
    // mechanism. The ACK itself is best-effort UDP.
    busy += host_.cpu().ack_build;
    auto ack = std::make_shared<const AckMessage>(core_.make_ack());
    const std::int64_t bytes = ack->wire_bytes();
    AckPacketPayload ack_payload{std::move(ack)};
    int copies = 1;
    if (faults_ != nullptr) {
      switch (faults_->next(fobs::net::FaultChannel::kAck)) {
        case fobs::net::FaultAction::kDrop: copies = 0; break;
        case fobs::net::FaultAction::kCorrupt: ack_payload.corrupted = true; break;
        case fobs::net::FaultAction::kDuplicate: copies = 2; break;
        case fobs::net::FaultAction::kPass: break;
      }
    }
    bool wire_ok = copies == 0;  // an injector-eaten ACK still "sent" fine
    for (int copy = 0; copy < copies; ++copy) {
      if (ack_out_.send_to(sender_node_, static_cast<PortId>(port_base_ + kAckPortOffset),
                           bytes, ack_payload)) {
        wire_ok = true;
      }
    }
    if (wire_ok) {
      ++acks_sent_;
      busy += host_.cpu().send_cost(fobs::util::DataSize::bytes(bytes));
      if (auto* tracer = core_.tracer()) {
        tracer->record(telemetry::EventType::kAckSent,
                       static_cast<std::int64_t>(acks_sent_), bytes);
      }
    }
  }
  // Packets that overflowed the socket buffer while this loop was busy
  // (placing packets, building the ACK) are the paper's Figure 1 loss.
  if (auto* tracer = core_.tracer()) {
    const std::uint64_t drops = data_in_.stats().rx_overflow_drops;
    if (drops > traced_drops_) {
      tracer->record(telemetry::EventType::kDropWhileAcking, -1,
                     static_cast<std::int64_t>(drops - traced_drops_));
      traced_drops_ = drops;
    }
  }
  if (result.just_completed) {
    completed_at_ = sim.now();
    CompletionSignal signal{core_.stats().packets_received};
    bool deliver = true;
    if (faults_ != nullptr) {
      switch (faults_->next(fobs::net::FaultChannel::kControl)) {
        case fobs::net::FaultAction::kDrop: deliver = false; break;
        case fobs::net::FaultAction::kCorrupt: signal.corrupted = true; break;
        default: break;
      }
    }
    if (deliver) control_conn_.send_message(kCompletionSignalBytes, signal);
    FOBS_DEBUG("fobs.receiver", "object complete at " << completed_at_.seconds() << "s");
  }
  return busy;
}

void SimReceiver::on_tcp_data(const std::any& message) {
  // Fallback-channel arrivals are pushed by the TCP stack rather than
  // pulled by the poll loop; the CPU accounting is simplified to the
  // same per-packet cost without the socket-buffer overflow model (TCP
  // is flow-controlled, so the receiver can never be overrun).
  const auto* payload = std::any_cast<DataPacketPayload>(&message);
  if (payload == nullptr) return;
  process_packet(*payload);
}

void SimReceiver::step() {
  if (crashed_) return;  // a crashed incarnation never polls again
  auto& sim = host_.network().sim();
  auto pkt = data_in_.try_recv();
  if (!pkt) {
    data_in_.set_rx_notify([this] { step(); });
    return;
  }
  const auto* payload = std::any_cast<DataPacketPayload>(&pkt->payload);
  if (payload == nullptr) {
    sim.schedule_in(Duration::nanoseconds(500), [this] { step(); });
    return;
  }
  const Duration busy = process_packet(*payload);
  sim.schedule_at(host_.reserve_cpu(std::max(busy, Duration::nanoseconds(500))),
                  [this] { step(); });
}

}  // namespace fobs::core
