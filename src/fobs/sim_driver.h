// Simulator drivers that run the FOBS sender/receiver cores over the
// discrete-event network.
//
// The drivers reproduce the paper's user-level process structure:
//  * both sides are single-threaded poll loops that charge host CPU time
//    for every syscall-equivalent (send, recv, ACK construction);
//  * the sender never blocks on ACKs — it checks for one per iteration
//    (paper phase 2) and otherwise keeps batch-sending;
//  * a full NIC/socket send buffer makes the sender wait for
//    writability, mirroring the select() call in the paper;
//  * while the receiver is busy (processing a packet or building an
//    ACK), arrivals queue in its UDP socket buffer; overflow there is
//    packet loss — the paper's "packets missed while creating and
//    sending an acknowledgement ... will be lost".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fobs/receiver_core.h"
#include "fobs/sender_core.h"
#include "fobs/wire.h"
#include "host/host.h"
#include "net/faults.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace fobs::core {

using fobs::host::Host;
using fobs::sim::NodeId;
using fobs::sim::PortId;
using fobs::util::Duration;
using fobs::util::TimePoint;

/// Default port block used by the sim drivers. A transfer occupies four
/// consecutive ports starting at its `port_base` (data, ACK, completion,
/// TCP-fallback data), so concurrent transfers between the same host
/// pair just use different bases (e.g. 7001, 7101, ...).
inline constexpr PortId kFobsPortBase = 7001;
inline constexpr PortId kDataPortOffset = 0;        ///< receiver side, UDP
inline constexpr PortId kAckPortOffset = 1;         ///< sender side, UDP
inline constexpr PortId kCompletionPortOffset = 2;  ///< sender side, TCP
inline constexpr PortId kTcpDataPortOffset = 3;     ///< receiver side, TCP (§7)

/// Sender-side driver: greedy batch-send loop.
class SimSender {
 public:
  /// @param data pointer to `spec.object_bytes` bytes (may be null for a
  ///        size-only simulation); must outlive the driver.
  /// @param port_base first of the four consecutive ports this transfer
  ///        uses (must match the receiver's).
  SimSender(Host& host, TransferSpec spec, SenderConfig config, const std::uint8_t* data,
            NodeId receiver_node, PortId port_base = kFobsPortBase);

  /// Starts the send loop (call after the receiver exists).
  void start();

  /// Attaches a per-transfer event tracer (must outlive the driver).
  /// `start()` installs the sim clock on it and records transfer_start;
  /// the driver adds batch/fallback events on top of the core's.
  void set_tracer(telemetry::EventTracer* tracer) { core_.set_tracer(tracer); }

  /// Attaches a fault injector (must outlive the driver; may be shared
  /// with the receiver). The sender consults the data-channel schedule
  /// before every datagram send and rejects checksum-failing ACKs.
  void set_fault_injector(fobs::net::FaultInjector* faults) { faults_ = faults; }

  /// Progress check for stall detection; forwards to the core.
  int on_stall_interval() { return core_.on_stall_interval(); }

  /// ACKs rejected because their (modelled) checksum failed.
  [[nodiscard]] std::int64_t corrupt_acks_dropped() const { return corrupt_acks_dropped_; }

  [[nodiscard]] const SenderCore& core() const { return core_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] TimePoint finished_at() const { return finished_at_; }
  [[nodiscard]] const fobs::net::UdpStats& data_udp_stats() const {
    return data_out_.stats();
  }
  /// §7 TCP-fallback diagnostics.
  [[nodiscard]] int fallback_episodes() const { return fallback_episodes_; }
  [[nodiscard]] bool in_fallback() const { return mode_ == Mode::kTcpFallback; }
  [[nodiscard]] std::int64_t packets_sent_via_tcp() const { return packets_via_tcp_; }

  void set_on_finished(std::function<void()> cb) { on_finished_ = std::move(cb); }

 private:
  enum class Mode { kUdp, kTcpFallback };

  void step();
  void on_control_message(const std::any& message);
  void enter_fallback();
  void exit_fallback();
  void pump_tcp();
  void probe_tick();

  Host& host_;
  TransferSpec spec_;
  SenderCore core_;
  const std::uint8_t* data_;
  NodeId receiver_node_;
  PortId port_base_;
  fobs::net::UdpEndpoint data_out_;
  fobs::net::UdpEndpoint ack_in_;
  fobs::net::TcpListener completion_listener_;
  std::unique_ptr<fobs::net::TcpConnection> control_conn_;
  bool started_ = false;
  bool finished_ = false;
  bool step_scheduled_ = false;
  TimePoint finished_at_;
  std::function<void()> on_finished_;
  // --- §7 TCP-fallback state ---
  fobs::net::FaultInjector* faults_ = nullptr;
  std::int64_t corrupt_acks_dropped_ = 0;
  Mode mode_ = Mode::kUdp;
  std::unique_ptr<fobs::net::TcpConnection> tcp_data_;
  PacketSeq tcp_cursor_ = 0;
  int fallback_episodes_ = 0;
  std::int64_t packets_via_tcp_ = 0;
  std::uint64_t probe_rtx_snapshot_ = 0;
  int probe_clear_streak_ = 0;
};

/// Receiver-side driver: poll loop with ACK generation.
class SimReceiver {
 public:
  /// @param buffer receive buffer of `spec.object_bytes` bytes (may be
  ///        null for size-only runs); must outlive the driver.
  /// @param socket_buffer_bytes UDP receive socket buffer — the overflow
  ///        point that models Figure 1's ACK-stall losses.
  SimReceiver(Host& host, TransferSpec spec, ReceiverConfig config, std::uint8_t* buffer,
              NodeId sender_node, std::int64_t socket_buffer_bytes,
              PortId port_base = kFobsPortBase);

  /// Opens the TCP control connection and starts polling.
  void start();

  /// Attaches a per-transfer event tracer (must outlive the driver).
  /// `start()` installs the sim clock on it; the driver adds ack_sent
  /// and drop_while_acking events on top of the core's.
  void set_tracer(telemetry::EventTracer* tracer) { core_.set_tracer(tracer); }

  /// Attaches a fault injector (must outlive the driver; may be shared
  /// with the sender). The receiver rejects corrupted data packets,
  /// applies the ACK/control schedules to its outgoing messages, and
  /// crashes (goes silent) at the plan's crash point.
  void set_fault_injector(fobs::net::FaultInjector* faults) { faults_ = faults; }

  /// Progress check for stall detection; forwards to the core.
  int on_stall_interval() { return core_.on_stall_interval(); }

  /// Data packets rejected because their (modelled) checksum failed.
  [[nodiscard]] std::int64_t corrupt_data_dropped() const { return corrupt_data_dropped_; }
  /// True once the fault plan's crash point has fired.
  [[nodiscard]] bool crashed() const { return crashed_; }

  [[nodiscard]] const ReceiverCore& core() const { return core_; }
  [[nodiscard]] bool complete() const { return core_.complete(); }
  [[nodiscard]] TimePoint completed_at() const { return completed_at_; }
  /// Packets dropped because the socket buffer overflowed while the
  /// receiver was busy.
  [[nodiscard]] std::uint64_t socket_drops() const { return data_in_.stats().rx_overflow_drops; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  void step();
  /// Shared handling for a data packet, whatever channel it arrived on.
  /// Returns the CPU time consumed.
  Duration process_packet(const DataPacketPayload& payload);
  void on_tcp_data(const std::any& message);

  Host& host_;
  TransferSpec spec_;
  ReceiverCore core_;
  std::uint8_t* buffer_;
  NodeId sender_node_;
  PortId port_base_;
  fobs::net::UdpEndpoint data_in_;
  fobs::net::UdpEndpoint ack_out_;
  fobs::net::TcpConnection control_conn_;
  fobs::net::TcpListener fallback_listener_;
  std::unique_ptr<fobs::net::TcpConnection> fallback_conn_;
  fobs::net::FaultInjector* faults_ = nullptr;
  std::int64_t corrupt_data_dropped_ = 0;
  bool crashed_ = false;
  bool started_ = false;
  TimePoint completed_at_;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t traced_drops_ = 0;
};

}  // namespace fobs::core
