#include "fobs/sim_transfer.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/rng.h"

namespace fobs::core {

std::vector<std::uint8_t> make_pattern(std::int64_t bytes, std::uint64_t seed) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(bytes));
  fobs::util::Rng rng(seed);
  // Fill 8 bytes at a time; the tail reuses one final draw.
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(data.data() + i, &v, 8);
  }
  if (i < data.size()) {
    const std::uint64_t v = rng.next();
    std::memcpy(data.data() + i, &v, data.size() - i);
  }
  return data;
}

SimTransferResult run_sim_transfer(fobs::sim::Network& network, fobs::host::Host& sender_host,
                                   fobs::host::Host& receiver_host,
                                   const SimTransferConfig& config) {
  auto& sim = network.sim();
  const TimePoint start = sim.now();
  const TimePoint deadline = start + config.timeout;

  std::vector<std::uint8_t> object;
  std::vector<std::uint8_t> sink;
  if (config.carry_data) {
    object = make_pattern(config.spec.object_bytes, config.data_seed);
    sink.assign(static_cast<std::size_t>(config.spec.object_bytes), 0);
  }

  SimSender sender(sender_host, config.spec, config.sender,
                   config.carry_data ? object.data() : nullptr, receiver_host.id());
  SimReceiver receiver(receiver_host, config.spec, config.receiver,
                       config.carry_data ? sink.data() : nullptr, sender_host.id(),
                       config.receiver_socket_buffer_bytes);
  if (config.sender_tracer != nullptr) sender.set_tracer(config.sender_tracer);
  if (config.receiver_tracer != nullptr) receiver.set_tracer(config.receiver_tracer);

  // One injector shared by both drivers, so a single plan describes the
  // whole path: the sender applies the data schedule, the receiver the
  // ACK/control schedules and the crash point.
  std::optional<fobs::net::FaultInjector> faults;
  if (!config.fault_plan.empty()) {
    faults.emplace(config.fault_plan);
    sender.set_fault_injector(&*faults);
    receiver.set_fault_injector(&*faults);
  }

  bool done = false;
  sender.set_on_finished([&done] { done = true; });

  receiver.start();
  sender.start();

  // Stall detection: progress checks run inline between event steps (no
  // extra sim events, so clean-run schedules — and the golden packet
  // counts — are untouched). A transfer dies only after
  // `stall_intervals` consecutive empty checks on the sender alongside
  // an empty-or-complete receiver; the flat deadline stays as backstop.
  const int stall_limit = std::max(1, config.stall_intervals);
  const Duration stall_interval = config.timeout / stall_limit;
  TimePoint next_check = start + stall_interval;
  bool stalled = false;
  int sender_streak = 0;
  int receiver_streak = 0;
  while (!done) {
    // Run stall checks due at or before now first: the final check of a
    // zero-progress run lands exactly on the deadline and must fire
    // before the flat backstop below declares a plain timeout.
    while (next_check <= sim.now()) {
      sender_streak = sender.on_stall_interval();
      receiver_streak = receiver.on_stall_interval();
      next_check = next_check + stall_interval;
    }
    if (sender_streak >= stall_limit &&
        (receiver_streak >= stall_limit || receiver.complete())) {
      stalled = true;
      break;
    }
    if (sim.now() >= deadline) break;
    if (!sim.step()) break;
  }

  if (!sender.finished()) {
    if (config.sender_tracer != nullptr) {
      config.sender_tracer->record(telemetry::EventType::kTimeout);
    }
    if (config.receiver_tracer != nullptr && !receiver.complete()) {
      config.receiver_tracer->record(telemetry::EventType::kTimeout);
    }
  }

  SimTransferResult result;
  result.completed = sender.finished();
  result.packets_needed = config.spec.packet_count();
  result.packets_sent = sender.core().stats().packets_sent;
  result.waste = sender.core().waste();
  result.receiver_socket_drops = receiver.socket_drops();
  result.acks_sent = receiver.acks_sent();
  result.duplicates_at_receiver = receiver.core().stats().duplicates;
  result.corrupt_drops = sender.corrupt_acks_dropped() + receiver.corrupt_data_dropped();
  result.stalled = stalled;
  if (receiver.complete()) {
    result.receiver_elapsed = receiver.completed_at() - start;
    if (result.receiver_elapsed > Duration::zero()) {
      result.goodput_mbps =
          fobs::util::rate_of(fobs::util::DataSize::bytes(config.spec.object_bytes),
                              result.receiver_elapsed)
              .mbps();
    }
  }
  if (sender.finished()) {
    result.sender_elapsed = sender.finished_at() - start;
  }
  if (config.carry_data && receiver.complete()) {
    result.data_verified = object == sink;
  }
  return result;
}

}  // namespace fobs::core
