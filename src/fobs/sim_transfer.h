// One-call FOBS object transfer between two simulated hosts.
//
// Owns the object buffers, wires SimSender/SimReceiver together, runs
// the event loop to completion (or timeout), verifies data integrity,
// and reports the metrics the paper's figures use.
#pragma once

#include <cstdint>
#include <vector>

#include "fobs/sim_driver.h"
#include "host/host.h"
#include "net/faults.h"
#include "sim/node.h"

namespace fobs::core {

struct SimTransferConfig {
  TransferSpec spec{.object_bytes = 40 * 1024 * 1024, .packet_bytes = 1024};
  SenderConfig sender;
  ReceiverConfig receiver;
  /// Receiver UDP socket buffer (overflow == loss during busy periods).
  std::int64_t receiver_socket_buffer_bytes = 64 * 1024;
  /// Give up after this much simulated time.
  Duration timeout = Duration::seconds(600);
  /// Allocate and verify real payload bytes (off = faster, size-only).
  bool carry_data = true;
  std::uint64_t data_seed = 0x5EED;
  /// Optional per-endpoint event tracers (must outlive the call; may be
  /// the same tracer for one merged timeline). Null = telemetry off.
  fobs::telemetry::EventTracer* sender_tracer = nullptr;
  fobs::telemetry::EventTracer* receiver_tracer = nullptr;
  /// Fault schedule applied to this transfer (empty = clean run; the
  /// golden regressions rely on an empty plan changing nothing).
  fobs::net::FaultPlan fault_plan;
  /// Stall detection: the run gives up once this many consecutive
  /// progress checks pass with zero new packets on both sides. The
  /// check interval is timeout / stall_intervals, so a transfer that
  /// never progresses still dies at ~`timeout`, but one that keeps
  /// moving is never killed by the flat deadline alone.
  int stall_intervals = 8;
};

struct SimTransferResult {
  bool completed = false;
  /// Start -> receiver holds the whole object (goodput clock).
  Duration receiver_elapsed = Duration::zero();
  /// Start -> sender learns of completion (paper's "transfer done").
  Duration sender_elapsed = Duration::zero();
  double goodput_mbps = 0.0;
  std::int64_t packets_needed = 0;
  std::int64_t packets_sent = 0;
  /// (sent - needed) / needed, the paper's wasted-resources metric.
  double waste = 0.0;
  std::uint64_t receiver_socket_drops = 0;
  std::uint64_t acks_sent = 0;
  std::int64_t duplicates_at_receiver = 0;
  /// Checksum-failing packets rejected (data at receiver + ACKs at
  /// sender); non-zero only when a fault plan injects corruption.
  std::int64_t corrupt_drops = 0;
  /// True when the run was terminated by stall detection (no progress
  /// for `stall_intervals` consecutive checks) rather than completing.
  bool stalled = false;
  bool data_verified = false;  ///< true when carry_data and bytes match

  /// Fraction of `max` achieved by goodput.
  [[nodiscard]] double fraction_of(fobs::util::DataRate max) const {
    if (max.is_zero()) return 0.0;
    return goodput_mbps * 1e6 / max.bps();
  }
};

/// Runs one FOBS transfer from `sender_host` to `receiver_host` over
/// whatever topology already connects them in `network`.
SimTransferResult run_sim_transfer(fobs::sim::Network& network, fobs::host::Host& sender_host,
                                   fobs::host::Host& receiver_host,
                                   const SimTransferConfig& config);

/// Deterministic test pattern for payload verification.
std::vector<std::uint8_t> make_pattern(std::int64_t bytes, std::uint64_t seed);

}  // namespace fobs::core
