#include "fobs/stripe/negotiate.h"

#include <cstring>

#include "common/crc32.h"

namespace fobs::stripe {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) | p[1]);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  put_u16(p, static_cast<std::uint16_t>(v >> 16));
  put_u16(p + 2, static_cast<std::uint16_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(get_u16(p)) << 16) | get_u16(p + 2);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v >> 32));
  put_u32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

bool valid_layout(std::uint8_t raw) {
  return raw == static_cast<std::uint8_t>(StripeLayout::kContiguous) ||
         raw == static_cast<std::uint8_t>(StripeLayout::kRoundRobin);
}

/// Seals everything after the 8-byte token, mirroring resume frames.
void seal(std::vector<std::uint8_t>& frame) {
  const std::size_t body = frame.size() - 8 - kStripeTrailerSize;
  put_u32(frame.data() + 8 + body, fobs::util::crc32(frame.data() + 8, body));
}

bool check_seal(const std::uint8_t* data, std::size_t frame_size) {
  const std::size_t body = frame_size - 8 - kStripeTrailerSize;
  return fobs::util::crc32(data + 8, body) == get_u32(data + 8 + body);
}

}  // namespace

std::size_t stripe_request_size(int stripes) {
  return kStripeRequestFixedSize + static_cast<std::size_t>(stripes) * 2 + kStripeTrailerSize;
}

std::size_t stripe_response_size(int stripes) {
  return kStripeResponseFixedSize + static_cast<std::size_t>(stripes) * 2 + kStripeTrailerSize;
}

std::vector<std::uint8_t> encode_stripe_request(const StripeRequest& request) {
  const int stripes = static_cast<int>(request.data_ports.size());
  std::vector<std::uint8_t> out(stripe_request_size(stripes));
  put_u64(out.data(), kStripeToken);
  out[8] = kStripeVersion;
  out[9] = static_cast<std::uint8_t>(request.layout);
  out[10] = 0;  // reserved
  put_u16(out.data() + 11, static_cast<std::uint16_t>(stripes));
  put_u64(out.data() + 13, static_cast<std::uint64_t>(request.object_bytes));
  put_u64(out.data() + 21, static_cast<std::uint64_t>(request.packet_bytes));
  for (int i = 0; i < stripes; ++i) {
    put_u16(out.data() + kStripeRequestFixedSize + static_cast<std::size_t>(i) * 2,
            request.data_ports[static_cast<std::size_t>(i)]);
  }
  seal(out);
  return out;
}

std::vector<std::uint8_t> encode_stripe_response(const StripeResponse& response) {
  const int stripes = response.accepted();
  std::vector<std::uint8_t> out(stripe_response_size(stripes));
  put_u64(out.data(), kStripeToken);
  out[8] = kStripeVersion;
  out[9] = static_cast<std::uint8_t>(response.layout);
  out[10] = 0;  // flags
  put_u16(out.data() + 11, static_cast<std::uint16_t>(stripes));
  for (int i = 0; i < stripes; ++i) {
    put_u16(out.data() + kStripeResponseFixedSize + static_cast<std::size_t>(i) * 2,
            response.control_ports[static_cast<std::size_t>(i)]);
  }
  seal(out);
  return out;
}

std::optional<StripeRequest> decode_stripe_request(const std::uint8_t* data, std::size_t len) {
  if (len < kStripeRequestFixedSize + kStripeTrailerSize) return std::nullopt;
  if (get_u64(data) != kStripeToken || data[8] != kStripeVersion) return std::nullopt;
  if (!valid_layout(data[9])) return std::nullopt;
  const int stripes = get_u16(data + 11);
  if (stripes < 1 || stripes > kMaxStripes) return std::nullopt;
  const std::size_t frame_size = stripe_request_size(stripes);
  if (len < frame_size || !check_seal(data, frame_size)) return std::nullopt;
  StripeRequest request;
  request.layout = static_cast<StripeLayout>(data[9]);
  request.object_bytes = static_cast<std::int64_t>(get_u64(data + 13));
  request.packet_bytes = static_cast<std::int64_t>(get_u64(data + 21));
  if (request.object_bytes <= 0 || request.packet_bytes <= 0) return std::nullopt;
  request.data_ports.resize(static_cast<std::size_t>(stripes));
  for (int i = 0; i < stripes; ++i) {
    request.data_ports[static_cast<std::size_t>(i)] =
        get_u16(data + kStripeRequestFixedSize + static_cast<std::size_t>(i) * 2);
  }
  return request;
}

std::optional<StripeResponse> decode_stripe_response(const std::uint8_t* data, std::size_t len) {
  if (len < kStripeResponseFixedSize + kStripeTrailerSize) return std::nullopt;
  if (get_u64(data) != kStripeToken || data[8] != kStripeVersion) return std::nullopt;
  if (!valid_layout(data[9])) return std::nullopt;
  const int stripes = get_u16(data + 11);
  if (stripes > kMaxStripes) return std::nullopt;
  const std::size_t frame_size = stripe_response_size(stripes);
  if (len < frame_size || !check_seal(data, frame_size)) return std::nullopt;
  StripeResponse response;
  response.layout = static_cast<StripeLayout>(data[9]);
  response.control_ports.resize(static_cast<std::size_t>(stripes));
  for (int i = 0; i < stripes; ++i) {
    response.control_ports[static_cast<std::size_t>(i)] =
        get_u16(data + kStripeResponseFixedSize + static_cast<std::size_t>(i) * 2);
  }
  return response;
}

}  // namespace fobs::stripe
