// FOBSSTRP stripe-negotiation frames (control-channel TCP).
//
// Striping is negotiated before any data flows. The *receiver* opens a
// TCP connection to the sender's negotiation port and sends a
// StripeRequest: desired stripe count, layout, the object geometry it
// expects, and one UDP data port per stripe. The sender answers with a
// StripeResponse carrying the stripe count it accepted (possibly fewer;
// 0 = striping refused, run single-flow) and one TCP control port per
// accepted stripe. Each stripe then runs the ordinary FOBS wire
// protocol on its own (data port, control port) pair.
//
// Backward compatibility: a pre-striping sender treats the FOBSSTRP
// token as an unknown control frame and drops the connection, which the
// receiver observes as a clean rejection and falls back to a plain
// single-flow transfer. A pre-striping receiver never emits the token,
// so old peers are never disturbed by this extension.
//
// Both frames are CRC32-sealed past the token, like resume frames.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fobs/stripe/plan.h"

namespace fobs::stripe {

inline constexpr std::uint64_t kStripeToken = 0x464F425353545250ull;  // "FOBSSTRP"
inline constexpr std::uint8_t kStripeVersion = 1;

/// Fixed part of a request: token, version, layout, reserved, stripe
/// count (u16), object_bytes (u64), packet_bytes (u64). A u16 data port
/// per stripe and a CRC32 trailer follow.
inline constexpr std::size_t kStripeRequestFixedSize = 8 + 1 + 1 + 1 + 2 + 8 + 8;
/// Fixed part of a response: token, version, layout, flags, accepted
/// count (u16). A u16 control port per accepted stripe and a CRC32
/// trailer follow.
inline constexpr std::size_t kStripeResponseFixedSize = 8 + 1 + 1 + 1 + 2;
inline constexpr std::size_t kStripeTrailerSize = 4;

struct StripeRequest {
  StripeLayout layout = StripeLayout::kContiguous;
  /// Object geometry as the receiver believes it; the sender rejects a
  /// mismatch outright rather than corrupting offsets.
  std::int64_t object_bytes = 0;
  std::int64_t packet_bytes = 0;
  /// One UDP data port per requested stripe (size = requested count).
  std::vector<std::uint16_t> data_ports;
};

struct StripeResponse {
  StripeLayout layout = StripeLayout::kContiguous;
  /// One TCP control port per *accepted* stripe; empty = refused, the
  /// receiver should fall back to a single flow.
  std::vector<std::uint16_t> control_ports;

  [[nodiscard]] int accepted() const { return static_cast<int>(control_ports.size()); }
};

/// Wire sizes for stream reassembly (fixed + ports + trailer).
[[nodiscard]] std::size_t stripe_request_size(int stripes);
[[nodiscard]] std::size_t stripe_response_size(int stripes);

std::vector<std::uint8_t> encode_stripe_request(const StripeRequest& request);
std::vector<std::uint8_t> encode_stripe_response(const StripeResponse& response);

/// Parse a complete frame; nullopt on bad token/version/CRC/shape or a
/// stripe count outside [1, kMaxStripes] ([0, kMaxStripes] for the
/// response — zero is the explicit refusal).
std::optional<StripeRequest> decode_stripe_request(const std::uint8_t* data, std::size_t len);
std::optional<StripeResponse> decode_stripe_response(const std::uint8_t* data, std::size_t len);

}  // namespace fobs::stripe
