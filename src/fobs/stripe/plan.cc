#include "fobs/stripe/plan.h"

#include <cassert>

namespace fobs::stripe {

const char* to_string(StripeLayout layout) {
  switch (layout) {
    case StripeLayout::kContiguous:
      return "contiguous";
    case StripeLayout::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

std::vector<std::int64_t> round_robin_split(std::int64_t total, int parts) {
  if (parts <= 0 || total < 0) return {};
  const std::int64_t each = total / parts;
  const std::int64_t extra = total % parts;
  std::vector<std::int64_t> out(static_cast<std::size_t>(parts), each);
  for (std::int64_t i = 0; i < extra; ++i) ++out[static_cast<std::size_t>(i)];
  return out;
}

bool StripePlan::make(core::TransferSpec spec, int stripes, StripeLayout layout, StripePlan* out,
                      std::string* error) {
  auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (out == nullptr) return fail("null output plan");
  if (spec.object_bytes <= 0 || spec.packet_bytes <= 0) return fail("invalid transfer geometry");
  if (stripes < 1 || stripes > kMaxStripes) return fail("stripe count outside [1, kMaxStripes]");
  if (layout != StripeLayout::kContiguous && layout != StripeLayout::kRoundRobin) {
    return fail("unknown stripe layout");
  }
  const std::int64_t packets = spec.packet_count();
  if (stripes > packets) return fail("more stripes than packets");

  out->spec_ = spec;
  out->layout_ = layout;
  out->stripe_count_ = stripes;
  out->prefix_.clear();
  if (layout == StripeLayout::kContiguous) {
    const auto counts = round_robin_split(packets, stripes);
    out->prefix_.resize(static_cast<std::size_t>(stripes) + 1, 0);
    for (int s = 0; s < stripes; ++s) {
      out->prefix_[static_cast<std::size_t>(s) + 1] =
          out->prefix_[static_cast<std::size_t>(s)] + counts[static_cast<std::size_t>(s)];
    }
  }
  return true;
}

int StripePlan::max_stripes(const core::TransferSpec& spec) {
  if (spec.object_bytes <= 0 || spec.packet_bytes <= 0) return 0;
  const std::int64_t packets = spec.packet_count();
  return static_cast<int>(packets < kMaxStripes ? packets : kMaxStripes);
}

std::int64_t StripePlan::stripe_packets(int s) const {
  assert(s >= 0 && s < stripe_count_);
  const std::int64_t packets = spec_.packet_count();
  if (layout_ == StripeLayout::kContiguous) {
    return prefix_[static_cast<std::size_t>(s) + 1] - prefix_[static_cast<std::size_t>(s)];
  }
  // Round robin: ceil((packets - s) / K).
  return (packets - s + stripe_count_ - 1) / stripe_count_;
}

std::int64_t StripePlan::stripe_bytes(int s) const {
  assert(s >= 0 && s < stripe_count_);
  const std::int64_t packets = stripe_packets(s);
  // Every packet is full-sized except the object's final packet, which
  // in both layouts is the last local packet of the stripe owning it.
  const std::int64_t last_global = spec_.packet_count() - 1;
  const auto [owner, local] = to_local(last_global);
  (void)local;
  if (owner != s) return packets * spec_.packet_bytes;
  return (packets - 1) * spec_.packet_bytes + spec_.payload_bytes(last_global);
}

core::PacketSeq StripePlan::to_global(int s, core::PacketSeq local) const {
  assert(s >= 0 && s < stripe_count_);
  assert(local >= 0 && local < stripe_packets(s));
  if (layout_ == StripeLayout::kContiguous) return prefix_[static_cast<std::size_t>(s)] + local;
  return local * stripe_count_ + s;
}

std::pair<int, core::PacketSeq> StripePlan::to_local(core::PacketSeq global) const {
  assert(global >= 0 && global < spec_.packet_count());
  if (layout_ == StripeLayout::kContiguous) {
    // prefix_ is small (<= kMaxStripes + 1): a linear scan beats a
    // binary search at these sizes and is branch-predictor friendly.
    int s = 0;
    while (prefix_[static_cast<std::size_t>(s) + 1] <= global) ++s;
    return {s, global - prefix_[static_cast<std::size_t>(s)]};
  }
  return {static_cast<int>(global % stripe_count_), global / stripe_count_};
}

}  // namespace fobs::stripe
