// Sans-io stripe planning: partition an object's packet sequence space
// into K disjoint stripes.
//
// A StripePlan is pure bookkeeping shared by both transfer peers: given
// the object geometry (TransferSpec), a stripe count, and a layout, it
// maps every global packet sequence number to exactly one (stripe,
// local-seq) pair and back. Each stripe then runs as an ordinary FOBS
// sub-transfer over its *local* sequence space [0, stripe_packets(s)):
// the sans-io cores, ACK streams, bitmaps, and checkpoints all operate
// on local sequence numbers unchanged — only the byte offset into the
// shared object is computed through the plan, so all stripes write into
// one mmap'd buffer at disjoint offsets with zero merge copies.
//
// Two layouts:
//  - kContiguous: stripe s owns one contiguous global range. Per-stripe
//    packet counts are split evenly with the remainder spread over the
//    first stripes (round_robin_split), so stripe byte ranges are
//    contiguous file extents — friendly to readahead and to resuming a
//    striped transfer with a plain single-flow fetch.
//  - kRoundRobin: stripe of global g is g % K, local seq is g / K —
//    the classic PSockets-style interleave that keeps all flows busy
//    until the very end of the object.
//
// In both layouts local sequence numbers increase with global sequence
// numbers within a stripe, and the only short packet (the object's last
// packet) is the last *local* packet of the stripe that owns it. A
// stripe-local TransferSpec{stripe_bytes(s), packet_bytes} therefore
// yields the correct per-packet payload sizes without any special
// casing in the drivers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fobs/types.h"

namespace fobs::stripe {

/// How global packet sequences are distributed over stripes.
enum class StripeLayout : std::uint8_t {
  kContiguous = 0,  ///< stripe s owns one contiguous global range
  kRoundRobin = 1,  ///< stripe of global g is g % K
};

[[nodiscard]] const char* to_string(StripeLayout layout);

/// Upper bound on stripes a peer may request or accept. Keeps the
/// FOBSSTRP frame small and bounds per-transfer socket/session fan-out.
inline constexpr int kMaxStripes = 64;

/// Splits `total` items into `parts` buckets as evenly as possible,
/// spreading the remainder over the *first* buckets (bucket i gets
/// total/parts + (i < total%parts)). This is the one shared partition
/// rule: StripePlan uses it for per-stripe packet counts, and the
/// PSockets baseline uses it for per-stream byte counts.
[[nodiscard]] std::vector<std::int64_t> round_robin_split(std::int64_t total, int parts);

class StripePlan {
 public:
  StripePlan() = default;

  /// Builds a plan, or returns false and fills `error` when the request
  /// is unsatisfiable: invalid geometry, stripes outside
  /// [1, kMaxStripes], or more stripes than packets (an empty stripe
  /// would dead-lock its sub-transfer). Callers that want best-effort
  /// behaviour clamp with max_stripes() first.
  [[nodiscard]] static bool make(core::TransferSpec spec, int stripes, StripeLayout layout,
                                 StripePlan* out, std::string* error = nullptr);

  /// Largest usable stripe count for this geometry:
  /// min(kMaxStripes, packet_count), and 0 for an empty object.
  [[nodiscard]] static int max_stripes(const core::TransferSpec& spec);

  [[nodiscard]] int stripe_count() const { return stripe_count_; }
  [[nodiscard]] StripeLayout layout() const { return layout_; }
  /// Geometry of the whole object.
  [[nodiscard]] const core::TransferSpec& spec() const { return spec_; }

  /// Packets owned by stripe `s` (>= 1 for every stripe).
  [[nodiscard]] std::int64_t stripe_packets(int s) const;
  /// Data bytes owned by stripe `s`; sums to spec().object_bytes.
  [[nodiscard]] std::int64_t stripe_bytes(int s) const;
  /// Geometry of stripe `s` viewed as a standalone transfer. Its
  /// payload_bytes(local) matches the owning global packet exactly.
  [[nodiscard]] core::TransferSpec stripe_spec(int s) const {
    return {stripe_bytes(s), spec_.packet_bytes};
  }

  /// Global sequence carried by stripe `s`'s local packet `local`.
  [[nodiscard]] core::PacketSeq to_global(int s, core::PacketSeq local) const;
  /// Inverse of to_global: (stripe, local) owning global packet `g`.
  [[nodiscard]] std::pair<int, core::PacketSeq> to_local(core::PacketSeq global) const;
  /// Byte offset *within the whole object* of stripe `s`'s packet
  /// `local` — the one place striped drivers diverge from single-flow.
  [[nodiscard]] std::int64_t global_offset(int s, core::PacketSeq local) const {
    return spec_.offset_of(to_global(s, local));
  }

 private:
  core::TransferSpec spec_;
  StripeLayout layout_ = StripeLayout::kContiguous;
  int stripe_count_ = 1;
  /// kContiguous only: prefix[s] = first global seq of stripe s;
  /// prefix[stripe_count_] = packet_count. Empty for kRoundRobin.
  std::vector<std::int64_t> prefix_;
};

/// A sub-transfer's view of the plan: which stripe of which plan this
/// session carries. Default-constructed (null plan) means "unstriped".
struct StripeRef {
  std::shared_ptr<const StripePlan> plan;
  int index = 0;

  [[nodiscard]] bool active() const { return plan != nullptr; }
};

}  // namespace fobs::stripe
