#include "fobs/stripe/striped_transfer.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/bitmap.h"
#include "common/log.h"
#include "telemetry/metrics.h"

namespace fobs::posix {

namespace {

using Clock = std::chrono::steady_clock;

/// RAII file descriptor (local copy; the driver's one is file-private).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  return addr;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Blocking-with-deadline exact read on a non-blocking stream socket.
bool read_exact(int fd, std::uint8_t* out, std::size_t len, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, out + off, len - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;  // peer closed mid-frame
    if (errno != EWOULDBLOCK && errno != EAGAIN && errno != EINTR) return false;
    if (Clock::now() >= deadline) return false;
    pollfd pfd{fd, POLLIN, 0};
    ::poll(&pfd, 1, 10);
  }
  return true;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EWOULDBLOCK || errno == EAGAIN || errno == EINTR)) {
      if (Clock::now() >= deadline) return false;
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 10);
      continue;
    }
    return false;
  }
  return true;
}

/// Connects to host:port with capped exponential backoff until
/// `deadline` (the peer may not be listening yet). Invalid Fd on
/// failure.
Fd connect_with_backoff(const std::string& host, std::uint16_t port,
                        Clock::time_point deadline) {
  auto backoff = std::chrono::milliseconds(5);
  constexpr auto kMaxBackoff = std::chrono::milliseconds(200);
  while (Clock::now() < deadline) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return {};
    const sockaddr_in addr = make_addr(host, port);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      set_nonblocking(fd.get());
      return fd;
    }
    fd.reset();
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, kMaxBackoff);
  }
  return {};
}

double mbps(std::int64_t bytes, double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / seconds / 1e6;
}

void sum_io(fobs::net::IoStats& into, const fobs::net::IoStats& add) {
  into.send_syscalls += add.send_syscalls;
  into.recv_syscalls += add.recv_syscalls;
  into.datagrams_sent += add.datagrams_sent;
  into.datagrams_received += add.datagrams_received;
  into.send_would_block += add.send_would_block;
  into.bytes_sent += add.bytes_sent;
  into.bytes_received += add.bytes_received;
  into.copy_bytes_avoided += add.copy_bytes_avoided;
}

/// Failure ordering for the aggregate status: configuration and socket
/// errors are the most actionable, a quiet stall the least.
int severity(TransferStatus status) {
  switch (status) {
    case TransferStatus::kBadOptions: return 7;
    case TransferStatus::kSocketError: return 6;
    case TransferStatus::kCrashed: return 5;
    case TransferStatus::kCancelled: return 4;
    case TransferStatus::kPeerLost: return 3;
    case TransferStatus::kTimeout: return 2;
    case TransferStatus::kStalled: return 1;
    default: return 0;
  }
}

/// Derives every aggregate field of `result` from its per-stripe
/// vectors (exactly one of which is populated).
void finalize_aggregate(StripedResult& result, std::int64_t object_bytes) {
  result.stripes_completed = 0;
  result.packets_restored = 0;
  result.io = {};
  double slowest = 0.0;
  TransferStatus worst = TransferStatus::kCompleted;
  std::string worst_error;
  auto fold = [&](int index, TransferStatus status, const std::string& error, double elapsed,
                  const fobs::net::IoStats& io) {
    if (status == TransferStatus::kCompleted) {
      ++result.stripes_completed;
    } else if (severity(status) > severity(worst) || worst == TransferStatus::kCompleted) {
      worst = status;
      worst_error = "stripe " + std::to_string(index) + ": " + error;
    }
    slowest = std::max(slowest, elapsed);
    sum_io(result.io, io);
  };
  for (std::size_t i = 0; i < result.stripe_senders.size(); ++i) {
    const auto& r = result.stripe_senders[i];
    fold(static_cast<int>(i), r.status, r.error, r.elapsed_seconds, r.io);
  }
  for (std::size_t i = 0; i < result.stripe_receivers.size(); ++i) {
    const auto& r = result.stripe_receivers[i];
    fold(static_cast<int>(i), r.status, r.error, r.elapsed_seconds, r.io);
    result.packets_restored += r.packets_restored;
  }
  result.elapsed_seconds = slowest;
  if (result.stripes_completed == result.stripes && result.stripes > 0) {
    result.status = TransferStatus::kCompleted;
    result.error.clear();
    result.goodput_mbps = mbps(object_bytes, slowest);
  } else {
    result.status = worst;
    result.error = worst_error;
    result.goodput_mbps = 0.0;
  }
  auto& metrics = telemetry::MetricsRegistry::global();
  if (result.completed()) {
    metrics.counter("fobs.stripe.completed").inc();
  } else if (result.degraded()) {
    metrics.counter("fobs.stripe.degraded").inc();
  }
}

/// Per-stripe endpoint options: shared knobs plus the optional
/// per-stripe fault-plan override.
EndpointOptions stripe_endpoint(const EndpointOptions& base,
                                const std::vector<std::string>& overrides, int index) {
  EndpointOptions endpoint = base;
  if (index >= 0 && static_cast<std::size_t>(index) < overrides.size() &&
      !overrides[static_cast<std::size_t>(index)].empty()) {
    endpoint.fault_plan = overrides[static_cast<std::size_t>(index)];
  }
  return endpoint;
}

/// Shared by the async sender path: collects per-stripe results as
/// sessions finish and fires the caller's on_complete after the last.
struct SendAggregation {
  std::mutex mu;
  int remaining = 0;
  std::int64_t object_bytes = 0;
  StripedResult result;
  std::function<void(const StripedResult&)> on_complete;

  void stripe_done(int index, const SenderResult& stripe_result) {
    std::function<void(const StripedResult&)> fire;
    {
      std::lock_guard lock(mu);
      result.stripe_senders[static_cast<std::size_t>(index)] = stripe_result;
      if (--remaining == 0) {
        finalize_aggregate(result, object_bytes);
        fire = std::move(on_complete);
      }
    }
    if (fire) fire(result);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Checkpoint merge / split
// ---------------------------------------------------------------------------

std::string stripe_checkpoint_path(const std::string& base, int index) {
  return base + ".s" + std::to_string(index);
}

std::optional<Checkpoint> merge_striped_checkpoint(const std::string& base,
                                                   const stripe::StripePlan& plan) {
  const auto& spec = plan.spec();
  const auto packets = static_cast<std::size_t>(spec.packet_count());
  fobs::util::Bitmap global(packets);
  bool any = false;
  if (const auto object_level = load_checkpoint(base)) {
    if (object_level->object_bytes == spec.object_bytes &&
        object_level->packet_bytes == spec.packet_bytes) {
      global.merge_range(0, packets, object_level->bitmap.data(), object_level->bitmap.size());
      any = true;
    }
  }
  for (int s = 0; s < plan.stripe_count(); ++s) {
    const auto sidecar = load_checkpoint(stripe_checkpoint_path(base, s));
    if (!sidecar) continue;
    const auto local_spec = plan.stripe_spec(s);
    if (sidecar->object_bytes != local_spec.object_bytes ||
        sidecar->packet_bytes != local_spec.packet_bytes) {
      continue;  // from a different plan: unusable, not an error
    }
    const auto local_packets = static_cast<std::size_t>(plan.stripe_packets(s));
    fobs::util::Bitmap local(local_packets);
    local.merge_range(0, local_packets, sidecar->bitmap.data(), sidecar->bitmap.size());
    for (std::size_t j = 0; j < local_packets; ++j) {
      if (local.test(j)) {
        global.set(static_cast<std::size_t>(
            plan.to_global(s, static_cast<fobs::core::PacketSeq>(j))));
      }
    }
    any = true;
  }
  if (!any || global.none_set()) return std::nullopt;
  Checkpoint merged;
  merged.object_bytes = spec.object_bytes;
  merged.packet_bytes = spec.packet_bytes;
  merged.received_count = static_cast<std::int64_t>(global.count());
  merged.bitmap = global.extract_range(0, packets);
  if (!save_checkpoint(base, merged)) return std::nullopt;
  return merged;
}

bool split_striped_checkpoint(const std::string& base, const stripe::StripePlan& plan) {
  const auto& spec = plan.spec();
  const auto object_level = load_checkpoint(base);
  if (!object_level || object_level->object_bytes != spec.object_bytes ||
      object_level->packet_bytes != spec.packet_bytes) {
    return false;
  }
  const auto packets = static_cast<std::size_t>(spec.packet_count());
  fobs::util::Bitmap global(packets);
  global.merge_range(0, packets, object_level->bitmap.data(), object_level->bitmap.size());
  for (int s = 0; s < plan.stripe_count(); ++s) {
    const auto path = stripe_checkpoint_path(base, s);
    const auto local_spec = plan.stripe_spec(s);
    const auto local_packets = static_cast<std::size_t>(plan.stripe_packets(s));
    fobs::util::Bitmap local(local_packets);
    if (const auto existing = load_checkpoint(path)) {
      if (existing->object_bytes == local_spec.object_bytes &&
          existing->packet_bytes == local_spec.packet_bytes) {
        local.merge_range(0, local_packets, existing->bitmap.data(), existing->bitmap.size());
      }
    }
    for (std::size_t j = 0; j < local_packets; ++j) {
      if (global.test(static_cast<std::size_t>(
              plan.to_global(s, static_cast<fobs::core::PacketSeq>(j))))) {
        local.set(j);
      }
    }
    if (local.none_set()) continue;
    Checkpoint sidecar;
    sidecar.object_bytes = local_spec.object_bytes;
    sidecar.packet_bytes = local_spec.packet_bytes;
    sidecar.received_count = static_cast<std::int64_t>(local.count());
    sidecar.bitmap = local.extract_range(0, local_packets);
    save_checkpoint(path, sidecar);
  }
  remove_checkpoint(base);
  return true;
}

void remove_striped_checkpoints(const std::string& base) {
  remove_checkpoint(base);
  for (int s = 0; s < stripe::kMaxStripes; ++s) {
    remove_checkpoint(stripe_checkpoint_path(base, s));
  }
}

// ---------------------------------------------------------------------------
// Sender orchestration
// ---------------------------------------------------------------------------

std::optional<int> TransferEngine::submit_striped_send(const StripedSenderOptions& options,
                                                       std::span<const std::uint8_t> object,
                                                       StripedSessionParams params,
                                                       std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<int> {
    if (error != nullptr) *error = why;
    if (options.negotiation_port_owned) release_control_port(options.negotiation_port);
    telemetry::MetricsRegistry::global().counter("fobs.stripe.negotiation_failures").inc();
    return std::nullopt;
  };
  auto& metrics = telemetry::MetricsRegistry::global();
  metrics.counter("fobs.stripe.transfers").inc();
  if (options.negotiation_port == 0) return fail("negotiation_port must be non-zero");
  if (options.max_stripes < 1) return fail("max_stripes must be >= 1");
  if (object.empty()) return fail("cannot send an empty object");
  if (options.endpoint.packet_bytes <= 0) return fail("packet_bytes must be positive");
  const fobs::core::TransferSpec spec{static_cast<std::int64_t>(object.size()),
                                      options.endpoint.packet_bytes};

  // Accept exactly one negotiation connection, with the endpoint's
  // whole timeout as budget (the receiver connects right after its
  // catalog exchange, so in practice this is milliseconds).
  Fd listener(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listener.valid()) return fail("tcp socket failed");
  const int one = 1;
  ::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in listen_addr = make_addr("0.0.0.0", options.negotiation_port);
  if (::bind(listener.get(), reinterpret_cast<sockaddr*>(&listen_addr), sizeof listen_addr) !=
          0 ||
      ::listen(listener.get(), 1) != 0 || !set_nonblocking(listener.get())) {
    return fail("negotiation listen failed");
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(options.endpoint.timeout_ms);
  Fd conn;
  std::string peer_host;
  while (Clock::now() < deadline) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int fd = ::accept(listener.get(), reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd >= 0) {
      conn = Fd(fd);
      set_nonblocking(fd);
      char host[64] = {0};
      ::inet_ntop(AF_INET, &peer.sin_addr, host, sizeof host);
      peer_host = host;
      break;
    }
    pollfd pfd{listener.get(), POLLIN, 0};
    ::poll(&pfd, 1, 10);
  }
  if (!conn.valid()) return fail("no negotiation connection before the deadline");

  // Read the FOBSSTRP request: fixed part first (it carries the stripe
  // count), then the port list + CRC trailer.
  std::vector<std::uint8_t> frame(stripe::kStripeRequestFixedSize);
  if (!read_exact(conn.get(), frame.data(), frame.size(), deadline)) {
    return fail("negotiation request truncated");
  }
  const int requested = (static_cast<int>(frame[11]) << 8) | frame[12];
  if (requested < 1 || requested > stripe::kMaxStripes) {
    return fail("negotiation request malformed");
  }
  frame.resize(stripe::stripe_request_size(requested));
  if (!read_exact(conn.get(), frame.data() + stripe::kStripeRequestFixedSize,
                  frame.size() - stripe::kStripeRequestFixedSize, deadline)) {
    return fail("negotiation request truncated");
  }
  const auto request = stripe::decode_stripe_request(frame.data(), frame.size());
  if (!request) return fail("negotiation request rejected (bad token/version/CRC)");

  auto respond = [&](const stripe::StripeResponse& response) {
    const auto encoded = stripe::encode_stripe_response(response);
    return send_all(conn.get(), encoded.data(), encoded.size(), deadline);
  };

  if (request->object_bytes != spec.object_bytes ||
      request->packet_bytes != spec.packet_bytes) {
    // The peer expects a different object: refuse loudly. No fallback —
    // a single flow would disagree about geometry just the same.
    respond(stripe::StripeResponse{request->layout, {}});
    metrics.counter("fobs.stripe.negotiation_rejected").inc();
    return fail("peer geometry mismatch (object or packet size)");
  }

  // Clamp the stripe count: peer's ask, our cap, the object's packet
  // count, and — when the engine's allocator is enabled — the largest
  // contiguous control-port block we can lease.
  int accepted = std::min({requested, options.max_stripes, stripe::StripePlan::max_stripes(spec)});
  std::vector<std::uint16_t> control_ports;
  bool ports_owned = false;  // leased from the engine allocator
  if (control_port_capacity() > 0) {
    // Allocator configured: lease the largest contiguous block that
    // fits, shrinking the stripe count to what is actually free.
    for (; accepted >= 1; --accepted) {
      if (const auto first = allocate_control_port_block(static_cast<std::size_t>(accepted))) {
        control_ports.resize(static_cast<std::size_t>(accepted));
        for (int i = 0; i < accepted; ++i) {
          control_ports[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(*first + i);
        }
        ports_owned = true;
        break;
      }
    }
  } else {
    // No allocator configured: derive per-stripe control ports from the
    // negotiation port (documented for CLI/standalone use).
    const int room = 0xFFFF - options.negotiation_port;
    accepted = std::min(accepted, room);
    if (accepted >= 1) {
      control_ports.resize(static_cast<std::size_t>(accepted));
      for (int i = 0; i < accepted; ++i) {
        control_ports[static_cast<std::size_t>(i)] =
            static_cast<std::uint16_t>(options.negotiation_port + 1 + i);
      }
    }
  }

  if (control_ports.empty()) {
    // Out of ports: refuse striping but keep the transfer alive — serve
    // one plain flow on the negotiation port itself (the receiver falls
    // back to exactly that pairing).
    if (!respond(stripe::StripeResponse{request->layout, {}})) {
      return fail("negotiation response failed");
    }
    conn.reset();
    listener.reset();  // run_sender re-binds this port for its control listener
    metrics.counter("fobs.stripe.negotiation_rejected").inc();
    metrics.counter("fobs.stripe.fallbacks").inc();
    auto agg = std::make_shared<SendAggregation>();
    agg->remaining = 1;
    agg->object_bytes = spec.object_bytes;
    agg->result.is_sender = true;
    agg->result.fallback_single_flow = true;
    agg->result.stripes = 1;
    agg->result.layout = request->layout;
    agg->result.stripe_senders.resize(1);
    agg->on_complete = std::move(params.on_complete);
    SenderOptions single;
    single.receiver_host = peer_host;
    single.data_port = request->data_ports.front();
    single.control_port = options.negotiation_port;
    single.core = options.core;
    single.endpoint = stripe_endpoint(options.endpoint, options.stripe_fault_plans, 0);
    SessionParams session_params;
    session_params.keepalive = std::move(params.keepalive);
    if (options.negotiation_port_owned) {
      session_params.owned_control_port = options.negotiation_port;
    }
    session_params.on_exit = [agg](const TransferHandle& handle) {
      agg->stripe_done(0, handle.sender_result());
    };
    submit_send(single, object, std::move(session_params));
    return 0;
  }

  stripe::StripePlan plan_value;
  std::string plan_error;
  if (!stripe::StripePlan::make(spec, accepted, request->layout, &plan_value, &plan_error)) {
    if (ports_owned) {
      release_control_port_block(control_ports.front(), control_ports.size());
    }
    respond(stripe::StripeResponse{request->layout, {}});
    return fail("stripe plan rejected: " + plan_error);
  }
  if (!respond(stripe::StripeResponse{request->layout, control_ports})) {
    if (ports_owned) {
      release_control_port_block(control_ports.front(), control_ports.size());
    }
    return fail("negotiation response failed");
  }
  conn.reset();
  listener.reset();
  // Striping negotiated: the negotiation port has done its job.
  if (options.negotiation_port_owned) release_control_port(options.negotiation_port);

  auto plan = std::make_shared<const stripe::StripePlan>(std::move(plan_value));
  metrics.counter("fobs.stripe.sessions").inc(accepted);
  auto agg = std::make_shared<SendAggregation>();
  agg->remaining = accepted;
  agg->object_bytes = spec.object_bytes;
  agg->result.is_sender = true;
  agg->result.stripes = accepted;
  agg->result.layout = request->layout;
  agg->result.stripe_senders.resize(static_cast<std::size_t>(accepted));
  agg->on_complete = std::move(params.on_complete);
  for (int i = 0; i < accepted; ++i) {
    SenderOptions stripe_options;
    stripe_options.receiver_host = peer_host;
    stripe_options.data_port = request->data_ports[static_cast<std::size_t>(i)];
    stripe_options.control_port = control_ports[static_cast<std::size_t>(i)];
    stripe_options.core = options.core;
    stripe_options.endpoint = stripe_endpoint(options.endpoint, options.stripe_fault_plans, i);
    stripe_options.stripe = {plan, i};
    SessionParams session_params;
    session_params.keepalive = params.keepalive;  // shared across stripes
    if (ports_owned) {
      session_params.owned_control_port = control_ports[static_cast<std::size_t>(i)];
    }
    session_params.on_exit = [agg, i](const TransferHandle& handle) {
      agg->stripe_done(i, handle.sender_result());
    };
    submit_send(stripe_options, object, std::move(session_params));
  }
  return accepted;
}

StripedResult TransferEngine::run_striped_sender(const StripedSenderOptions& options,
                                                 std::span<const std::uint8_t> object) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  StripedResult result;
  StripedSessionParams params;
  params.on_complete = [&](const StripedResult& aggregate) {
    // Notify under the mutex: the waiter owns cv on its stack and may
    // destroy it the moment it can reacquire mu, so the broadcast must
    // complete before this thread releases the lock.
    std::lock_guard lock(mu);
    result = aggregate;
    done = true;
    cv.notify_all();
  };
  std::string error;
  if (!submit_striped_send(options, object, std::move(params), &error)) {
    result.is_sender = true;
    result.status = TransferStatus::kPeerLost;
    result.error = error;
    return result;
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return done; });
  return result;
}

// ---------------------------------------------------------------------------
// Receiver orchestration
// ---------------------------------------------------------------------------

StripedResult TransferEngine::run_striped_receiver(const StripedReceiverOptions& options,
                                                   std::span<std::uint8_t> buffer) {
  StripedResult result;
  result.is_sender = false;
  result.status = TransferStatus::kBadOptions;
  auto& metrics = telemetry::MetricsRegistry::global();
  metrics.counter("fobs.stripe.transfers").inc();
  if (options.negotiation_port == 0 || options.data_port_base == 0) {
    result.error = "negotiation_port and data_port_base must be non-zero";
    return result;
  }
  if (options.endpoint.packet_bytes <= 0) {
    result.error = "packet_bytes must be positive";
    return result;
  }
  if (buffer.empty()) {
    result.error = "cannot receive into an empty buffer";
    return result;
  }
  const fobs::core::TransferSpec spec{static_cast<std::int64_t>(buffer.size()),
                                      options.endpoint.packet_bytes};
  int requested = std::min({options.stripes, stripe::kMaxStripes,
                            stripe::StripePlan::max_stripes(spec)});
  if (requested < 1) {
    result.error = "stripes must be >= 1";
    return result;
  }
  if (options.data_port_base + requested - 1 > 0xFFFF) {
    result.error = "data port block exceeds the port space";
    return result;
  }

  auto run_single_flow_fallback = [&]() {
    metrics.counter("fobs.stripe.fallbacks").inc();
    result.fallback_single_flow = true;
    result.stripes = 1;
    result.layout = options.layout;
    ReceiverOptions single;
    single.sender_host = options.sender_host;
    single.data_port = options.data_port_base;
    single.control_port = options.negotiation_port;
    single.core = options.core;
    single.checkpoint_path = options.checkpoint_base;
    single.checkpoint_every_acks = options.checkpoint_every_acks;
    single.endpoint = stripe_endpoint(options.endpoint, options.stripe_fault_plans, 0);
    // A single-flow resume needs the object-level checkpoint; fold any
    // striped sidecars from a previous attempt into it first.
    if (!options.checkpoint_base.empty()) {
      stripe::StripePlan prior;
      if (stripe::StripePlan::make(spec, requested, options.layout, &prior)) {
        merge_striped_checkpoint(options.checkpoint_base, prior);
      }
    }
    auto handle = submit_receive(single, buffer);
    handle.wait();
    result.stripe_receivers = {handle.receiver_result()};
    finalize_aggregate(result, spec.object_bytes);
    result.resumable = !result.completed() && !options.checkpoint_base.empty();
    return result;
  };

  // --- FOBSSTRP negotiation ----------------------------------------------
  const auto deadline = Clock::now() + std::chrono::milliseconds(options.endpoint.timeout_ms);
  Fd conn = connect_with_backoff(options.sender_host, options.negotiation_port, deadline);
  if (!conn.valid()) {
    result.status = TransferStatus::kPeerLost;
    result.error = "negotiation connect timeout";
    return result;
  }
  stripe::StripeRequest request;
  request.layout = options.layout;
  request.object_bytes = spec.object_bytes;
  request.packet_bytes = spec.packet_bytes;
  request.data_ports.resize(static_cast<std::size_t>(requested));
  for (int i = 0; i < requested; ++i) {
    request.data_ports[static_cast<std::size_t>(i)] =
        static_cast<std::uint16_t>(options.data_port_base + i);
  }
  const auto encoded = stripe::encode_stripe_request(request);
  const bool sent = send_all(conn.get(), encoded.data(), encoded.size(), deadline);
  std::vector<std::uint8_t> frame(stripe::kStripeResponseFixedSize);
  // A legacy sender drops the connection on the unknown token: the read
  // fails cleanly and we fall back to one plain flow.
  if (!sent || !read_exact(conn.get(), frame.data(), frame.size(), deadline)) {
    metrics.counter("fobs.stripe.negotiation_rejected").inc();
    if (options.allow_single_flow_fallback) return run_single_flow_fallback();
    result.status = TransferStatus::kPeerLost;
    result.error = "peer rejected stripe negotiation";
    return result;
  }
  const int accepted_count = (static_cast<int>(frame[11]) << 8) | frame[12];
  std::optional<stripe::StripeResponse> response;
  if (accepted_count >= 0 && accepted_count <= stripe::kMaxStripes) {
    frame.resize(stripe::stripe_response_size(accepted_count));
    if (read_exact(conn.get(), frame.data() + stripe::kStripeResponseFixedSize,
                   frame.size() - stripe::kStripeResponseFixedSize, deadline)) {
      response = stripe::decode_stripe_response(frame.data(), frame.size());
    }
  }
  conn.reset();
  if (!response || response->accepted() > requested) {
    metrics.counter("fobs.stripe.negotiation_rejected").inc();
    if (options.allow_single_flow_fallback) return run_single_flow_fallback();
    result.status = TransferStatus::kPeerLost;
    result.error = "stripe negotiation response malformed";
    return result;
  }
  if (response->accepted() == 0) {
    // Explicit refusal: the sender is now serving one plain flow on the
    // negotiation port.
    metrics.counter("fobs.stripe.negotiation_rejected").inc();
    if (options.allow_single_flow_fallback) return run_single_flow_fallback();
    result.status = TransferStatus::kPeerLost;
    result.error = "peer refused stripe negotiation";
    return result;
  }

  const int stripes = response->accepted();
  stripe::StripePlan plan_value;
  std::string plan_error;
  if (!stripe::StripePlan::make(spec, stripes, response->layout, &plan_value, &plan_error)) {
    result.error = "stripe plan rejected: " + plan_error;
    return result;
  }
  auto plan = std::make_shared<const stripe::StripePlan>(std::move(plan_value));
  result.stripes = stripes;
  result.layout = response->layout;
  metrics.counter("fobs.stripe.sessions").inc(stripes);

  // A previous single-flow attempt (or a merge after a degraded striped
  // one) may have left an object-level checkpoint: split it into
  // per-stripe sidecars so every session resumes its own slice.
  if (!options.checkpoint_base.empty()) {
    split_striped_checkpoint(options.checkpoint_base, *plan);
  }

  // --- per-stripe sessions ----------------------------------------------
  std::vector<TransferHandle> handles;
  handles.reserve(static_cast<std::size_t>(stripes));
  for (int i = 0; i < stripes; ++i) {
    ReceiverOptions stripe_options;
    stripe_options.sender_host = options.sender_host;
    stripe_options.data_port = static_cast<std::uint16_t>(options.data_port_base + i);
    stripe_options.control_port = response->control_ports[static_cast<std::size_t>(i)];
    stripe_options.core = options.core;
    stripe_options.checkpoint_every_acks = options.checkpoint_every_acks;
    if (!options.checkpoint_base.empty()) {
      stripe_options.checkpoint_path = stripe_checkpoint_path(options.checkpoint_base, i);
    }
    stripe_options.endpoint = stripe_endpoint(options.endpoint, options.stripe_fault_plans, i);
    stripe_options.stripe = {plan, i};
    handles.push_back(submit_receive(stripe_options, buffer));
  }
  result.stripe_receivers.resize(static_cast<std::size_t>(stripes));
  for (int i = 0; i < stripes; ++i) {
    handles[static_cast<std::size_t>(i)].wait();
    result.stripe_receivers[static_cast<std::size_t>(i)] =
        handles[static_cast<std::size_t>(i)].receiver_result();
  }
  finalize_aggregate(result, spec.object_bytes);
  if (result.packets_restored > 0) metrics.counter("fobs.stripe.resumes").inc();

  // Checkpoint post-pass: completed stripes removed their sidecars, so
  // after a partial failure rewrite them as full bitmaps — then merge
  // everything into the object-level file so a *single-flow* retry can
  // resume too (the per-stripe sidecars stay for a striped retry).
  if (!options.checkpoint_base.empty()) {
    if (result.completed()) {
      remove_striped_checkpoints(options.checkpoint_base);
    } else {
      for (int i = 0; i < stripes; ++i) {
        if (result.stripe_receivers[static_cast<std::size_t>(i)].status !=
            TransferStatus::kCompleted) {
          continue;
        }
        const auto local_packets = static_cast<std::size_t>(plan->stripe_packets(i));
        fobs::util::Bitmap full(local_packets);
        full.set_all();
        Checkpoint sidecar;
        sidecar.object_bytes = plan->stripe_bytes(i);
        sidecar.packet_bytes = spec.packet_bytes;
        sidecar.received_count = static_cast<std::int64_t>(local_packets);
        sidecar.bitmap = full.extract_range(0, local_packets);
        save_checkpoint(stripe_checkpoint_path(options.checkpoint_base, i), sidecar);
      }
      result.resumable = merge_striped_checkpoint(options.checkpoint_base, *plan).has_value();
    }
  }
  return result;
}

}  // namespace fobs::posix
