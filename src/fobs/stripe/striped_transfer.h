// Striped multi-flow FOBS: one object carried over N parallel UDP
// flows (the PSockets idea applied to the FOBS wire protocol).
//
// A striped transfer is K ordinary FOBS sessions — each with its own
// UDP socket, DatagramChannel, ACK stream, adaptive pacing state, and
// stall budget — running concurrently on a TransferEngine's worker
// pool, all addressing disjoint slices of ONE shared object buffer
// through a StripePlan (fobs/stripe/plan.h). There is no merge step:
// every stripe's receiver writes straight into the whole-object mapping
// at plan-computed offsets.
//
// Wire-level flow:
//   1. The receiver connects to the sender's negotiation TCP port and
//      sends a FOBSSTRP request (stripe count, layout, per-stripe UDP
//      data ports). A pre-striping sender drops the connection on the
//      unknown token — the receiver falls back to a plain single-flow
//      transfer on (data_port_base, negotiation_port).
//   2. The sender clamps the stripe count (its max_stripes, the
//      object's packet count, available control ports), answers with a
//      FOBSSTRP response (accepted count + per-stripe TCP control
//      ports), and launches one sender session per stripe. An accepted
//      count of zero refuses striping; the sender then serves a plain
//      single-flow transfer on the negotiation port itself, so both
//      sides degrade together.
//   3. Each stripe runs the unchanged FOBS protocol in stripe-local
//      sequence space: greedy UDP + selective-ACK bitmap + TCP
//      completion token, with resume frames and checkpoints per stripe.
//
// Checkpointing: each stripe persists its local bitmap to
// `<base>.s<i>`. merge_striped_checkpoint folds those into one
// object-level checkpoint at `<base>` (single-flow compatible);
// split_striped_checkpoint does the inverse so a striped attempt can
// resume from a single-flow checkpoint. The orchestrator performs the
// split on start and — after a partial failure — rewrites completed
// stripes' sidecars and the merged object-level file, so a degraded
// transfer is resumable by either a striped *or* a plain retry.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fobs/posix/checkpoint.h"
#include "fobs/posix/engine.h"
#include "fobs/stripe/negotiate.h"
#include "fobs/stripe/plan.h"

namespace fobs::posix {

struct StripedSenderOptions {
  /// TCP port to accept the FOBSSTRP negotiation on (required). On a
  /// refused negotiation the single-flow fallback sender listens here
  /// too, so legacy-shaped clients keep working.
  std::uint16_t negotiation_port = 0;
  /// The negotiation port was taken from the engine's allocator: the
  /// engine returns it as soon as it is no longer needed (right after
  /// negotiation for a striped run, after the session for the
  /// single-flow fallback, immediately on a failed launch). Service
  /// front-ends use this instead of releasing from a completion
  /// callback, which could race engine teardown.
  bool negotiation_port_owned = false;
  /// Upper bound on stripes this sender will accept (further clamped by
  /// the object's packet count and available control ports).
  int max_stripes = stripe::kMaxStripes;
  fobs::core::SenderConfig core;
  /// Applied to every stripe's session (packet size, stall budget, I/O
  /// tuning). endpoint.fault_plan applies to all stripes unless
  /// stripe_fault_plans overrides a specific one.
  EndpointOptions endpoint;
  /// When non-empty, per-stripe fault-plan overrides (index = stripe;
  /// missing/empty entries keep endpoint.fault_plan). Lets tests kill
  /// exactly one stripe's flow.
  std::vector<std::string> stripe_fault_plans;
};

struct StripedReceiverOptions {
  std::string sender_host = "127.0.0.1";
  /// The sender's negotiation port (required).
  std::uint16_t negotiation_port = 0;
  /// First of `stripes` *contiguous* local UDP data ports (required);
  /// stripe i binds data_port_base + i.
  std::uint16_t data_port_base = 0;
  /// Requested stripe count; the sender may accept fewer. 1 still
  /// negotiates (a 1-stripe plan), so any K pairs with any peer.
  int stripes = 1;
  stripe::StripeLayout layout = stripe::StripeLayout::kContiguous;
  fobs::core::ReceiverConfig core;
  /// When non-empty, per-stripe checkpoints are kept at `<base>.s<i>`
  /// (see merge/split below); pair it with a file-backed buffer exactly
  /// as for single-flow checkpoints.
  std::string checkpoint_base;
  int checkpoint_every_acks = 16;
  /// Fall back to a plain single-flow transfer when the peer rejects
  /// (or predates) FOBSSTRP. When false such peers yield kPeerLost.
  bool allow_single_flow_fallback = true;
  EndpointOptions endpoint;
  std::vector<std::string> stripe_fault_plans;
};

/// Aggregate of one striped transfer plus every per-stripe result.
struct StripedResult {
  /// kCompleted iff every stripe completed; otherwise the most severe
  /// per-stripe failure (socket/options errors over crash over
  /// cancel over peer-lost over timeout over stall).
  TransferStatus status = TransferStatus::kPending;
  std::string error;  ///< human-readable detail; empty on success
  bool is_sender = false;
  /// The FOBSSTRP exchange degraded this transfer to one plain flow
  /// (legacy peer or refused negotiation).
  bool fallback_single_flow = false;
  /// Stripes actually run (post-clamp; 1 in the fallback case).
  int stripes = 0;
  stripe::StripeLayout layout = stripe::StripeLayout::kContiguous;
  int stripes_completed = 0;
  /// Failed, but per-stripe checkpoints were (re)written so a retry —
  /// striped or single-flow — resumes instead of restarting.
  bool resumable = false;
  double elapsed_seconds = 0.0;  ///< slowest stripe (wall clock)
  /// Whole-object goodput over the slowest stripe's elapsed time.
  double goodput_mbps = 0.0;
  std::int64_t packets_restored = 0;  ///< summed over stripes (receiver)
  /// Per-stripe results, indexed by stripe; senders fill
  /// stripe_senders, receivers stripe_receivers.
  std::vector<SenderResult> stripe_senders;
  std::vector<ReceiverResult> stripe_receivers;
  fobs::net::IoStats io;  ///< summed over stripes

  [[nodiscard]] bool completed() const { return status == TransferStatus::kCompleted; }
  /// Some stripes delivered, some failed — the degraded-but-resumable
  /// state the checkpoint post-pass targets.
  [[nodiscard]] bool degraded() const { return !completed() && stripes_completed > 0; }
};

/// Extras for TransferEngine::submit_striped_send.
struct StripedSessionParams {
  /// Kept alive until the last stripe session ends (typically the
  /// mmap'd TransferObject backing the object span).
  std::shared_ptr<void> keepalive;
  /// Runs on the final stripe's worker once the aggregate is known.
  std::function<void(const StripedResult&)> on_complete;
};

/// `<base>.s<index>` — where stripe `index` checkpoints its bitmap.
[[nodiscard]] std::string stripe_checkpoint_path(const std::string& base, int index);

/// Folds every per-stripe sidecar of `plan` (and a matching object-
/// level checkpoint already at `base`, if any) into one object-level
/// checkpoint written atomically to `base`. Returns it, or nullopt when
/// no compatible bits were found.
std::optional<Checkpoint> merge_striped_checkpoint(const std::string& base,
                                                   const stripe::StripePlan& plan);

/// Splits an object-level checkpoint at `base` into per-stripe sidecars
/// (OR-ing into any that already exist) and removes `base`. False when
/// no compatible object-level checkpoint was present.
bool split_striped_checkpoint(const std::string& base, const stripe::StripePlan& plan);

/// Removes `base` and every `<base>.s<i>` for i < stripe::kMaxStripes.
void remove_striped_checkpoints(const std::string& base);

}  // namespace fobs::posix
