// Core types for FOBS object transfers.
//
// FOBS is "object-based": the transfer unit is a whole, pre-allocated
// buffer. With a fixed packet size every packet in the object has a
// stable sequence number, which is what lets the receiver keep a bitmap
// over the entire transfer (an effectively infinite selective-ack
// window, per the paper's Section 3).
#pragma once

#include <cassert>
#include <cstdint>

namespace fobs::core {

/// Index of a data packet within the object (0-based).
using PacketSeq = std::int64_t;

/// Geometry of one object transfer: object size and fixed packet size.
struct TransferSpec {
  std::int64_t object_bytes = 0;
  std::int64_t packet_bytes = 1024;  ///< data bytes per packet (paper default)

  [[nodiscard]] std::int64_t packet_count() const {
    assert(packet_bytes > 0);
    return (object_bytes + packet_bytes - 1) / packet_bytes;
  }

  /// Data bytes carried by packet `seq` (the final packet may be short).
  [[nodiscard]] std::int64_t payload_bytes(PacketSeq seq) const {
    assert(seq >= 0 && seq < packet_count());
    if (seq + 1 < packet_count()) return packet_bytes;
    const std::int64_t rem = object_bytes - seq * packet_bytes;
    return rem;
  }

  /// Byte offset of packet `seq` within the object.
  [[nodiscard]] std::int64_t offset_of(PacketSeq seq) const { return seq * packet_bytes; }
};

/// FOBS per-data-packet header bytes on the wire (sequence number,
/// object id, flags). Added on top of `TransferSpec::packet_bytes`.
inline constexpr std::int64_t kDataHeaderBytes = 16;

/// Fixed part of an acknowledgement packet (ack number, counters,
/// fragment descriptor).
inline constexpr std::int64_t kAckHeaderBytes = 32;

}  // namespace fobs::core
