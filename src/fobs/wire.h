// Simulated wire payloads for FOBS traffic.
#pragma once

#include <cstdint>
#include <memory>

#include "fobs/ack.h"
#include "fobs/types.h"

namespace fobs::core {

/// One FOBS data packet. `data` points into the sender's object buffer
/// (which outlives the simulation); a null pointer means a size-only run
/// with no payload verification. `corrupted` models a payload whose
/// CRC32 check fails at the receiver (the fault injector sets it; the
/// real-socket codec carries an actual checksum) — the receiver must
/// reject the packet instead of writing it into the object.
struct DataPacketPayload {
  PacketSeq seq = 0;
  std::int32_t len = 0;
  const std::uint8_t* data = nullptr;
  bool corrupted = false;
};

/// One acknowledgement. Shared pointer keeps per-hop packet copies cheap.
/// `corrupted` models a checksum-failing ACK the sender must ignore.
struct AckPacketPayload {
  std::shared_ptr<const AckMessage> ack;
  bool corrupted = false;
};

/// "All data received", sent once over the TCP control connection.
/// `corrupted` models an unparseable completion frame.
struct CompletionSignal {
  std::int64_t total_packets = 0;
  bool corrupted = false;
};

/// Wire size of a completion signal message on the TCP stream.
inline constexpr std::int64_t kCompletionSignalBytes = 16;

}  // namespace fobs::core
