#include "host/host.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

namespace fobs::host {

Host::Host(Network& network, HostConfig config)
    : Node(network.next_node_id(), config.name), network_(network), config_(std::move(config)) {}

Host& Host::create(Network& network, HostConfig config) {
  // std::make_unique cannot reach the private constructor.
  std::unique_ptr<Host> host(new Host(network, std::move(config)));
  return network.adopt(std::move(host));
}

void Host::set_egress(Link* link) {
  egress_ = link;
  if (egress_ != nullptr) {
    egress_->set_space_callback([this] { fire_writable(); });
  }
}

void Host::notify_writable(std::function<void()> cb) {
  writable_waiters_.push_back(std::move(cb));
}

fobs::util::TimePoint Host::reserve_cpu(Duration cost) {
  if (cost < Duration::zero()) cost = Duration::zero();
  const auto now = network_.sim().now();
  const auto start = std::max(now, cpu_free_at_);
  cpu_free_at_ = start + cost;
  return cpu_free_at_;
}

void Host::fire_writable() {
  if (writable_waiters_.empty()) return;
  std::vector<std::function<void()>> waiters;
  waiters.swap(writable_waiters_);
  // Rotate the wake order across events. Waking in a fixed order lets
  // the first waiter refill the queue and re-register first every time,
  // starving the others — real select() wakeups round-robin in effect.
  const std::size_t start = wake_rotation_++ % waiters.size();
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    waiters[(start + i) % waiters.size()]();
  }
}

void Host::send(Packet packet) {
  assert(egress_ != nullptr && "host has no egress link configured");
  packet.src = id();
  packet.uid = network_.next_packet_uid();
  egress_->deliver(std::move(packet));
}

bool Host::can_send(std::int64_t wire_bytes) const {
  assert(egress_ != nullptr);
  return egress_->has_room_for(wire_bytes);
}

void Host::bind(PortId port, PortHandler* handler) {
  assert(handler != nullptr);
  const auto [it, inserted] = ports_.emplace(port, handler);
  (void)it;
  assert(inserted && "port already bound");
  (void)inserted;
}

void Host::unbind(PortId port) { ports_.erase(port); }

PortId Host::allocate_port() {
  while (ports_.count(next_ephemeral_) != 0) {
    ++next_ephemeral_;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;  // wrapped
  }
  return next_ephemeral_++;
}

void Host::deliver(Packet packet) {
  auto it = ports_.find(packet.dst_port);
  if (it == ports_.end()) {
    ++no_port_drops_;
    return;
  }
  it->second->handle_packet(std::move(packet));
}

}  // namespace fobs::host
