// End-system (host) model: NIC egress, port demultiplexing, and a CPU
// cost model.
//
// The paper's headline curves are end-system effects, not wire effects:
//  * Figure 1: a FOBS receiver that is busy building an acknowledgement
//    is not draining its UDP socket buffer, so packets arriving during
//    that window overflow and are lost.
//  * Figure 3: per-datagram syscall/copy cost caps the achievable receive
//    rate, so bigger UDP packets win until fragmentation fragility bites.
// The Host therefore charges explicit CPU time for sends/receives, which
// protocol drivers use to self-schedule their polling loops.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "sim/link.h"
#include "sim/node.h"
#include "sim/packet.h"

namespace fobs::host {

using fobs::sim::Link;
using fobs::sim::Network;
using fobs::sim::NodeId;
using fobs::sim::Packet;
using fobs::sim::PortId;
using fobs::util::DataSize;
using fobs::util::Duration;

/// Per-host CPU cost model. Costs are charged by protocol drivers when
/// they perform the corresponding operation.
struct CpuModel {
  /// Fixed cost of one datagram send (syscall, header build).
  Duration per_packet_send = Duration::microseconds(5);
  /// Additional send cost per 1024 payload bytes (user->kernel copy).
  Duration per_kb_send = Duration::microseconds(1);
  /// Fixed cost of one datagram receive (syscall, demux).
  Duration per_packet_recv = Duration::microseconds(5);
  /// Additional receive cost per 1024 payload bytes (kernel->user copy).
  Duration per_kb_recv = Duration::microseconds(1);
  /// Cost of building + sending one FOBS acknowledgement packet. While
  /// this elapses the receiver does not drain its socket buffer.
  Duration ack_build = Duration::microseconds(60);

  [[nodiscard]] Duration send_cost(DataSize payload) const {
    return per_packet_send + per_kb_send * (static_cast<double>(payload.bytes()) / 1024.0);
  }
  [[nodiscard]] Duration recv_cost(DataSize payload) const {
    return per_packet_recv + per_kb_recv * (static_cast<double>(payload.bytes()) / 1024.0);
  }
};

struct HostConfig {
  std::string name = "host";
  CpuModel cpu;
  /// Default receive socket buffer for endpoints created on this host.
  std::int64_t default_rx_buffer_bytes = 256 * 1024;
};

/// Receives packets demultiplexed to a bound port.
class PortHandler {
 public:
  virtual ~PortHandler() = default;
  virtual void handle_packet(Packet packet) = 0;
};

class Host final : public fobs::sim::Node {
 public:
  /// Creates a host and registers it with (transfers ownership to) the
  /// network.
  static Host& create(Network& network, HostConfig config);

  /// The first hop for all outbound traffic — the host's NIC link.
  void set_egress(Link* link);
  [[nodiscard]] Link* egress() const { return egress_; }

  /// One-shot callback fired the next time the NIC queue frees space.
  /// This is how endpoints model blocking in select() until the socket
  /// becomes writable.
  void notify_writable(std::function<void()> cb);

  /// Reserves `cost` of CPU time on this host's single core, starting
  /// no earlier than now, and returns the completion time. Protocol
  /// drivers schedule their next step at the returned time, so multiple
  /// transfers co-located on one host contend for the CPU instead of
  /// each pretending to own it. A lone driver sees now()+cost exactly.
  [[nodiscard]] fobs::util::TimePoint reserve_cpu(Duration cost);
  [[nodiscard]] fobs::util::TimePoint cpu_free_at() const { return cpu_free_at_; }

  /// Sends a packet: stamps src/uid and offers it to the NIC link. The
  /// NIC queue models the socket send buffer; when it is full the packet
  /// would be dropped, so senders that model select() should check
  /// `can_send` first.
  void send(Packet packet);
  /// True when the NIC queue can accept `wire_bytes` more.
  [[nodiscard]] bool can_send(std::int64_t wire_bytes) const;

  /// Port demux registration. Binding an in-use port is a programming
  /// error (asserts).
  void bind(PortId port, PortHandler* handler);
  void unbind(PortId port);
  /// Returns an unused ephemeral port.
  [[nodiscard]] PortId allocate_port();

  void deliver(Packet packet) override;

  [[nodiscard]] const HostConfig& config() const { return config_; }
  [[nodiscard]] const CpuModel& cpu() const { return config_.cpu; }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] std::uint64_t no_port_drops() const { return no_port_drops_; }

 private:
  Host(Network& network, HostConfig config);
  void fire_writable();

  Network& network_;
  HostConfig config_;
  Link* egress_ = nullptr;
  std::unordered_map<PortId, PortHandler*> ports_;
  std::vector<std::function<void()>> writable_waiters_;
  std::size_t wake_rotation_ = 0;
  fobs::util::TimePoint cpu_free_at_;
  PortId next_ephemeral_ = 49152;
  std::uint64_t no_port_drops_ = 0;
};

}  // namespace fobs::host
