#include "net/datagram_channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "telemetry/metrics.h"

namespace fobs::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool retryable_errno(int err) {
  return err == EWOULDBLOCK || err == EAGAIN || err == ENOBUFS || err == EINTR;
}

/// Errors that mean "this kernel does not do batched datagram I/O" —
/// the channel degrades to the fallback path instead of failing.
bool unsupported_errno(int err) { return err == ENOSYS || err == EOPNOTSUPP; }

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
}

/// FOBS_IO_MODE resolves kAuto from the environment so existing
/// binaries can be A/B'd without a recompile.
IoMode resolve_mode(IoMode requested) {
  if (requested != IoMode::kAuto) return requested;
  if (const char* env = std::getenv("FOBS_IO_MODE")) {
    if (std::strcmp(env, "fallback") == 0) return IoMode::kFallback;
    if (std::strcmp(env, "batched") == 0) return IoMode::kBatched;
    if (std::strcmp(env, "auto") != 0 && env[0] != '\0') {
      FOBS_WARN("fobs.net.io", "unknown FOBS_IO_MODE '" << env << "'; using auto");
    }
  }
  return IoMode::kAuto;
}

}  // namespace

const char* to_string(IoMode mode) {
  switch (mode) {
    case IoMode::kAuto: return "auto";
    case IoMode::kBatched: return "batched";
    case IoMode::kFallback: return "fallback";
  }
  return "unknown";
}

std::string IoOptions::validate() const {
  if (send_batch < 1 || send_batch > kMaxBatchDatagrams) {
    return "io.send_batch must be in [1, " + std::to_string(kMaxBatchDatagrams) + "]";
  }
  if (recv_batch < 1 || recv_batch > kMaxBatchDatagrams) {
    return "io.recv_batch must be in [1, " + std::to_string(kMaxBatchDatagrams) + "]";
  }
  if (send_buffer_bytes < 0) return "io.send_buffer_bytes must be non-negative";
  if (recv_buffer_bytes < 0) return "io.recv_buffer_bytes must be non-negative";
  return {};
}

DatagramChannel::~DatagramChannel() {
  if (fd_ >= 0) ::close(fd_);
}

DatagramChannel::DatagramChannel(DatagramChannel&& other) noexcept { *this = std::move(other); }

DatagramChannel& DatagramChannel::operator=(DatagramChannel&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
    batched_ = other.batched_;
    send_batch_limit_ = other.send_batch_limit_;
    recv_batch_limit_ = other.recv_batch_limit_;
    slot_bytes_ = other.slot_bytes_;
    rx_pool_ = std::move(other.rx_pool_);
    tx_scratch_ = std::move(other.tx_scratch_);
    stats_ = other.stats_;
    syscalls_metric_ = other.syscalls_metric_;
    copy_avoided_metric_ = other.copy_avoided_metric_;
    per_syscall_metric_ = other.per_syscall_metric_;
  }
  return *this;
}

DatagramChannel DatagramChannel::open(const IoOptions& io, std::size_t max_datagram_bytes,
                                      std::optional<std::uint16_t> bind_port,
                                      std::string* error) {
  DatagramChannel channel;
  const std::string invalid = io.validate();
  if (!invalid.empty()) {
    if (error != nullptr) *error = invalid;
    return channel;
  }
  if (max_datagram_bytes == 0) {
    if (error != nullptr) *error = "max_datagram_bytes must be positive";
    return channel;
  }
  const IoMode mode = resolve_mode(io.mode);
#if defined(__linux__)
  const bool batched = mode != IoMode::kFallback;
#else
  if (mode == IoMode::kBatched) {
    if (error != nullptr) *error = "batched datagram I/O is not available on this platform";
    return channel;
  }
  const bool batched = false;
#endif

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0 || !set_nonblocking(fd)) {
    set_error(error, "udp socket setup failed");
    if (fd >= 0) ::close(fd);
    return channel;
  }
  if (io.send_buffer_bytes > 0) {
    const int buf = io.send_buffer_bytes;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof buf);
  }
  if (io.recv_buffer_bytes > 0) {
    const int buf = io.recv_buffer_bytes;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof buf);
  }
  if (bind_port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(*bind_port);
    addr.sin_addr.s_addr = INADDR_ANY;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      set_error(error, "udp bind failed");
      ::close(fd);
      return channel;
    }
  }

  channel.fd_ = fd;
  channel.batched_ = batched;
  channel.send_batch_limit_ = batched ? io.send_batch : 1;
  channel.recv_batch_limit_ = batched ? io.recv_batch : 1;
  channel.slot_bytes_ = max_datagram_bytes;
  channel.rx_pool_.resize(static_cast<std::size_t>(channel.recv_batch_limit_) *
                          channel.slot_bytes_);
  channel.tx_scratch_.resize(channel.slot_bytes_);
  auto& metrics = fobs::telemetry::MetricsRegistry::global();
  channel.syscalls_metric_ = &metrics.counter("fobs.io.syscalls");
  channel.copy_avoided_metric_ = &metrics.counter("fobs.io.copy_bytes_avoided");
  channel.per_syscall_metric_ =
      &metrics.histogram("fobs.io.datagrams_per_syscall", {1, 2, 4, 8, 16, 32, 64});
  metrics.counter(batched ? "fobs.io.batched_channels" : "fobs.io.fallback_channels").inc();
  return channel;
}

std::uint16_t DatagramChannel::local_port() const {
  if (fd_ < 0) return 0;
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

void DatagramChannel::note_syscall(bool send, int datagrams) {
  if (send) {
    ++stats_.send_syscalls;
    stats_.datagrams_sent += static_cast<std::uint64_t>(datagrams);
  } else {
    ++stats_.recv_syscalls;
    stats_.datagrams_received += static_cast<std::uint64_t>(datagrams);
  }
  syscalls_metric_->inc();
  per_syscall_metric_->observe(datagrams);
}

bool DatagramChannel::wait_writable() {
  ++stats_.send_would_block;
  pollfd pfd{fd_, POLLOUT, 0};
  return ::poll(&pfd, 1, 10) >= 0 || errno == EINTR;
}

bool DatagramChannel::send_fallback(const DatagramView& datagram, const sockaddr_in& dest,
                                    std::string* error) {
  // The classic path: assemble header + payload into one buffer (the
  // per-packet copy the gather path avoids), then one sendto per
  // datagram.
  const std::size_t total = datagram.size();
  const std::uint8_t* data = datagram.header.data();
  if (!datagram.payload.empty()) {
    if (total > tx_scratch_.size()) tx_scratch_.resize(total);
    std::memcpy(tx_scratch_.data(), datagram.header.data(), datagram.header.size());
    std::memcpy(tx_scratch_.data() + datagram.header.size(), datagram.payload.data(),
                datagram.payload.size());
    data = tx_scratch_.data();
  }
  while (true) {
    const ssize_t sent = ::sendto(fd_, data, total, 0,
                                  reinterpret_cast<const sockaddr*>(&dest), sizeof dest);
    if (sent >= 0) {
      note_syscall(/*send=*/true, 1);
      stats_.bytes_sent += static_cast<std::int64_t>(total);
      return true;
    }
    if (retryable_errno(errno)) {
      if (!wait_writable()) {
        set_error(error, "poll failed");
        return false;
      }
      continue;
    }
    set_error(error, "sendto failed");
    return false;
  }
}

bool DatagramChannel::send_batch(std::span<const DatagramView> batch, const sockaddr_in& dest,
                                 std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "channel not open";
    return false;
  }
  std::size_t off = 0;
#if defined(__linux__)
  while (batched_ && off < batch.size()) {
    const int want = static_cast<int>(std::min<std::size_t>(batch.size() - off,
                                                            static_cast<std::size_t>(
                                                                send_batch_limit_)));
    mmsghdr msgs[kMaxBatchDatagrams];
    iovec iovs[kMaxBatchDatagrams][2];
    std::memset(msgs, 0, static_cast<std::size_t>(want) * sizeof(mmsghdr));
    for (int i = 0; i < want; ++i) {
      const DatagramView& d = batch[off + static_cast<std::size_t>(i)];
      iovs[i][0] = {const_cast<std::uint8_t*>(d.header.data()), d.header.size()};
      int iov_count = 1;
      if (!d.payload.empty()) {
        iovs[i][1] = {const_cast<std::uint8_t*>(d.payload.data()), d.payload.size()};
        iov_count = 2;
      }
      msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(&dest);
      msgs[i].msg_hdr.msg_namelen = sizeof dest;
      msgs[i].msg_hdr.msg_iov = iovs[i];
      msgs[i].msg_hdr.msg_iovlen = static_cast<std::size_t>(iov_count);
    }
    const int sent = ::sendmmsg(fd_, msgs, static_cast<unsigned>(want), 0);
    if (sent > 0) {
      std::int64_t avoided = 0;
      std::int64_t bytes = 0;
      for (int i = 0; i < sent; ++i) {
        const DatagramView& d = batch[off + static_cast<std::size_t>(i)];
        avoided += static_cast<std::int64_t>(d.payload.size());
        bytes += static_cast<std::int64_t>(d.size());
      }
      note_syscall(/*send=*/true, sent);
      stats_.bytes_sent += bytes;
      stats_.copy_bytes_avoided += avoided;
      copy_avoided_metric_->inc(avoided);
      off += static_cast<std::size_t>(sent);
      continue;
    }
    if (retryable_errno(errno)) {
      if (!wait_writable()) {
        set_error(error, "poll failed");
        return false;
      }
      continue;
    }
    if (unsupported_errno(errno)) {
      FOBS_WARN("fobs.net.io", "sendmmsg unsupported at runtime; degrading to sendto");
      batched_ = false;
      break;  // remaining datagrams go out the fallback path below
    }
    set_error(error, "sendmmsg failed");
    return false;
  }
#endif
  for (; off < batch.size(); ++off) {
    if (!send_fallback(batch[off], dest, error)) return false;
  }
  return true;
}

bool DatagramChannel::send_one(const DatagramView& datagram, const sockaddr_in& dest,
                               std::string* error) {
  return send_batch({&datagram, 1}, dest, error);
}

int DatagramChannel::recv_batch(std::span<RecvView> out, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "channel not open";
    return -1;
  }
  if (out.empty()) return 0;
  const int want = static_cast<int>(std::min<std::size_t>(
      out.size(), static_cast<std::size_t>(recv_batch_limit_)));
#if defined(__linux__)
  if (batched_) {
    mmsghdr msgs[kMaxBatchDatagrams];
    iovec iovs[kMaxBatchDatagrams];
    sockaddr_in froms[kMaxBatchDatagrams];
    std::memset(msgs, 0, static_cast<std::size_t>(want) * sizeof(mmsghdr));
    for (int i = 0; i < want; ++i) {
      iovs[i] = {rx_pool_.data() + static_cast<std::size_t>(i) * slot_bytes_, slot_bytes_};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &froms[i];
      msgs[i].msg_hdr.msg_namelen = sizeof froms[i];
    }
    const int got = ::recvmmsg(fd_, msgs, static_cast<unsigned>(want), MSG_DONTWAIT, nullptr);
    if (got > 0) {
      std::int64_t bytes = 0;
      for (int i = 0; i < got; ++i) {
        out[static_cast<std::size_t>(i)] = RecvView{
            std::span<std::uint8_t>(rx_pool_.data() + static_cast<std::size_t>(i) * slot_bytes_,
                                    msgs[i].msg_len),
            froms[i]};
        bytes += msgs[i].msg_len;
      }
      note_syscall(/*send=*/false, got);
      stats_.bytes_received += bytes;
      return got;
    }
    if (errno == EWOULDBLOCK || errno == EAGAIN || errno == EINTR) return 0;
    if (unsupported_errno(errno)) {
      FOBS_WARN("fobs.net.io", "recvmmsg unsupported at runtime; degrading to recvfrom");
      batched_ = false;
    } else {
      set_error(error, "recvmmsg failed");
      return -1;
    }
  }
#endif
  sockaddr_in from{};
  socklen_t from_len = sizeof from;
  const ssize_t n = ::recvfrom(fd_, rx_pool_.data(), slot_bytes_, MSG_DONTWAIT,
                               reinterpret_cast<sockaddr*>(&from), &from_len);
  if (n >= 0) {
    out[0] = RecvView{std::span<std::uint8_t>(rx_pool_.data(), static_cast<std::size_t>(n)),
                      from};
    note_syscall(/*send=*/false, 1);
    stats_.bytes_received += n;
    return 1;
  }
  if (errno == EWOULDBLOCK || errno == EAGAIN || errno == EINTR) return 0;
  set_error(error, "recvfrom failed");
  return -1;
}

}  // namespace fobs::net
