// Batched, scatter-gather datagram I/O for the real-socket drivers.
//
// The paper's FOBS loops pay one syscall plus one full-payload copy per
// packet — the per-packet-cost wall that caps reliable UDP transfer
// well below link speed. DatagramChannel removes both costs where the
// platform allows it:
//  * send_batch() pushes a whole FOBS batch with one sendmmsg() call,
//    each datagram gathered from two iovecs (header buffer + a pointer
//    straight into the caller's object mapping), so the payload is
//    never assembled into an intermediate packet buffer;
//  * recv_batch() drains the socket with one recvmmsg() call into a
//    pooled buffer ring owned by the channel.
// When sendmmsg/recvmmsg are unavailable (non-Linux builds, ENOSYS at
// runtime) — or when forced via IoOptions::mode / FOBS_IO_MODE — the
// channel degrades to the classic one-sendto/one-recvfrom-per-datagram
// path with an assembly copy, byte-identical on the wire.
//
// Telemetry (global metrics registry):
//   fobs.io.syscalls              data-plane syscalls that moved >=1 datagram
//   fobs.io.datagrams_per_syscall histogram of datagrams moved per syscall
//   fobs.io.copy_bytes_avoided    payload bytes gathered directly from
//                                 caller memory instead of being copied
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace fobs::telemetry {
class Counter;
class Histogram;
}  // namespace fobs::telemetry

namespace fobs::net {

/// Hard ceiling on datagrams per batched syscall (bounds the stack
/// arrays of mmsghdr/iovec and the receive pool).
inline constexpr int kMaxBatchDatagrams = 64;

enum class IoMode : std::uint8_t {
  kAuto = 0,  ///< batched when the platform has it; FOBS_IO_MODE may override
  kBatched,   ///< require sendmmsg/recvmmsg (open() fails where unavailable)
  kFallback,  ///< force the per-datagram sendto/recvfrom path
};

[[nodiscard]] const char* to_string(IoMode mode);

/// Datagram I/O tuning, embedded as `EndpointOptions::io` on the POSIX
/// transfer surface. Validated before any socket is touched.
struct IoOptions {
  IoMode mode = IoMode::kAuto;
  /// Max datagrams handed to one send syscall (1..kMaxBatchDatagrams).
  int send_batch = 32;
  /// Max datagrams drained by one receive syscall (1..kMaxBatchDatagrams).
  /// Also sizes the channel's pooled receive ring.
  int recv_batch = 32;
  /// SO_SNDBUF / SO_RCVBUF requests; 0 leaves the system default.
  int send_buffer_bytes = 1 << 20;
  int recv_buffer_bytes = 1 << 20;

  /// Empty string when valid; otherwise a human-readable reason.
  [[nodiscard]] std::string validate() const;
};

/// Per-channel I/O counters. Syscall counts include only calls that
/// moved at least one datagram; would-block probes are kept separately
/// so "syscalls per packet" stays an honest data-plane figure.
struct IoStats {
  std::uint64_t send_syscalls = 0;
  std::uint64_t recv_syscalls = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t send_would_block = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  /// Payload bytes the gather path sent straight from caller memory
  /// (bytes the fallback path would have memcpy'd into a packet buffer).
  std::int64_t copy_bytes_avoided = 0;
};

/// One outgoing datagram as scatter-gather pieces. `payload` may be
/// empty (header-only datagrams, e.g. ACKs). Both spans must stay valid
/// for the duration of the send call.
struct DatagramView {
  std::span<const std::uint8_t> header;
  std::span<const std::uint8_t> payload{};

  [[nodiscard]] std::size_t size() const { return header.size() + payload.size(); }
};

/// One received datagram, viewing the channel's pooled ring. Valid only
/// until the next recv_batch() call on the same channel.
struct RecvView {
  std::span<std::uint8_t> data;
  sockaddr_in from{};
};

class DatagramChannel {
 public:
  DatagramChannel() = default;
  ~DatagramChannel();
  DatagramChannel(DatagramChannel&& other) noexcept;
  DatagramChannel& operator=(DatagramChannel&& other) noexcept;
  DatagramChannel(const DatagramChannel&) = delete;
  DatagramChannel& operator=(const DatagramChannel&) = delete;

  /// Opens a non-blocking UDP socket sized for datagrams of up to
  /// `max_datagram_bytes`. `bind_port` of nullopt leaves the socket
  /// unbound (a sender; the kernel binds it on first send); 0 binds an
  /// ephemeral port (see local_port()); anything else binds that port.
  /// Returns an invalid channel and fills `error` on failure — the
  /// options are validated first, so a bad IoOptions never touches a
  /// socket.
  static DatagramChannel open(const IoOptions& io, std::size_t max_datagram_bytes,
                              std::optional<std::uint16_t> bind_port, std::string* error);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// True while sendmmsg/recvmmsg drive the fast path. Can flip to
  /// false mid-life if the kernel reports ENOSYS on first use.
  [[nodiscard]] bool batched() const { return batched_; }
  /// The bound port (after an ephemeral bind), 0 when unbound.
  [[nodiscard]] std::uint16_t local_port() const;

  /// Sends every datagram in `batch` to `dest`, polling for
  /// writability on buffer pressure (the paper's select()-wait), so a
  /// true return means all of them entered the kernel. False on a hard
  /// socket error (fills `error`); datagrams before the failure were
  /// sent.
  bool send_batch(std::span<const DatagramView> batch, const sockaddr_in& dest,
                  std::string* error);
  bool send_one(const DatagramView& datagram, const sockaddr_in& dest, std::string* error);

  /// Non-blocking drain: fills up to min(out.size(), recv_batch) views
  /// from one receive syscall. Returns the count, 0 when the socket has
  /// nothing (EWOULDBLOCK), -1 on a hard error (fills `error`).
  /// Returned views alias the channel's pool and die at the next call.
  int recv_batch(std::span<RecvView> out, std::string* error);

  [[nodiscard]] const IoStats& stats() const { return stats_; }

 private:
  void note_syscall(bool send, int datagrams);
  bool send_fallback(const DatagramView& datagram, const sockaddr_in& dest,
                     std::string* error);
  bool wait_writable();

  int fd_ = -1;
  bool batched_ = false;
  int send_batch_limit_ = 1;
  int recv_batch_limit_ = 1;
  std::size_t slot_bytes_ = 0;
  std::vector<std::uint8_t> rx_pool_;     ///< recv_batch_limit_ slots of slot_bytes_
  std::vector<std::uint8_t> tx_scratch_;  ///< fallback assembly buffer
  IoStats stats_;
  // Cached global-registry instruments (stable references; looked up
  // once at open so the hot path is a relaxed atomic add).
  fobs::telemetry::Counter* syscalls_metric_ = nullptr;
  fobs::telemetry::Counter* copy_avoided_metric_ = nullptr;
  fobs::telemetry::Histogram* per_syscall_metric_ = nullptr;
};

}  // namespace fobs::net
