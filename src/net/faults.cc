#include "net/faults.h"

#include <charconv>
#include <locale>
#include <sstream>

namespace fobs::net {

const char* to_string(FaultChannel channel) {
  switch (channel) {
    case FaultChannel::kData: return "data";
    case FaultChannel::kAck: return "ack";
    case FaultChannel::kControl: return "control";
  }
  return "unknown";
}

namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(text.data(), end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(text.data(), end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

bool parse_prob(std::string_view text, double& out) {
  // Hand-rolled "<int>[.<frac>]" parse: std::stod honours the process
  // locale (a comma-decimal locale rejects "0.01"), and std::from_chars
  // for double is spotty across stdlibs. Plans must behave identically
  // regardless of LC_NUMERIC, so stay on the integer parsers.
  const auto dot = text.find('.');
  const std::string_view int_part = text.substr(0, dot);
  const std::string_view frac_part =
      dot == std::string_view::npos ? std::string_view() : text.substr(dot + 1);
  if (int_part.empty() && frac_part.empty()) return false;
  if (frac_part.size() > 18) return false;  // keeps the u64 parse exact
  std::uint64_t int_value = 0;
  std::uint64_t frac_value = 0;
  if (!int_part.empty() && !parse_u64(int_part, int_value)) return false;
  if (!frac_part.empty() && !parse_u64(frac_part, frac_value)) return false;
  double scale = 1.0;
  for (std::size_t i = 0; i < frac_part.size(); ++i) scale *= 10.0;
  out = static_cast<double>(int_value) + static_cast<double>(frac_value) / scale;
  return out >= 0.0 && out <= 1.0;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool apply_item(FaultPlan& plan, std::string_view item, std::string* error) {
  const auto eq = item.find('=');
  if (eq == std::string_view::npos) {
    return fail(error, "fault plan item missing '=': '" + std::string(item) + "'");
  }
  const std::string_view key = item.substr(0, eq);
  const std::string_view value = item.substr(eq + 1);

  if (key == "seed") {
    if (!parse_u64(value, plan.seed)) return fail(error, "bad seed value");
    return true;
  }
  if (key == "crash") {
    if (!parse_i64(value, plan.crash_at_packet) || plan.crash_at_packet < 0) {
      return fail(error, "bad crash packet index");
    }
    return true;
  }

  const auto dot = key.find('.');
  if (dot == std::string_view::npos) {
    return fail(error, "unknown fault plan key: '" + std::string(key) + "'");
  }
  const std::string_view chan_name = key.substr(0, dot);
  const std::string_view field = key.substr(dot + 1);
  ChannelFaults* channel = nullptr;
  if (chan_name == "data") {
    channel = &plan.data;
  } else if (chan_name == "ack") {
    channel = &plan.ack;
  } else if (chan_name == "control") {
    channel = &plan.control;
  } else {
    return fail(error, "unknown fault channel: '" + std::string(chan_name) + "'");
  }

  if (field == "corrupt" || field == "drop" || field == "dup") {
    double prob = 0.0;
    if (!parse_prob(value, prob)) {
      return fail(error, "bad probability for " + std::string(key) + " (need [0,1])");
    }
    if (field == "corrupt") channel->corrupt = prob;
    if (field == "drop") channel->drop = prob;
    if (field == "dup") channel->duplicate = prob;
    return true;
  }
  if (field == "blackhole") {
    const auto plus = value.find('+');
    std::int64_t start = 0;
    std::int64_t count = 0;
    if (plus == std::string_view::npos || !parse_i64(value.substr(0, plus), start) ||
        !parse_i64(value.substr(plus + 1), count) || start < 0 || count <= 0) {
      return fail(error, "bad blackhole window (need <start>+<count>)");
    }
    channel->blackhole_start = start;
    channel->blackhole_count = count;
    return true;
  }
  return fail(error, "unknown fault field: '" + std::string(field) + "'");
}

void append_channel(std::ostringstream& out, const char* name, const ChannelFaults& ch) {
  if (ch.corrupt > 0.0) out << ';' << name << ".corrupt=" << ch.corrupt;
  if (ch.drop > 0.0) out << ';' << name << ".drop=" << ch.drop;
  if (ch.duplicate > 0.0) out << ';' << name << ".dup=" << ch.duplicate;
  if (ch.blackhole_start >= 0) {
    out << ';' << name << ".blackhole=" << ch.blackhole_start << '+' << ch.blackhole_count;
  }
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec, std::string* error) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto semi = spec.find(';', pos);
    const auto end = semi == std::string_view::npos ? spec.size() : semi;
    const std::string_view item = spec.substr(pos, end - pos);
    if (!item.empty() && !apply_item(plan, item, error)) return std::nullopt;
    if (semi == std::string_view::npos) break;
    pos = semi + 1;
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  // The grammar is locale-independent; a comma-decimal global locale
  // must not leak into the serialized probabilities.
  out.imbue(std::locale::classic());
  out << "seed=" << seed;
  append_channel(out, "data", data);
  append_channel(out, "ack", ack);
  append_channel(out, "control", control);
  if (crash_at_packet >= 0) out << ";crash=" << crash_at_packet;
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan),
      // Distinct derived seeds keep the channel streams independent of
      // each other and of send interleaving.
      rngs_{fobs::util::Rng(plan.seed * 3 + 1), fobs::util::Rng(plan.seed * 3 + 2),
            fobs::util::Rng(plan.seed * 3 + 3)} {}

FaultAction FaultInjector::next(FaultChannel channel) {
  const auto index = static_cast<std::size_t>(channel);
  const ChannelFaults& faults = plan_.channel(channel);
  FaultStats& stats = stats_[index];
  const std::int64_t packet_index = stats.seen++;

  if (faults.blackhole_start >= 0 && packet_index >= faults.blackhole_start &&
      packet_index < faults.blackhole_start + faults.blackhole_count) {
    ++stats.dropped;
    return FaultAction::kDrop;
  }
  // One draw per packet keeps the per-channel schedule a pure function
  // of (seed, packet index).
  const double draw = rngs_[index].uniform();
  if (draw < faults.corrupt) {
    ++stats.corrupted;
    return FaultAction::kCorrupt;
  }
  if (draw < faults.corrupt + faults.drop) {
    ++stats.dropped;
    return FaultAction::kDrop;
  }
  if (draw < faults.corrupt + faults.drop + faults.duplicate) {
    ++stats.duplicated;
    return FaultAction::kDuplicate;
  }
  return FaultAction::kPass;
}

std::int64_t FaultInjector::total_injected() const {
  std::int64_t total = 0;
  for (const auto& stats : stats_) {
    total += stats.dropped + stats.corrupted + stats.duplicated;
  }
  return total;
}

}  // namespace fobs::net
