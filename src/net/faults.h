// Deterministic, seed-driven fault injection for FOBS transfers.
//
// A FaultPlan describes what should go wrong on each protocol channel
// (data, acknowledgement, control): random per-packet corruption /
// drops / duplication, a packet-indexed blackhole window, and a
// peer-crash point. The same plan drives both transports:
//  * the sim drivers consult a FaultInjector before every channel send
//    and mark payloads corrupted / swallow them / send them twice;
//  * the POSIX drivers parse a plan from an options field or the
//    FOBS_FAULT_PLAN environment variable and interpose the identical
//    schedule on real sockets.
// Decisions are drawn from per-channel RNG streams keyed off the plan
// seed, so a given (plan, channel, packet-index) always produces the
// same action regardless of how sends interleave across channels —
// which is what makes fault tests reproducible.
//
// Plan grammar (';'-separated items, see docs/ROBUSTNESS.md):
//   seed=<u64>
//   <chan>.corrupt=<prob>      chan in {data, ack, control}
//   <chan>.drop=<prob>
//   <chan>.dup=<prob>
//   <chan>.blackhole=<start>+<count>   drop packets [start, start+count)
//   crash=<n>                  endpoint dies after n data-channel packets
// Example: "seed=42;data.corrupt=0.01;ack.blackhole=8+16;crash=3000"
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.h"

namespace fobs::net {

enum class FaultChannel : std::uint8_t { kData = 0, kAck = 1, kControl = 2 };
inline constexpr std::size_t kFaultChannelCount = 3;

[[nodiscard]] const char* to_string(FaultChannel channel);

/// What the injector decided for one packet on one channel.
enum class FaultAction : std::uint8_t { kPass, kDrop, kCorrupt, kDuplicate };

/// Per-channel fault schedule. Probabilities are per packet and
/// mutually exclusive (corrupt is checked first, then drop, then dup).
struct ChannelFaults {
  double corrupt = 0.0;
  double drop = 0.0;
  double duplicate = 0.0;
  /// Packet-index blackhole: packets [blackhole_start,
  /// blackhole_start + blackhole_count) on this channel are dropped
  /// unconditionally. Negative start disables the window.
  std::int64_t blackhole_start = -1;
  std::int64_t blackhole_count = 0;

  [[nodiscard]] bool empty() const {
    return corrupt == 0.0 && drop == 0.0 && duplicate == 0.0 && blackhole_start < 0;
  }
};

struct FaultPlan {
  std::uint64_t seed = 1;
  ChannelFaults data;
  ChannelFaults ack;
  ChannelFaults control;
  /// The endpoint applying this plan "crashes" (abandons the transfer
  /// without cleanup) after this many data-channel packets. -1 = never.
  std::int64_t crash_at_packet = -1;

  [[nodiscard]] bool empty() const {
    return data.empty() && ack.empty() && control.empty() && crash_at_packet < 0;
  }

  [[nodiscard]] const ChannelFaults& channel(FaultChannel ch) const {
    switch (ch) {
      case FaultChannel::kData: return data;
      case FaultChannel::kAck: return ack;
      case FaultChannel::kControl: return control;
    }
    return data;
  }

  /// Parses the plan grammar above. Returns nullopt and fills `error`
  /// (when non-null) on malformed input. The empty string parses to an
  /// empty plan.
  static std::optional<FaultPlan> parse(std::string_view spec, std::string* error = nullptr);

  /// Round-trips through parse(): to_string() of a parsed plan parses
  /// back to an equivalent plan.
  [[nodiscard]] std::string to_string() const;
};

/// Per-channel injection counters (how much damage was actually done).
struct FaultStats {
  std::int64_t seen = 0;
  std::int64_t dropped = 0;     ///< random drops + blackholed
  std::int64_t corrupted = 0;
  std::int64_t duplicated = 0;
};

/// Stateful executor of one FaultPlan. One instance per transfer; each
/// channel keeps its own packet counter and RNG stream.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Decides the fate of the next packet on `channel` and advances that
  /// channel's schedule.
  FaultAction next(FaultChannel channel);

  /// True once the data-channel packet counter has reached the plan's
  /// crash point (the caller abandons the transfer when it sees this).
  [[nodiscard]] bool crash_due() const {
    return plan_.crash_at_packet >= 0 &&
           stats_[static_cast<std::size_t>(FaultChannel::kData)].seen >=
               plan_.crash_at_packet;
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats(FaultChannel channel) const {
    return stats_[static_cast<std::size_t>(channel)];
  }
  [[nodiscard]] std::int64_t total_injected() const;

 private:
  FaultPlan plan_;
  std::array<fobs::util::Rng, kFaultChannelCount> rngs_;
  std::array<FaultStats, kFaultChannelCount> stats_{};
};

}  // namespace fobs::net
