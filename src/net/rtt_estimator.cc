#include "net/rtt_estimator.h"

#include <algorithm>

namespace fobs::net {

RttEstimator::RttEstimator(Config config)
    : config_(config), base_rto_(config.initial_rto) {}

void RttEstimator::add_sample(Duration rtt) {
  if (rtt < Duration::zero()) rtt = Duration::zero();
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    const Duration err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
    rttvar_ = rttvar_ * (1.0 - config_.beta) + err * config_.beta;
    srtt_ = srtt_ * (1.0 - config_.alpha) + rtt * config_.alpha;
  }
  base_rto_ = srtt_ + std::max(Duration::milliseconds(1), rttvar_ * 4.0);
  base_rto_ = std::clamp(base_rto_, config_.min_rto, config_.max_rto);
  backoff_count_ = 0;
}

Duration RttEstimator::rto() const {
  Duration rto = base_rto_;
  for (int i = 0; i < backoff_count_; ++i) {
    rto = rto * 2;
    if (rto >= config_.max_rto) return config_.max_rto;
  }
  return std::min(rto, config_.max_rto);
}

void RttEstimator::backoff() {
  if (backoff_count_ < 16) ++backoff_count_;
}

}  // namespace fobs::net
