// Jacobson/Karels round-trip time estimation with Karn's algorithm and
// exponential RTO backoff (RFC 6298 structure, classic constants).
#pragma once

#include "common/units.h"

namespace fobs::net {

using fobs::util::Duration;

class RttEstimator {
 public:
  struct Config {
    Duration initial_rto = Duration::seconds(1);
    Duration min_rto = Duration::milliseconds(200);
    Duration max_rto = Duration::seconds(60);
    double alpha = 1.0 / 8.0;  ///< SRTT gain
    double beta = 1.0 / 4.0;   ///< RTTVAR gain
  };

  RttEstimator() : RttEstimator(Config{}) {}
  explicit RttEstimator(Config config);

  /// Feeds one RTT sample from a segment that was *not* retransmitted
  /// (Karn's rule: callers must not sample retransmitted segments).
  void add_sample(Duration rtt);

  /// Current retransmission timeout, including any backoff.
  [[nodiscard]] Duration rto() const;

  /// Doubles the RTO (timer expiry). Sticky until the next valid sample.
  void backoff();
  /// Clears backoff (called on a valid new sample internally).
  [[nodiscard]] int backoff_count() const { return backoff_count_; }

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] Duration srtt() const { return srtt_; }
  [[nodiscard]] Duration rttvar() const { return rttvar_; }

 private:
  Config config_;
  bool has_sample_ = false;
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration base_rto_;
  int backoff_count_ = 0;
};

}  // namespace fobs::net
