#include "net/seq_range_set.h"

#include <algorithm>
#include <cassert>

namespace fobs::net {

SeqRangeSet::Seq SeqRangeSet::insert(Seq begin, Seq end) {
  assert(begin <= end);
  if (begin == end) return 0;

  Seq removed = 0;  // bytes covered by ranges merged away

  // Find the first range that could overlap: the one before `begin`.
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      // Overlaps/abuts the previous range; absorb it into the new one.
      begin = prev->first;
      end = std::max(end, prev->second);
      it = prev;
    }
  }

  // Merge all ranges starting within [begin, end].
  while (it != ranges_.end() && it->first <= end) {
    removed += it->second - it->first;
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }

  ranges_[begin] = end;
  const Seq added = (end - begin) - removed;
  covered_ += added;
  return added;
}

void SeqRangeSet::erase_below(Seq seq) {
  auto it = ranges_.begin();
  while (it != ranges_.end() && it->first < seq) {
    if (it->second <= seq) {
      covered_ -= it->second - it->first;
      it = ranges_.erase(it);
    } else {
      // Trim the front of this range.
      const Seq new_begin = seq;
      const Seq end = it->second;
      covered_ -= new_begin - it->first;
      ranges_.erase(it);
      ranges_[new_begin] = end;
      break;
    }
  }
}

bool SeqRangeSet::contains(Seq seq) const {
  auto it = ranges_.upper_bound(seq);
  if (it == ranges_.begin()) return false;
  --it;
  return seq >= it->first && seq < it->second;
}

bool SeqRangeSet::contains_range(Seq begin, Seq end) const {
  if (begin >= end) return true;
  auto it = ranges_.upper_bound(begin);
  if (it == ranges_.begin()) return false;
  --it;
  return begin >= it->first && end <= it->second;
}

std::optional<SeqRangeSet::Seq> SeqRangeSet::contiguous_end_from(Seq seq) const {
  auto it = ranges_.upper_bound(seq);
  if (it == ranges_.begin()) return std::nullopt;
  --it;
  if (seq < it->first || seq >= it->second) return std::nullopt;
  return it->second;
}

SeqRangeSet::Seq SeqRangeSet::first_missing(Seq from, Seq limit) const {
  Seq probe = from;
  while (probe < limit) {
    auto cov = contiguous_end_from(probe);
    if (!cov) return probe;
    probe = *cov;
  }
  return limit;
}

void SeqRangeSet::clear() {
  ranges_.clear();
  covered_ = 0;
}

}  // namespace fobs::net
