// Ordered set of disjoint half-open byte ranges [begin, end).
//
// Used by the TCP receiver for out-of-order reassembly and by the SACK
// sender scoreboard. Adjacent/overlapping inserts coalesce.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

namespace fobs::net {

class SeqRangeSet {
 public:
  using Seq = std::int64_t;

  struct Range {
    Seq begin = 0;
    Seq end = 0;
    [[nodiscard]] Seq length() const { return end - begin; }
    bool operator==(const Range&) const = default;
  };

  /// Inserts [begin, end), coalescing with neighbours.
  /// Returns the number of bytes newly covered.
  Seq insert(Seq begin, Seq end);

  /// Removes all coverage below `seq` (cumulative ACK advanced).
  void erase_below(Seq seq);

  [[nodiscard]] bool contains(Seq seq) const;
  /// True when [begin, end) is fully covered.
  [[nodiscard]] bool contains_range(Seq begin, Seq end) const;

  /// End of the range containing `seq`, if covered from exactly `seq`;
  /// i.e. the new cumulative frontier after in-order delivery.
  [[nodiscard]] std::optional<Seq> contiguous_end_from(Seq seq) const;

  /// First byte >= `from` NOT covered, given an upper bound `limit`
  /// (returns limit when everything below it is covered).
  [[nodiscard]] Seq first_missing(Seq from, Seq limit) const;

  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  [[nodiscard]] std::size_t range_count() const { return ranges_.size(); }
  [[nodiscard]] Seq covered_bytes() const { return covered_; }
  /// End of the highest range (0 when empty).
  [[nodiscard]] Seq max_end() const { return ranges_.empty() ? 0 : ranges_.rbegin()->second; }

  /// Iteration support (ascending by begin).
  [[nodiscard]] auto begin() const { return ranges_.begin(); }
  [[nodiscard]] auto end() const { return ranges_.end(); }

  void clear();

 private:
  // key = range begin, value = range end
  std::map<Seq, Seq> ranges_;
  Seq covered_ = 0;
};

}  // namespace fobs::net
