#include "net/tcp.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.h"

namespace fobs::net {

namespace {
constexpr std::int64_t kSackBlockWireBytes = 8;
constexpr Seq kMaxWindowNoScale = 65535;
}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

TcpConnection::TcpConnection(Host& host, TcpConfig config, PortId local_port)
    : host_(host),
      config_(config),
      local_port_(local_port == 0 ? host.allocate_port() : local_port),
      rtt_(config.rtt) {
  host_.bind(local_port_, this);
}

TcpConnection::~TcpConnection() {
  cancel_rtx_timer();
  if (delack_timer_ != fobs::sim::kInvalidEventId) sim().cancel(delack_timer_);
  if (syn_timer_ != fobs::sim::kInvalidEventId) sim().cancel(syn_timer_);
  host_.unbind(local_port_);
}

fobs::sim::Simulation& TcpConnection::sim() { return host_.network().sim(); }

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

void TcpConnection::connect(NodeId dst, PortId dst_port) {
  assert(state_ == TcpState::kClosed);
  peer_node_ = dst;
  peer_port_ = dst_port;
  state_ = TcpState::kSynSent;
  send_control(TcpSegment::kSyn);
  arm_syn_timer();
}

void TcpConnection::accept_syn(NodeId peer, PortId peer_port, const TcpSegment& syn) {
  assert(state_ == TcpState::kClosed);
  peer_node_ = peer;
  peer_port_ = peer_port;
  // Option negotiation: an option is on only when both sides offer it.
  use_window_scaling_ = config_.window_scaling && syn.wscale_offer >= 0;
  use_sack_ = config_.sack_enabled && syn.sack_permitted;
  state_ = TcpState::kSynReceived;
  send_control(TcpSegment::kSyn | TcpSegment::kAck);
  arm_syn_timer();
}

void TcpConnection::arm_syn_timer() {
  if (syn_timer_ != fobs::sim::kInvalidEventId) sim().cancel(syn_timer_);
  syn_timer_ = sim().schedule_in(config_.syn_retry_timeout, [this] {
    syn_timer_ = fobs::sim::kInvalidEventId;
    if (state_ != TcpState::kSynSent && state_ != TcpState::kSynReceived) return;
    if (++syn_retries_ > config_.max_syn_retries) {
      FOBS_WARN("tcp", "handshake gave up after retries");
      state_ = TcpState::kClosed;
      return;
    }
    send_control(state_ == TcpState::kSynSent ? TcpSegment::kSyn
                                              : (TcpSegment::kSyn | TcpSegment::kAck));
    arm_syn_timer();
  });
}

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

void TcpConnection::offer_bytes(Seq n) {
  assert(n >= 0);
  app_limit_ += n;
  pump_send();
}

void TcpConnection::send_message(Seq bytes, std::any payload) {
  assert(bytes > 0);
  const Seq end = app_limit_ + bytes;
  outgoing_messages_[end] = std::make_shared<const std::any>(std::move(payload));
  offer_bytes(bytes);
}

void TcpConnection::close() {
  fin_pending_ = true;
  maybe_send_fin();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_) return;
  if (snd_una_ < app_limit_) return;  // wait until all data acked
  if (state_ != TcpState::kEstablished) return;
  fin_sent_ = true;
  state_ = TcpState::kFinSent;
  send_control(TcpSegment::kFin | TcpSegment::kAck);
  arm_rtx_timer();
}

// ---------------------------------------------------------------------------
// Segment emission
// ---------------------------------------------------------------------------

Seq TcpConnection::advertised_window() const {
  // The receive buffer covers the sequence span [rcv_nxt, rcv_nxt+buf):
  // out-of-order data occupies slots up to its highest sequence, and the
  // holes below it stay reserved (so a retransmission that fills a hole
  // is always acceptable — computing this from the ooo byte *count*
  // would deadlock a full buffer on a missing segment).
  const Seq span = std::max(ooo_.max_end(), rcv_nxt_) - rcv_nxt_;
  Seq avail = config_.recv_buffer_bytes - span;
  if (avail < 0) avail = 0;
  if (!use_window_scaling_) return std::min(avail, kMaxWindowNoScale);
  return avail;
}

Seq TcpConnection::send_window() const {
  const auto cw = static_cast<Seq>(cwnd_);
  return std::min(cw, peer_wnd_);
}

void TcpConnection::emit_segment(TcpSegment seg, Seq payload_bytes) {
  Packet pkt;
  pkt.dst = peer_node_;
  pkt.dst_port = peer_port_;
  pkt.src_port = local_port_;
  pkt.size_bytes = payload_bytes + fobs::sim::kTcpIpOverheadBytes +
                   static_cast<std::int64_t>(seg.sack.size()) * kSackBlockWireBytes;
  pkt.payload = std::move(seg);
  host_.send(std::move(pkt));
  ++stats_.segments_sent;
}

void TcpConnection::send_control(std::uint32_t flags) {
  TcpSegment seg;
  seg.flags = flags;
  seg.ack = rcv_nxt_;
  seg.wnd = advertised_window();
  seg.seq = snd_nxt_;
  if (flags & TcpSegment::kSyn) {
    if (config_.window_scaling) {
      int shift = 0;
      while ((config_.recv_buffer_bytes >> shift) > kMaxWindowNoScale && shift < 14) ++shift;
      seg.wscale_offer = shift;
    }
    seg.sack_permitted = config_.sack_enabled;
  }
  emit_segment(std::move(seg), 0);
}

void TcpConnection::send_ack_now() {
  if (delack_timer_ != fobs::sim::kInvalidEventId) {
    sim().cancel(delack_timer_);
    delack_timer_ = fobs::sim::kInvalidEventId;
  }
  segs_since_ack_ = 0;
  TcpSegment seg;
  seg.flags = TcpSegment::kAck;
  seg.seq = snd_nxt_;
  seg.ack = rcv_nxt_;
  seg.wnd = advertised_window();
  if (use_sack_ && !ooo_.empty()) {
    // Rotate which blocks are reported so that, across successive ACKs,
    // the sender's scoreboard learns about *every* out-of-order range,
    // not only the lowest three (RFC 2018 achieves the same coverage by
    // leading with the most recent block).
    std::vector<SeqRangeSet::Range> blocks;
    blocks.reserve(ooo_.range_count());
    for (const auto& [b, e] : ooo_) {
      if (e <= rcv_nxt_) continue;
      blocks.push_back({std::max(b, rcv_nxt_), e});
    }
    if (!blocks.empty()) {
      const std::size_t n = blocks.size();
      const std::size_t take = std::min<std::size_t>(kMaxSackBlocks, n);
      if (sack_rotate_ >= n) sack_rotate_ = 0;
      for (std::size_t i = 0; i < take; ++i) {
        seg.sack.push_back(blocks[(sack_rotate_ + i) % n]);
      }
      sack_rotate_ = (sack_rotate_ + take) % n;
    }
  }
  ++stats_.acks_sent;
  emit_segment(std::move(seg), 0);
}

void TcpConnection::schedule_delayed_ack() {
  if (delack_timer_ != fobs::sim::kInvalidEventId) return;
  delack_timer_ = sim().schedule_in(config_.delayed_ack_timeout, [this] {
    delack_timer_ = fobs::sim::kInvalidEventId;
    send_ack_now();
  });
}

// ---------------------------------------------------------------------------
// Sending data
// ---------------------------------------------------------------------------

void TcpConnection::wait_writable() {
  if (waiting_writable_) return;
  waiting_writable_ = true;
  host_.notify_writable([this] {
    waiting_writable_ = false;
    // Resume whichever machinery applies *now* — the connection may
    // have entered or left recovery while the wait was pending, and a
    // callback that only resumed its original caller would strand the
    // connection with data to send and no timer armed.
    if (in_recovery_ && use_sack_) pump_recovery();
    pump_send();
  });
}

void TcpConnection::pump_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinSent) return;
  while (snd_nxt_ < app_limit_) {
    Seq wnd_edge;
    if (snd_nxt_ < snd_max_) {
      // Resending data the receiver already reserved window space for
      // (post-RTO go-back-N): only cwnd limits it — a zero advertised
      // window must not block repairing the hole that would reopen it.
      wnd_edge = std::min(
          snd_max_, snd_una_ + std::max<Seq>(static_cast<Seq>(cwnd_), config_.mss));
    } else {
      wnd_edge = snd_una_ + send_window();
    }
    if (snd_nxt_ >= wnd_edge) {
      // Window closed. If nothing is in flight we must not deadlock:
      // retry after the RTO (a crude persist timer).
      if (flight_size() == 0 && send_window() == 0) {
        sim().schedule_in(rtt_.rto(), [this] { pump_send(); });
      }
      break;
    }
    const Seq len = std::min({config_.mss, app_limit_ - snd_nxt_, wnd_edge - snd_nxt_});
    const std::int64_t wire = len + fobs::sim::kTcpIpOverheadBytes;
    if (!host_.can_send(wire)) {
      wait_writable();
      break;
    }
    send_data_segment(snd_nxt_, len, /*is_retransmission=*/false);
    snd_nxt_ += len;
  }
  if (flight_size() > 0 && rtx_timer_ == fobs::sim::kInvalidEventId) arm_rtx_timer();
  maybe_send_fin();
}

void TcpConnection::send_data_segment(Seq seq, Seq len, bool is_retransmission) {
  assert(len > 0);
  snd_max_ = std::max(snd_max_, seq + len);
  TcpSegment seg;
  seg.flags = TcpSegment::kAck;
  seg.seq = seq;
  seg.payload_bytes = len;
  seg.ack = rcv_nxt_;
  seg.wnd = advertised_window();
  // Attach application messages whose final byte rides in this segment.
  auto it = outgoing_messages_.upper_bound(seq);
  while (it != outgoing_messages_.end() && it->first <= seq + len) {
    seg.messages.push_back(TcpAppMessage{it->first, it->second});
    ++it;
  }
  if (is_retransmission) {
    ++stats_.retransmissions;
    // Karn: a retransmission overlapping the timed segment poisons the
    // outstanding RTT sample.
    if (sample_pending_ && seq < sample_seq_end_ && seq + len > sample_seq_begin_) {
      sample_pending_ = false;
    }
  } else if (!sample_pending_) {
    sample_pending_ = true;
    sample_seq_begin_ = seq;
    sample_seq_end_ = seq + len;
    sample_sent_at_ = sim().now();
  }
  ++stats_.data_segments_sent;
  stats_.bytes_sent += len;
  emit_segment(std::move(seg), len);
}

std::optional<Seq> TcpConnection::next_retransmit_seq() const {
  if (!use_sack_) return snd_una_;
  const Seq hole = sacked_.first_missing(snd_una_, snd_nxt_);
  if (hole >= snd_nxt_) return std::nullopt;  // everything sacked
  return hole;
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void TcpConnection::arm_rtx_timer() {
  cancel_rtx_timer();
  rtx_timer_ = sim().schedule_in(rtt_.rto(), [this] {
    rtx_timer_ = fobs::sim::kInvalidEventId;
    on_rto();
  });
}

void TcpConnection::cancel_rtx_timer() {
  if (rtx_timer_ != fobs::sim::kInvalidEventId) {
    sim().cancel(rtx_timer_);
    rtx_timer_ = fobs::sim::kInvalidEventId;
  }
}

void TcpConnection::on_rto() {
  if (flight_size() == 0 && !(fin_sent_ && !fin_acked_)) return;
  ++stats_.timeouts;
  rtt_.backoff();
  sample_pending_ = false;
  const Seq flight = flight_size();
  ssthresh_ = std::max(static_cast<double>(flight) / 2.0,
                       2.0 * static_cast<double>(config_.mss));
  cwnd_ = static_cast<double>(config_.mss);
  dup_acks_ = 0;
  in_recovery_ = false;
  recovery_credit_ = 0;
  sacked_.clear();
  if (fin_sent_ && !fin_acked_ && flight == 0) {
    send_control(TcpSegment::kFin | TcpSegment::kAck);
  } else {
    // Go-back-N from the first unacked byte; the ack clock will regrow
    // cwnd through slow start.
    snd_nxt_ = snd_una_;
    pump_send();
  }
  arm_rtx_timer();
}

// ---------------------------------------------------------------------------
// Receiving
// ---------------------------------------------------------------------------

void TcpConnection::handle_packet(Packet packet) {
  if (peer_node_ != fobs::sim::kInvalidNodeId && packet.src != peer_node_) return;
  const auto* seg = std::any_cast<TcpSegment>(&packet.payload);
  if (seg == nullptr) return;
  // Client side: adopt the server's ephemeral data port from SYN-ACK.
  if (state_ == TcpState::kSynSent && (seg->flags & TcpSegment::kSyn) &&
      (seg->flags & TcpSegment::kAck)) {
    peer_port_ = packet.src_port;
  }
  on_segment(*seg);
}

void TcpConnection::on_segment(const TcpSegment& seg) {
  if (state_ == TcpState::kSynSent) {
    if ((seg.flags & TcpSegment::kSyn) && (seg.flags & TcpSegment::kAck)) {
      use_window_scaling_ = config_.window_scaling && seg.wscale_offer >= 0;
      use_sack_ = config_.sack_enabled && seg.sack_permitted;
      if (syn_timer_ != fobs::sim::kInvalidEventId) {
        sim().cancel(syn_timer_);
        syn_timer_ = fobs::sim::kInvalidEventId;
      }
      state_ = TcpState::kEstablished;
      cwnd_ = static_cast<double>(config_.initial_cwnd_segments * config_.mss);
      ssthresh_ = 1e18;
      peer_wnd_ = seg.wnd;
      send_ack_now();
      if (on_connected_) on_connected_();
      pump_send();
    }
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    if ((seg.flags & TcpSegment::kAck) && !(seg.flags & TcpSegment::kSyn)) {
      if (syn_timer_ != fobs::sim::kInvalidEventId) {
        sim().cancel(syn_timer_);
        syn_timer_ = fobs::sim::kInvalidEventId;
      }
      state_ = TcpState::kEstablished;
      cwnd_ = static_cast<double>(config_.initial_cwnd_segments * config_.mss);
      ssthresh_ = 1e18;
      peer_wnd_ = seg.wnd;
      if (on_connected_) on_connected_();
      // fall through: the establishing segment may carry data/ack info
    } else {
      return;  // e.g. duplicate SYN — SYN-ACK retransmit timer handles it
    }
  }
  if (state_ == TcpState::kClosed) return;

  if (seg.flags & TcpSegment::kFinAck) {
    if (fin_sent_ && !fin_acked_) {
      fin_acked_ = true;
      state_ = TcpState::kDone;
      cancel_rtx_timer();
    }
    return;
  }
  if (seg.flags & TcpSegment::kFin) {
    // Ack the FIN unconditionally; deliver the close upcall once.
    TcpSegment ack;
    ack.flags = TcpSegment::kFinAck;
    ack.ack = rcv_nxt_;
    ack.wnd = advertised_window();
    emit_segment(std::move(ack), 0);
    if (!peer_fin_seen_) {
      peer_fin_seen_ = true;
      if (on_peer_closed_) on_peer_closed_();
    }
    return;
  }

  if (seg.payload_bytes > 0) on_data(seg);
  if (seg.flags & TcpSegment::kAck) on_ack(seg);
}

void TcpConnection::on_data(const TcpSegment& seg) {
  const Seq b = seg.seq;
  const Seq e = seg.seq + seg.payload_bytes;
  // Stash any application messages not yet delivered; duplicate stashes
  // from retransmissions overwrite harmlessly.
  for (const auto& msg : seg.messages) {
    if (msg.end_offset > delivered_msg_end_) {
      incoming_messages_[msg.end_offset] = msg.payload;
    }
  }
  if (e <= rcv_nxt_) {
    send_ack_now();  // stale retransmission; re-ack immediately
    return;
  }
  const bool in_order = b <= rcv_nxt_;
  ooo_.insert(std::max(b, rcv_nxt_), e);
  if (in_order) {
    const auto frontier = ooo_.contiguous_end_from(rcv_nxt_);
    assert(frontier.has_value());
    rcv_nxt_ = *frontier;
    ooo_.erase_below(rcv_nxt_);
    // Deliver in-order application messages.
    auto it = incoming_messages_.begin();
    while (it != incoming_messages_.end() && it->first <= rcv_nxt_) {
      if (on_message_) on_message_(*it->second);
      delivered_msg_end_ = it->first;
      it = incoming_messages_.erase(it);
    }
    if (on_delivered_) on_delivered_(rcv_nxt_);
    ++segs_since_ack_;
    if (segs_since_ack_ >= config_.delayed_ack_every || !ooo_.empty()) {
      send_ack_now();
    } else {
      schedule_delayed_ack();
    }
  } else {
    // Out of order: immediate duplicate ack (fast-retransmit trigger).
    send_ack_now();
  }
}

void TcpConnection::on_ack(const TcpSegment& seg) {
  peer_wnd_ = seg.wnd;
  if (use_sack_) {
    for (const auto& blk : seg.sack) {
      if (blk.end > snd_una_) sacked_.insert(std::max(blk.begin, snd_una_), blk.end);
    }
  }

  if (seg.ack > snd_una_) {
    const Seq newly = seg.ack - snd_una_;
    // RTT sample (Karn-safe: invalidated on retransmit overlap).
    if (sample_pending_ && seg.ack >= sample_seq_end_) {
      rtt_.add_sample(sim().now() - sample_sent_at_);
      sample_pending_ = false;
    }
    snd_una_ = seg.ack;
    // After an RTO rollback an ack for pre-rollback data can overtake
    // snd_nxt; sending below snd_una would be pure waste (and a stall,
    // since nothing re-triggers the pump).
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    sacked_.erase_below(snd_una_);
    // Drop fully-acked outgoing messages.
    auto it = outgoing_messages_.begin();
    while (it != outgoing_messages_.end() && it->first <= snd_una_) {
      it = outgoing_messages_.erase(it);
    }

    if (in_recovery_) {
      if (seg.ack >= recover_) {
        // Full ack: leave recovery, deflate to ssthresh.
        in_recovery_ = false;
        dup_acks_ = 0;
        recovery_credit_ = 0;
        cwnd_ = ssthresh_;
      } else if (use_sack_) {
        // SACK recovery: the partial ack means segments left the
        // network; convert them into send credit and fill more holes.
        recovery_rtx_hint_ = std::max(recovery_rtx_hint_, snd_una_);
        recovery_credit_ += newly;
        pump_recovery();
        arm_rtx_timer();
      } else if (config_.newreno) {
        // Partial ack: the next hole is also lost; retransmit it and
        // deflate by the amount acked (NewReno).
        const auto seq = next_retransmit_seq();
        if (seq && *seq < snd_nxt_) {
          const Seq len = std::min(config_.mss, snd_nxt_ - *seq);
          send_data_segment(*seq, len, /*is_retransmission=*/true);
        }
        cwnd_ = std::max(cwnd_ - static_cast<double>(newly) + config_.mss,
                         static_cast<double>(config_.mss));
        arm_rtx_timer();
      } else {
        // Plain Reno: first new ack terminates recovery.
        in_recovery_ = false;
        dup_acks_ = 0;
        cwnd_ = ssthresh_;
      }
    } else {
      dup_acks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(std::min(newly, config_.mss));  // slow start
      } else {
        cwnd_ += static_cast<double>(config_.mss) * static_cast<double>(config_.mss) / cwnd_;
      }
    }

    if (flight_size() > 0 || (fin_sent_ && !fin_acked_)) {
      arm_rtx_timer();
    } else {
      cancel_rtx_timer();
    }

    if (snd_una_ >= app_limit_ && app_limit_ > 0 && !send_complete_notified_) {
      send_complete_notified_ = true;
      if (on_send_complete_) on_send_complete_();
    }
    pump_send();
    return;
  }

  // Duplicate ack?
  if (seg.ack == snd_una_ && flight_size() > 0 && seg.payload_bytes == 0) {
    ++stats_.dup_acks_received;
    handle_dupack();
  }
}

void TcpConnection::handle_dupack() {
  ++dup_acks_;
  if (in_recovery_) {
    if (use_sack_) {
      // Each dup ack means one segment left the network: earn one MSS
      // of credit and keep repairing holes.
      recovery_credit_ += config_.mss;
      pump_recovery();
    } else {
      // Reno/NewReno inflation: the window slides open for new data.
      cwnd_ += static_cast<double>(config_.mss);
      pump_send();
    }
    return;
  }
  if (dup_acks_ >= config_.dupack_threshold) enter_fast_recovery();
}

void TcpConnection::enter_fast_recovery() {
  ++stats_.fast_retransmits;
  const Seq flight = flight_size();
  ssthresh_ = std::max(static_cast<double>(flight) / 2.0,
                       2.0 * static_cast<double>(config_.mss));
  if (!config_.fast_recovery) {
    // Tahoe: retransmit and restart from slow start; no recovery state.
    const Seq len = std::min(config_.mss, snd_nxt_ - snd_una_);
    if (len > 0) send_data_segment(snd_una_, len, /*is_retransmission=*/true);
    cwnd_ = static_cast<double>(config_.mss);
    dup_acks_ = 0;
    arm_rtx_timer();
    return;
  }
  recover_ = snd_nxt_;
  in_recovery_ = true;
  recovery_rtx_hint_ = snd_una_;
  if (use_sack_) {
    recovery_credit_ = 3 * config_.mss;
    pump_recovery();
  } else {
    const Seq len = std::min(config_.mss, snd_nxt_ - snd_una_);
    if (len > 0) send_data_segment(snd_una_, len, /*is_retransmission=*/true);
    cwnd_ = ssthresh_ + 3.0 * static_cast<double>(config_.mss);
  }
  arm_rtx_timer();
}

void TcpConnection::pump_recovery() {
  // Credit-based loss repair (in the spirit of RFC 3517 / rate halving):
  // every signal that a segment left the network (dup ack, partial ack,
  // new SACK information) grants credit; credit is spent on the first
  // unsacked hole above `recovery_rtx_hint_`, falling back to new data
  // when every hole has been retransmitted once this recovery.
  while (in_recovery_ && recovery_credit_ >= config_.mss) {
    Seq seq = sacked_.first_missing(std::max(recovery_rtx_hint_, snd_una_), snd_nxt_);
    bool retransmission = true;
    // IsLost heuristic (RFC 3517): only treat the hole as lost when at
    // least dupack_threshold segments above it have been SACKed;
    // otherwise the "hole" is just data still in flight.
    if (seq < snd_nxt_ &&
        sacked_.max_end() < seq + (config_.dupack_threshold + 1) * config_.mss) {
      seq = snd_nxt_;
    }
    if (seq >= snd_nxt_) {
      // No hole left to retransmit: keep the ACK clock running with new
      // data, if the application has any.
      if (snd_nxt_ >= app_limit_) break;
      seq = snd_nxt_;
      retransmission = false;
    }
    const Seq limit = retransmission ? snd_nxt_ : app_limit_;
    const Seq len = std::min(config_.mss, limit - seq);
    if (len <= 0) break;
    const std::int64_t wire = len + fobs::sim::kTcpIpOverheadBytes;
    if (!host_.can_send(wire)) {
      wait_writable();
      return;
    }
    send_data_segment(seq, len, retransmission);
    recovery_credit_ -= len;
    if (retransmission) {
      recovery_rtx_hint_ = seq + len;
    } else {
      snd_nxt_ += len;
    }
  }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(Host& host, PortId port, TcpConfig config, AcceptCallback on_accept)
    : host_(host), port_(port), config_(config), on_accept_(std::move(on_accept)) {
  host_.bind(port_, this);
}

TcpListener::~TcpListener() { host_.unbind(port_); }

void TcpListener::handle_packet(Packet packet) {
  const auto* seg = std::any_cast<TcpSegment>(&packet.payload);
  if (seg == nullptr) return;
  if (!(seg->flags & TcpSegment::kSyn) || (seg->flags & TcpSegment::kAck)) return;
  auto conn = std::make_unique<TcpConnection>(host_, config_);
  conn->accept_syn(packet.src, packet.src_port, *seg);
  if (on_accept_) on_accept_(std::move(conn));
}

}  // namespace fobs::net
