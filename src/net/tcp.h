// Simulated TCP with Reno/NewReno congestion control, optional SACK,
// and optional window scaling ("Large Window Extensions", RFC 1323).
//
// Fidelity is scoped to the phenomena the paper measures:
//  * slow start / congestion avoidance / fast retransmit / fast recovery
//  * retransmission timeout with Karn's rule and exponential backoff
//  * delayed cumulative ACKs, dup-ACK counting
//  * receiver window advertisement capped at 64 KiB unless both ends
//    negotiate window scaling — the single biggest factor on the paper's
//    long-haul path (Table 1)
//  * SACK blocks and SACK-assisted retransmission
//
// Deliberate simplifications (documented in DESIGN.md): SYN/FIN are
// control messages outside the data sequence space, there is no
// timestamps option or PAWS, and payload bytes are abstract counts
// (application messages ride along explicitly via send_message).
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "host/host.h"
#include "net/rtt_estimator.h"
#include "net/seq_range_set.h"
#include "sim/packet.h"
#include "sim/simulation.h"

namespace fobs::net {

using fobs::host::Host;
using fobs::sim::EventId;
using fobs::sim::NodeId;
using fobs::sim::Packet;
using fobs::sim::PortId;
using fobs::util::Duration;
using fobs::util::TimePoint;

using Seq = std::int64_t;

/// Application message riding on the byte stream (see send_message).
struct TcpAppMessage {
  Seq end_offset = 0;  ///< stream offset just past the message's last byte
  std::shared_ptr<const std::any> payload;
};

/// The simulated wire format.
struct TcpSegment {
  enum Flag : std::uint32_t {
    kSyn = 1u << 0,
    kAck = 1u << 1,
    kFin = 1u << 2,
    kFinAck = 1u << 3,
  };

  std::uint32_t flags = 0;
  Seq seq = 0;            ///< first payload byte (data segments)
  Seq payload_bytes = 0;  ///< data bytes carried
  Seq ack = 0;            ///< cumulative ack (next expected byte)
  Seq wnd = 0;            ///< advertised receive window, bytes (descaled)
  int wscale_offer = -1;  ///< on SYN/SYN-ACK: window-scale shift, -1 = none
  bool sack_permitted = false;  ///< on SYN/SYN-ACK
  std::vector<SeqRangeSet::Range> sack;  ///< up to kMaxSackBlocks
  std::vector<TcpAppMessage> messages;   ///< app messages ending in this segment
};

inline constexpr int kMaxSackBlocks = 3;

struct TcpConfig {
  std::int64_t mss = 1460;
  std::int64_t recv_buffer_bytes = 1 << 20;
  /// Large Window Extensions: offer/accept window scaling. Without it the
  /// advertised window is capped at 65535 bytes.
  bool window_scaling = true;
  bool sack_enabled = true;
  /// NewReno partial-ack handling (vs plain Reno) during fast recovery.
  bool newreno = true;
  /// Fast recovery (Reno-family). When false the stack behaves like
  /// Tahoe: three dup acks retransmit and collapse cwnd to one segment.
  bool fast_recovery = true;
  int initial_cwnd_segments = 2;
  int dupack_threshold = 3;
  /// Delayed-ACK: ack every `delayed_ack_every` full segments or after
  /// the timeout, whichever first.
  int delayed_ack_every = 2;
  Duration delayed_ack_timeout = Duration::milliseconds(100);
  Duration syn_retry_timeout = Duration::seconds(1);
  int max_syn_retries = 5;
  RttEstimator::Config rtt;
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t data_segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_received = 0;
  std::uint64_t acks_sent = 0;
  std::int64_t bytes_sent = 0;  ///< data bytes incl. retransmits
};

enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinSent,
  kDone,  ///< FIN acked or peer closed
};

/// One endpoint of a simulated TCP connection.
class TcpConnection final : public fobs::host::PortHandler {
 public:
  /// Client-side constructor: binds an ephemeral (or given) port.
  /// Call `connect` to start the handshake.
  TcpConnection(Host& host, TcpConfig config, PortId local_port = 0);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Starts the three-way handshake toward a TcpListener.
  void connect(NodeId dst, PortId dst_port);

  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] bool established() const { return state_ == TcpState::kEstablished || state_ == TcpState::kFinSent || state_ == TcpState::kDone; }
  [[nodiscard]] PortId local_port() const { return local_port_; }
  [[nodiscard]] NodeId peer_node() const { return peer_node_; }
  [[nodiscard]] Host& host() { return host_; }

  /// Appends `n` abstract bytes to the send stream.
  void offer_bytes(Seq n);
  /// Appends a framed application message of `bytes` stream bytes; the
  /// payload is delivered in order at the peer via on_message.
  void send_message(Seq bytes, std::any payload);
  /// Sends FIN once all offered bytes are acked (deferred automatically).
  void close();

  [[nodiscard]] Seq offered_bytes() const { return app_limit_; }
  [[nodiscard]] Seq acked_bytes() const { return snd_una_; }
  [[nodiscard]] Seq delivered_bytes() const { return rcv_nxt_; }
  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] Seq peer_window_bytes() const { return peer_wnd_; }
  [[nodiscard]] bool send_complete() const {
    return app_limit_ > 0 && snd_una_ >= app_limit_;
  }

  void set_on_connected(std::function<void()> cb) { on_connected_ = std::move(cb); }
  /// Called with the cumulative in-order byte count at the receiver.
  void set_on_delivered(std::function<void(Seq)> cb) { on_delivered_ = std::move(cb); }
  /// Called once per in-order application message.
  void set_on_message(std::function<void(const std::any&)> cb) { on_message_ = std::move(cb); }
  void set_on_send_complete(std::function<void()> cb) { on_send_complete_ = std::move(cb); }
  void set_on_peer_closed(std::function<void()> cb) { on_peer_closed_ = std::move(cb); }

  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  [[nodiscard]] const TcpConfig& config() const { return config_; }

  // Debug/diagnostic accessors (stable state inspection for tests).
  [[nodiscard]] Seq snd_nxt() const { return snd_nxt_; }
  [[nodiscard]] bool in_recovery() const { return in_recovery_; }
  [[nodiscard]] bool rtx_timer_armed() const { return rtx_timer_ != fobs::sim::kInvalidEventId; }
  [[nodiscard]] bool waiting_writable() const { return waiting_writable_; }
  [[nodiscard]] Seq rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::size_t ooo_ranges() const { return ooo_.range_count(); }

  void handle_packet(Packet packet) override;

 private:
  friend class TcpListener;

  /// Server-side: adopt a SYN received by a listener.
  void accept_syn(NodeId peer, PortId peer_port, const TcpSegment& syn);

  void on_segment(const TcpSegment& seg);
  void on_ack(const TcpSegment& seg);
  void on_data(const TcpSegment& seg);
  void handle_dupack();
  void enter_fast_recovery();
  /// SACK-based recovery transmission: spends `recovery_credit_` on
  /// retransmitting unsacked holes (then new data), which repairs many
  /// losses per RTT instead of NewReno's one-per-partial-ack.
  void pump_recovery();
  void on_rto();

  /// Sends as much new data as windows allow; schedules a wakeup when
  /// blocked on the NIC buffer.
  void pump_send();
  /// One-shot wait for NIC writability that resumes the right pump.
  void wait_writable();
  void send_data_segment(Seq seq, Seq len, bool is_retransmission);
  /// Picks the best segment to retransmit during recovery (first
  /// unsacked hole with SACK, snd_una without).
  [[nodiscard]] std::optional<Seq> next_retransmit_seq() const;
  void maybe_send_fin();

  void send_control(std::uint32_t flags);
  void send_ack_now();
  void schedule_delayed_ack();
  void emit_segment(TcpSegment seg, Seq payload_bytes);
  [[nodiscard]] Seq advertised_window() const;
  [[nodiscard]] Seq send_window() const;
  [[nodiscard]] Seq flight_size() const { return snd_nxt_ - snd_una_; }

  void arm_rtx_timer();
  void cancel_rtx_timer();
  void arm_syn_timer();

  [[nodiscard]] fobs::sim::Simulation& sim();

  Host& host_;
  TcpConfig config_;
  PortId local_port_ = 0;
  NodeId peer_node_ = fobs::sim::kInvalidNodeId;
  PortId peer_port_ = 0;
  TcpState state_ = TcpState::kClosed;

  // --- negotiated options ---
  bool use_window_scaling_ = false;
  bool use_sack_ = false;
  int syn_retries_ = 0;
  EventId syn_timer_ = fobs::sim::kInvalidEventId;

  // --- sender state ---
  Seq app_limit_ = 0;  ///< total bytes the app has offered
  Seq snd_una_ = 0;
  Seq snd_nxt_ = 0;
  Seq snd_max_ = 0;  ///< highest byte ever sent (snd_nxt rolls back on RTO)
  double cwnd_ = 0;
  double ssthresh_ = 0;
  Seq peer_wnd_ = 65535;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  Seq recover_ = 0;  ///< NewReno: highest seq sent when loss detected
  Seq recovery_rtx_hint_ = 0;  ///< SACK: next hole to consider resending
  Seq recovery_credit_ = 0;    ///< bytes we may (re)send during recovery
  SeqRangeSet sacked_;
  RttEstimator rtt_;
  EventId rtx_timer_ = fobs::sim::kInvalidEventId;
  // One outstanding RTT sample (Karn).
  bool sample_pending_ = false;
  Seq sample_seq_begin_ = 0;
  Seq sample_seq_end_ = 0;
  TimePoint sample_sent_at_;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  bool send_complete_notified_ = false;
  bool waiting_writable_ = false;
  std::map<Seq, std::shared_ptr<const std::any>> outgoing_messages_;  ///< by end offset

  // --- receiver state ---
  Seq rcv_nxt_ = 0;
  SeqRangeSet ooo_;
  std::size_t sack_rotate_ = 0;  ///< rotates reported SACK blocks
  int segs_since_ack_ = 0;
  EventId delack_timer_ = fobs::sim::kInvalidEventId;
  std::map<Seq, std::shared_ptr<const std::any>> incoming_messages_;  ///< by end offset
  Seq delivered_msg_end_ = 0;  ///< end offset of the last delivered message
  bool peer_fin_seen_ = false;

  std::function<void()> on_connected_;
  std::function<void(Seq)> on_delivered_;
  std::function<void(const std::any&)> on_message_;
  std::function<void()> on_send_complete_;
  std::function<void()> on_peer_closed_;

  TcpStats stats_;
};

/// Passive endpoint: accepts SYNs on a well-known port and spawns a
/// server-side TcpConnection per client. The server connection answers
/// from its own ephemeral port; the client adopts that port from the
/// SYN-ACK (a simulator simplification of 4-tuple demux).
class TcpListener final : public fobs::host::PortHandler {
 public:
  using AcceptCallback = std::function<void(std::unique_ptr<TcpConnection>)>;

  TcpListener(Host& host, PortId port, TcpConfig config, AcceptCallback on_accept);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] PortId port() const { return port_; }

  void handle_packet(Packet packet) override;

 private:
  Host& host_;
  PortId port_;
  TcpConfig config_;
  AcceptCallback on_accept_;
};

}  // namespace fobs::net
