#include "net/udp.h"

#include <cassert>
#include <utility>

namespace fobs::net {

UdpEndpoint::UdpEndpoint(Host& host, PortId port, std::int64_t rx_buffer_bytes)
    : host_(host),
      port_(port == 0 ? host.allocate_port() : port),
      rx_capacity_bytes_(rx_buffer_bytes > 0 ? rx_buffer_bytes
                                             : host.config().default_rx_buffer_bytes) {
  host_.bind(port_, this);
}

UdpEndpoint::~UdpEndpoint() { host_.unbind(port_); }

bool UdpEndpoint::send_to(NodeId dst, PortId dst_port, std::int64_t payload_bytes,
                          std::any payload) {
  assert(payload_bytes >= 0);
  const std::int64_t wire = payload_bytes + fobs::sim::kUdpIpOverheadBytes;
  if (!host_.can_send(wire)) {
    ++stats_.send_would_block;
    return false;
  }
  Packet pkt;
  pkt.dst = dst;
  pkt.dst_port = dst_port;
  pkt.src_port = port_;
  pkt.size_bytes = wire;
  pkt.payload = std::move(payload);
  host_.send(std::move(pkt));
  ++stats_.datagrams_sent;
  stats_.bytes_sent += payload_bytes;
  return true;
}

bool UdpEndpoint::writable(std::int64_t payload_bytes) const {
  return host_.can_send(payload_bytes + fobs::sim::kUdpIpOverheadBytes);
}

std::optional<Packet> UdpEndpoint::try_recv() {
  if (rx_queue_.empty()) return std::nullopt;
  Packet pkt = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  rx_bytes_ -= pkt.size_bytes;
  return pkt;
}

void UdpEndpoint::handle_packet(Packet packet) {
  if (rx_bytes_ + packet.size_bytes > rx_capacity_bytes_) {
    ++stats_.rx_overflow_drops;
    return;
  }
  const bool was_empty = rx_queue_.empty();
  rx_bytes_ += packet.size_bytes;
  ++stats_.datagrams_received;
  stats_.bytes_received += packet.size_bytes - fobs::sim::kUdpIpOverheadBytes;
  rx_queue_.push_back(std::move(packet));
  if (was_empty && rx_notify_) {
    // One-shot: take the callback out before invoking so the handler can
    // re-arm without reentrancy surprises.
    auto cb = std::move(rx_notify_);
    rx_notify_ = nullptr;
    cb();
  }
}

}  // namespace fobs::net
