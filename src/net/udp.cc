#include "net/udp.h"

#include <cassert>
#include <utility>

namespace fobs::net {

UdpEndpoint::UdpEndpoint(Host& host, PortId port, std::int64_t rx_buffer_bytes)
    : host_(host),
      port_(port == 0 ? host.allocate_port() : port),
      rx_capacity_bytes_(rx_buffer_bytes > 0 ? rx_buffer_bytes
                                             : host.config().default_rx_buffer_bytes) {
  host_.bind(port_, this);
}

UdpEndpoint::~UdpEndpoint() { host_.unbind(port_); }

bool UdpEndpoint::send_to(NodeId dst, PortId dst_port, std::int64_t payload_bytes,
                          std::any payload) {
  SimDatagram datagram{dst, dst_port, payload_bytes, std::move(payload)};
  return send_batch({&datagram, 1}) == 1;
}

std::size_t UdpEndpoint::send_batch(std::span<SimDatagram> batch) {
  std::size_t sent = 0;
  for (SimDatagram& datagram : batch) {
    assert(datagram.payload_bytes >= 0);
    const std::int64_t wire = datagram.payload_bytes + fobs::sim::kUdpIpOverheadBytes;
    if (!host_.can_send(wire)) {
      ++stats_.send_would_block;
      break;
    }
    Packet pkt;
    pkt.dst = datagram.dst;
    pkt.dst_port = datagram.dst_port;
    pkt.src_port = port_;
    pkt.size_bytes = wire;
    pkt.payload = std::move(datagram.payload);
    host_.send(std::move(pkt));
    ++stats_.datagrams_sent;
    stats_.bytes_sent += datagram.payload_bytes;
    ++sent;
  }
  return sent;
}

bool UdpEndpoint::writable(std::int64_t payload_bytes) const {
  return host_.can_send(payload_bytes + fobs::sim::kUdpIpOverheadBytes);
}

std::optional<Packet> UdpEndpoint::try_recv() {
  Packet pkt;
  if (recv_batch({&pkt, 1}) == 0) return std::nullopt;
  return pkt;
}

std::size_t UdpEndpoint::recv_batch(std::span<Packet> out) {
  std::size_t n = 0;
  while (n < out.size() && !rx_queue_.empty()) {
    out[n] = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    rx_bytes_ -= out[n].size_bytes;
    ++n;
  }
  return n;
}

void UdpEndpoint::handle_packet(Packet packet) {
  if (rx_bytes_ + packet.size_bytes > rx_capacity_bytes_) {
    ++stats_.rx_overflow_drops;
    return;
  }
  const bool was_empty = rx_queue_.empty();
  rx_bytes_ += packet.size_bytes;
  ++stats_.datagrams_received;
  stats_.bytes_received += packet.size_bytes - fobs::sim::kUdpIpOverheadBytes;
  rx_queue_.push_back(std::move(packet));
  if (was_empty && rx_notify_) {
    // One-shot: take the callback out before invoking so the handler can
    // re-arm without reentrancy surprises.
    auto cb = std::move(rx_notify_);
    rx_notify_ = nullptr;
    cb();
  }
}

}  // namespace fobs::net
