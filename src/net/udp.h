// UDP-like datagram endpoint over the simulated network.
//
// Mirrors the sockets API surface the paper's implementation used
// (Winsock2 / BSD sockets in non-blocking mode):
//  * `send_to` returns false when the NIC/socket send buffer is full —
//    the caller then waits for writability, which is what the paper's
//    "select system call is used to ensure adequate buffer space" does.
//  * Received datagrams land in a byte-bounded socket buffer; when the
//    application is not draining it (e.g. a FOBS receiver busy building
//    an acknowledgement), arrivals overflow and are silently dropped —
//    the loss mechanism behind Figure 1.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>

#include "host/host.h"
#include "sim/packet.h"

namespace fobs::net {

using fobs::host::Host;
using fobs::sim::NodeId;
using fobs::sim::Packet;
using fobs::sim::PortId;

/// One outgoing datagram for UdpEndpoint::send_batch — the sim-side
/// analogue of the POSIX channel's DatagramView (the sim carries opaque
/// payload handles, not scatter-gather byte spans).
struct SimDatagram {
  NodeId dst = 0;
  PortId dst_port = 0;
  std::int64_t payload_bytes = 0;
  std::any payload;
};

struct UdpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t send_would_block = 0;
  std::uint64_t datagrams_received = 0;  ///< accepted into the buffer
  std::uint64_t rx_overflow_drops = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
};

class UdpEndpoint final : public fobs::host::PortHandler {
 public:
  /// Binds to `port` on `host` (0 picks an ephemeral port).
  /// `rx_buffer_bytes` of 0 uses the host default.
  UdpEndpoint(Host& host, PortId port = 0, std::int64_t rx_buffer_bytes = 0);
  ~UdpEndpoint() override;

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  [[nodiscard]] PortId port() const { return port_; }
  [[nodiscard]] Host& host() { return host_; }

  /// Sends one datagram of `payload_bytes` application bytes (wire size
  /// adds UDP/IP overhead). Returns false — like EWOULDBLOCK — when the
  /// send buffer (NIC queue) cannot take the datagram. Thin wrapper
  /// over send_batch().
  bool send_to(NodeId dst, PortId dst_port, std::int64_t payload_bytes, std::any payload);

  /// Batch send, matching the POSIX DatagramChannel surface so cores
  /// and drivers are written against one shape: sends datagrams in
  /// order until the NIC queue refuses one, and returns how many went
  /// out. Sent entries have their payloads moved from; the first
  /// refused entry (counted as one would-block) and everything after it
  /// are left intact for a retry.
  std::size_t send_batch(std::span<SimDatagram> batch);

  /// True when `send_to` for a datagram of this size would succeed.
  [[nodiscard]] bool writable(std::int64_t payload_bytes) const;

  /// Non-blocking receive; returns the oldest buffered datagram. Thin
  /// wrapper over recv_batch().
  std::optional<Packet> try_recv();

  /// Batch drain, matching the POSIX DatagramChannel surface: moves up
  /// to out.size() buffered datagrams (oldest first) into `out` and
  /// returns the count; 0 means the buffer is empty.
  std::size_t recv_batch(std::span<Packet> out);
  [[nodiscard]] bool has_data() const { return !rx_queue_.empty(); }
  [[nodiscard]] std::size_t buffered_datagrams() const { return rx_queue_.size(); }
  [[nodiscard]] std::int64_t buffered_bytes() const { return rx_bytes_; }

  /// One-shot callback on the arrival of a datagram into an empty
  /// buffer. Drivers use it to resume a poll loop without busy-waiting.
  void set_rx_notify(std::function<void()> cb) { rx_notify_ = std::move(cb); }

  void handle_packet(Packet packet) override;

  [[nodiscard]] const UdpStats& stats() const { return stats_; }

 private:
  Host& host_;
  PortId port_;
  std::int64_t rx_capacity_bytes_;
  std::deque<Packet> rx_queue_;
  std::int64_t rx_bytes_ = 0;
  std::function<void()> rx_notify_;
  UdpStats stats_;
};

}  // namespace fobs::net
