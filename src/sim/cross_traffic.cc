#include "sim/cross_traffic.h"

#include <cassert>

namespace fobs::sim {

namespace {
Duration gap_for(std::int64_t packet_bytes, DataRate rate) {
  assert(rate.bps() > 0.0);
  return fobs::util::transmission_time(fobs::util::DataSize::bytes(packet_bytes), rate);
}
}  // namespace

CrossTrafficSource::CrossTrafficSource(Simulation& sim, PacketSink& target, NodeId src,
                                       NodeId dst, std::int64_t packet_bytes, Rng rng)
    : sim_(sim), rng_(rng), target_(target), src_(src), dst_(dst), packet_bytes_(packet_bytes) {
  assert(packet_bytes_ > 0);
}

void CrossTrafficSource::start() {
  if (running_) return;
  running_ = true;
  sim_.schedule_in(next_gap(), [this] { emit_and_reschedule(); });
}

void CrossTrafficSource::emit_and_reschedule() {
  if (!running_) return;
  Packet pkt;
  pkt.uid = next_uid_++;
  pkt.src = src_;
  pkt.dst = dst_;
  pkt.size_bytes = packet_bytes_;
  target_.deliver(std::move(pkt));
  ++stats_.packets_sent;
  stats_.bytes_sent += packet_bytes_;
  sim_.schedule_in(next_gap(), [this] { emit_and_reschedule(); });
}

CbrSource::CbrSource(Simulation& sim, PacketSink& target, NodeId src, NodeId dst,
                     std::int64_t packet_bytes, DataRate rate, Rng rng)
    : CrossTrafficSource(sim, target, src, dst, packet_bytes, rng),
      gap_(gap_for(packet_bytes, rate)) {}

PoissonSource::PoissonSource(Simulation& sim, PacketSink& target, NodeId src, NodeId dst,
                             std::int64_t packet_bytes, DataRate rate, Rng rng)
    : CrossTrafficSource(sim, target, src, dst, packet_bytes, rng),
      mean_gap_(gap_for(packet_bytes, rate)) {}

OnOffSource::OnOffSource(Simulation& sim, PacketSink& target, NodeId src, NodeId dst,
                         std::int64_t packet_bytes, DataRate peak_rate, Duration mean_on,
                         Duration mean_off, Rng rng)
    : CrossTrafficSource(sim, target, src, dst, packet_bytes, rng),
      peak_gap_(gap_for(packet_bytes, peak_rate)),
      mean_on_(mean_on),
      mean_off_(mean_off) {}

Duration OnOffSource::next_gap() {
  if (in_burst_ && sim_.now() < burst_end_) return peak_gap_;
  // Burst over (or first call): draw an off period, then a new burst.
  const Duration off = rng_.exponential(mean_off_);
  const Duration on = rng_.exponential(mean_on_);
  burst_end_ = sim_.now() + off + on;
  in_burst_ = true;
  return off + peak_gap_;
}

}  // namespace fobs::sim
