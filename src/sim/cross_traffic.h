// Background (cross) traffic generators.
//
// The paper's long-haul and NCSA-CACR paths were shared Abilene routes
// whose contention is what collapses TCP and dents FOBS/PSockets. These
// sources inject packets addressed to a blackhole node into a chosen
// ingress (normally the bottleneck link), reproducing that contention
// with controllable intensity.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "sim/packet.h"
#include "sim/simulation.h"

namespace fobs::sim {

using fobs::util::DataRate;
using fobs::util::Rng;

struct CrossTrafficStats {
  std::uint64_t packets_sent = 0;
  std::int64_t bytes_sent = 0;
};

/// Base: emits fixed-size packets into `target` addressed to `dst`.
class CrossTrafficSource {
 public:
  CrossTrafficSource(Simulation& sim, PacketSink& target, NodeId src, NodeId dst,
                     std::int64_t packet_bytes, Rng rng);
  virtual ~CrossTrafficSource() = default;

  CrossTrafficSource(const CrossTrafficSource&) = delete;
  CrossTrafficSource& operator=(const CrossTrafficSource&) = delete;

  /// Begins emitting; idempotent.
  void start();
  /// Stops after any already-scheduled emission.
  void stop() { running_ = false; }
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] const CrossTrafficStats& stats() const { return stats_; }

 protected:
  /// Next inter-packet gap; subclasses define the process.
  virtual Duration next_gap() = 0;

  Simulation& sim_;
  Rng rng_;

 private:
  void emit_and_reschedule();

  PacketSink& target_;
  NodeId src_;
  NodeId dst_;
  std::int64_t packet_bytes_;
  bool running_ = false;
  CrossTrafficStats stats_;
  std::uint64_t next_uid_ = 1;
};

/// Constant bit rate: deterministic gaps sized so the average offered
/// load equals `rate`.
class CbrSource final : public CrossTrafficSource {
 public:
  CbrSource(Simulation& sim, PacketSink& target, NodeId src, NodeId dst,
            std::int64_t packet_bytes, DataRate rate, Rng rng);

 protected:
  Duration next_gap() override { return gap_; }

 private:
  Duration gap_;
};

/// Poisson arrivals with mean offered load `rate`.
class PoissonSource final : public CrossTrafficSource {
 public:
  PoissonSource(Simulation& sim, PacketSink& target, NodeId src, NodeId dst,
                std::int64_t packet_bytes, DataRate rate, Rng rng);

 protected:
  Duration next_gap() override { return rng_.exponential(mean_gap_); }

 private:
  Duration mean_gap_;
};

/// Exponential on/off source: bursts at `peak_rate` for ~mean_on, then
/// silent for ~mean_off. Aggregates of these look like real WAN
/// cross-traffic (bursty, heavy queues during bursts).
class OnOffSource final : public CrossTrafficSource {
 public:
  OnOffSource(Simulation& sim, PacketSink& target, NodeId src, NodeId dst,
              std::int64_t packet_bytes, DataRate peak_rate, Duration mean_on,
              Duration mean_off, Rng rng);

 protected:
  Duration next_gap() override;

 private:
  Duration peak_gap_;
  Duration mean_on_;
  Duration mean_off_;
  TimePoint burst_end_;
  bool in_burst_ = false;
};

}  // namespace fobs::sim
