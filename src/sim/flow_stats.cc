#include "sim/flow_stats.h"

#include <algorithm>
#include <deque>

namespace fobs::sim {

TimeSeriesProbe::TimeSeriesProbe(Simulation& sim, std::string name, Duration period,
                                 std::function<double()> probe)
    : sim_(sim), name_(std::move(name)), period_(period), probe_(std::move(probe)) {
  sim_.schedule_in(period_, [this] { tick(); });
}

void TimeSeriesProbe::tick() {
  if (!running_) return;
  samples_.push_back(Sample{sim_.now(), probe_()});
  sim_.schedule_in(period_, [this] { tick(); });
}

double TimeSeriesProbe::max() const {
  double best = 0.0;
  for (const auto& s : samples_) best = std::max(best, s.value);
  return best;
}

double TimeSeriesProbe::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.value;
  return sum / static_cast<double>(samples_.size());
}

void RateMeter::record(TimePoint now, std::int64_t bytes) {
  events_.emplace_back(now, bytes);
  window_bytes_ += bytes;
  total_ += bytes;
  evict(now);
}

void RateMeter::evict(TimePoint now) const {
  const TimePoint horizon = now - window_;
  std::size_t drop = 0;
  while (drop < events_.size() && events_[drop].first < horizon) {
    window_bytes_ -= events_[drop].second;
    ++drop;
  }
  if (drop > 0) events_.erase(events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(drop));
}

fobs::util::DataRate RateMeter::rate(TimePoint now) const {
  evict(now);
  if (window_ <= Duration::zero()) return fobs::util::DataRate::zero();
  return fobs::util::rate_of(fobs::util::DataSize::bytes(window_bytes_), window_);
}

}  // namespace fobs::sim
