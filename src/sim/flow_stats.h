// Time-series recorder for simulation quantities.
//
// Samples a user-supplied probe at a fixed period on the simulated
// clock; used to trace queue depths, rates, and cwnd evolution for the
// ablation benches and debugging.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/simulation.h"

namespace fobs::sim {

class TimeSeriesProbe {
 public:
  struct Sample {
    TimePoint when;
    double value = 0.0;
  };

  /// Starts sampling `probe()` every `period`, beginning one period
  /// from now. Sampling runs until the simulation ends or `stop()`.
  TimeSeriesProbe(Simulation& sim, std::string name, Duration period,
                  std::function<double()> probe);

  void stop() { running_ = false; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] double last() const { return samples_.empty() ? 0.0 : samples_.back().value; }
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

 private:
  void tick();

  Simulation& sim_;
  std::string name_;
  Duration period_;
  std::function<double()> probe_;
  bool running_ = true;
  std::vector<Sample> samples_;
};

/// Windowed rate meter: feed it byte counts, read back the rate over
/// the last `window` of simulated time.
class RateMeter {
 public:
  explicit RateMeter(Duration window = fobs::util::Duration::milliseconds(100))
      : window_(window) {}

  void record(TimePoint now, std::int64_t bytes);

  /// Average rate over [now - window, now].
  [[nodiscard]] fobs::util::DataRate rate(TimePoint now) const;
  [[nodiscard]] std::int64_t total_bytes() const { return total_; }

 private:
  void evict(TimePoint now) const;

  Duration window_;
  mutable std::vector<std::pair<TimePoint, std::int64_t>> events_;
  mutable std::int64_t window_bytes_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace fobs::sim
