#include "sim/link.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace fobs::sim {

Link::Link(Simulation& sim, LinkConfig config)
    : sim_(sim), config_(std::move(config)), loss_rng_(0) {
  assert(config_.rate.bps() > 0.0);
  assert(config_.queue_capacity_bytes > 0);
}

void Link::set_loss_model(std::unique_ptr<LossModel> model, fobs::util::Rng rng) {
  loss_ = std::move(model);
  loss_rng_ = rng;
}

void Link::emit_event(TraceEvent::Kind kind, const Packet& packet) {
  if (observer_ == nullptr) return;
  TraceEvent event;
  event.when = sim_.now();
  event.kind = kind;
  event.uid = packet.uid;
  event.size_bytes = packet.size_bytes;
  event.src = packet.src;
  event.dst = packet.dst;
  observer_->on_event(event);
}

void Link::deliver(Packet packet) {
  ++stats_.packets_offered;
  if (loss_ && loss_->should_drop(packet, loss_rng_)) {
    ++stats_.drops_random;
    emit_event(TraceEvent::Kind::kDropRandom, packet);
    FOBS_TRACE("link", name() << ": random drop uid=" << packet.uid);
    return;
  }
  if (!has_room_for(packet.size_bytes)) {
    ++stats_.drops_overflow;
    emit_event(TraceEvent::Kind::kDropOverflow, packet);
    FOBS_TRACE("link", name() << ": overflow drop uid=" << packet.uid
                              << " queued=" << queued_bytes_);
    return;
  }
  emit_event(TraceEvent::Kind::kEnqueued, packet);
  queued_bytes_ += packet.size_bytes;
  queue_.push_back(std::move(packet));
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  assert(!transmitting_);
  if (queue_.empty()) return;
  transmitting_ = true;
  in_flight_ = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= in_flight_.size_bytes;
  const Duration tx = fobs::util::transmission_time(in_flight_.size(), config_.rate);
  stats_.busy_time += tx;
  sim_.schedule_in(tx, [this] { finish_transmission(); });
  if (space_cb_) space_cb_();
}

void Link::finish_transmission() {
  assert(transmitting_);
  transmitting_ = false;
  ++stats_.packets_delivered;
  stats_.bytes_delivered += in_flight_.size_bytes;
  emit_event(TraceEvent::Kind::kDelivered, in_flight_);
  if (sink_ != nullptr) {
    // Propagation: the packet arrives at the far end after the fixed
    // one-way delay (plus jitter, which can reorder); the link itself is
    // free to transmit the next packet immediately (pipelining).
    Packet arriving = std::move(in_flight_);
    PacketSink* sink = sink_;
    Duration delay = config_.propagation_delay;
    if (config_.jitter > Duration::zero()) {
      delay += Duration::nanoseconds(loss_rng_.uniform_int(0, config_.jitter.ns()));
    }
    sim_.schedule_in(delay,
                     [sink, pkt = std::move(arriving)]() mutable { sink->deliver(std::move(pkt)); });
  }
  if (!queue_.empty()) start_transmission();
}

}  // namespace fobs::sim
