// Unidirectional point-to-point link with a drop-tail queue.
//
// A link models: a FIFO byte-bounded output queue, store-and-forward
// serialization at `rate`, fixed propagation delay, and (optionally) a
// random LossModel. Drop-tail on queue overflow is the congestion-loss
// mechanism of the whole simulator. Links form chains through routers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "sim/loss.h"
#include "sim/packet.h"
#include "sim/packet_trace.h"
#include "sim/simulation.h"

namespace fobs::sim {

using fobs::util::DataRate;
using fobs::util::DataSize;

struct LinkConfig {
  std::string name = "link";
  DataRate rate = DataRate::megabits_per_second(100);
  Duration propagation_delay = Duration::zero();
  /// Queue capacity in bytes (the packet being transmitted does not
  /// count against it).
  std::int64_t queue_capacity_bytes = 256 * 1024;
  /// MTU used for fragmentation-aware random loss; wire serialization
  /// itself treats the datagram as one burst of bytes.
  std::int64_t mtu_bytes = 1500;
  /// Uniform extra per-packet propagation in [0, jitter]: models
  /// parallel internal switch paths. Nonzero jitter reorders packets —
  /// harmless to FOBS (order-agnostic bitmap) but a dup-ack generator
  /// for TCP.
  Duration jitter = Duration::zero();
};

struct LinkStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_random = 0;
  std::int64_t bytes_delivered = 0;
  Duration busy_time = Duration::zero();

  [[nodiscard]] double utilization(Duration elapsed) const {
    if (elapsed <= Duration::zero()) return 0.0;
    return busy_time / elapsed;
  }
};

class Link final : public PacketSink {
 public:
  Link(Simulation& sim, LinkConfig config);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Where transmitted packets go (next hop's ingress). Must be set
  /// before traffic flows.
  void set_sink(PacketSink* sink) { sink_ = sink; }

  /// Attaches a random loss model applied per traversal.
  void set_loss_model(std::unique_ptr<LossModel> model, fobs::util::Rng rng);

  /// Offers a packet to the queue (drop-tail).
  void deliver(Packet packet) override;

  /// True when the queue currently has room for `bytes` more.
  [[nodiscard]] bool has_room_for(std::int64_t bytes) const {
    return queued_bytes_ + bytes <= config_.queue_capacity_bytes;
  }
  [[nodiscard]] std::int64_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] std::size_t queued_packets() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return transmitting_; }

  /// Invoked whenever queue occupancy decreases; used by endpoints that
  /// model select()-style blocking on a full socket/NIC buffer.
  void set_space_callback(std::function<void()> cb) { space_cb_ = std::move(cb); }

  /// Optional per-packet event tracing (tcpdump on this port).
  void set_observer(LinkObserver* observer) { observer_ = observer; }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

 private:
  void start_transmission();
  void finish_transmission();
  void emit_event(TraceEvent::Kind kind, const Packet& packet);

  Simulation& sim_;
  LinkConfig config_;
  PacketSink* sink_ = nullptr;
  std::deque<Packet> queue_;
  std::int64_t queued_bytes_ = 0;
  bool transmitting_ = false;
  Packet in_flight_;
  std::unique_ptr<LossModel> loss_;
  fobs::util::Rng loss_rng_;
  std::function<void()> space_cb_;
  LinkObserver* observer_ = nullptr;
  LinkStats stats_;
};

}  // namespace fobs::sim
