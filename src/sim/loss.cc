#include "sim/loss.h"

#include <algorithm>
#include <cassert>

namespace fobs::sim {

std::int64_t fragment_count(std::int64_t size_bytes, std::int64_t mtu_bytes) {
  if (mtu_bytes <= 0 || size_bytes <= mtu_bytes) return 1;
  return (size_bytes + mtu_bytes - 1) / mtu_bytes;
}

BernoulliLoss::BernoulliLoss(double per_fragment_loss, std::int64_t mtu_bytes)
    : p_(std::clamp(per_fragment_loss, 0.0, 1.0)), mtu_(mtu_bytes) {}

bool BernoulliLoss::should_drop(const Packet& packet, fobs::util::Rng& rng) {
  if (p_ <= 0.0) return false;
  const std::int64_t frags = fragment_count(packet.size_bytes, mtu_);
  for (std::int64_t i = 0; i < frags; ++i) {
    if (rng.bernoulli(p_)) return true;
  }
  return false;
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                                       double loss_good, double loss_bad,
                                       std::int64_t mtu_bytes)
    : p_gb_(std::clamp(p_good_to_bad, 0.0, 1.0)),
      p_bg_(std::clamp(p_bad_to_good, 0.0, 1.0)),
      loss_good_(std::clamp(loss_good, 0.0, 1.0)),
      loss_bad_(std::clamp(loss_bad, 0.0, 1.0)),
      mtu_(mtu_bytes) {}

bool GilbertElliottLoss::should_drop(const Packet& packet, fobs::util::Rng& rng) {
  const std::int64_t frags = fragment_count(packet.size_bytes, mtu_);
  bool drop = false;
  for (std::int64_t i = 0; i < frags; ++i) {
    // State transition per fragment, then a loss draw in the new state.
    if (bad_) {
      if (rng.bernoulli(p_bg_)) bad_ = false;
    } else {
      if (rng.bernoulli(p_gb_)) bad_ = true;
    }
    if (rng.bernoulli(bad_ ? loss_bad_ : loss_good_)) drop = true;
  }
  return drop;
}

}  // namespace fobs::sim
