// Random-loss models attachable to links.
//
// Queue overflow (drop-tail) is modelled by the link itself; these models
// add *random* corruption/loss on top, e.g. for lossy WAN segments. For
// datagrams larger than the link MTU the models account for IP
// fragmentation: the datagram survives only if every fragment survives,
// which is what makes very large UDP packets fragile (Figure 3).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "sim/packet.h"

namespace fobs::sim {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True when the packet should be dropped on this traversal.
  virtual bool should_drop(const Packet& packet, fobs::util::Rng& rng) = 0;
};

/// Independent per-fragment loss with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  /// @param per_fragment_loss probability a single <=MTU fragment is lost
  /// @param mtu_bytes fragmentation threshold (payload view); 0 disables
  ///        fragmentation accounting.
  explicit BernoulliLoss(double per_fragment_loss, std::int64_t mtu_bytes = 1500);

  bool should_drop(const Packet& packet, fobs::util::Rng& rng) override;

 private:
  double p_;
  std::int64_t mtu_;
};

/// Two-state Gilbert-Elliott bursty loss: a good state with low loss and
/// a bad state with high loss, with geometric dwell times.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good, double loss_good,
                     double loss_bad, std::int64_t mtu_bytes = 1500);

  bool should_drop(const Packet& packet, fobs::util::Rng& rng) override;

  [[nodiscard]] bool in_bad_state() const { return bad_; }

 private:
  double p_gb_;
  double p_bg_;
  double loss_good_;
  double loss_bad_;
  std::int64_t mtu_;
  bool bad_ = false;
};

/// Number of <=MTU fragments a datagram of `size_bytes` occupies.
[[nodiscard]] std::int64_t fragment_count(std::int64_t size_bytes, std::int64_t mtu_bytes);

}  // namespace fobs::sim
