// Nodes (routers, hosts) and the Network container that owns topology.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/link.h"
#include "sim/packet.h"
#include "sim/simulation.h"

namespace fobs::sim {

/// Base class for addressable topology elements.
class Node : public PacketSink {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

/// Store-and-forward router with a static routing table. Queueing and
/// serialization happen in the egress Link, so the router itself
/// forwards in zero simulated time.
class Router final : public Node {
 public:
  Router(NodeId id, std::string name) : Node(id, std::move(name)) {}

  void add_route(NodeId dst, PacketSink* next_hop) { routes_[dst] = next_hop; }
  void set_default_route(PacketSink* next_hop) { default_route_ = next_hop; }

  void deliver(Packet packet) override {
    auto it = routes_.find(packet.dst);
    PacketSink* next = it != routes_.end() ? it->second : default_route_;
    if (next == nullptr) {
      ++no_route_drops_;
      return;
    }
    next->deliver(std::move(packet));
  }

  [[nodiscard]] std::uint64_t no_route_drops() const { return no_route_drops_; }

 private:
  std::unordered_map<NodeId, PacketSink*> routes_;
  PacketSink* default_route_ = nullptr;
  std::uint64_t no_route_drops_ = 0;
};

/// Terminal sink that discards and counts traffic (used as the
/// destination for cross-traffic flows).
class BlackholeNode final : public Node {
 public:
  BlackholeNode(NodeId id, std::string name) : Node(id, std::move(name)) {}

  void deliver(Packet packet) override {
    ++packets_;
    bytes_ += packet.size_bytes;
  }

  [[nodiscard]] std::uint64_t packets_received() const { return packets_; }
  [[nodiscard]] std::int64_t bytes_received() const { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::int64_t bytes_ = 0;
};

/// Owns the simulation's nodes and links and allocates node/packet ids.
/// Topology shape (who connects to whom) is expressed by Link sinks and
/// Router routing tables; Network is the owner, not the router.
class Network {
 public:
  explicit Network(Simulation& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Simulation& sim() { return sim_; }

  /// Registers a node built elsewhere (e.g. a host::Host). The node's id
  /// must come from `next_node_id()`.
  template <typename NodeT>
  NodeT& adopt(std::unique_ptr<NodeT> node) {
    NodeT& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  Router& add_router(const std::string& name) {
    return adopt(std::make_unique<Router>(next_node_id(), name));
  }

  BlackholeNode& add_blackhole(const std::string& name) {
    return adopt(std::make_unique<BlackholeNode>(next_node_id(), name));
  }

  Link& add_link(LinkConfig config) {
    links_.push_back(std::make_unique<Link>(sim_, std::move(config)));
    return *links_.back();
  }

  [[nodiscard]] NodeId next_node_id() { return next_node_id_++; }
  [[nodiscard]] std::uint64_t next_packet_uid() { return next_packet_uid_++; }

  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

 private:
  Simulation& sim_;
  NodeId next_node_id_ = 1;
  std::uint64_t next_packet_uid_ = 1;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace fobs::sim
