// The unit of data that traverses simulated links.
//
// Protocol payloads are type-erased with std::any; protocol code stores a
// small struct (or a shared_ptr to a larger one) and the receiving
// endpoint any_casts it back. The wire `size_bytes` is what links charge
// for serialization, independent of the C++ payload size.
#pragma once

#include <any>
#include <cstdint>

#include "common/units.h"

namespace fobs::sim {

/// Identifies a node (host or router) in a Network.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNodeId = -1;

/// Transport-level demux key on a host (like a UDP/TCP port).
using PortId = std::uint16_t;

struct Packet {
  std::uint64_t uid = 0;  ///< Unique per Network; assigned at send time.
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  PortId src_port = 0;
  PortId dst_port = 0;
  /// Total wire size including transport/IP headers.
  std::int64_t size_bytes = 0;
  std::any payload;

  [[nodiscard]] fobs::util::DataSize size() const {
    return fobs::util::DataSize::bytes(size_bytes);
  }
};

/// Anything that can accept a packet: links, routers, hosts.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet packet) = 0;
};

/// Conventional header overheads (IPv4 + transport), used when
/// converting payload sizes to wire sizes.
inline constexpr std::int64_t kUdpIpOverheadBytes = 28;   // 20 IP + 8 UDP
inline constexpr std::int64_t kTcpIpOverheadBytes = 40;   // 20 IP + 20 TCP

}  // namespace fobs::sim
