#include "sim/packet_trace.h"

#include <cassert>

namespace fobs::sim {

const char* to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kEnqueued: return "enqueued";
    case TraceEvent::Kind::kDropOverflow: return "drop-overflow";
    case TraceEvent::Kind::kDropRandom: return "drop-random";
    case TraceEvent::Kind::kDelivered: return "delivered";
  }
  return "?";
}

void PacketTrace::on_event(const TraceEvent& event) {
  ++total_;
  ++counts_[static_cast<std::size_t>(event.kind)];
  if (events_.size() < max_events_) events_.push_back(event);
}

std::uint64_t PacketTrace::count(TraceEvent::Kind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

std::vector<std::uint64_t> PacketTrace::drops_per_bucket(fobs::util::Duration bucket,
                                                         fobs::util::Duration horizon) const {
  assert(bucket > fobs::util::Duration::zero());
  const auto buckets = static_cast<std::size_t>(horizon.ns() / bucket.ns()) + 1;
  std::vector<std::uint64_t> out(buckets, 0);
  for (const auto& event : events_) {
    if (event.kind != TraceEvent::Kind::kDropOverflow &&
        event.kind != TraceEvent::Kind::kDropRandom) {
      continue;
    }
    const auto index = static_cast<std::size_t>(event.when.ns() / bucket.ns());
    if (index < out.size()) ++out[index];
  }
  return out;
}

void PacketTrace::write_csv(std::ostream& os) const {
  os << "time_s,kind,uid,size,src,dst\n";
  for (const auto& event : events_) {
    os << event.when.seconds() << ',' << to_string(event.kind) << ',' << event.uid << ','
       << event.size_bytes << ',' << event.src << ',' << event.dst << '\n';
  }
}

void PacketTrace::clear() {
  events_.clear();
  total_ = 0;
  for (auto& count : counts_) count = 0;
}

}  // namespace fobs::sim
