// Per-packet event tracing on links.
//
// Attach a PacketTrace to any Link to record enqueue/drop/deliver
// events with timestamps — the simulator's analogue of tcpdump on a
// router port. Bounded capacity; counting continues after the event
// log fills.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/packet.h"

namespace fobs::sim {

class Link;

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kEnqueued,      ///< accepted into the link queue
    kDropOverflow,  ///< drop-tail
    kDropRandom,    ///< loss model
    kDelivered,     ///< handed to the downstream sink
  };

  fobs::util::TimePoint when;
  Kind kind = Kind::kEnqueued;
  std::uint64_t uid = 0;
  std::int64_t size_bytes = 0;
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
};

[[nodiscard]] const char* to_string(TraceEvent::Kind kind);

/// Receives link events; attach with Link::set_observer.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Standard observer: bounded event log plus per-kind counters.
class PacketTrace final : public LinkObserver {
 public:
  explicit PacketTrace(std::size_t max_events = 100'000) : max_events_(max_events) {}

  void on_event(const TraceEvent& event) override;

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t count(TraceEvent::Kind kind) const;
  [[nodiscard]] std::uint64_t total_events() const { return total_; }
  [[nodiscard]] bool truncated() const { return total_ > events_.size(); }

  /// Drop events bucketed by time (for drop-timeline summaries).
  [[nodiscard]] std::vector<std::uint64_t> drops_per_bucket(
      fobs::util::Duration bucket, fobs::util::Duration horizon) const;

  /// CSV: time_s,kind,uid,size,src,dst
  void write_csv(std::ostream& os) const;

  void clear();

 private:
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t total_ = 0;
  std::uint64_t counts_[4] = {0, 0, 0, 0};
};

}  // namespace fobs::sim
