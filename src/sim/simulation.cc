#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace fobs::sim {

EventId Simulation::schedule_at(TimePoint t, std::function<void()> fn) {
  assert(fn);
  if (t < now_) t = now_;  // never schedule into the past
  const EventId id = next_id_++;
  heap_.push(HeapEntry{t, next_seq_++, id});
  bodies_.emplace(id, std::move(fn));
  return id;
}

EventId Simulation::schedule_in(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) { return bodies_.erase(id) > 0; }

bool Simulation::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    auto it = bodies_.find(top.id);
    if (it == bodies_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    heap_.pop();
    assert(top.time >= now_);
    now_ = top.time;
    std::function<void()> body = std::move(it->second);
    bodies_.erase(it);
    ++executed_;
    body();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(TimePoint t) {
  while (!stopped_) {
    // Peek at the next live event.
    bool found = false;
    while (!heap_.empty()) {
      if (bodies_.count(heap_.top().id) == 0) {
        heap_.pop();
        continue;
      }
      found = true;
      break;
    }
    if (!found || heap_.top().time > t) break;
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace fobs::sim
