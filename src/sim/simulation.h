// Deterministic discrete-event simulation kernel.
//
// A single-threaded event loop with a simulated clock. Components
// schedule closures at absolute or relative times; the kernel executes
// them in (time, insertion-order) order, so runs are exactly
// reproducible. Cancellation is lazy: cancelled events stay in the heap
// but their bodies are dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace fobs::sim {

using fobs::util::Duration;
using fobs::util::TimePoint;

/// Opaque handle for a scheduled event; usable with `cancel`.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, std::function<void()> fn);
  /// Schedules `fn` after `delay` (clamped to zero if negative).
  EventId schedule_in(Duration delay, std::function<void()> fn);
  /// Drops a pending event. Cancelling an already-fired or invalid id is
  /// a no-op. Returns true when an event was actually removed.
  bool cancel(EventId id);

  /// Executes the next event, if any. Returns false when the queue is
  /// empty (after skipping cancelled entries).
  bool step();
  /// Runs until the queue is empty or `stop()` is called.
  void run();
  /// Runs events with time <= `t`; afterwards now() == t if the horizon
  /// was reached (or the stop/empty point otherwise).
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }
  /// Makes `run`/`run_until` return after the current event completes.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }
  /// Re-arms a stopped simulation so it can be run again.
  void clear_stop() { stopped_ = false; }

  [[nodiscard]] std::size_t pending_events() const { return bodies_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;  // tie-break: earlier scheduling runs first
    EventId id;
    bool operator>(const HeapEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> bodies_;
};

}  // namespace fobs::sim
