#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdlib>

namespace fobs::telemetry {

namespace detail {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<std::int64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (buckets_.size() != bounds_.size() + 1) {
    // Duplicates were removed; rebuild the bucket array to match.
    std::vector<std::atomic<std::int64_t>> rebuilt(bounds_.size() + 1);
    buckets_.swap(rebuilt);
  }
}

void Histogram::observe(std::int64_t v) noexcept {
  if (!metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[name];
  if (entry.counter == nullptr) {
    if (entry.gauge != nullptr || entry.histogram != nullptr) std::abort();
    entry.kind = MetricSample::Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[name];
  if (entry.gauge == nullptr) {
    if (entry.counter != nullptr || entry.histogram != nullptr) std::abort();
    entry.kind = MetricSample::Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[name];
  if (entry.histogram == nullptr) {
    if (entry.counter != nullptr || entry.gauge != nullptr) std::abort();
    entry.kind = MetricSample::Kind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *entry.histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.value = entry.counter->value();
        break;
      case MetricSample::Kind::kGauge:
        sample.value = entry.gauge->value();
        break;
      case MetricSample::Kind::kHistogram: {
        sample.value = entry.histogram->count();
        sample.sum = entry.histogram->sum();
        sample.bounds = entry.histogram->bounds();
        sample.buckets.resize(entry.histogram->bucket_count());
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
          sample.buckets[i] = entry.histogram->bucket(i);
        }
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

namespace {
const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}
}  // namespace

fobs::util::TextTable MetricsRegistry::to_table() const {
  fobs::util::TextTable table({"metric", "kind", "value", "sum"});
  for (const auto& sample : snapshot()) {
    table.add_row({sample.name, kind_name(sample.kind), std::to_string(sample.value),
                   sample.kind == MetricSample::Kind::kHistogram ? std::to_string(sample.sum)
                                                                 : std::string("-")});
  }
  return table;
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const auto& sample : snapshot()) {
    os << "{\"metric\":\"" << sample.name << "\",\"kind\":\"" << kind_name(sample.kind)
       << "\",\"value\":" << sample.value;
    if (sample.kind == MetricSample::Kind::kHistogram) {
      os << ",\"sum\":" << sample.sum << ",\"bounds\":[";
      for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
        if (i > 0) os << ',';
        os << sample.bounds[i];
      }
      os << "],\"buckets\":[";
      for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
        if (i > 0) os << ',';
        os << sample.buckets[i];
      }
      os << ']';
    }
    os << "}\n";
  }
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        entry.counter->reset();
        break;
      case MetricSample::Kind::kGauge:
        entry.gauge->reset();
        break;
      case MetricSample::Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

}  // namespace fobs::telemetry
