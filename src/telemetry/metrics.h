// Lightweight, thread-safe metrics registry.
//
// Three instrument kinds, all lock-free on the update path:
//   Counter    — monotonically increasing int64 (relaxed fetch_add)
//   Gauge      — last-written int64 (relaxed store / fetch_add)
//   Histogram  — fixed upper-bound buckets + sum + count, all atomics
//
// Registration (name -> instrument) takes a mutex; the returned
// references are stable for the registry's lifetime, so callers look an
// instrument up once and then update it wait-free. A process-wide
// on/off switch (`set_enabled`) turns every update into a single
// relaxed load + branch, which is the "zero cost when disabled"
// guarantee the hot paths rely on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.h"

namespace fobs::telemetry {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Process-wide switch; metric updates become no-ops when false.
inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

class Counter {
 public:
  void inc(std::int64_t delta = 1) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are fixed at
/// construction so `observe` is a binary search plus two relaxed
/// atomic adds — no allocation, no locking.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::int64_t v) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Count in bucket `i` (0..bounds().size(); the last is overflow).
  [[nodiscard]] std::int64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] double mean() const noexcept;

  void reset() noexcept;

 private:
  std::vector<std::int64_t> bounds_;  ///< sorted ascending
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// A consistent-enough view of one instrument for export; values are
/// read with relaxed loads while writers may still be running.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;  ///< counter/gauge value, histogram count
  std::int64_t sum = 0;    ///< histograms only
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the drivers and examples share.
  static MetricsRegistry& global();

  /// Finds or creates; the reference stays valid for the registry's
  /// lifetime. A name maps to exactly one kind — looking it up as a
  /// different kind aborts (programming error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is only used on first creation.
  Histogram& histogram(const std::string& name, std::vector<std::int64_t> upper_bounds);

  [[nodiscard]] std::vector<MetricSample> snapshot() const;
  [[nodiscard]] fobs::util::TextTable to_table() const;
  /// One JSON object per instrument, mirroring the trace JSONL style.
  void write_jsonl(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const;
  /// Zeroes every instrument (names and bounds are kept).
  void reset();

  static void set_enabled(bool enabled) noexcept {
    detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
  }
  static bool enabled() noexcept { return metrics_enabled(); }

 private:
  struct Entry {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;  ///< guards the map, not the instruments
  std::map<std::string, Entry> entries_;
};

}  // namespace fobs::telemetry
