#include "telemetry/trace.h"

#include <fstream>
#include <utility>

namespace fobs::telemetry {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kTransferStart:
      return "transfer_start";
    case EventType::kBatchSent:
      return "batch_sent";
    case EventType::kPacketPlaced:
      return "packet_placed";
    case EventType::kDuplicate:
      return "duplicate";
    case EventType::kAckBuilt:
      return "ack_built";
    case EventType::kAckSent:
      return "ack_sent";
    case EventType::kAckProcessed:
      return "ack_processed";
    case EventType::kDropWhileAcking:
      return "drop_while_acking";
    case EventType::kFallbackEnter:
      return "fallback_enter";
    case EventType::kFallbackExit:
      return "fallback_exit";
    case EventType::kCorruptDrop:
      return "corrupt_drop";
    case EventType::kReconnect:
      return "reconnect";
    case EventType::kStall:
      return "stall";
    case EventType::kResume:
      return "resume";
    case EventType::kCompletion:
      return "completion";
    case EventType::kTimeout:
      return "timeout";
    case EventType::kError:
      return "error";
  }
  return "unknown";
}

EventTracer::EventTracer(ClockFn clock, std::size_t max_events)
    : clock_(std::move(clock)), max_events_(max_events) {}

void EventTracer::set_clock(ClockFn clock) {
  const std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

void EventTracer::record(EventType type, std::int64_t seq, std::int64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t now = clock_ ? clock_() : 0;
  ++counts_[static_cast<std::size_t>(type)];
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{now, type, seq, value});
}

void EventTracer::record_at(std::int64_t t_ns, EventType type, std::int64_t seq,
                            std::int64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++counts_[static_cast<std::size_t>(type)];
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{t_ns, type, seq, value});
}

std::vector<Event> EventTracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t EventTracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t EventTracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::array<std::int64_t, kEventTypeCount> EventTracer::counts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::int64_t EventTracer::count(EventType type) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(type)];
}

void EventTracer::write_jsonl(std::ostream& os) const {
  const auto events = snapshot();
  for (const auto& event : events) {
    os << "{\"t_ns\":" << event.t_ns << ",\"event\":\"" << to_string(event.type)
       << "\",\"seq\":" << event.seq << ",\"value\":" << event.value << "}\n";
  }
}

bool EventTracer::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

fobs::util::TextTable EventTracer::summary() const {
  std::array<std::int64_t, kEventTypeCount> counts{};
  std::array<std::int64_t, kEventTypeCount> first{};
  std::array<std::int64_t, kEventTypeCount> last{};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    counts = counts_;
    for (const auto& event : events_) {
      const auto i = static_cast<std::size_t>(event.type);
      if (first[i] == 0 && last[i] == 0) first[i] = event.t_ns;
      last[i] = event.t_ns;
    }
  }
  fobs::util::TextTable table({"event", "count", "first (ms)", "last (ms)"});
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    if (counts[i] == 0) continue;
    table.add_row({to_string(static_cast<EventType>(i)), std::to_string(counts[i]),
                   fobs::util::TextTable::num(static_cast<double>(first[i]) / 1e6, 3),
                   fobs::util::TextTable::num(static_cast<double>(last[i]) / 1e6, 3)});
  }
  return table;
}

void EventTracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  counts_.fill(0);
  dropped_ = 0;
}

}  // namespace fobs::telemetry
