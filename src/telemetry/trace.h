// Per-transfer protocol event tracing.
//
// An EventTracer records timestamped protocol events (batch sent, ACK
// processed, packet placed, drop-while-acking, fallback entered,
// completion, timeout, ...) from one transfer endpoint and exports them
// as JSONL — one self-contained JSON object per line — plus a summary
// table. The protocol cores and drivers hold a *nullable* tracer
// pointer: with no tracer attached the hot paths pay a single branch,
// so telemetry is effectively free when disabled.
//
// Timestamps come from an injected clock so the same tracer works under
// the discrete-event simulator (sim time) and the POSIX drivers (steady
// clock since transfer start). Drivers install their clock when the
// transfer starts; see docs/TELEMETRY.md for the event schema.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.h"

namespace fobs::telemetry {

/// Protocol events a transfer endpoint can emit. The wire names used in
/// JSONL output are the snake_case strings from `to_string`.
enum class EventType : std::uint8_t {
  kTransferStart = 0,  ///< driver entered its transfer loop
  kBatchSent,          ///< sender finished one batch; value = packets
  kPacketPlaced,       ///< receiver placed a new packet; seq = packet
  kDuplicate,          ///< receiver saw an already-placed packet
  kAckBuilt,           ///< receiver built an ACK; seq = ack_no
  kAckSent,            ///< driver handed the ACK to the network
  kAckProcessed,       ///< sender folded an ACK in; value = newly acked
  kDropWhileAcking,    ///< socket-buffer drops while receiver was busy
  kFallbackEnter,      ///< §7 sender switched to the TCP channel
  kFallbackExit,       ///< sender resumed greedy UDP
  kCorruptDrop,        ///< packet rejected by checksum/corruption check
  kReconnect,          ///< control-TCP connection re-established
  kStall,              ///< progress check found an empty interval; value = streak
  kResume,             ///< resume state applied; value = packets restored
  kCompletion,         ///< endpoint learned the transfer is complete
  kTimeout,            ///< driver gave up (stall budget or deadline)
  kError,              ///< driver hit a non-timeout failure
};
inline constexpr std::size_t kEventTypeCount = 17;

[[nodiscard]] const char* to_string(EventType type);

/// One recorded event. `seq` is a packet sequence or ACK number (-1
/// when not applicable); `value` is an event-specific magnitude
/// (packets in a batch, newly acked count, dropped packets, ...).
struct Event {
  std::int64_t t_ns = 0;
  EventType type = EventType::kTransferStart;
  std::int64_t seq = -1;
  std::int64_t value = 0;
};

/// Thread-safe append-only recorder for one transfer endpoint.
///
/// Recording is mutex-guarded (events arrive from a single driver loop
/// in practice; the lock is uncontended) and bounded: past `max_events`
/// the event list stops growing but per-type counts stay exact, so a
/// truncated trace still summarizes correctly.
class EventTracer {
 public:
  using ClockFn = std::function<std::int64_t()>;

  static constexpr std::size_t kDefaultMaxEvents = 1 << 20;

  explicit EventTracer(ClockFn clock = {}, std::size_t max_events = kDefaultMaxEvents);

  /// Replaces the timestamp source. Drivers call this when the transfer
  /// starts (sim time or steady clock since start).
  void set_clock(ClockFn clock);

  /// Records an event stamped with the current clock (0 if no clock).
  void record(EventType type, std::int64_t seq = -1, std::int64_t value = 0);
  /// Records an event with an explicit timestamp.
  void record_at(std::int64_t t_ns, EventType type, std::int64_t seq = -1,
                 std::int64_t value = 0);

  [[nodiscard]] std::vector<Event> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  /// Events not retained because the `max_events` cap was reached.
  [[nodiscard]] std::size_t dropped() const;
  /// Exact per-type counts (index by static_cast<size_t>(EventType)),
  /// including events past the retention cap.
  [[nodiscard]] std::array<std::int64_t, kEventTypeCount> counts() const;
  [[nodiscard]] std::int64_t count(EventType type) const;

  /// Writes one JSON object per event:
  ///   {"t_ns":123,"event":"ack_processed","seq":7,"value":64}
  void write_jsonl(std::ostream& os) const;
  /// Convenience: write_jsonl to `path`; false on I/O failure.
  bool write_jsonl_file(const std::string& path) const;

  /// Per-type counts with first/last timestamps, as an aligned table.
  [[nodiscard]] fobs::util::TextTable summary() const;

  void clear();

 private:
  mutable std::mutex mu_;
  ClockFn clock_;
  std::size_t max_events_;
  std::vector<Event> events_;
  std::array<std::int64_t, kEventTypeCount> counts_{};
  std::size_t dropped_ = 0;
};

}  // namespace fobs::telemetry
