// Tests for the full Abilene topology and the dumbbell-reduction
// validation.
#include <gtest/gtest.h>

#include <any>

#include "exp/abilene.h"
#include "exp/runner.h"
#include "fobs/sim_transfer.h"
#include "net/udp.h"

namespace fobs::exp {
namespace {

TEST(Abilene, PathDelaysMatchThePaperRtts) {
  AbileneNetwork net;
  EXPECT_NEAR(net.path_delay(Site::kAnl, Site::kLcse).seconds() * 2, 0.026, 0.001);
  EXPECT_NEAR(net.path_delay(Site::kAnl, Site::kCacr).seconds() * 2, 0.065, 0.001);
  EXPECT_NEAR(net.path_delay(Site::kNcsa, Site::kCacr).seconds() * 2, 0.062, 0.004);
  // Symmetric.
  EXPECT_EQ(net.path_delay(Site::kAnl, Site::kCacr).ns(),
            net.path_delay(Site::kCacr, Site::kAnl).ns());
}

TEST(Abilene, RoutesAreMultiHop) {
  AbileneNetwork net;
  EXPECT_EQ(net.backbone_hops(Site::kAnl, Site::kLcse), 1);   // IPLS->KSCY
  EXPECT_EQ(net.backbone_hops(Site::kAnl, Site::kCacr), 4);   // IPLS->KSCY->DNVR->SNVA->LOSA
  EXPECT_EQ(net.backbone_hops(Site::kAnl, Site::kNcsa), 0);   // same PoP
}

TEST(Abilene, DatagramActuallyTraversesTheRoutedPath) {
  AbileneNetwork net;
  auto& anl = net.site_host(Site::kAnl);
  auto& cacr = net.site_host(Site::kCacr);
  fobs::net::UdpEndpoint tx(anl, 9000);
  fobs::net::UdpEndpoint rx(cacr, 9001);
  tx.send_to(cacr.id(), 9001, 100, std::string("cross-country"));
  util::TimePoint arrival;
  bool got = false;
  rx.set_rx_notify([&] {
    arrival = net.sim().now();
    got = true;
  });
  net.sim().run();
  ASSERT_TRUE(got);
  EXPECT_NEAR(arrival.seconds(), net.path_delay(Site::kAnl, Site::kCacr).seconds(), 0.001);
}

TEST(Abilene, FobsTransferMatchesTheDumbbellReduction) {
  // ANL -> LCSE over the routed backbone vs. the short-haul dumbbell:
  // the bottleneck (ANL's 100 Mb/s NIC) and the RTT are the same, so
  // the goodput should agree closely — validating the abstraction the
  // main benchmarks rely on.
  AbileneNetwork net;
  core::SimTransferConfig config;
  config.spec.object_bytes = 8 * 1024 * 1024;
  const auto routed = core::run_sim_transfer(net.network(), net.site_host(Site::kAnl),
                                             net.site_host(Site::kLcse), config);
  ASSERT_TRUE(routed.completed);

  auto spec = spec_for(PathId::kShortHaul);
  spec.fwd_loss = 0;
  spec.rev_loss = 0;
  Testbed bed(spec);
  const auto dumbbell = core::run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(dumbbell.completed);

  EXPECT_NEAR(routed.goodput_mbps, dumbbell.goodput_mbps, dumbbell.goodput_mbps * 0.05);
}

TEST(Abilene, BackgroundTrafficFlowsAndIsAbsorbed) {
  AbileneNetwork net(9);
  net.add_background_traffic(10, util::DataRate::megabits_per_second(200),
                             util::Duration::milliseconds(30),
                             util::Duration::milliseconds(90));
  net.sim().run_until(util::TimePoint::from_ns(util::Duration::seconds(1).ns()));
  // Background packets were offered and none leaked into site hosts.
  std::uint64_t dropped_at_sites = 0;
  for (Site site : {Site::kAnl, Site::kLcse, Site::kCacr, Site::kNcsa}) {
    dropped_at_sites += net.site_host(site).no_port_drops();
  }
  EXPECT_EQ(dropped_at_sites, 0u);
}

TEST(Abilene, BackboneLossAffectsTransfers) {
  AbileneNetwork net(5);
  net.set_backbone_loss(0.01);
  core::SimTransferConfig config;
  config.spec.object_bytes = 2 * 1024 * 1024;
  config.carry_data = true;
  const auto result = core::run_sim_transfer(net.network(), net.site_host(Site::kAnl),
                                             net.site_host(Site::kCacr), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  // 4 backbone hops at 1% each: ~4% packet loss -> visible waste.
  EXPECT_GT(result.waste, 0.02);
}

}  // namespace
}  // namespace fobs::exp
