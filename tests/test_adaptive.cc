// Unit tests for the congestion-adaptive greediness controller (§7).
#include <gtest/gtest.h>

#include "fobs/adaptive.h"

namespace fobs::core {
namespace {

using util::Duration;

AdaptiveConfig enabled_config() {
  AdaptiveConfig config;
  config.enabled = true;
  return config;
}

TEST(Adaptive, DisabledControllerNeverBacksOff) {
  GreedinessController controller{AdaptiveConfig{}};  // enabled = false
  for (int i = 0; i < 100; ++i) controller.on_ack(100, 0);  // 100% loss!
  EXPECT_EQ(controller.gap(), Duration::zero());
  EXPECT_FALSE(controller.backing_off());
}

TEST(Adaptive, CleanPathStaysGreedy) {
  GreedinessController controller{enabled_config()};
  for (int i = 0; i < 100; ++i) controller.on_ack(64, 64);
  EXPECT_EQ(controller.gap(), Duration::zero());
  EXPECT_NEAR(controller.loss_estimate(), 0.0, 1e-9);
}

TEST(Adaptive, TransientLossIsSmoothedAway) {
  GreedinessController controller{enabled_config()};
  for (int i = 0; i < 20; ++i) controller.on_ack(64, 64);
  controller.on_ack(64, 0);  // one terrible ack
  for (int i = 0; i < 20; ++i) controller.on_ack(64, 64);
  EXPECT_EQ(controller.gap(), Duration::zero());
}

TEST(Adaptive, SustainedLossTriggersBackoff) {
  GreedinessController controller{enabled_config()};
  for (int i = 0; i < 50; ++i) controller.on_ack(100, 70);  // 30% loss
  EXPECT_TRUE(controller.backing_off());
  EXPECT_GE(controller.gap(), controller.config().seed_gap);
}

TEST(Adaptive, GapIsBoundedByMax) {
  GreedinessController controller{enabled_config()};
  for (int i = 0; i < 10000; ++i) controller.on_ack(100, 0);
  EXPECT_LE(controller.gap(), controller.config().max_gap);
}

TEST(Adaptive, RecoversToFullGreedinessWhenLossClears) {
  GreedinessController controller{enabled_config()};
  for (int i = 0; i < 50; ++i) controller.on_ack(100, 60);
  ASSERT_TRUE(controller.backing_off());
  for (int i = 0; i < 500; ++i) controller.on_ack(100, 100);
  EXPECT_FALSE(controller.backing_off());
  EXPECT_EQ(controller.gap(), Duration::zero());
}

TEST(Adaptive, NoLaunchesMeansNoInformation) {
  GreedinessController controller{enabled_config()};
  for (int i = 0; i < 100; ++i) controller.on_ack(0, 0);
  EXPECT_NEAR(controller.loss_estimate(), 0.0, 1e-9);
  EXPECT_FALSE(controller.backing_off());
}

TEST(Adaptive, ReceiverAheadOfSenderClampsToZeroLoss) {
  // Retransmission catch-up can deliver more than was sent since the
  // last ack; the instantaneous estimate must clamp at zero.
  GreedinessController controller{enabled_config()};
  for (int i = 0; i < 20; ++i) controller.on_ack(10, 50);
  EXPECT_NEAR(controller.loss_estimate(), 0.0, 1e-9);
}

}  // namespace
}  // namespace fobs::core
