// Tests for the baseline protocols: TCP bulk, PSockets, RUDP, SABUL.
#include <gtest/gtest.h>

#include "baselines/psockets.h"
#include "baselines/rudp.h"
#include "baselines/sabul.h"
#include "baselines/tcp_bulk.h"
#include "exp/testbeds.h"

namespace fobs {
namespace {

using baselines::RudpConfig;
using baselines::SabulConfig;
using exp::PathId;
using exp::Testbed;

constexpr std::int64_t kSmallObject = 4 * 1024 * 1024;

TEST(TcpBulk, ShortHaulWithLweNearsLineRate) {
  // Big enough that slow start does not dominate the average.
  Testbed bed(PathId::kShortHaul);
  const auto result = baselines::run_tcp_transfer(bed.network(), bed.src(), bed.dst(),
                                                  16 * 1024 * 1024, baselines::tcp_with_lwe());
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.fraction_of(bed.spec().max_bandwidth), 0.6);
}

TEST(TcpBulk, WithoutLweIsWindowLimitedOnLongHaul) {
  // 64 KiB / 65 ms ~ 8 Mb/s: the Table 1 bottom row.
  auto spec = exp::spec_for(PathId::kLongHaul);
  spec.fwd_loss = 0;  // pure window arithmetic
  Testbed bed(spec);
  const auto result = baselines::run_tcp_transfer(bed.network(), bed.src(), bed.dst(),
                                                  kSmallObject, baselines::tcp_without_lwe());
  ASSERT_TRUE(result.completed);
  const double fraction = result.fraction_of(spec.max_bandwidth);
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.12);
}

TEST(TcpBulk, LweBeatsNoLweOnLongHaul) {
  auto spec = exp::spec_for(PathId::kLongHaul);
  spec.fwd_loss = 0;
  Testbed bed1(spec);
  const auto with = baselines::run_tcp_transfer(bed1.network(), bed1.src(), bed1.dst(),
                                                kSmallObject, baselines::tcp_with_lwe());
  Testbed bed2(spec);
  const auto without = baselines::run_tcp_transfer(bed2.network(), bed2.src(), bed2.dst(),
                                                   kSmallObject, baselines::tcp_without_lwe());
  ASSERT_TRUE(with.completed && without.completed);
  EXPECT_GT(with.goodput_mbps, 2.0 * without.goodput_mbps);
}

TEST(Psockets, SingleStreamMatchesPlainTcp) {
  Testbed bed(PathId::kShortHaul);
  const auto result = baselines::run_psockets_transfer(
      bed.network(), bed.src(), bed.dst(), kSmallObject, 1,
      baselines::psockets_stream_config());
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.streams, 1);
  EXPECT_GT(result.goodput_mbps, 0.0);
}

TEST(Psockets, StripingAggregatesLimitedWindows) {
  // With 256 KiB per-socket buffers on a 65 ms path each stream is
  // window-limited; more streams must go materially faster.
  auto spec = exp::spec_for(PathId::kLongHaul);
  spec.fwd_loss = 0;
  const std::int64_t object = 16 * 1024 * 1024;  // long enough to leave slow start
  Testbed bed1(spec);
  const auto one = baselines::run_psockets_transfer(bed1.network(), bed1.src(), bed1.dst(),
                                                    object, 1,
                                                    baselines::psockets_stream_config());
  Testbed bed2(spec);
  const auto eight = baselines::run_psockets_transfer(bed2.network(), bed2.src(), bed2.dst(),
                                                      object, 8,
                                                      baselines::psockets_stream_config());
  ASSERT_TRUE(one.completed && eight.completed);
  EXPECT_GT(eight.goodput_mbps, 2.0 * one.goodput_mbps);
}

TEST(Psockets, FindOptimalPicksTheFastest) {
  int calls = 0;
  const auto best = baselines::find_optimal_stream_count(
      {1, 2, 4}, [&](int streams) {
        ++calls;
        baselines::PsocketsResult r;
        r.completed = streams != 4;  // 4 "fails"
        r.streams = streams;
        r.goodput_mbps = streams * 10.0;
        return r;
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(best.streams, 2);  // fastest *completed* candidate
}

TEST(Rudp, CleanPathFinishesInOnePass) {
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 0;
  spec.rev_loss = 0;
  Testbed bed(spec);
  RudpConfig config;
  config.spec = {kSmallObject, 1024};
  const auto result = baselines::run_rudp_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.passes, 1);
  EXPECT_DOUBLE_EQ(result.waste, 0.0);
  EXPECT_GT(result.fraction_of(spec.max_bandwidth), 0.6);
}

TEST(Rudp, LossyPathNeedsExtraPasses) {
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 5e-3;  // heavy loss: each pass loses ~20 packets
  Testbed bed(spec);
  RudpConfig config;
  config.spec = {kSmallObject, 1024};
  const auto result = baselines::run_rudp_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.passes, 2);
  EXPECT_GT(result.waste, 0.0);
}

TEST(Rudp, PacedBlastRespectsConfiguredRate) {
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 0;
  Testbed bed(spec);
  RudpConfig config;
  config.spec = {kSmallObject, 1024};
  config.send_rate = util::DataRate::megabits_per_second(20);
  const auto result = baselines::run_rudp_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_LT(result.goodput_mbps, 22.0);
  EXPECT_GT(result.goodput_mbps, 15.0);
}

TEST(Sabul, CleanPathHoldsItsConfiguredRate) {
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 0;
  Testbed bed(spec);
  SabulConfig config;
  config.spec = {kSmallObject, 1024};
  config.initial_rate = util::DataRate::megabits_per_second(90);
  const auto result =
      baselines::run_sabul_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.fraction_of(spec.max_bandwidth), 0.6);
  EXPECT_EQ(result.loss_reports, 0u);
}

TEST(Sabul, LossMakesItSlowDown) {
  // SABUL interprets loss as congestion (paper §2): its final rate must
  // drop below the configured one, unlike FOBS which stays greedy.
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 2e-3;
  Testbed bed(spec);
  SabulConfig config;
  config.spec = {kSmallObject, 1024};
  config.initial_rate = util::DataRate::megabits_per_second(90);
  const auto result =
      baselines::run_sabul_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.loss_reports, 0u);
  EXPECT_LT(result.final_rate_mbps, 90.0);
}

}  // namespace
}  // namespace fobs
