// Unit + property tests for the packet bitmap.
#include <gtest/gtest.h>

#include <vector>

#include "common/bitmap.h"
#include "common/rng.h"

namespace fobs::util {
namespace {

TEST(Bitmap, SetTestClearCount) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.none_set());
  EXPECT_TRUE(b.set(5));
  EXPECT_FALSE(b.set(5));  // already set
  EXPECT_TRUE(b.test(5));
  EXPECT_EQ(b.count(), 1u);
  EXPECT_TRUE(b.clear(5));
  EXPECT_FALSE(b.clear(5));
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, AllSetOnOddSize) {
  Bitmap b(67);  // crosses a word boundary, non-multiple of 64
  for (std::size_t i = 0; i < 67; ++i) b.set(i);
  EXPECT_TRUE(b.all_set());
  b.clear_all();
  EXPECT_TRUE(b.none_set());
  b.set_all();
  EXPECT_TRUE(b.all_set());
  EXPECT_EQ(b.count(), 67u);
}

TEST(Bitmap, FirstClearScansAcrossWords) {
  Bitmap b(200);
  b.set_all();
  b.clear(0);
  b.clear(63);
  b.clear(64);
  b.clear(199);
  EXPECT_EQ(b.first_clear(0).value(), 0u);
  EXPECT_EQ(b.first_clear(1).value(), 63u);
  EXPECT_EQ(b.first_clear(64).value(), 64u);
  EXPECT_EQ(b.first_clear(65).value(), 199u);
  b.set(199);
  EXPECT_FALSE(b.first_clear(65).has_value());
  EXPECT_FALSE(b.first_clear(500).has_value());
}

TEST(Bitmap, FirstSetScans) {
  Bitmap b(130);
  EXPECT_FALSE(b.first_set(0).has_value());
  b.set(129);
  EXPECT_EQ(b.first_set(0).value(), 129u);
  b.set(64);
  EXPECT_EQ(b.first_set(0).value(), 64u);
  EXPECT_EQ(b.first_set(65).value(), 129u);
}

TEST(Bitmap, FirstClearCircularWraps) {
  Bitmap b(10);
  for (std::size_t i = 0; i < 10; ++i) b.set(i);
  b.clear(2);
  EXPECT_EQ(b.first_clear_circular(5).value(), 2u);  // wraps past the end
  EXPECT_EQ(b.first_clear_circular(2).value(), 2u);
  EXPECT_EQ(b.first_clear_circular(12).value(), 2u);  // modulo start
  b.set(2);
  EXPECT_FALSE(b.first_clear_circular(0).has_value());
}

TEST(Bitmap, CountInRange) {
  Bitmap b(256);
  for (std::size_t i = 0; i < 256; i += 3) b.set(i);
  std::size_t expected = 0;
  for (std::size_t i = 10; i < 200; ++i) expected += b.test(i) ? 1 : 0;
  EXPECT_EQ(b.count_in_range(10, 200), expected);
  EXPECT_EQ(b.count_in_range(0, 0), 0u);
  EXPECT_EQ(b.count_in_range(0, 256), b.count());
  EXPECT_EQ(b.count_in_range(63, 65), b.test(63) + b.test(64));
}

TEST(Bitmap, ExtractMergeRoundTrip) {
  Bitmap src(300);
  Rng rng(3);
  for (std::size_t i = 0; i < 300; ++i) {
    if (rng.bernoulli(0.4)) src.set(i);
  }
  const auto packed = src.extract_range(37, 251);
  Bitmap dst(300);
  const std::size_t newly = dst.merge_range(37, 251 - 37, packed.data(), packed.size());
  EXPECT_EQ(newly, src.count_in_range(37, 251));
  for (std::size_t i = 37; i < 251; ++i) EXPECT_EQ(dst.test(i), src.test(i));
  for (std::size_t i = 0; i < 37; ++i) EXPECT_FALSE(dst.test(i));
  // Merging again adds nothing.
  EXPECT_EQ(dst.merge_range(37, 251 - 37, packed.data(), packed.size()), 0u);
}

TEST(Bitmap, Equality) {
  Bitmap a(50), b(50), c(51);
  a.set(10);
  b.set(10);
  EXPECT_EQ(a, b);
  b.set(11);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

// Property test: the bitmap agrees with a std::vector<bool> reference
// under a random operation mix, for several seeds and sizes.
class BitmapPropertyTest : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(BitmapPropertyTest, MatchesReferenceModel) {
  const auto [seed, size] = GetParam();
  Rng rng(seed);
  Bitmap bitmap(size);
  std::vector<bool> model(size, false);

  for (int op = 0; op < 2000; ++op) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        const bool changed = bitmap.set(i);
        EXPECT_EQ(changed, !model[i]);
        model[i] = true;
        break;
      }
      case 1: {
        const bool changed = bitmap.clear(i);
        EXPECT_EQ(changed, model[i]);
        model[i] = false;
        break;
      }
      case 2: {
        EXPECT_EQ(bitmap.test(i), model[i]);
        break;
      }
      case 3: {
        // first_clear from i must match the model scan.
        auto expected = std::optional<std::size_t>{};
        for (std::size_t j = i; j < size; ++j) {
          if (!model[j]) {
            expected = j;
            break;
          }
        }
        EXPECT_EQ(bitmap.first_clear(i), expected);
        break;
      }
    }
    // Count invariant every few steps.
    if (op % 97 == 0) {
      const auto model_count =
          static_cast<std::size_t>(std::count(model.begin(), model.end(), true));
      EXPECT_EQ(bitmap.count(), model_count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapPropertyTest,
                         ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull),
                                            ::testing::Values(std::size_t{63},
                                                              std::size_t{64},
                                                              std::size_t{65},
                                                              std::size_t{1000})));

}  // namespace
}  // namespace fobs::util
