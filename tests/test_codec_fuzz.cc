// Robustness fuzz for the POSIX wire codec: random bytes must never
// crash the decoders, valid encodings must survive random mutation
// without being mis-parsed into out-of-range values, and random valid
// messages must round-trip exactly — including field extremes and empty
// bitmap fragments. Runs under the asan-ubsan preset (ctest label
// "sanitize"), where any out-of-bounds read or UB aborts the test.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "fobs/posix/codec.h"

namespace fobs::posix {
namespace {

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Draws an AckMessage whose fields hit extremes with real probability:
// every 64-bit field is either a uniform draw or one of the interesting
// boundary values, and the fragment is 0..512 bits of random bitmap.
core::AckMessage random_ack(util::Rng& rng) {
  const auto pick_i64 = [&rng]() -> std::int64_t {
    switch (rng.uniform_int(0, 4)) {
      case 0: return 0;
      case 1: return 1;
      case 2: return std::numeric_limits<std::int64_t>::max();
      case 3: return static_cast<std::int64_t>(rng.next());
      default: return rng.uniform_int(0, 1 << 20);
    }
  };
  core::AckMessage ack;
  ack.ack_no = rng.uniform_int(0, 1) != 0 ? rng.next()
                                          : std::numeric_limits<std::uint64_t>::max();
  ack.total_received = pick_i64();
  ack.frontier = pick_i64();
  ack.fragment_start = pick_i64();
  ack.fragment_bits = static_cast<std::int32_t>(rng.uniform_int(0, 512));
  ack.fragment.resize((static_cast<std::size_t>(ack.fragment_bits) + 7) / 8);
  for (auto& byte : ack.fragment) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  ack.complete = rng.uniform_int(0, 1) != 0;
  return ack;
}

TEST_P(CodecFuzz, RandomBytesNeverCrashDecoders) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 512));
    std::vector<std::uint8_t> junk(len);
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Either decoder may return nullopt or a value; it must not crash
    // or read out of bounds (ASAN-visible if it did).
    (void)decode_data_header(junk.data(), junk.size());
    (void)decode_ack(junk.data(), junk.size());
  }
}

TEST_P(CodecFuzz, MutatedAcksEitherRejectOrStayInBounds) {
  util::Rng rng(GetParam() + 1000);
  for (int iteration = 0; iteration < 500; ++iteration) {
    core::AckMessage ack;
    ack.ack_no = rng.next();
    ack.total_received = rng.uniform_int(0, 1 << 20);
    ack.frontier = rng.uniform_int(0, 1 << 20);
    ack.fragment_start = rng.uniform_int(0, 1 << 20);
    ack.fragment_bits = static_cast<std::int32_t>(rng.uniform_int(0, 512));
    ack.fragment.resize((static_cast<std::size_t>(ack.fragment_bits) + 7) / 8);
    auto wire = encode_ack(ack);
    // Flip one random byte.
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
    wire[victim] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    const auto decoded = decode_ack(wire.data(), wire.size());
    if (decoded) {
      // The fragment length must always be consistent with its declared
      // bit count (the invariant the receiver-side merge relies on).
      EXPECT_GE(decoded->fragment.size() * 8,
                static_cast<std::size_t>(std::max(0, static_cast<int>(decoded->fragment_bits))));
    }
  }
}

TEST_P(CodecFuzz, TruncationsAreAlwaysRejectedOrConsistent) {
  util::Rng rng(GetParam() + 2000);
  core::AckMessage ack;
  ack.fragment_bits = 256;
  ack.fragment.resize(32, 0x5A);
  const auto wire = encode_ack(ack);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const auto decoded = decode_ack(wire.data(), cut);
    if (decoded) {
      EXPECT_GE(decoded->fragment.size() * 8,
                static_cast<std::size_t>(decoded->fragment_bits));
    }
  }
}

// The property the protocol relies on: encode/decode is the identity on
// every well-formed AckMessage, bit for bit, field extremes included.
TEST_P(CodecFuzz, RandomAcksRoundTripExactly) {
  util::Rng rng(GetParam() + 3000);
  for (int iteration = 0; iteration < 1000; ++iteration) {
    const auto ack = random_ack(rng);
    const auto wire = encode_ack(ack);
    const auto decoded = decode_ack(wire.data(), wire.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->ack_no, ack.ack_no);
    EXPECT_EQ(decoded->total_received, ack.total_received);
    EXPECT_EQ(decoded->frontier, ack.frontier);
    EXPECT_EQ(decoded->fragment_start, ack.fragment_start);
    EXPECT_EQ(decoded->fragment_bits, ack.fragment_bits);
    EXPECT_EQ(decoded->fragment, ack.fragment);
    EXPECT_EQ(decoded->complete, ack.complete);
  }
}

TEST(CodecEdges, DataHeaderFieldExtremes) {
  for (const core::PacketSeq seq : {core::PacketSeq{0}, core::PacketSeq{1},
                                    std::numeric_limits<core::PacketSeq>::max(),
                                    core::PacketSeq{-1}}) {
    std::uint8_t buf[kDataHeaderSize];
    encode_data_header(DataHeader{seq}, buf);
    const auto decoded = decode_data_header(buf, sizeof buf);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->seq, seq);
  }
}

TEST(CodecEdges, EmptyFragmentAckRoundTrips) {
  core::AckMessage ack;
  ack.ack_no = std::numeric_limits<std::uint64_t>::max();
  ack.total_received = std::numeric_limits<std::int64_t>::max();
  ack.frontier = std::numeric_limits<std::int64_t>::max();
  ack.fragment_start = 0;
  ack.fragment_bits = 0;
  ack.complete = true;
  const auto wire = encode_ack(ack);
  const auto decoded = decode_ack(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ack_no, ack.ack_no);
  EXPECT_EQ(decoded->total_received, ack.total_received);
  EXPECT_EQ(decoded->frontier, ack.frontier);
  EXPECT_TRUE(decoded->fragment.empty());
  EXPECT_TRUE(decoded->complete);
}

TEST(CodecEdges, NegativeFragmentBitsAreRejected) {
  core::AckMessage ack;
  ack.fragment_bits = 8;
  ack.fragment = {0xFF};
  auto wire = encode_ack(ack);
  // Patch the on-wire fragment_bits field (offset 40) to 0x80000000,
  // which decodes to a negative int32.
  wire[40] = 0x80;
  wire[41] = wire[42] = wire[43] = 0;
  EXPECT_FALSE(decode_ack(wire.data(), wire.size()).has_value());
}

TEST(CodecEdges, ZeroLengthBufferRejectedWithoutReads) {
  EXPECT_FALSE(decode_data_header(nullptr, 0).has_value());
  EXPECT_FALSE(decode_ack(nullptr, 0).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace fobs::posix
