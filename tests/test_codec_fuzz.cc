// Robustness fuzz for the POSIX wire codec: random bytes must never
// crash the decoders, and valid encodings must survive random mutation
// without being mis-parsed into out-of-range values.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fobs/posix/codec.h"

namespace fobs::posix {
namespace {

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashDecoders) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 512));
    std::vector<std::uint8_t> junk(len);
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Either decoder may return nullopt or a value; it must not crash
    // or read out of bounds (ASAN-visible if it did).
    (void)decode_data_header(junk.data(), junk.size());
    (void)decode_ack(junk.data(), junk.size());
  }
}

TEST_P(CodecFuzz, MutatedAcksEitherRejectOrStayInBounds) {
  util::Rng rng(GetParam() + 1000);
  for (int iteration = 0; iteration < 500; ++iteration) {
    core::AckMessage ack;
    ack.ack_no = rng.next();
    ack.total_received = rng.uniform_int(0, 1 << 20);
    ack.frontier = rng.uniform_int(0, 1 << 20);
    ack.fragment_start = rng.uniform_int(0, 1 << 20);
    ack.fragment_bits = static_cast<std::int32_t>(rng.uniform_int(0, 512));
    ack.fragment.resize((static_cast<std::size_t>(ack.fragment_bits) + 7) / 8);
    auto wire = encode_ack(ack);
    // Flip one random byte.
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
    wire[victim] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    const auto decoded = decode_ack(wire.data(), wire.size());
    if (decoded) {
      // The fragment length must always be consistent with its declared
      // bit count (the invariant the receiver-side merge relies on).
      EXPECT_GE(decoded->fragment.size() * 8,
                static_cast<std::size_t>(std::max(0, static_cast<int>(decoded->fragment_bits))));
    }
  }
}

TEST_P(CodecFuzz, TruncationsAreAlwaysRejectedOrConsistent) {
  util::Rng rng(GetParam() + 2000);
  core::AckMessage ack;
  ack.fragment_bits = 256;
  ack.fragment.resize(32, 0x5A);
  const auto wire = encode_ack(ack);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const auto decoded = decode_ack(wire.data(), cut);
    if (decoded) {
      EXPECT_GE(decoded->fragment.size() * 8,
                static_cast<std::size_t>(decoded->fragment_bits));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace fobs::posix
