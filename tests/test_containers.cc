// Unit tests for RingBuffer, TextTable, and ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>

#include "common/ring_buffer.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace fobs::util {
namespace {

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rb.push(i));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(99));  // dropped
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rb.pop(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAround) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.pop(), 1);
  rb.push(3);
  rb.push(4);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<std::string> rb(2);
  rb.push("a");
  rb.push("b");
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push("c"));
  EXPECT_EQ(rb.pop(), "c");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  // Header and rows padded to the widest cell.
  EXPECT_NE(out.find("name         value"), std::string::npos);
  EXPECT_NE(out.find("longer-name  22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvQuoting) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  std::ostringstream oss;
  t.print_csv(oss);
  const std::string csv = oss.str();
  EXPECT_NE(csv.find("plain,\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.895, 1), "89.5%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

}  // namespace
}  // namespace fobs::util
