// Tests for per-host CPU reservation: co-located transfers contend for
// the core instead of each pretending to own it.
#include <gtest/gtest.h>

#include "exp/testbeds.h"
#include "fobs/sim_driver.h"
#include "host/host.h"
#include "sim/node.h"

namespace fobs {
namespace {

using host::Host;
using host::HostConfig;
using util::Duration;
using util::TimePoint;

TEST(CpuReservation, LoneReserverGetsNowPlusCost) {
  sim::Simulation simulation;
  sim::Network net(simulation);
  auto& host = Host::create(net, HostConfig{});
  const auto done = host.reserve_cpu(Duration::microseconds(10));
  EXPECT_EQ(done.us(), 10);
}

TEST(CpuReservation, BackToBackReservationsSerialize) {
  sim::Simulation simulation;
  sim::Network net(simulation);
  auto& host = Host::create(net, HostConfig{});
  EXPECT_EQ(host.reserve_cpu(Duration::microseconds(10)).us(), 10);
  EXPECT_EQ(host.reserve_cpu(Duration::microseconds(5)).us(), 15);
  EXPECT_EQ(host.reserve_cpu(Duration::microseconds(1)).us(), 16);
}

TEST(CpuReservation, IdleGapsAreNotAccumulated) {
  sim::Simulation simulation;
  sim::Network net(simulation);
  auto& host = Host::create(net, HostConfig{});
  (void)host.reserve_cpu(Duration::microseconds(10));
  // Let simulated time pass beyond the reservation.
  simulation.run_until(TimePoint::from_ns(Duration::microseconds(100).ns()));
  EXPECT_EQ(host.reserve_cpu(Duration::microseconds(10)).us(), 110);
}

TEST(CpuReservation, NegativeCostClampsToZero) {
  sim::Simulation simulation;
  sim::Network net(simulation);
  auto& host = Host::create(net, HostConfig{});
  EXPECT_EQ(host.reserve_cpu(Duration::microseconds(-3)).ns(), 0);
}

TEST(CpuContention, ColocatedLoadSlowsACpuBoundTransfer) {
  // The gigabit testbed's receiver is CPU-bound. A co-located process
  // stealing ~50% of the destination core (in 100 us slices) must slow
  // the transfer accordingly — this only works if drivers actually
  // share the per-host CPU timeline.
  auto run_transfer = [](bool with_hog) {
    exp::Testbed bed(exp::PathId::kGigabitOc12);
    auto& sim = bed.sim();
    core::TransferSpec spec{8 * 1024 * 1024, 1024};
    core::SimSender sender(bed.src(), spec, core::SenderConfig{}, nullptr, bed.dst().id());
    core::SimReceiver receiver(bed.dst(), spec, core::ReceiverConfig{}, nullptr,
                               bed.src().id(), 256 * 1024);
    bool finished = false;
    sender.set_on_finished([&finished] { finished = true; });
    std::function<void()> hog = [&]() {
      (void)bed.dst().reserve_cpu(Duration::microseconds(100));
      sim.schedule_in(Duration::microseconds(200), hog);
    };
    if (with_hog) hog();
    receiver.start();
    sender.start();
    while (!finished && sim.now().seconds() < 120 && sim.step()) {
    }
    return receiver.complete() ? receiver.completed_at().seconds() : -1.0;
  };

  const double alone = run_transfer(false);
  const double contended = run_transfer(true);
  ASSERT_GT(alone, 0.0);
  ASSERT_GT(contended, 0.0);
  // With ~50% of the receive CPU stolen, the CPU-bound transfer should
  // take roughly twice as long; require at least 1.5x.
  EXPECT_GT(contended, 1.5 * alone);
}

}  // namespace
}  // namespace fobs
