// TransferEngine: many concurrent FOBS sessions in one process. The
// heart of the suite is the isolation test — three simultaneous
// transfers of different sizes (one under fault injection), all
// byte-identical, with per-session traces and results that never bleed
// into each other. Plus handle lifecycle (wait/status/cancel), the
// control-port allocator, and engine counters.
//
// Port block: 37000-37099 (keep clear of 36xxx = test_fobs_posix /
// test_telemetry and 38xxx = test_fault_posix).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "fobs/posix/engine.h"
#include "fobs/sim_transfer.h"
#include "telemetry/trace.h"

namespace fobs {
namespace {

std::uint16_t port_base(int offset) { return static_cast<std::uint16_t>(37000 + offset); }

// ---------------------------------------------------------------------------
// Satellite: >= 3 simultaneous transfers, isolated per-session state
// ---------------------------------------------------------------------------

TEST(EngineConcurrency, ThreeSimultaneousTransfersAreByteIdenticalAndIsolated) {
  // Three pairs, mixed sizes, the middle one under 2% data corruption.
  // Six sessions run at once on one engine; every sink must match its
  // object and only the faulted pair may report corrupt drops.
  const std::vector<std::int64_t> sizes = {256 * 1024, 1024 * 1024 + 13, 512 * 1024};
  std::vector<std::vector<std::uint8_t>> objects;
  std::vector<std::vector<std::uint8_t>> sinks;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    objects.push_back(core::make_pattern(sizes[i], 0xE61 + static_cast<int>(i)));
    sinks.emplace_back(objects.back().size(), 0);
  }

  posix::TransferEngine engine({.workers = 6, .session_tracers = true});
  std::vector<posix::TransferHandle> rx;
  std::vector<posix::TransferHandle> tx;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    posix::ReceiverOptions ropt;
    ropt.data_port = port_base(static_cast<int>(2 * i));
    ropt.control_port = port_base(static_cast<int>(2 * i + 1));
    ropt.core.ack_frequency = 16;
    ropt.endpoint.timeout_ms = 30'000;
    posix::SenderOptions sopt;
    sopt.data_port = ropt.data_port;
    sopt.control_port = ropt.control_port;
    sopt.endpoint.timeout_ms = 30'000;
    if (i == 1) sopt.endpoint.fault_plan = "seed=7;data.corrupt=0.02";
    rx.push_back(engine.submit_receive(ropt, std::span<std::uint8_t>(sinks[i])));
    tx.push_back(engine.submit_send(sopt, std::span<const std::uint8_t>(objects[i])));
  }
  ASSERT_EQ(engine.sessions_submitted(), 2 * sizes.size());

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(rx[i].wait(), posix::TransferStatus::kCompleted)
        << "receiver " << i << ": " << rx[i].receiver_result().error;
    EXPECT_EQ(tx[i].wait(), posix::TransferStatus::kCompleted)
        << "sender " << i << ": " << tx[i].sender_result().error;
    EXPECT_EQ(sinks[i], objects[i]) << "pair " << i << " not byte-identical";
  }
  engine.wait_idle();
  EXPECT_EQ(engine.active_sessions(), 0u);
  EXPECT_EQ(engine.sessions_completed(), 2 * sizes.size());
  EXPECT_EQ(engine.sessions_failed(), 0u);

  // Result isolation: only the faulted pair saw corruption.
  EXPECT_GT(rx[1].receiver_result().corrupt_packets_dropped, 0);
  EXPECT_EQ(rx[0].receiver_result().corrupt_packets_dropped, 0);
  EXPECT_EQ(rx[2].receiver_result().corrupt_packets_dropped, 0);
  // Per-pair packet counts reflect each pair's own object, not a shared
  // tally.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(rx[i].receiver_result().packets_received, (sizes[i] + 1023) / 1024)
        << "pair " << i;
  }

  // Trace isolation: six distinct engine-owned tracers, each telling
  // exactly one session's story.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_NE(rx[i].tracer(), nullptr);
    ASSERT_NE(tx[i].tracer(), nullptr);
    EXPECT_NE(rx[i].tracer(), tx[i].tracer());
    EXPECT_EQ(rx[i].tracer()->count(telemetry::EventType::kTransferStart), 1);
    EXPECT_EQ(tx[i].tracer()->count(telemetry::EventType::kTransferStart), 1);
    EXPECT_GE(rx[i].tracer()->count(telemetry::EventType::kCompletion), 1);
    EXPECT_EQ(rx[i].tracer()->count(telemetry::EventType::kTimeout), 0);
  }
  EXPECT_NE(rx[0].tracer(), rx[1].tracer());
  EXPECT_NE(rx[1].tracer(), rx[2].tracer());
}

// ---------------------------------------------------------------------------
// Handle lifecycle
// ---------------------------------------------------------------------------

TEST(EngineHandle, IdsAreUniqueAndStatusTurnsTerminal) {
  const auto object = core::make_pattern(64 * 1024, 0x1D5);
  std::vector<std::uint8_t> sink(object.size(), 0);

  posix::ReceiverOptions ropt;
  ropt.data_port = port_base(20);
  ropt.control_port = port_base(21);
  ropt.endpoint.timeout_ms = 30'000;
  posix::SenderOptions sopt;
  sopt.data_port = ropt.data_port;
  sopt.control_port = ropt.control_port;
  sopt.endpoint.timeout_ms = 30'000;

  posix::TransferEngine engine({.workers = 2});
  auto rx = engine.submit_receive(ropt, std::span<std::uint8_t>(sink));
  auto tx = engine.submit_send(sopt, std::span<const std::uint8_t>(object));
  ASSERT_TRUE(rx.valid());
  ASSERT_TRUE(tx.valid());
  EXPECT_NE(rx.id(), tx.id());
  EXPECT_FALSE(rx.is_sender());
  EXPECT_TRUE(tx.is_sender());

  EXPECT_TRUE(rx.wait_for(std::chrono::milliseconds(30'000)));
  EXPECT_EQ(tx.wait(), posix::TransferStatus::kCompleted);
  EXPECT_TRUE(rx.done());
  EXPECT_TRUE(tx.done());
  EXPECT_TRUE(tx.sender_result().completed());
  EXPECT_TRUE(rx.receiver_result().completed());
  EXPECT_EQ(sink, object);
  // Results outlive the engine through the handle.
  EXPECT_EQ(to_string(rx.status()), std::string("completed"));
}

TEST(EngineHandle, CancelStopsAWaitingSession) {
  // A receiver with no sender would otherwise wait out its full
  // 30-second timeout; cancel() must end it promptly.
  std::vector<std::uint8_t> sink(64 * 1024, 0);
  posix::ReceiverOptions ropt;
  ropt.data_port = port_base(24);
  ropt.control_port = port_base(25);
  ropt.endpoint.timeout_ms = 30'000;

  posix::TransferEngine engine({.workers = 1});
  auto handle = engine.submit_receive(ropt, std::span<std::uint8_t>(sink));
  const auto start = std::chrono::steady_clock::now();
  // Let the session actually start before cancelling it.
  while (handle.status() == posix::TransferStatus::kPending &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  handle.cancel();
  const auto status = handle.wait();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(status, posix::TransferStatus::kCancelled);
  EXPECT_FALSE(handle.receiver_result().completed());
  EXPECT_LT(elapsed, 10'000) << "cancel should not wait out the 30 s timeout";
}

TEST(EngineHandle, BadOptionsSessionTurnsTerminalWithBadOptions) {
  std::vector<std::uint8_t> sink(1024, 0);
  posix::TransferEngine engine({.workers = 1});
  auto handle = engine.submit_receive(posix::ReceiverOptions{},  // no ports
                                      std::span<std::uint8_t>(sink));
  EXPECT_EQ(handle.wait(), posix::TransferStatus::kBadOptions);
  EXPECT_FALSE(handle.receiver_result().error.empty());
  engine.wait_idle();
  EXPECT_EQ(engine.sessions_failed(), 1u);
  EXPECT_EQ(engine.sessions_completed(), 0u);
}

TEST(EngineHandle, InvalidHandleAccessorsAreSafe) {
  // A default-constructed handle has no session; every accessor must
  // degrade gracefully instead of dereferencing null.
  posix::TransferHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.id(), 0u);
  EXPECT_EQ(handle.status(), posix::TransferStatus::kPending);
  EXPECT_FALSE(handle.done());
  EXPECT_FALSE(handle.wait_for(std::chrono::milliseconds(1)));
  EXPECT_EQ(handle.tracer(), nullptr);
  handle.cancel();  // no-op
  EXPECT_FALSE(handle.sender_result().completed());
  EXPECT_FALSE(handle.receiver_result().completed());
  EXPECT_TRUE(handle.sender_result().error.empty());
}

TEST(EngineLifecycle, DestructorCancelsLiveSessions) {
  // An engine with a stuck session must tear down promptly instead of
  // waiting out the session's timeout.
  std::vector<std::uint8_t> sink(64 * 1024, 0);
  posix::ReceiverOptions ropt;
  ropt.data_port = port_base(28);
  ropt.control_port = port_base(29);
  ropt.endpoint.timeout_ms = 30'000;

  posix::TransferHandle handle;
  const auto start = std::chrono::steady_clock::now();
  {
    posix::TransferEngine engine({.workers = 1});
    handle = engine.submit_receive(ropt, std::span<std::uint8_t>(sink));
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(handle.status(), posix::TransferStatus::kCancelled);
  EXPECT_LT(elapsed, 10'000);
}

// ---------------------------------------------------------------------------
// Control-port allocator
// ---------------------------------------------------------------------------

TEST(EnginePorts, AllocateReleaseAndExhaust) {
  posix::TransferEngine engine(
      {.workers = 1, .control_port_base = port_base(40), .control_port_count = 3});
  EXPECT_EQ(engine.free_control_ports(), 3u);

  const auto a = engine.allocate_control_port();
  const auto b = engine.allocate_control_port();
  const auto c = engine.allocate_control_port();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(engine.free_control_ports(), 0u);
  // Distinct ports, all inside the configured range.
  EXPECT_NE(*a, *b);
  EXPECT_NE(*b, *c);
  EXPECT_NE(*a, *c);
  for (const auto port : {*a, *b, *c}) {
    EXPECT_GE(port, port_base(40));
    EXPECT_LT(port, port_base(43));
  }
  // Exhausted: the allocator sheds instead of inventing ports.
  EXPECT_FALSE(engine.allocate_control_port().has_value());

  engine.release_control_port(*b);
  EXPECT_EQ(engine.free_control_ports(), 1u);
  const auto again = engine.allocate_control_port();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *b);
}

TEST(EnginePorts, DisabledAllocatorAlwaysRefuses) {
  posix::TransferEngine engine({.workers = 1});
  EXPECT_EQ(engine.free_control_ports(), 0u);
  EXPECT_FALSE(engine.allocate_control_port().has_value());
}

TEST(EnginePorts, RangePastPortMaxIsClampedNotWrapped) {
  // base 65530 + count 100 would wrap uint16_t arithmetic and hand out
  // low-numbered ports; the engine must clamp the range to the valid
  // tail instead. (The allocator is pure bookkeeping — nothing binds.)
  posix::TransferEngine engine(
      {.workers = 1, .control_port_base = 65'530, .control_port_count = 100});
  EXPECT_EQ(engine.free_control_ports(), 6u);
  for (int i = 0; i < 6; ++i) {
    const auto port = engine.allocate_control_port();
    ASSERT_TRUE(port.has_value());
    EXPECT_GE(*port, 65'530);
  }
  EXPECT_FALSE(engine.allocate_control_port().has_value());

  // Base 0 is not a usable listening port: the allocator stays disabled
  // rather than handing out ports 0..N-1.
  posix::TransferEngine zero_base(
      {.workers = 1, .control_port_base = 0, .control_port_count = 8});
  EXPECT_EQ(zero_base.free_control_ports(), 0u);
  EXPECT_FALSE(zero_base.allocate_control_port().has_value());
}

TEST(EnginePorts, OwnedPortIsReleasedWhenSessionEnds) {
  posix::TransferEngine engine(
      {.workers = 1, .control_port_base = port_base(44), .control_port_count = 1});
  const auto port = engine.allocate_control_port();
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(engine.free_control_ports(), 0u);

  // The session fails instantly (bad options) — but its owned port must
  // still flow back to the allocator.
  std::vector<std::uint8_t> sink(1024, 0);
  posix::SessionParams params;
  params.owned_control_port = *port;
  auto handle =
      engine.submit_receive(posix::ReceiverOptions{}, std::span<std::uint8_t>(sink),
                            std::move(params));
  handle.wait();
  engine.wait_idle();
  EXPECT_EQ(engine.free_control_ports(), 1u);
}

}  // namespace
}  // namespace fobs
