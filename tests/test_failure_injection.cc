// Failure injection: FOBS must survive pathological network weather —
// total ACK loss, full outages, crushing one-way loss — as long as the
// TCP control channel eventually works.
#include <gtest/gtest.h>

#include <memory>

#include "exp/scenario.h"
#include "exp/testbeds.h"
#include "fobs/sim_transfer.h"

namespace fobs {
namespace {

using core::SimTransferConfig;
using core::run_sim_transfer;
using exp::PathId;
using exp::ScheduledLoss;
using exp::Testbed;

SimTransferConfig small_config() {
  SimTransferConfig config;
  config.spec.object_bytes = 2 * 1024 * 1024;
  config.carry_data = true;
  return config;
}

TEST(FailureInjection, AllFobsAcksLostStillCompletes) {
  // The reverse UDP path drops everything; FOBS ACKs never arrive. The
  // sender cycles the whole object blindly, the receiver completes, and
  // the reliable TCP completion signal (retransmitted through the same
  // lossy reverse path) ends the transfer. Waste is enormous — that is
  // the design trade, not a bug.
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.rev_loss = 0.0;  // replace with a selective model below
  Testbed bed(spec);

  // Drop only UDP-sized ACK packets on the reverse backbone; let the
  // small TCP control segments through with heavy-but-survivable loss.
  class DropUdpAcks final : public sim::LossModel {
   public:
    bool should_drop(const sim::Packet& packet, util::Rng&) override {
      // FOBS ACKs are UDP (28B overhead) with ~1KB payloads; TCP
      // control is 40B-overhead tiny segments.
      return packet.size_bytes > 200;
    }
  };
  // Reverse chain: find it via the dst host's egress (dst-nic link) —
  // attach the filter there.
  bed.dst().egress()->set_loss_model(std::make_unique<DropUdpAcks>(), util::Rng(1));

  auto config = small_config();
  config.timeout = util::Duration::seconds(300);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  // The sender cycles blind for the extra control-channel latency; with
  // no ACKs at all, every one of those sends is a duplicate.
  EXPECT_GT(result.waste, 0.15);
}

TEST(FailureInjection, ForwardOutageMidTransferRecovers) {
  // The forward path goes 100% dark for 500 ms in the middle of the
  // transfer, then comes back. Everything sent into the outage is lost;
  // the bitmap protocol refills the holes.
  auto spec = exp::spec_for(PathId::kShortHaul);
  Testbed bed(spec);
  auto loss = std::make_unique<ScheduledLoss>();
  auto* raw = loss.get();
  bed.backbone().set_loss_model(std::move(loss), util::Rng(2));
  // The clean transfer takes ~170 ms; go dark from 50 ms to 250 ms.
  bed.sim().schedule_in(util::Duration::milliseconds(50),
                        [raw] { raw->set_probability(1.0); });
  bed.sim().schedule_in(util::Duration::milliseconds(250),
                        [raw] { raw->set_probability(0.0); });

  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), small_config());
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  // Roughly 200 ms of 100 Mb/s went into the void: sizeable waste.
  EXPECT_GT(result.waste, 0.2);
  // And the transfer stretches past the outage end.
  EXPECT_GT(result.receiver_elapsed.seconds(), 0.3);
}

TEST(FailureInjection, CrushingForwardLossStillConverges) {
  // 30% packet loss: each pass delivers ~70%; convergence is geometric.
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 0.3;
  Testbed bed(spec);
  auto config = small_config();
  config.timeout = util::Duration::seconds(300);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  EXPECT_GT(result.waste, 0.3);
}

TEST(FailureInjection, BothDirectionsLossyTcpControlStillFinishesIt) {
  auto spec = exp::spec_for(PathId::kLongHaul);
  spec.fwd_loss = 0.05;
  spec.rev_loss = 0.05;
  Testbed bed(spec);
  auto config = small_config();
  config.timeout = util::Duration::seconds(300);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
}

TEST(FailureInjection, TinyReceiverSocketBufferNeverDeadlocks) {
  // A 4 KiB socket buffer (fits ~3 datagrams) thrashes but completes.
  Testbed bed(PathId::kShortHaul);
  auto config = small_config();
  config.receiver_socket_buffer_bytes = 4 * 1024;
  config.timeout = util::Duration::seconds(300);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
}

TEST(FailureInjection, OnePacketObjectSurvivesLoss) {
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 0.5;
  Testbed bed(spec);
  SimTransferConfig config;
  config.spec.object_bytes = 777;  // single short packet
  config.carry_data = true;
  config.timeout = util::Duration::seconds(120);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  EXPECT_EQ(result.packets_needed, 1);
}

}  // namespace
}  // namespace fobs
