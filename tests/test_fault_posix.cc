// Crash-resilience tests over real loopback sockets: option validation,
// garbage-datagram tolerance, checksum rejection, stall-based give-up,
// and the checkpoint/resume path (kill the receiver mid-transfer,
// restart it from the sidecar, and finish with fewer sender packets
// than a from-scratch rerun).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fobs/posix/checkpoint.h"
#include "fobs/posix/codec.h"
#include "fobs/posix/posix_transfer.h"
#include "fobs/sim_transfer.h"
#include "telemetry/trace.h"

namespace fobs {
namespace {

// Distinct port bases per test to avoid rebind races (keep clear of
// test_fobs_posix.cc's 36xxx block).
std::uint16_t port_base(int offset) { return static_cast<std::uint16_t>(38000 + offset); }

// ---------------------------------------------------------------------------
// Option validation (no sockets touched)
// ---------------------------------------------------------------------------

TEST(FaultPosixValidation, SenderRejectsBadOptions) {
  const std::vector<std::uint8_t> object(1024, 0xAA);

  posix::SenderOptions no_ports;
  auto result = posix::send_object(no_ports, object);
  EXPECT_EQ(result.status, posix::TransferStatus::kBadOptions);
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.error.find("data_port"), std::string::npos) << result.error;

  posix::SenderOptions bad_packet;
  bad_packet.data_port = port_base(0);
  bad_packet.control_port = port_base(1);
  bad_packet.endpoint.packet_bytes = 0;
  result = posix::send_object(bad_packet, object);
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.error.find("packet_bytes"), std::string::npos) << result.error;

  posix::SenderOptions empty_object;
  empty_object.data_port = port_base(0);
  empty_object.control_port = port_base(1);
  result = posix::send_object(empty_object, {});
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.error.find("empty object"), std::string::npos) << result.error;
}

TEST(FaultPosixValidation, ReceiverRejectsBadOptions) {
  std::vector<std::uint8_t> sink(1024, 0);

  posix::ReceiverOptions no_ports;
  auto result = posix::receive_object(no_ports, sink);
  EXPECT_EQ(result.status, posix::TransferStatus::kBadOptions);
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.error.find("data_port"), std::string::npos) << result.error;

  posix::ReceiverOptions bad_packet;
  bad_packet.data_port = port_base(2);
  bad_packet.control_port = port_base(3);
  bad_packet.endpoint.packet_bytes = -5;
  result = posix::receive_object(bad_packet, sink);
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.error.find("packet_bytes"), std::string::npos) << result.error;

  posix::ReceiverOptions empty_buffer;
  empty_buffer.data_port = port_base(2);
  empty_buffer.control_port = port_base(3);
  result = posix::receive_object(empty_buffer, {});
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.error.find("empty buffer"), std::string::npos) << result.error;
}

TEST(FaultPosixValidation, MalformedFaultPlanIsReportedNotIgnored) {
  const std::vector<std::uint8_t> object(1024, 0xAA);
  posix::SenderOptions options;
  options.data_port = port_base(4);
  options.control_port = port_base(5);
  options.endpoint.fault_plan = "data.corrupt=2.0";
  const auto result = posix::send_object(options, object);
  EXPECT_EQ(result.status, posix::TransferStatus::kBadOptions);
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.error.find("invalid fault plan"), std::string::npos) << result.error;
}

// ---------------------------------------------------------------------------
// Stall-based give-up
// ---------------------------------------------------------------------------

TEST(FaultPosixStall, SenderGivesUpAfterEmptyIntervalsWithStallTrace) {
  // No receiver exists: zero progress. The sender must die through the
  // stall budget — `stall_intervals` stall events, then the timeout —
  // in about timeout_ms, not hang.
  const auto object = core::make_pattern(64 * 1024, 0xBEEF);
  telemetry::EventTracer trace;
  posix::SenderOptions options;
  options.data_port = port_base(6);
  options.control_port = port_base(7);
  options.endpoint.timeout_ms = 1'000;
  options.endpoint.stall_intervals = 4;
  options.endpoint.tracer = &trace;

  const auto start = std::chrono::steady_clock::now();
  const auto result = posix::send_object(options, object);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(result.completed());
  EXPECT_EQ(result.status, posix::TransferStatus::kTimeout);
  EXPECT_EQ(result.error, "timeout");
  EXPECT_LT(elapsed, options.endpoint.timeout_ms + 5'000);
  EXPECT_EQ(trace.count(telemetry::EventType::kStall), options.endpoint.stall_intervals);
  const auto events = trace.snapshot();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[events.size() - 2].type, telemetry::EventType::kStall);
  EXPECT_EQ(events.back().type, telemetry::EventType::kTimeout);
}

// ---------------------------------------------------------------------------
// Live-transfer harness
// ---------------------------------------------------------------------------

struct TransferPair {
  posix::SenderResult sender;
  posix::ReceiverResult receiver;
};

/// Runs one sender/receiver pair to completion on loopback.
TransferPair run_pair(const posix::SenderOptions& send_opts,
                      const posix::ReceiverOptions& recv_opts,
                      std::span<const std::uint8_t> object, std::span<std::uint8_t> sink) {
  TransferPair out;
  std::thread receiver_thread([&] { out.receiver = posix::receive_object(recv_opts, sink); });
  out.sender = posix::send_object(send_opts, object);
  receiver_thread.join();
  return out;
}

// ---------------------------------------------------------------------------
// Garbage datagrams (satellite: protocol sockets must shrug them off)
// ---------------------------------------------------------------------------

TEST(FaultPosixGarbage, TransferSurvivesGarbageDatagramsAndCorruptAcks) {
  const std::int64_t object_bytes = 256 * 1024;
  const std::int64_t packet_bytes = 1024;
  const auto object = core::make_pattern(object_bytes, 0xF00D);
  std::vector<std::uint8_t> sink(object.size(), 0);

  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(10);
  recv_opts.control_port = port_base(11);
  recv_opts.endpoint.packet_bytes = packet_bytes;
  recv_opts.core.ack_frequency = 4;
  recv_opts.endpoint.timeout_ms = 30'000;
  // Most outgoing ACKs are corrupted in flight: the sender's decoder
  // must reject and count them while the transfer still completes off
  // the clean minority plus the completion token.
  recv_opts.endpoint.fault_plan = "seed=3;ack.corrupt=0.9";

  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.packet_bytes = packet_bytes;
  send_opts.endpoint.timeout_ms = 30'000;

  // A hostile neighbour sprays junk at the receiver's data port for the
  // whole transfer: random blobs, wrong-magic headers, truncated
  // packets, and valid-looking headers with out-of-range sequences.
  std::atomic<bool> stop{false};
  std::thread garbage_thread([&] {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_port = htons(recv_opts.data_port);
    ::inet_pton(AF_INET, "127.0.0.1", &to.sin_addr);
    util::Rng rng(0xBAD);
    std::vector<std::uint8_t> junk(512);
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.next());
      // 1/4 of the junk gets a valid magic+type so it reaches the
      // deeper validation layers (bad seq, truncated payload, bad CRC).
      if (rng.next() % 4 == 0) {
        posix::encode_data_header(
            posix::DataHeader{static_cast<core::PacketSeq>(rng.next() % 4096), 0},
            junk.data());
      }
      const std::size_t len = 1 + static_cast<std::size_t>(rng.next() % junk.size());
      ::sendto(fd, junk.data(), len, 0, reinterpret_cast<sockaddr*>(&to), sizeof to);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ::close(fd);
  });

  const auto pair = run_pair(send_opts, recv_opts, object, sink);
  stop.store(true);
  garbage_thread.join();

  ASSERT_TRUE(pair.receiver.completed()) << pair.receiver.error;
  ASSERT_TRUE(pair.sender.completed()) << pair.sender.error;
  EXPECT_EQ(sink, object);  // garbage never landed in the object
  // The corrupted ACKs were seen and rejected, not silently accepted.
  EXPECT_GT(pair.sender.corrupt_acks_dropped, 0);
}

TEST(FaultPosixGarbage, CorruptedDataPacketsAreRejectedAndResent) {
  const auto object = core::make_pattern(256 * 1024, 0xC0DE);
  std::vector<std::uint8_t> sink(object.size(), 0);

  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(12);
  recv_opts.control_port = port_base(13);
  recv_opts.core.ack_frequency = 16;
  recv_opts.endpoint.timeout_ms = 30'000;

  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.timeout_ms = 30'000;
  // 2% of data packets are corrupted after the checksum is computed.
  send_opts.endpoint.fault_plan = "seed=11;data.corrupt=0.02";

  const auto pair = run_pair(send_opts, recv_opts, object, sink);
  ASSERT_TRUE(pair.receiver.completed()) << pair.receiver.error;
  ASSERT_TRUE(pair.sender.completed()) << pair.sender.error;
  EXPECT_EQ(sink, object);
  EXPECT_GT(pair.receiver.corrupt_packets_dropped, 0);
  EXPECT_GT(pair.sender.packets_sent, pair.sender.packets_needed);
}

// ---------------------------------------------------------------------------
// Crash + checkpoint + resume (the tentpole acceptance path)
// ---------------------------------------------------------------------------

/// One full crash-and-restart scenario: the receiver dies after 3500
/// data packets, then a second incarnation (same buffer) runs to
/// completion. Both variants checkpoint identically — the only
/// difference is whether the sidecar survives to the restart (`resume`)
/// or is wiped first (a true from-scratch restart), so the packet-count
/// comparison isolates exactly what the resume handshake saves.
TransferPair run_crash_restart(int port_offset, bool resume,
                               std::span<const std::uint8_t> object,
                               std::span<std::uint8_t> sink,
                               posix::ReceiverResult* first_incarnation = nullptr) {
  const std::string checkpoint_path =
      ::testing::TempDir() + "fobs_resume_" + std::to_string(port_offset) + ".ckpt";
  posix::remove_checkpoint(checkpoint_path);

  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(port_offset);
  recv_opts.control_port = port_base(port_offset + 1);
  recv_opts.core.ack_frequency = 16;
  recv_opts.endpoint.timeout_ms = 30'000;
  recv_opts.checkpoint_path = checkpoint_path;
  recv_opts.checkpoint_every_acks = 4;

  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.timeout_ms = 30'000;

  TransferPair out;
  std::thread receiver_thread([&] {
    // Incarnation 1: killed by the injected crash late in the transfer,
    // so the checkpointed bitmap is worth far more than the timing
    // noise of the restart window.
    auto crash_opts = recv_opts;
    crash_opts.endpoint.fault_plan = "crash=3500";
    const auto crashed = posix::receive_object(crash_opts, sink);
    if (first_incarnation != nullptr) *first_incarnation = crashed;
    if (!resume) posix::remove_checkpoint(checkpoint_path);
    // Incarnation 2: restart into the same buffer.
    out.receiver = posix::receive_object(recv_opts, sink);
  });
  out.sender = posix::send_object(send_opts, object);
  receiver_thread.join();
  posix::remove_checkpoint(checkpoint_path);
  return out;
}

TEST(FaultPosixResume, RestartedReceiverResumesFromCheckpoint) {
  const auto object = core::make_pattern(4 * 1024 * 1024, 0xACE);
  std::vector<std::uint8_t> resumed_sink(object.size(), 0);
  std::vector<std::uint8_t> scratch_sink(object.size(), 0);

  posix::ReceiverResult crashed;
  const auto resumed =
      run_crash_restart(20, /*resume=*/true, object, resumed_sink, &crashed);
  EXPECT_EQ(crashed.status, posix::TransferStatus::kCrashed);
  EXPECT_EQ(crashed.error, "injected crash");
  ASSERT_TRUE(resumed.receiver.completed()) << resumed.receiver.error;
  ASSERT_TRUE(resumed.sender.completed()) << resumed.sender.error;
  EXPECT_EQ(resumed_sink, object);  // pre-crash bytes + resumed bytes agree
  // The second incarnation really started from the sidecar, and the
  // sender saw the restart as a control-channel reconnect.
  EXPECT_GT(resumed.receiver.packets_restored, 0);
  EXPECT_GE(resumed.sender.reconnects, 1);

  // Baseline: same crash, but the restart begins from scratch.
  const auto scratch = run_crash_restart(24, /*resume=*/false, object, scratch_sink);
  ASSERT_TRUE(scratch.receiver.completed()) << scratch.receiver.error;
  ASSERT_TRUE(scratch.sender.completed()) << scratch.sender.error;
  EXPECT_EQ(scratch.receiver.packets_restored, 0);

  // The resume handshake let the sender skip every packet the first
  // incarnation stored: strictly fewer sends than the from-scratch run.
  EXPECT_LT(resumed.sender.packets_sent, scratch.sender.packets_sent);
}

TEST(FaultPosixResume, CheckpointIsRemovedAfterCompletion) {
  const std::string checkpoint_path = ::testing::TempDir() + "fobs_resume_cleanup.ckpt";
  posix::remove_checkpoint(checkpoint_path);
  const auto object = core::make_pattern(128 * 1024, 0xFACE);
  std::vector<std::uint8_t> sink(object.size(), 0);

  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(28);
  recv_opts.control_port = port_base(29);
  recv_opts.core.ack_frequency = 16;
  recv_opts.endpoint.timeout_ms = 30'000;
  recv_opts.checkpoint_path = checkpoint_path;
  recv_opts.checkpoint_every_acks = 1;

  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.timeout_ms = 30'000;

  const auto pair = run_pair(send_opts, recv_opts, object, sink);
  ASSERT_TRUE(pair.receiver.completed()) << pair.receiver.error;
  EXPECT_EQ(sink, object);
  // A completed transfer leaves no sidecar behind.
  EXPECT_FALSE(posix::load_checkpoint(checkpoint_path).has_value());
}

}  // namespace
}  // namespace fobs
