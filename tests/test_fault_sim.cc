// Fault-injection over the simulated testbeds: corruption and ACK
// blackholes must not damage delivered bytes, and a transfer that stops
// progressing must give up via stall detection (stall events, then a
// timeout), not just a wall-clock deadline.
#include <gtest/gtest.h>

#include "exp/testbeds.h"
#include "fobs/sim_transfer.h"
#include "net/faults.h"
#include "telemetry/trace.h"

namespace fobs {
namespace {

using core::SimTransferConfig;
using core::run_sim_transfer;
using exp::PathId;
using exp::Testbed;
using telemetry::EventType;

SimTransferConfig small_transfer(std::int64_t kilobytes = 1024) {
  SimTransferConfig config;
  config.spec.object_bytes = kilobytes * 1024;
  config.spec.packet_bytes = 1024;
  config.receiver.ack_frequency = 64;
  return config;
}

net::FaultPlan plan_of(const std::string& spec) {
  std::string error;
  const auto plan = net::FaultPlan::parse(spec, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(net::FaultPlan{});
}

TEST(FaultSim, CorruptionAndAckBlackholeStillDeliverCleanBytes) {
  // 1% of data packets arrive with a failing checksum and the first few
  // ACKs (about one RTT window of acking) are blackholed. The transfer
  // must still complete, with every rejected packet re-sent and zero
  // corrupted bytes written into the object.
  Testbed bed(PathId::kShortHaul);
  auto config = small_transfer();
  config.fault_plan = plan_of("seed=42;data.corrupt=0.01;ack.blackhole=0+4");
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);  // byte-exact despite the damage
  EXPECT_GT(result.corrupt_drops, 0);
  // Every corrupted packet forced at least one retransmission.
  EXPECT_GT(result.packets_sent, result.packets_needed);
  EXPECT_FALSE(result.stalled);
}

TEST(FaultSim, CorruptDropsAreDeterministicPerSeed) {
  auto run_once = [] {
    Testbed bed(PathId::kShortHaul);
    auto config = small_transfer(256);
    config.fault_plan = plan_of("seed=7;data.corrupt=0.02");
    return run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_TRUE(first.completed);
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(first.corrupt_drops, second.corrupt_drops);
  EXPECT_EQ(first.packets_sent, second.packets_sent);
}

TEST(FaultSim, BlackholedTransferGivesUpViaStallDetection) {
  // Every data packet vanishes: neither side ever progresses. The run
  // must end through the stall budget — `stall_intervals` empty checks
  // on each side — with both traces ending stall -> timeout.
  Testbed bed(PathId::kShortHaul);
  telemetry::EventTracer sender_trace;
  telemetry::EventTracer receiver_trace;
  auto config = small_transfer(64);
  config.fault_plan = plan_of("data.blackhole=0+100000000");
  config.timeout = util::Duration::milliseconds(400);
  config.stall_intervals = 4;
  config.sender_tracer = &sender_trace;
  config.receiver_tracer = &receiver_trace;
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.stalled);
  // The give-up is interval-counted, not wall-clock: exactly the stall
  // budget of empty checks fired on each side.
  EXPECT_EQ(sender_trace.count(EventType::kStall), config.stall_intervals);
  EXPECT_EQ(receiver_trace.count(EventType::kStall), config.stall_intervals);
  for (const auto* trace : {&sender_trace, &receiver_trace}) {
    const auto events = trace->snapshot();
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events[events.size() - 2].type, EventType::kStall);
    EXPECT_EQ(events.back().type, EventType::kTimeout);
  }
}

TEST(FaultSim, ReceiverCrashStallsTheSender) {
  // The receiver dies partway through (peer-crash-at-packet-N); the
  // sender keeps retransmitting into silence and must eventually give
  // up through stall detection rather than hanging forever.
  Testbed bed(PathId::kShortHaul);
  auto config = small_transfer(64);
  config.fault_plan = plan_of("crash=16");
  config.timeout = util::Duration::milliseconds(400);
  config.stall_intervals = 4;
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.stalled);
  EXPECT_FALSE(result.data_verified);
}

TEST(FaultSim, EmptyPlanMatchesCleanRunExactly) {
  // A default-constructed plan must be a true no-op: same packet counts
  // as a run with no plan at all (the golden regressions depend on it).
  auto run_with = [](bool with_plan) {
    Testbed bed(PathId::kShortHaul);
    auto config = small_transfer(256);
    if (with_plan) config.fault_plan = net::FaultPlan{};
    return run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  };
  const auto clean = run_with(false);
  const auto with_empty_plan = run_with(true);
  ASSERT_TRUE(clean.completed);
  ASSERT_TRUE(with_empty_plan.completed);
  EXPECT_EQ(clean.packets_sent, with_empty_plan.packets_sent);
  EXPECT_EQ(clean.acks_sent, with_empty_plan.acks_sent);
  EXPECT_EQ(clean.corrupt_drops, 0);
  EXPECT_EQ(with_empty_plan.corrupt_drops, 0);
}

}  // namespace
}  // namespace fobs
