// Unit tests for the robustness building blocks: the fault-plan
// grammar and injector, the CRC32 helper, the resume-frame codec, and
// the checkpoint sidecar format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "fobs/posix/checkpoint.h"
#include "fobs/posix/codec.h"
#include "net/faults.h"

namespace fobs {
namespace {

using net::FaultAction;
using net::FaultChannel;
using net::FaultInjector;
using net::FaultPlan;

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesKnownVectors) {
  // The standard IEEE 802.3 check value.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(util::crc32(check, sizeof check), 0xCBF43926u);
  EXPECT_EQ(util::crc32(nullptr, 0), 0u);
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_EQ(util::crc32(zero, 4), 0x2144DF1Cu);
}

TEST(Crc32, SeedChainsIncrementalComputation) {
  const std::uint8_t data[] = {10, 20, 30, 40, 50, 60};
  const auto whole = util::crc32(data, sizeof data);
  const auto first = util::crc32(data, 3);
  EXPECT_EQ(util::crc32(data + 3, 3, first), whole);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(1024, 0xA5);
  const auto clean = util::crc32(data.data(), data.size());
  for (const std::size_t pos : {std::size_t{0}, std::size_t{511}, data.size() - 1}) {
    data[pos] ^= 0x01;
    EXPECT_NE(util::crc32(data.data(), data.size()), clean);
    data[pos] ^= 0x01;
  }
}

// ---------------------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlan, EmptyStringIsEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlan, ParsesFullGrammar) {
  const auto plan =
      FaultPlan::parse("seed=7;data.corrupt=0.01;data.drop=0.05;ack.dup=0.5;"
                       "ack.blackhole=8+16;control.drop=1;crash=3000");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->data.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(plan->data.drop, 0.05);
  EXPECT_DOUBLE_EQ(plan->ack.duplicate, 0.5);
  EXPECT_EQ(plan->ack.blackhole_start, 8);
  EXPECT_EQ(plan->ack.blackhole_count, 16);
  EXPECT_DOUBLE_EQ(plan->control.drop, 1.0);
  EXPECT_EQ(plan->crash_at_packet, 3000);
  EXPECT_FALSE(plan->empty());
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const auto plan =
      FaultPlan::parse("seed=42;data.corrupt=0.25;ack.blackhole=0+4;crash=10");
  ASSERT_TRUE(plan.has_value());
  const auto reparsed = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->seed, plan->seed);
  EXPECT_DOUBLE_EQ(reparsed->data.corrupt, plan->data.corrupt);
  EXPECT_EQ(reparsed->ack.blackhole_start, plan->ack.blackhole_start);
  EXPECT_EQ(reparsed->ack.blackhole_count, plan->ack.blackhole_count);
  EXPECT_EQ(reparsed->crash_at_packet, plan->crash_at_packet);
}

TEST(FaultPlan, ParsesPlainDecimalsOnly) {
  // The grammar is locale-independent plain decimals: no locale's
  // comma separator, no exponent notation.
  const auto plan = FaultPlan::parse("data.corrupt=0.25;ack.drop=.5;control.dup=1");
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->data.corrupt, 0.25);
  EXPECT_DOUBLE_EQ(plan->ack.drop, 0.5);
  EXPECT_DOUBLE_EQ(plan->control.duplicate, 1.0);
  EXPECT_FALSE(FaultPlan::parse("data.corrupt=0,25").has_value());
  EXPECT_FALSE(FaultPlan::parse("data.corrupt=1e-2").has_value());
  EXPECT_FALSE(FaultPlan::parse("data.corrupt=.").has_value());
  EXPECT_FALSE(FaultPlan::parse("data.corrupt=").has_value());
}

TEST(FaultPlan, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("data.corrupt=1.5", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::parse("data.corrupt=-0.1").has_value());
  EXPECT_FALSE(FaultPlan::parse("bogus=1").has_value());
  EXPECT_FALSE(FaultPlan::parse("data.bogus=1").has_value());
  EXPECT_FALSE(FaultPlan::parse("tcp.drop=0.5").has_value());
  EXPECT_FALSE(FaultPlan::parse("data.drop").has_value());
  EXPECT_FALSE(FaultPlan::parse("ack.blackhole=8").has_value());
  EXPECT_FALSE(FaultPlan::parse("ack.blackhole=8+0").has_value());
  EXPECT_FALSE(FaultPlan::parse("crash=-1").has_value());
  EXPECT_FALSE(FaultPlan::parse("seed=notanumber").has_value());
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, ScheduleIsDeterministicPerSeed) {
  const auto plan = FaultPlan::parse("seed=9;data.corrupt=0.2;data.drop=0.2;data.dup=0.2");
  ASSERT_TRUE(plan.has_value());
  FaultInjector a(*plan);
  FaultInjector b(*plan);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(FaultChannel::kData), b.next(FaultChannel::kData)) << "packet " << i;
  }
  EXPECT_GT(a.total_injected(), 0);
  EXPECT_EQ(a.total_injected(), b.total_injected());
}

TEST(FaultInjector, ChannelsAreIndependentOfInterleaving) {
  const auto plan = FaultPlan::parse("seed=5;data.drop=0.3;ack.drop=0.3");
  ASSERT_TRUE(plan.has_value());
  // Injector A: all data packets first, then all ACK packets.
  FaultInjector a(*plan);
  std::vector<FaultAction> a_data, a_ack;
  for (int i = 0; i < 200; ++i) a_data.push_back(a.next(FaultChannel::kData));
  for (int i = 0; i < 200; ++i) a_ack.push_back(a.next(FaultChannel::kAck));
  // Injector B: interleaved. The per-channel sequences must not change.
  FaultInjector b(*plan);
  std::vector<FaultAction> b_data, b_ack;
  for (int i = 0; i < 200; ++i) {
    b_ack.push_back(b.next(FaultChannel::kAck));
    b_data.push_back(b.next(FaultChannel::kData));
  }
  EXPECT_EQ(a_data, b_data);
  EXPECT_EQ(a_ack, b_ack);
}

TEST(FaultInjector, BlackholeWindowDropsExactRange) {
  const auto plan = FaultPlan::parse("ack.blackhole=3+4");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  for (int i = 0; i < 10; ++i) {
    const auto action = injector.next(FaultChannel::kAck);
    if (i >= 3 && i < 7) {
      EXPECT_EQ(action, FaultAction::kDrop) << "packet " << i;
    } else {
      EXPECT_EQ(action, FaultAction::kPass) << "packet " << i;
    }
  }
  EXPECT_EQ(injector.stats(FaultChannel::kAck).dropped, 4);
  EXPECT_EQ(injector.stats(FaultChannel::kAck).seen, 10);
}

TEST(FaultInjector, CrashTriggersAfterNDataPackets) {
  const auto plan = FaultPlan::parse("crash=5");
  ASSERT_TRUE(plan.has_value());
  FaultInjector injector(*plan);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(injector.crash_due()) << "packet " << i;
    injector.next(FaultChannel::kData);
  }
  EXPECT_TRUE(injector.crash_due());
  // ACK traffic does not advance the crash counter.
  FaultInjector ack_only(*plan);
  for (int i = 0; i < 50; ++i) ack_only.next(FaultChannel::kAck);
  EXPECT_FALSE(ack_only.crash_due());
}

TEST(FaultInjector, CleanPlanNeverInjects) {
  FaultInjector injector(FaultPlan{});
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(injector.next(FaultChannel::kData), FaultAction::kPass);
  }
  EXPECT_EQ(injector.total_injected(), 0);
}

// ---------------------------------------------------------------------------
// Resume frame codec
// ---------------------------------------------------------------------------

TEST(ResumeCodec, RoundTrip) {
  const std::vector<std::uint8_t> bitmap = {0xFF, 0x0F, 0xA0};
  const auto wire = posix::encode_resume(20, 13, bitmap);
  EXPECT_EQ(wire.size(), posix::resume_frame_size(20));
  const auto frame = posix::decode_resume(wire.data(), wire.size());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->packet_count, 20);
  EXPECT_EQ(frame->received_count, 13);
  EXPECT_EQ(frame->bitmap, bitmap);
}

TEST(ResumeCodec, RejectsCorruptedFrame) {
  const std::vector<std::uint8_t> bitmap = {0xFF, 0x0F, 0xA0};
  auto wire = posix::encode_resume(20, 13, bitmap);
  for (const std::size_t pos : {std::size_t{9}, std::size_t{25}, wire.size() - 1}) {
    auto copy = wire;
    copy[pos] ^= 0x40;
    EXPECT_FALSE(posix::decode_resume(copy.data(), copy.size()).has_value())
        << "flipped byte " << pos;
  }
  // Truncation and a wrong token are rejected too.
  EXPECT_FALSE(posix::decode_resume(wire.data(), wire.size() - 1).has_value());
  auto bad_token = wire;
  bad_token[0] = 'X';
  EXPECT_FALSE(posix::decode_resume(bad_token.data(), bad_token.size()).has_value());
}

TEST(ResumeCodec, RejectsInconsistentBitmapLength) {
  // 100 packets need 13 bitmap bytes; claim 100 but attach 3.
  const std::vector<std::uint8_t> bitmap = {0xFF, 0x0F, 0xA0};
  const auto wire = posix::encode_resume(100, 13, bitmap);
  EXPECT_FALSE(posix::decode_resume(wire.data(), wire.size()).has_value());
}

// ---------------------------------------------------------------------------
// decode_ack hardening (hostile fragment_bits)
// ---------------------------------------------------------------------------

TEST(AckHardening, RejectsAbsurdFragmentBits) {
  core::AckMessage ack;
  ack.fragment_bits = 8;
  ack.fragment = {0xFF};
  auto wire = posix::encode_ack(ack);
  // Patch fragment_bits (offset 40, big-endian u32) to a value no
  // datagram could carry; the decoder must bail before allocating.
  const std::uint32_t absurd = static_cast<std::uint32_t>(posix::kMaxAckFragmentBits + 1);
  wire[40] = static_cast<std::uint8_t>(absurd >> 24);
  wire[41] = static_cast<std::uint8_t>(absurd >> 16);
  wire[42] = static_cast<std::uint8_t>(absurd >> 8);
  wire[43] = static_cast<std::uint8_t>(absurd);
  EXPECT_FALSE(posix::decode_ack(wire.data(), wire.size()).has_value());
}

TEST(AckHardening, RoundTripsReceiverEpoch) {
  core::AckMessage ack;
  ack.ack_no = 7;
  ack.epoch = 0xDEADBEEFu;
  ack.fragment_bits = 8;
  ack.fragment = {0xFF};
  const auto wire = posix::encode_ack(ack);
  const auto decoded = posix::decode_ack(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 0xDEADBEEFu);
  EXPECT_EQ(decoded->ack_no, 7u);
  EXPECT_EQ(decoded->fragment, ack.fragment);
}

TEST(AckHardening, AcceptsMaximumLegitimateFragment) {
  core::AckMessage ack;
  ack.fragment_bits = 1024;
  ack.fragment = std::vector<std::uint8_t>(128, 0x55);
  const auto wire = posix::encode_ack(ack);
  EXPECT_TRUE(posix::decode_ack(wire.data(), wire.size()).has_value());
}

// ---------------------------------------------------------------------------
// Checkpoint sidecar
// ---------------------------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "fobs_checkpoint_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".ckpt";
    posix::remove_checkpoint(path_);
  }
  void TearDown() override { posix::remove_checkpoint(path_); }

  std::string path_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  posix::Checkpoint checkpoint;
  checkpoint.object_bytes = 100 * 1024;
  checkpoint.packet_bytes = 1024;
  checkpoint.received_count = 42;
  checkpoint.bitmap = std::vector<std::uint8_t>(13, 0xAB);
  ASSERT_TRUE(posix::save_checkpoint(path_, checkpoint));
  const auto loaded = posix::load_checkpoint(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->object_bytes, checkpoint.object_bytes);
  EXPECT_EQ(loaded->packet_bytes, checkpoint.packet_bytes);
  EXPECT_EQ(loaded->received_count, checkpoint.received_count);
  EXPECT_EQ(loaded->bitmap, checkpoint.bitmap);
  EXPECT_EQ(loaded->packet_count(), 100);
}

TEST_F(CheckpointTest, MissingFileLoadsNothing) {
  EXPECT_FALSE(posix::load_checkpoint(path_).has_value());
}

TEST_F(CheckpointTest, RejectsTornOrTamperedFile) {
  posix::Checkpoint checkpoint;
  checkpoint.object_bytes = 8 * 1024;
  checkpoint.packet_bytes = 1024;
  checkpoint.received_count = 3;
  checkpoint.bitmap = {0x07};
  ASSERT_TRUE(posix::save_checkpoint(path_, checkpoint));

  // Flip one bitmap byte in place: the CRC seal must catch it.
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    const char tampered = 0x0F;
    file.write(&tampered, 1);
  }
  EXPECT_FALSE(posix::load_checkpoint(path_).has_value());

  // A truncated (torn) file is rejected as well.
  ASSERT_TRUE(posix::save_checkpoint(path_, checkpoint));
  {
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 2);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(posix::load_checkpoint(path_).has_value());

  // A foreign file (wrong magic) never parses.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    const std::string junk(64, 'x');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  EXPECT_FALSE(posix::load_checkpoint(path_).has_value());
}

TEST_F(CheckpointTest, RemoveDeletesTheFile) {
  posix::Checkpoint checkpoint;
  checkpoint.object_bytes = 1024;
  checkpoint.packet_bytes = 1024;
  checkpoint.received_count = 1;
  checkpoint.bitmap = {0x01};
  ASSERT_TRUE(posix::save_checkpoint(path_, checkpoint));
  posix::remove_checkpoint(path_);
  EXPECT_FALSE(posix::load_checkpoint(path_).has_value());
}

}  // namespace
}  // namespace fobs
