// FileServer + fetch_file end-to-end over loopback: the acceptance
// test for the concurrent fobsd redesign (three overlapping fetches
// from distinct clients, all byte-identical) plus the catalog-timeout
// bugfix (a connected-but-silent client can no longer wedge the serve
// loop) and the refusal paths.
//
// Port block: 37100-37199 (test_engine owns 37000-37099).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fobs/object.h"
#include "fobs/posix/fileserver.h"

namespace fobs {
namespace {

/// Stages `count` pattern files ("dataset<i>.bin") into a fresh
/// directory under the test temp dir; returns their checksums.
std::vector<std::uint64_t> stage_files(const std::string& dir,
                                       const std::vector<std::int64_t>& sizes) {
  ::mkdir(dir.c_str(), 0755);
  std::vector<std::uint64_t> checksums;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto object = core::TransferObject::pattern(sizes[i], 0xF11E + static_cast<int>(i));
    checksums.push_back(object.checksum());
    EXPECT_TRUE(object.write_to_file(dir + "/dataset" + std::to_string(i) + ".bin"));
  }
  return checksums;
}

/// Opens a TCP connection to 127.0.0.1:`port`; returns the fd or -1.
int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// ---------------------------------------------------------------------------
// Acceptance: >= 3 overlapping fetches from distinct clients
// ---------------------------------------------------------------------------

TEST(FileServer, ThreeOverlappingFetchesAreByteIdentical) {
  const std::string dir = ::testing::TempDir() + "fobs_fileserver_accept";
  const std::vector<std::int64_t> sizes = {768 * 1024, 256 * 1024 + 7, 512 * 1024};
  const auto checksums = stage_files(dir, sizes);

  posix::FileServerOptions options;
  options.dir = dir;
  options.catalog_port = 37100;  // control ports 37101..37132
  options.quiet = true;
  options.endpoint.timeout_ms = 30'000;
  posix::FileServer server(options);
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());

  // Three clients fetch concurrently, each on its own UDP data port.
  std::vector<posix::FetchResult> results(sizes.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    clients.emplace_back([&, i] {
      posix::FetchOptions fetch;
      fetch.catalog_port = options.catalog_port;
      fetch.name = "dataset" + std::to_string(i) + ".bin";
      fetch.out_path = dir + "/fetched" + std::to_string(i) + ".bin";
      fetch.data_port = static_cast<std::uint16_t>(37150 + i);
      fetch.quiet = true;
      fetch.endpoint.timeout_ms = 30'000;
      results[i] = posix::fetch_file(fetch);
    });
  }
  for (auto& client : clients) client.join();

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(results[i].status, posix::TransferStatus::kCompleted)
        << "fetch " << i << ": " << results[i].error;
    EXPECT_EQ(results[i].bytes, sizes[i]);
    EXPECT_EQ(results[i].checksum, checksums[i]) << "fetch " << i << " content differs";
    // The fetched file really landed on disk at full size.
    auto fetched =
        core::TransferObject::map_file(dir + "/fetched" + std::to_string(i) + ".bin");
    ASSERT_TRUE(fetched.has_value()) << "fetch " << i;
    EXPECT_EQ(fetched->size(), sizes[i]);
    EXPECT_EQ(fetched->checksum(), checksums[i]);
  }
  EXPECT_EQ(server.requests_handled(), sizes.size());
  EXPECT_EQ(server.transfers_started(), sizes.size());
  EXPECT_EQ(server.transfers_completed(), sizes.size());
  EXPECT_EQ(server.transfers_failed(), 0u);
  server.stop();
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------------
// Bugfix: a silent catalog client must not wedge the serve loop
// ---------------------------------------------------------------------------

TEST(FileServer, SilentCatalogClientTimesOutAndServiceContinues) {
  const std::string dir = ::testing::TempDir() + "fobs_fileserver_silent";
  const auto checksums = stage_files(dir, {128 * 1024});

  posix::FileServerOptions options;
  options.dir = dir;
  options.catalog_port = 37160;
  options.catalog_recv_timeout_ms = 500;
  options.quiet = true;
  options.endpoint.timeout_ms = 30'000;
  posix::FileServer server(options);
  ASSERT_TRUE(server.start());

  // A client connects and then says nothing — the pre-engine fobsd
  // would block on recv() here forever, wedging every later request.
  const int silent = connect_tcp(options.catalog_port);
  ASSERT_GE(silent, 0);

  // While the silent client sits there, a real fetch must still work.
  posix::FetchOptions fetch;
  fetch.catalog_port = options.catalog_port;
  fetch.name = "dataset0.bin";
  fetch.out_path = dir + "/fetched0.bin";
  fetch.data_port = 37170;
  fetch.quiet = true;
  fetch.endpoint.timeout_ms = 30'000;
  const auto result = posix::fetch_file(fetch);
  EXPECT_EQ(result.status, posix::TransferStatus::kCompleted) << result.error;
  EXPECT_EQ(result.checksum, checksums[0]);

  // The silent connection is reaped by the catalog receive timeout.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.catalog_timeouts() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.catalog_timeouts(), 1u);
  EXPECT_EQ(server.transfers_completed(), 1u);
  ::close(silent);
  server.stop();
}

TEST(FileServer, StopWithHandlerInFlightIsPromptAndSafe) {
  // Regression: stop() used to destroy the engine while a catalog
  // handler could still be blocked in its receive (up to
  // catalog_recv_timeout_ms), leaving the handler to call into a dead
  // engine. stop() must quiesce that handler first — and do so promptly
  // (the stopping flag aborts the receive), not by waiting out the
  // timeout.
  const std::string dir = ::testing::TempDir() + "fobs_fileserver_stoprace";
  stage_files(dir, {4 * 1024});

  posix::FileServerOptions options;
  options.dir = dir;
  options.catalog_port = 37140;
  options.catalog_recv_timeout_ms = 10'000;
  options.quiet = true;
  posix::FileServer server(options);
  ASSERT_TRUE(server.start());

  // Connect silently and wait until the handler is actually running
  // (it counts the request on entry), so stop() races a live handler.
  const int silent = connect_tcp(options.catalog_port);
  ASSERT_GE(silent, 0);
  const auto dispatch_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.requests_handled() == 0 &&
         std::chrono::steady_clock::now() < dispatch_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.requests_handled(), 1u);

  const auto stop_start = std::chrono::steady_clock::now();
  server.stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - stop_start)
                           .count();
  EXPECT_FALSE(server.running());
  EXPECT_LT(stop_ms, 5'000) << "stop() should abort the blocked handler, not wait out "
                               "catalog_recv_timeout_ms";
  ::close(silent);
}

// ---------------------------------------------------------------------------
// Refusal paths
// ---------------------------------------------------------------------------

TEST(FileServer, UnknownFileAndTraversalAreRefused) {
  const std::string dir = ::testing::TempDir() + "fobs_fileserver_refuse";
  stage_files(dir, {4 * 1024});

  posix::FileServerOptions options;
  options.dir = dir;
  options.catalog_port = 37180;
  options.quiet = true;
  posix::FileServer server(options);
  ASSERT_TRUE(server.start());

  posix::FetchOptions missing;
  missing.catalog_port = options.catalog_port;
  missing.name = "no-such-file.bin";
  missing.out_path = dir + "/never.bin";
  missing.data_port = 37185;
  missing.quiet = true;
  const auto refused = posix::fetch_file(missing);
  EXPECT_EQ(refused.status, posix::TransferStatus::kPeerLost);
  EXPECT_FALSE(refused.completed());

  posix::FetchOptions traversal = missing;
  traversal.name = "../dataset0.bin";
  const auto blocked = posix::fetch_file(traversal);
  EXPECT_FALSE(blocked.completed());

  EXPECT_EQ(server.requests_refused(), 2u);
  EXPECT_EQ(server.transfers_started(), 0u);
  server.stop();
}

TEST(FileServer, StartRejectsInvalidOptions) {
  posix::FileServerOptions no_dir_options;
  no_dir_options.catalog_port = 37190;
  posix::FileServer no_dir(no_dir_options);
  EXPECT_FALSE(no_dir.start());

  posix::FileServerOptions no_port_options;
  no_port_options.dir = "/tmp";
  posix::FileServer no_port(no_port_options);
  EXPECT_FALSE(no_port.start());
}

}  // namespace
}  // namespace fobs
