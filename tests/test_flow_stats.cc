// Unit tests for the time-series probe and rate meter.
#include <gtest/gtest.h>

#include "sim/flow_stats.h"
#include "sim/simulation.h"

namespace fobs::sim {
namespace {

using util::DataSize;
using util::Duration;
using util::TimePoint;

TEST(TimeSeriesProbe, SamplesAtFixedPeriod) {
  Simulation sim;
  int counter = 0;
  sim.schedule_in(Duration::milliseconds(5), [&] { counter = 10; });
  TimeSeriesProbe probe(sim, "counter", Duration::milliseconds(2),
                        [&] { return static_cast<double>(counter); });
  sim.run_until(TimePoint::from_ns(Duration::milliseconds(10).ns()));
  ASSERT_EQ(probe.samples().size(), 5u);
  EXPECT_EQ(probe.samples()[0].when.ms(), 2);
  EXPECT_DOUBLE_EQ(probe.samples()[0].value, 0.0);   // before the bump
  EXPECT_DOUBLE_EQ(probe.samples()[3].value, 10.0);  // after it
  EXPECT_DOUBLE_EQ(probe.last(), 10.0);
  EXPECT_DOUBLE_EQ(probe.max(), 10.0);
  EXPECT_DOUBLE_EQ(probe.mean(), (0 + 0 + 10 + 10 + 10) / 5.0);
}

TEST(TimeSeriesProbe, StopEndsSampling) {
  Simulation sim;
  TimeSeriesProbe probe(sim, "x", Duration::milliseconds(1), [] { return 1.0; });
  sim.run_until(TimePoint::from_ns(Duration::milliseconds(3).ns()));
  probe.stop();
  const auto count = probe.samples().size();
  sim.run_until(TimePoint::from_ns(Duration::milliseconds(10).ns()));
  EXPECT_EQ(probe.samples().size(), count);
}

TEST(RateMeter, WindowedRate) {
  RateMeter meter(Duration::milliseconds(100));
  TimePoint t = TimePoint::zero();
  // 10 KB over 100 ms = 800 kb/s.
  for (int i = 0; i < 10; ++i) {
    meter.record(t, 1000);
    t = t + Duration::milliseconds(10);
  }
  EXPECT_NEAR(meter.rate(t).bps(), 10'000 * 8.0 / 0.1, 10'000);
  EXPECT_EQ(meter.total_bytes(), 10'000);
}

TEST(RateMeter, OldEventsFallOutOfTheWindow) {
  RateMeter meter(Duration::milliseconds(50));
  meter.record(TimePoint::zero(), 100'000);
  // Much later, the burst no longer counts.
  const TimePoint later = TimePoint::zero() + Duration::seconds(1);
  EXPECT_DOUBLE_EQ(meter.rate(later).bps(), 0.0);
  EXPECT_EQ(meter.total_bytes(), 100'000);  // lifetime total unaffected
}

}  // namespace
}  // namespace fobs::sim
