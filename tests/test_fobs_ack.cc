// Unit tests for the FOBS ACK builder/applier.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fobs/ack.h"

namespace fobs::core {
namespace {

using util::Bitmap;

TEST(AckBuilder, EmptyReceiverReportsNothing) {
  Bitmap received(1000);
  AckBuilder builder(1000, 1024);
  const auto ack = builder.build(received, 0, 0);
  EXPECT_EQ(ack.ack_no, 1u);
  EXPECT_EQ(ack.frontier, 0);
  EXPECT_FALSE(ack.complete);
  EXPECT_GT(ack.fragment_bits, 0);  // it still reports the (empty) window
}

TEST(AckBuilder, AckNumbersIncrease) {
  Bitmap received(100);
  AckBuilder builder(100, 1024);
  EXPECT_EQ(builder.build(received, 0, 0).ack_no, 1u);
  EXPECT_EQ(builder.build(received, 0, 0).ack_no, 2u);
  EXPECT_EQ(builder.build(received, 0, 0).ack_no, 3u);
}

TEST(AckBuilder, CompleteAckHasNoFragment) {
  Bitmap received(100);
  received.set_all();
  AckBuilder builder(100, 1024);
  const auto ack = builder.build(received, 100, 100);
  EXPECT_TRUE(ack.complete);
  EXPECT_EQ(ack.fragment_bits, 0);
  EXPECT_TRUE(ack.fragment.empty());
}

TEST(AckBuilder, FragmentSizeBoundedByPayload) {
  Bitmap received(100000);
  // 128-byte payload: 128-32 = 96 bytes -> 768 bits per fragment.
  AckBuilder builder(100000, 128);
  EXPECT_EQ(builder.fragment_capacity_bits(), 768);
  const auto ack = builder.build(received, 0, 0);
  EXPECT_EQ(ack.fragment_bits, 768);
  EXPECT_LE(ack.wire_bytes(), 128);
}

TEST(AckBuilder, RotationCoversTheWholeObject) {
  const std::int64_t n = 10000;
  Bitmap received(static_cast<std::size_t>(n));
  // Scattered packets received, none contiguous from zero.
  for (std::int64_t i = 1; i < n; i += 7) received.set(static_cast<std::size_t>(i));
  AckBuilder builder(n, 256);  // small fragments force many rotations
  Bitmap view(static_cast<std::size_t>(n));
  // After enough ACKs the sender's view must equal the receiver's state.
  for (int k = 0; k < 64; ++k) {
    const auto ack =
        builder.build(received, 0, static_cast<std::int64_t>(received.count()));
    apply_ack(ack, view);
  }
  EXPECT_EQ(view.count(), received.count());
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(view.test(static_cast<std::size_t>(i)),
              received.test(static_cast<std::size_t>(i)));
  }
}

TEST(ApplyAck, FrontierMarksEverythingBelow) {
  Bitmap view(1000);
  AckMessage ack;
  ack.frontier = 500;
  EXPECT_EQ(apply_ack(ack, view), 500);
  EXPECT_EQ(view.count(), 500u);
  EXPECT_TRUE(view.test(499));
  EXPECT_FALSE(view.test(500));
  // Re-applying adds nothing.
  EXPECT_EQ(apply_ack(ack, view), 0);
}

TEST(ApplyAck, FragmentMergesNewBitsOnly) {
  Bitmap view(100);
  view.set(10);
  Bitmap received(100);
  received.set(10);
  received.set(11);
  received.set(50);
  AckMessage ack;
  ack.fragment_start = 0;
  ack.fragment_bits = 100;
  ack.fragment = received.extract_range(0, 100);
  EXPECT_EQ(apply_ack(ack, view), 2);  // 11 and 50; 10 already known
  EXPECT_TRUE(view.test(11));
  EXPECT_TRUE(view.test(50));
}

TEST(ApplyAck, CompleteFillsView) {
  Bitmap view(1000);
  view.set(3);
  AckMessage ack;
  ack.complete = true;
  EXPECT_EQ(apply_ack(ack, view), 999);
  EXPECT_TRUE(view.all_set());
}

TEST(ApplyAck, FrontierFastPathSkipsKnownPrefix) {
  Bitmap view(10000);
  for (std::size_t i = 0; i < 5000; ++i) view.set(i);
  AckMessage ack;
  ack.frontier = 6000;
  EXPECT_EQ(apply_ack(ack, view), 1000);
  EXPECT_EQ(view.count(), 6000u);
}

TEST(AckWireBytes, AccountsHeaderAndFragment) {
  AckMessage ack;
  EXPECT_EQ(ack.wire_bytes(), kAckHeaderBytes);
  ack.fragment.resize(100);
  EXPECT_EQ(ack.wire_bytes(), kAckHeaderBytes + 100);
}

}  // namespace
}  // namespace fobs::core
