// Unit + property tests for the FOBS sender/receiver state machines and
// the selection policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "fobs/receiver_core.h"
#include "fobs/selection.h"
#include "fobs/sender_core.h"

namespace fobs::core {
namespace {

TransferSpec small_spec(std::int64_t packets = 100, std::int64_t packet_bytes = 1024) {
  return TransferSpec{packets * packet_bytes, packet_bytes};
}

// ---------------------------------------------------------------------------
// TransferSpec
// ---------------------------------------------------------------------------

TEST(TransferSpec, PacketGeometry) {
  TransferSpec spec{10 * 1024, 1024};
  EXPECT_EQ(spec.packet_count(), 10);
  EXPECT_EQ(spec.payload_bytes(0), 1024);
  EXPECT_EQ(spec.payload_bytes(9), 1024);
  EXPECT_EQ(spec.offset_of(3), 3 * 1024);
}

TEST(TransferSpec, ShortFinalPacket) {
  TransferSpec spec{1000, 300};
  EXPECT_EQ(spec.packet_count(), 4);
  EXPECT_EQ(spec.payload_bytes(0), 300);
  EXPECT_EQ(spec.payload_bytes(3), 100);
}

// ---------------------------------------------------------------------------
// Selection policies
// ---------------------------------------------------------------------------

TEST(Selection, CircularVisitsEveryPacketOncePerCycle) {
  util::Bitmap acked(10);
  auto policy = make_selection_policy(SelectionKind::kCircular, util::Rng(1));
  std::vector<PacketSeq> first_cycle;
  for (int i = 0; i < 10; ++i) first_cycle.push_back(*policy->select(acked));
  std::vector<PacketSeq> expected{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(first_cycle, expected);
  // Second cycle repeats in order (nothing acked yet).
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*policy->select(acked), i);
}

TEST(Selection, CircularSkipsAckedPackets) {
  util::Bitmap acked(6);
  auto policy = make_selection_policy(SelectionKind::kCircular, util::Rng(1));
  acked.set(0);
  acked.set(2);
  acked.set(4);
  EXPECT_EQ(*policy->select(acked), 1);
  EXPECT_EQ(*policy->select(acked), 3);
  EXPECT_EQ(*policy->select(acked), 5);
  EXPECT_EQ(*policy->select(acked), 1);  // wrapped
}

TEST(Selection, CircularReturnsNulloptWhenAllAcked) {
  util::Bitmap acked(4);
  acked.set_all();
  auto policy = make_selection_policy(SelectionKind::kCircular, util::Rng(1));
  EXPECT_FALSE(policy->select(acked).has_value());
}

TEST(Selection, LowestFirstHammersTheHead) {
  util::Bitmap acked(5);
  auto policy = make_selection_policy(SelectionKind::kLowestFirst, util::Rng(1));
  EXPECT_EQ(*policy->select(acked), 0);
  EXPECT_EQ(*policy->select(acked), 0);
  acked.set(0);
  acked.set(1);
  EXPECT_EQ(*policy->select(acked), 2);
}

TEST(Selection, RandomOnlyPicksUnacked) {
  util::Bitmap acked(50);
  for (std::size_t i = 0; i < 50; ++i) {
    if (i % 5 != 0) acked.set(i);  // only multiples of 5 unacked
  }
  auto policy = make_selection_policy(SelectionKind::kRandomUnacked, util::Rng(7));
  std::set<PacketSeq> seen;
  for (int i = 0; i < 200; ++i) {
    const auto seq = policy->select(acked);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(*seq % 5, 0);
    seen.insert(*seq);
  }
  EXPECT_GE(seen.size(), 8u);  // covers most of the 10 unacked packets
}

TEST(Selection, RandomHandlesSingleRemaining) {
  util::Bitmap acked(1000);
  acked.set_all();
  acked.clear(123);
  auto policy = make_selection_policy(SelectionKind::kRandomUnacked, util::Rng(9));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*policy->select(acked), 123);
}

// ---------------------------------------------------------------------------
// SenderCore
// ---------------------------------------------------------------------------

TEST(SenderCore, CountsSendsAndDuplicates) {
  SenderCore sender(small_spec(10), SenderConfig{});
  for (int i = 0; i < 15; ++i) EXPECT_TRUE(sender.select_next().has_value());
  EXPECT_EQ(sender.stats().packets_sent, 15);
  EXPECT_EQ(sender.stats().duplicate_sends, 5);
  EXPECT_DOUBLE_EQ(sender.waste(), 0.5);
}

TEST(SenderCore, AckStopsRetransmissionOfThosePackets) {
  SenderCore sender(small_spec(10), SenderConfig{});
  AckMessage ack;
  ack.frontier = 7;
  ack.total_received = 7;
  ack.ack_no = 1;
  EXPECT_EQ(sender.on_ack(ack), 7);
  std::set<PacketSeq> sent;
  for (int i = 0; i < 3; ++i) sent.insert(*sender.select_next());
  EXPECT_EQ(sent, (std::set<PacketSeq>{7, 8, 9}));
}

TEST(SenderCore, AllAckedStopsSelection) {
  SenderCore sender(small_spec(5), SenderConfig{});
  AckMessage ack;
  ack.complete = true;
  sender.on_ack(ack);
  EXPECT_TRUE(sender.all_acked());
  EXPECT_FALSE(sender.select_next().has_value());
  EXPECT_FALSE(sender.completion_received());  // separate signal
  sender.on_completion_signal();
  EXPECT_TRUE(sender.completion_received());
}

TEST(SenderCore, CircularInvariantHoldsUnderRandomAcks) {
  // The paper's rule: a packet is sent for the (n+1)-st time only when
  // every unacked packet has been sent at least n times. Equivalently,
  // among unacked packets, max(send_count) - min(send_count) <= 1.
  const auto spec = small_spec(64);
  SenderCore sender(spec, SenderConfig{});
  util::Rng rng(11);
  for (int step = 0; step < 3000; ++step) {
    if (sender.all_acked()) break;
    const auto seq = sender.select_next();
    ASSERT_TRUE(seq.has_value());
    if (rng.bernoulli(0.01)) {
      // Ack a random prefix + random bits, like a real transfer.
      AckMessage ack;
      ack.ack_no = static_cast<std::uint64_t>(step);
      ack.frontier = rng.uniform_int(0, 32);
      sender.on_ack(ack);
    }
    std::uint32_t max_unacked = 0;
    std::uint32_t min_unacked = ~0u;
    for (std::size_t i = 0; i < 64; ++i) {
      if (sender.acked_view().test(i)) continue;
      max_unacked = std::max(max_unacked, sender.send_counts()[i]);
      min_unacked = std::min(min_unacked, sender.send_counts()[i]);
    }
    if (min_unacked != ~0u) {
      EXPECT_LE(max_unacked - min_unacked, 1u) << "at step " << step;
    }
  }
}

TEST(SenderCore, AdaptiveBatchTracksAckRate) {
  SenderConfig config;
  config.batch_policy = BatchPolicy::kAckAdaptive;
  SenderCore sender(small_spec(10000), config);
  EXPECT_EQ(sender.current_batch_size(), 2);  // initial
  AckMessage a1;
  a1.ack_no = 1;
  a1.total_received = 0;
  sender.on_ack(a1);
  AckMessage a2;
  a2.ack_no = 2;
  a2.total_received = 64;  // 64 packets arrived between acks
  sender.on_ack(a2);
  EXPECT_EQ(sender.current_batch_size(), 32);  // half the observed rate
  // Stale ack (lower number) must not disturb the estimate.
  AckMessage stale;
  stale.ack_no = 1;
  stale.total_received = 0;
  sender.on_ack(stale);
  EXPECT_EQ(sender.current_batch_size(), 32);
}

TEST(SenderCore, FixedBatchIgnoresAckRate) {
  SenderConfig config;
  config.batch_size = 4;
  SenderCore sender(small_spec(100), config);
  AckMessage a1;
  a1.ack_no = 1;
  a1.total_received = 50;
  sender.on_ack(a1);
  EXPECT_EQ(sender.current_batch_size(), 4);
}

// ---------------------------------------------------------------------------
// ReceiverCore
// ---------------------------------------------------------------------------

TEST(ReceiverCore, TracksFrontierThroughOutOfOrderArrivals) {
  ReceiverCore receiver(small_spec(10), ReceiverConfig{.ack_frequency = 100});
  EXPECT_EQ(receiver.frontier(), 0);
  receiver.on_data_packet(1);
  receiver.on_data_packet(2);
  EXPECT_EQ(receiver.frontier(), 0);  // 0 still missing
  receiver.on_data_packet(0);
  EXPECT_EQ(receiver.frontier(), 3);  // jumps over 1, 2
  receiver.on_data_packet(9);
  EXPECT_EQ(receiver.frontier(), 3);
}

TEST(ReceiverCore, DuplicatesAreCountedNotReprocessed) {
  ReceiverCore receiver(small_spec(10), ReceiverConfig{.ack_frequency = 100});
  EXPECT_TRUE(receiver.on_data_packet(5).newly_received);
  const auto result = receiver.on_data_packet(5);
  EXPECT_FALSE(result.newly_received);
  EXPECT_FALSE(result.ack_due);
  EXPECT_EQ(receiver.stats().duplicates, 1);
  EXPECT_EQ(receiver.stats().packets_received, 1);
  EXPECT_EQ(receiver.stats().packets_seen, 2);
}

TEST(ReceiverCore, AckDueEveryFrequencyNewPackets) {
  ReceiverCore receiver(small_spec(100), ReceiverConfig{.ack_frequency = 4});
  int acks = 0;
  for (PacketSeq seq = 0; seq < 20; ++seq) {
    const auto result = receiver.on_data_packet(seq);
    if (result.ack_due) {
      ++acks;
      receiver.make_ack();  // resets the counter, like the driver does
    }
  }
  EXPECT_EQ(acks, 5);  // every 4th new packet
}

TEST(ReceiverCore, DuplicatesDoNotAdvanceAckCounter) {
  ReceiverCore receiver(small_spec(100), ReceiverConfig{.ack_frequency = 3});
  receiver.on_data_packet(0);
  receiver.on_data_packet(0);
  receiver.on_data_packet(0);
  EXPECT_FALSE(receiver.on_data_packet(0).ack_due);
  receiver.on_data_packet(1);
  EXPECT_TRUE(receiver.on_data_packet(2).ack_due);
}

TEST(ReceiverCore, CompletionForcesAckAndFlagsIt) {
  ReceiverCore receiver(small_spec(3), ReceiverConfig{.ack_frequency = 100});
  receiver.on_data_packet(0);
  receiver.on_data_packet(1);
  const auto result = receiver.on_data_packet(2);
  EXPECT_TRUE(result.just_completed);
  EXPECT_TRUE(result.ack_due);  // completion always acks
  EXPECT_TRUE(receiver.complete());
  const auto ack = receiver.make_ack();
  EXPECT_TRUE(ack.complete);
  EXPECT_EQ(ack.total_received, 3);
}

TEST(ReceiverCore, MakeAckReflectsBitmapState) {
  ReceiverCore receiver(small_spec(64), ReceiverConfig{.ack_frequency = 8,
                                                       .ack_payload_bytes = 1024});
  for (PacketSeq seq : {0, 1, 2, 5, 9}) receiver.on_data_packet(seq);
  const auto ack = receiver.make_ack();
  EXPECT_EQ(ack.frontier, 3);
  EXPECT_EQ(ack.total_received, 5);
  util::Bitmap view(64);
  apply_ack(ack, view);
  EXPECT_TRUE(view.test(5));
  EXPECT_TRUE(view.test(9));
  EXPECT_FALSE(view.test(4));
}

// Sender/receiver cores round trip: a lossless in-memory "transfer".
TEST(Cores, LosslessRoundTripConverges) {
  const auto spec = small_spec(1000);
  SenderCore sender(spec, SenderConfig{});
  ReceiverCore receiver(spec, ReceiverConfig{.ack_frequency = 16});
  int iterations = 0;
  while (!receiver.complete() && iterations < 100000) {
    ++iterations;
    const auto seq = sender.select_next();
    ASSERT_TRUE(seq.has_value());
    const auto result = receiver.on_data_packet(*seq);
    if (result.ack_due) sender.on_ack(receiver.make_ack());
  }
  EXPECT_TRUE(receiver.complete());
  EXPECT_EQ(sender.stats().packets_sent, 1000);  // zero loss -> zero waste
  EXPECT_DOUBLE_EQ(sender.waste(), 0.0);
}

// Property: with random loss between the cores, the transfer still
// converges and every byte-position is eventually received.
class CoreLossyRoundTrip : public ::testing::TestWithParam<std::tuple<double, std::int64_t>> {};

TEST_P(CoreLossyRoundTrip, ConvergesUnderLoss) {
  const auto [loss, ack_frequency] = GetParam();
  const auto spec = small_spec(2000);
  SenderCore sender(spec, SenderConfig{});
  ReceiverCore receiver(spec, ReceiverConfig{.ack_frequency = ack_frequency});
  util::Rng rng(42);
  int iterations = 0;
  while (!receiver.complete() && iterations < 1000000) {
    ++iterations;
    auto seq = sender.select_next();
    if (!seq) {
      // Sender's view is complete but maybe the last ack was lost; in a
      // real transfer the completion signal ends things. Here the view
      // can only be complete if the receiver acked everything.
      break;
    }
    if (rng.bernoulli(loss)) continue;  // data packet lost
    const auto result = receiver.on_data_packet(*seq);
    if (result.ack_due) {
      const auto ack = receiver.make_ack();
      if (!rng.bernoulli(loss)) sender.on_ack(ack);  // ack may be lost too
    }
  }
  EXPECT_TRUE(receiver.complete());
  EXPECT_GE(sender.stats().packets_sent, spec.packet_count());
}

INSTANTIATE_TEST_SUITE_P(LossGrid, CoreLossyRoundTrip,
                         ::testing::Combine(::testing::Values(0.0, 0.01, 0.1, 0.3),
                                            ::testing::Values<std::int64_t>(1, 16, 256)));

}  // namespace
}  // namespace fobs::core
