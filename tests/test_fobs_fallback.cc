// Tests for the §7 TCP-fallback mode of the FOBS sim driver.
#include <gtest/gtest.h>

#include <memory>

#include "exp/testbeds.h"
#include "fobs/sim_driver.h"
#include "sim/cross_traffic.h"

namespace fobs {
namespace {

struct FallbackRun {
  bool done = false;
  int episodes = 0;
  std::int64_t via_tcp = 0;
  bool receiver_complete = false;
  double waste = 0.0;
};

FallbackRun run_with_overload(bool tcp_fallback, int extra_sources,
                              util::Duration episode_end = util::Duration::zero()) {
  auto spec = exp::spec_for(exp::PathId::kGigabitContended);
  spec.cross_sources = 8;
  spec.cross_peak = util::DataRate::megabits_per_second(150);
  exp::Testbed bed(spec, 7);
  auto& sim = bed.sim();

  std::vector<std::unique_ptr<sim::OnOffSource>> extra;
  for (int i = 0; i < extra_sources; ++i) {
    auto source = std::make_unique<sim::OnOffSource>(
        sim, bed.backbone(), bed.network().next_node_id(), bed.cross_sink().id(), 1000,
        util::DataRate::megabits_per_second(150), util::Duration::milliseconds(40),
        util::Duration::milliseconds(120), util::Rng(55 + i));
    source->start();
    extra.push_back(std::move(source));
  }
  if (episode_end > util::Duration::zero()) {
    sim.schedule_in(episode_end, [&extra] {
      for (auto& source : extra) source->stop();
    });
  }

  core::TransferSpec transfer{16 * 1024 * 1024, 1024};
  core::SenderConfig sender_config;
  sender_config.adaptive.enabled = true;
  sender_config.adaptive.tcp_fallback = tcp_fallback;
  core::ReceiverConfig receiver_config;

  core::SimSender sender(bed.src(), transfer, sender_config, nullptr, bed.dst().id());
  core::SimReceiver receiver(bed.dst(), transfer, receiver_config, nullptr, bed.src().id(),
                             64 * 1024);
  FallbackRun run;
  sender.set_on_finished([&run] { run.done = true; });
  receiver.start();
  sender.start();
  while (!run.done && sim.now().seconds() < 300 && sim.step()) {
  }
  run.episodes = sender.fallback_episodes();
  run.via_tcp = sender.packets_sent_via_tcp();
  run.receiver_complete = receiver.complete();
  run.waste = sender.core().waste();
  return run;
}

TEST(FobsTcpFallback, EngagesUnderHeavyCongestionAndCompletes) {
  const auto run = run_with_overload(/*tcp_fallback=*/true, /*extra_sources=*/4);
  EXPECT_TRUE(run.done);
  EXPECT_TRUE(run.receiver_complete);
  EXPECT_GE(run.episodes, 1);
  EXPECT_GT(run.via_tcp, 0);
}

TEST(FobsTcpFallback, DisabledFallbackNeverUsesTcp) {
  const auto run = run_with_overload(/*tcp_fallback=*/false, /*extra_sources=*/4);
  EXPECT_TRUE(run.done);
  EXPECT_EQ(run.episodes, 0);
  EXPECT_EQ(run.via_tcp, 0);
}

TEST(FobsTcpFallback, TransientEpisodeStillCompletesExactly) {
  const auto run = run_with_overload(/*tcp_fallback=*/true, /*extra_sources=*/6,
                                     util::Duration::milliseconds(500));
  EXPECT_TRUE(run.done);
  EXPECT_TRUE(run.receiver_complete);
  EXPECT_GE(run.waste, 0.0);
}

}  // namespace
}  // namespace fobs
