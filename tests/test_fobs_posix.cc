// Real-socket FOBS over loopback: byte-exact delivery end to end, plus
// the give-up paths (no peer -> timeout within timeout_ms, with the
// telemetry trace ending in a timeout event).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "fobs/posix/codec.h"
#include "fobs/posix/posix_transfer.h"
#include "fobs/sim_transfer.h"
#include "telemetry/trace.h"

namespace fobs {
namespace {

// Distinct port bases per test to avoid rebind races.
std::uint16_t port_base(int offset) { return static_cast<std::uint16_t>(36000 + offset); }

TEST(FobsPosixCodec, DataHeaderRoundTrip) {
  std::uint8_t buf[posix::kDataHeaderSize];
  posix::encode_data_header(posix::DataHeader{123456789}, buf);
  const auto decoded = posix::decode_data_header(buf, sizeof buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 123456789);
}

TEST(FobsPosixCodec, DataHeaderRejectsGarbage) {
  std::uint8_t buf[posix::kDataHeaderSize] = {0};
  EXPECT_FALSE(posix::decode_data_header(buf, sizeof buf).has_value());
  posix::encode_data_header(posix::DataHeader{1}, buf);
  EXPECT_FALSE(posix::decode_data_header(buf, 4).has_value());  // too short
}

TEST(FobsPosixCodec, AckRoundTrip) {
  core::AckMessage ack;
  ack.ack_no = 77;
  ack.total_received = 1234;
  ack.frontier = 999;
  ack.fragment_start = 1000;
  ack.fragment_bits = 20;
  ack.fragment = {0xFF, 0x0F, 0x03};
  ack.complete = false;
  const auto wire = posix::encode_ack(ack);
  const auto decoded = posix::decode_ack(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ack_no, ack.ack_no);
  EXPECT_EQ(decoded->total_received, ack.total_received);
  EXPECT_EQ(decoded->frontier, ack.frontier);
  EXPECT_EQ(decoded->fragment_start, ack.fragment_start);
  EXPECT_EQ(decoded->fragment_bits, ack.fragment_bits);
  EXPECT_EQ(decoded->fragment, ack.fragment);
  EXPECT_EQ(decoded->complete, ack.complete);
}

TEST(FobsPosixCodec, AckRejectsTruncatedFragment) {
  core::AckMessage ack;
  ack.fragment_bits = 64;
  ack.fragment = std::vector<std::uint8_t>(8, 0xAA);
  auto wire = posix::encode_ack(ack);
  wire.resize(wire.size() - 4);  // chop fragment
  EXPECT_FALSE(posix::decode_ack(wire.data(), wire.size()).has_value());
}

void run_loopback_transfer(std::int64_t object_bytes, std::int64_t packet_bytes,
                           std::int64_t ack_frequency, int port_offset) {
  const auto object = core::make_pattern(object_bytes, 0xFEED + port_offset);
  std::vector<std::uint8_t> sink(object.size(), 0);

  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(port_offset);
  recv_opts.control_port = port_base(port_offset + 1);
  recv_opts.endpoint.packet_bytes = packet_bytes;
  recv_opts.core.ack_frequency = ack_frequency;
  recv_opts.endpoint.timeout_ms = 30'000;

  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.packet_bytes = packet_bytes;
  send_opts.endpoint.timeout_ms = 30'000;

  posix::ReceiverResult recv_result;
  std::thread receiver_thread([&] {
    recv_result = posix::receive_object(recv_opts, std::span<std::uint8_t>(sink));
  });
  // The receiver retries its control connect, so ordering is safe.
  const auto send_result =
      posix::send_object(send_opts, std::span<const std::uint8_t>(object));
  receiver_thread.join();

  ASSERT_TRUE(send_result.completed()) << send_result.error;
  ASSERT_TRUE(recv_result.completed()) << recv_result.error;
  EXPECT_EQ(sink, object);
  EXPECT_EQ(recv_result.packets_received,
            (object_bytes + packet_bytes - 1) / packet_bytes);
  EXPECT_GE(send_result.packets_sent, recv_result.packets_received);
}

TEST(FobsPosixTransfer, SmallObjectLoopback) { run_loopback_transfer(256 * 1024, 1024, 16, 0); }

TEST(FobsPosixTransfer, MultiMegabyteLoopback) {
  run_loopback_transfer(8 * 1024 * 1024, 1024, 64, 10);
}

TEST(FobsPosixTransfer, OddSizesLoopback) {
  // Non-multiple object size exercises the short final packet.
  run_loopback_transfer(1'000'003, 1472, 8, 20);
}

TEST(FobsPosixTransfer, LargePacketsLoopback) {
  run_loopback_transfer(4 * 1024 * 1024, 8192, 32, 30);
}

TEST(FobsPosixTransfer, SenderTimesOutWithNoReceiver) {
  const auto object = core::make_pattern(64 * 1024, 0xDEAD);
  telemetry::EventTracer trace;

  posix::SenderOptions opts;
  opts.data_port = port_base(40);
  opts.control_port = port_base(41);
  opts.endpoint.timeout_ms = 1'000;
  opts.endpoint.tracer = &trace;

  const auto start = std::chrono::steady_clock::now();
  const auto result = posix::send_object(opts, std::span<const std::uint8_t>(object));
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();

  EXPECT_FALSE(result.completed());
  EXPECT_EQ(result.status, posix::TransferStatus::kTimeout);
  EXPECT_FALSE(result.error.empty());
  // Must give up at its deadline, not hang (generous slack for CI).
  EXPECT_LT(elapsed_ms, opts.endpoint.timeout_ms + 5'000);

  const auto events = trace.snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, telemetry::EventType::kTransferStart);
  EXPECT_EQ(events.back().type, telemetry::EventType::kTimeout);
  EXPECT_EQ(trace.count(telemetry::EventType::kCompletion), 0);
}

TEST(FobsPosixTransfer, ReceiverTimesOutWithNoSender) {
  std::vector<std::uint8_t> sink(64 * 1024, 0);
  telemetry::EventTracer trace;

  posix::ReceiverOptions opts;
  opts.data_port = port_base(42);
  opts.control_port = port_base(43);
  opts.endpoint.timeout_ms = 1'000;
  opts.endpoint.tracer = &trace;

  const auto start = std::chrono::steady_clock::now();
  const auto result = posix::receive_object(opts, std::span<std::uint8_t>(sink));
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();

  EXPECT_FALSE(result.completed());
  EXPECT_EQ(result.status, posix::TransferStatus::kPeerLost);
  EXPECT_FALSE(result.error.empty());
  EXPECT_LT(elapsed_ms, opts.endpoint.timeout_ms + 5'000);

  const auto events = trace.snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, telemetry::EventType::kTransferStart);
  EXPECT_EQ(events.back().type, telemetry::EventType::kTimeout);
}

}  // namespace
}  // namespace fobs
