// Integration + property tests: whole FOBS transfers over the simulated
// testbeds, swept across ack frequencies, packet sizes, and loss rates.
#include <gtest/gtest.h>

#include <tuple>

#include "exp/runner.h"
#include "exp/testbeds.h"
#include "fobs/sim_transfer.h"

namespace fobs {
namespace {

using core::SimTransferConfig;
using core::run_sim_transfer;
using exp::PathId;
using exp::Testbed;

SimTransferConfig small_transfer(std::int64_t megabytes = 4) {
  SimTransferConfig config;
  config.spec.object_bytes = megabytes * 1024 * 1024;
  config.spec.packet_bytes = 1024;
  config.receiver.ack_frequency = 64;
  return config;
}

TEST(FobsTransferSim, CompletesOnShortHaul) {
  Testbed bed(PathId::kShortHaul);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), small_transfer());
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  EXPECT_EQ(result.packets_needed, 4 * 1024);
  EXPECT_GE(result.packets_sent, result.packets_needed);
  // ~90% of the 100 Mb/s NIC in the paper; allow generous slack here.
  EXPECT_GT(result.fraction_of(bed.spec().max_bandwidth), 0.6);
  EXPECT_LT(result.waste, 0.5);
}

TEST(FobsTransferSim, CompletesOnLongHaulWithLoss) {
  Testbed bed(PathId::kLongHaul);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), small_transfer());
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  EXPECT_GT(result.fraction_of(bed.spec().max_bandwidth), 0.5);
}

TEST(FobsTransferSim, SenderLearnsCompletionAfterReceiver) {
  Testbed bed(PathId::kShortHaul);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), small_transfer(1));
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.sender_elapsed.ns(), result.receiver_elapsed.ns());
  // The completion signal needs about one way of the RTT.
  EXPECT_LT((result.sender_elapsed - result.receiver_elapsed).seconds(), 0.2);
}

TEST(FobsTransferSim, TinyAckFrequencyStallsTheReceiver) {
  // Figure 1's left edge: acking every packet makes the receiver spend
  // its time building ACKs; arrivals overflow the socket buffer.
  Testbed bed(PathId::kShortHaul);
  auto config = small_transfer();
  config.receiver.ack_frequency = 1;
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.receiver_socket_drops, 0u);
  Testbed bed2(PathId::kShortHaul);
  auto good = small_transfer();
  good.receiver.ack_frequency = 64;
  const auto baseline = run_sim_transfer(bed2.network(), bed2.src(), bed2.dst(), good);
  EXPECT_LT(result.goodput_mbps, 0.8 * baseline.goodput_mbps);
  EXPECT_GT(result.waste, baseline.waste);
}

TEST(FobsTransferSim, GreedySenderKeepsNicSaturatedDespiteLoss) {
  auto spec = exp::spec_for(PathId::kShortHaul);
  spec.fwd_loss = 5e-3;  // 0.5% random loss — TCP would crumble
  Testbed bed(spec);
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), small_transfer());
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
  EXPECT_GT(result.fraction_of(spec.max_bandwidth), 0.7);
  EXPECT_GT(result.waste, 0.0);  // the lost packets had to be resent
}

TEST(FobsTransferSim, SizeOnlyModeMatchesDataMode) {
  // carry_data=false must not change protocol dynamics.
  Testbed bed1(PathId::kShortHaul);
  auto with_data = small_transfer(2);
  with_data.carry_data = true;
  const auto a = run_sim_transfer(bed1.network(), bed1.src(), bed1.dst(), with_data);
  Testbed bed2(PathId::kShortHaul);
  auto size_only = small_transfer(2);
  size_only.carry_data = false;
  const auto b = run_sim_transfer(bed2.network(), bed2.src(), bed2.dst(), size_only);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.receiver_elapsed.ns(), b.receiver_elapsed.ns());
  EXPECT_FALSE(b.data_verified);  // not applicable
}

TEST(FobsTransferSim, DeterministicForSameSeed) {
  Testbed bed1(PathId::kLongHaul, 9);
  Testbed bed2(PathId::kLongHaul, 9);
  const auto a = run_sim_transfer(bed1.network(), bed1.src(), bed1.dst(), small_transfer(2));
  const auto b = run_sim_transfer(bed2.network(), bed2.src(), bed2.dst(), small_transfer(2));
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.receiver_elapsed.ns(), b.receiver_elapsed.ns());
  EXPECT_EQ(a.acks_sent, b.acks_sent);
}

TEST(FobsTransferSim, AdaptiveVariantCompletesAndVerifies) {
  Testbed bed(PathId::kGigabitContended);
  auto config = small_transfer(8);
  config.sender.adaptive.enabled = true;
  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.data_verified);
}

// ---------------------------------------------------------------------------
// Property sweep: every combination of (path, ack frequency, packet
// size, extra loss) must complete with byte-exact data, non-negative
// waste, and sent >= needed.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<PathId, std::int64_t /*ack_freq*/, std::int64_t /*pkt*/,
                              double /*loss*/>;

class FobsTransferSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FobsTransferSweep, CompletesByteExact) {
  const auto [path, ack_frequency, packet_bytes, loss] = GetParam();
  auto spec = exp::spec_for(path);
  spec.fwd_loss = std::max(spec.fwd_loss, loss);
  Testbed bed(spec, /*seed=*/17);

  SimTransferConfig config;
  config.spec.object_bytes = 2 * 1024 * 1024;
  config.spec.packet_bytes = packet_bytes;
  config.receiver.ack_frequency = ack_frequency;
  config.receiver_socket_buffer_bytes = 256 * 1024;
  config.carry_data = true;

  const auto result = run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed) << "path=" << to_string(path) << " F=" << ack_frequency
                                << " pkt=" << packet_bytes << " loss=" << loss;
  EXPECT_TRUE(result.data_verified);
  EXPECT_GE(result.packets_sent, result.packets_needed);
  EXPECT_GE(result.waste, 0.0);
  EXPECT_GT(result.goodput_mbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FobsTransferSweep,
    ::testing::Combine(::testing::Values(PathId::kShortHaul, PathId::kLongHaul,
                                         PathId::kGigabitOc12),
                       ::testing::Values<std::int64_t>(1, 32, 1024),
                       ::testing::Values<std::int64_t>(512, 1024, 8192),
                       ::testing::Values(0.0, 1e-3)));

}  // namespace
}  // namespace fobs
