// Golden regression tests: fixed-seed simulated transfers must
// reproduce EXACT packet-level numbers. The simulator is deterministic
// (integer-nanosecond event times, seeded RNG, no wall clock), so any
// change in these numbers means a behavioural change in the protocol
// core, the drivers, or the network model — intended or not. They exist
// so such changes are visible in review instead of slipping through as
// "the averages still look right".
//
// Re-blessing procedure (after an INTENTIONAL behaviour change):
//   1. Build and run this binary; each failing EXPECT prints
//      "actual vs expected" for the changed quantity.
//   2. Copy the actual values into the Golden tables below.
//   3. In the PR description, explain WHY the numbers moved (e.g. "ack
//      rotation now starts at the frontier, so one fewer duplicate per
//      pass") — a golden diff without a mechanism is a bug report.
// Do NOT re-bless to silence a failure you cannot explain.
#include <gtest/gtest.h>

#include <cstdint>

#include "exp/runner.h"
#include "exp/testbeds.h"

namespace fobs {
namespace {

struct Golden {
  std::int64_t packets_needed = 0;
  std::int64_t packets_sent = 0;
  std::uint64_t acks_sent = 0;
  std::int64_t duplicates = 0;
  std::uint64_t socket_drops = 0;
};

void expect_golden(const core::SimTransferResult& result, const Golden& golden) {
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.packets_needed, golden.packets_needed);
  EXPECT_EQ(result.packets_sent, golden.packets_sent);
  EXPECT_EQ(result.acks_sent, golden.acks_sent);
  EXPECT_EQ(result.duplicates_at_receiver, golden.duplicates);
  EXPECT_EQ(result.receiver_socket_drops, golden.socket_drops);
  // Waste is derived from the packet counters, so assert the exact
  // arithmetic rather than a snapshotted double.
  EXPECT_DOUBLE_EQ(result.waste,
                   static_cast<double>(golden.packets_sent - golden.packets_needed) /
                       static_cast<double>(golden.packets_needed));
}

exp::FobsRunParams golden_params() {
  exp::FobsRunParams params;
  params.object_bytes = 4 * 1024 * 1024;  // 4096 packets: fast but lossy enough
  params.packet_bytes = 1024;
  params.ack_frequency = 64;
  return params;
}

TEST(GoldenRegression, ShortHaulSeed42) {
  const auto result =
      exp::run_fobs(exp::spec_for(exp::PathId::kShortHaul), golden_params(), 42);
  expect_golden(result, Golden{
                            .packets_needed = 4096,
                            .packets_sent = 4646,
                            .acks_sent = 64,
                            .duplicates = 152,
                            .socket_drops = 0,
                        });
}

TEST(GoldenRegression, LongHaulSeed42) {
  const auto result =
      exp::run_fobs(exp::spec_for(exp::PathId::kLongHaul), golden_params(), 42);
  expect_golden(result, Golden{
                            .packets_needed = 4096,
                            .packets_sent = 5103,
                            .acks_sent = 64,
                            .duplicates = 380,
                            .socket_drops = 0,
                        });
}

// A second seed per path guards against the numbers above passing by
// coincidence after a change that only shifts behaviour elsewhere.
// (On these paths the loss pattern is dominated by deterministic
// buffer overflow, so the counters happen to match seed 42's — the
// point is that they are pinned, not that they differ.)
TEST(GoldenRegression, ShortHaulSeed7) {
  const auto result =
      exp::run_fobs(exp::spec_for(exp::PathId::kShortHaul), golden_params(), 7);
  expect_golden(result, Golden{
                            .packets_needed = 4096,
                            .packets_sent = 4646,
                            .acks_sent = 64,
                            .duplicates = 152,
                            .socket_drops = 0,
                        });
}

TEST(GoldenRegression, DeterminismAcrossRepeatRuns) {
  const auto spec = exp::spec_for(exp::PathId::kLongHaul);
  const auto a = exp::run_fobs(spec, golden_params(), 42);
  const auto b = exp::run_fobs(spec, golden_params(), 42);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.duplicates_at_receiver, b.duplicates_at_receiver);
  EXPECT_EQ(a.receiver_socket_drops, b.receiver_socket_drops);
  EXPECT_EQ(a.receiver_elapsed.ns(), b.receiver_elapsed.ns());
}

}  // namespace
}  // namespace fobs
