// Unit tests for the Host (port demux, CPU model, writability) and the
// UDP endpoint over a two-host network.
#include <gtest/gtest.h>

#include <any>
#include <span>
#include <vector>

#include "host/host.h"
#include "net/udp.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs {
namespace {

using host::CpuModel;
using host::Host;
using host::HostConfig;
using net::UdpEndpoint;
using sim::LinkConfig;
using sim::Network;
using sim::Packet;
using sim::Simulation;
using util::DataRate;
using util::DataSize;
using util::Duration;

HostConfig named_host(const char* name) {
  HostConfig config;
  config.name = name;
  return config;
}

/// Two hosts joined by a pair of direct links (no routers).
struct TwoHosts {
  Simulation sim;
  Network net{sim};
  Host* a;
  Host* b;
  sim::Link* ab;
  sim::Link* ba;

  explicit TwoHosts(DataRate rate = DataRate::megabits_per_second(100),
                    std::int64_t queue = 64 * 1024) {
    a = &Host::create(net, named_host("a"));
    b = &Host::create(net, named_host("b"));
    LinkConfig cfg;
    cfg.rate = rate;
    cfg.queue_capacity_bytes = queue;
    cfg.propagation_delay = Duration::microseconds(100);
    ab = &net.add_link(cfg);
    ba = &net.add_link(cfg);
    ab->set_sink(b);
    ba->set_sink(a);
    a->set_egress(ab);
    b->set_egress(ba);
  }
};

TEST(CpuModel, CostsScaleWithPayload) {
  CpuModel cpu;
  cpu.per_packet_send = Duration::microseconds(5);
  cpu.per_kb_send = Duration::microseconds(2);
  EXPECT_EQ(cpu.send_cost(DataSize::bytes(1024)).us(), 7);
  EXPECT_EQ(cpu.send_cost(DataSize::bytes(0)).us(), 5);
  EXPECT_EQ(cpu.send_cost(DataSize::bytes(2048)).us(), 9);
  cpu.per_packet_recv = Duration::microseconds(10);
  cpu.per_kb_recv = Duration::microseconds(4);
  EXPECT_EQ(cpu.recv_cost(DataSize::bytes(512)).us(), 12);
}

TEST(Host, EphemeralPortsAreUnique) {
  TwoHosts world;
  UdpEndpoint e1(*world.a);
  UdpEndpoint e2(*world.a);
  UdpEndpoint e3(*world.a);
  EXPECT_NE(e1.port(), e2.port());
  EXPECT_NE(e2.port(), e3.port());
}

TEST(Host, UnboundPortCountsDrops) {
  TwoHosts world;
  UdpEndpoint sender(*world.a);
  sender.send_to(world.b->id(), 4242, 100, std::any{});
  world.sim.run();
  EXPECT_EQ(world.b->no_port_drops(), 1u);
}

TEST(Host, SendStampsSourceAndUid) {
  TwoHosts world;
  UdpEndpoint sender(*world.a);
  UdpEndpoint receiver(*world.b, 5000);
  sender.send_to(world.b->id(), 5000, 64, std::any{});
  sender.send_to(world.b->id(), 5000, 64, std::any{});
  world.sim.run();
  auto p1 = receiver.try_recv();
  auto p2 = receiver.try_recv();
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p1->src, world.a->id());
  EXPECT_EQ(p1->src_port, sender.port());
  EXPECT_NE(p1->uid, p2->uid);
}

TEST(Udp, DeliversPayloadAndCountsBytes) {
  TwoHosts world;
  UdpEndpoint sender(*world.a);
  UdpEndpoint receiver(*world.b, 5000);
  EXPECT_TRUE(sender.send_to(world.b->id(), 5000, 1000, std::string("hello")));
  world.sim.run();
  ASSERT_TRUE(receiver.has_data());
  auto pkt = receiver.try_recv();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(std::any_cast<std::string>(pkt->payload), "hello");
  EXPECT_EQ(pkt->size_bytes, 1000 + sim::kUdpIpOverheadBytes);
  EXPECT_EQ(receiver.stats().datagrams_received, 1u);
  EXPECT_EQ(receiver.stats().bytes_received, 1000);
  EXPECT_EQ(sender.stats().datagrams_sent, 1u);
}

TEST(Udp, SendWouldBlockWhenNicFull) {
  TwoHosts world(DataRate::megabits_per_second(1), /*queue=*/4096);
  UdpEndpoint sender(*world.a);
  UdpEndpoint receiver(*world.b, 5000);
  int accepted = 0;
  while (sender.send_to(world.b->id(), 5000, 1400, std::any{})) ++accepted;
  EXPECT_GT(accepted, 0);
  EXPECT_GT(sender.stats().send_would_block, 0u);
  EXPECT_FALSE(sender.writable(1400));
  // Once the queue drains, writability returns.
  world.sim.run();
  EXPECT_TRUE(sender.writable(1400));
}

TEST(Udp, BatchSendAndBatchRecvMirrorTheSingleCalls) {
  TwoHosts world;
  UdpEndpoint sender(*world.a);
  UdpEndpoint receiver(*world.b, 5000);
  std::vector<net::SimDatagram> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back({world.b->id(), 5000, 500, std::any{i}});
  }
  EXPECT_EQ(sender.send_batch(batch), 8u);
  EXPECT_EQ(sender.stats().datagrams_sent, 8u);
  world.sim.run();

  // recv_batch drains oldest-first into the spans it is given, exactly
  // like repeated try_recv calls would.
  std::vector<Packet> out(5);
  ASSERT_EQ(receiver.recv_batch(out), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(std::any_cast<int>(out[i].payload), i);
  EXPECT_EQ(receiver.buffered_datagrams(), 3u);
  auto rest = receiver.try_recv();
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(std::any_cast<int>(rest->payload), 5);
  ASSERT_EQ(receiver.recv_batch(out), 2u);
  EXPECT_EQ(std::any_cast<int>(out[1].payload), 7);
  EXPECT_EQ(receiver.recv_batch(out), 0u);
  EXPECT_EQ(receiver.stats().bytes_received, 8 * 500);
}

TEST(Udp, BatchSendStopsAtFirstRefusalLeavingTheRestIntact) {
  TwoHosts world(DataRate::megabits_per_second(1), /*queue=*/4096);
  UdpEndpoint sender(*world.a);
  UdpEndpoint receiver(*world.b, 5000);
  std::vector<net::SimDatagram> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back({world.b->id(), 5000, 1400, std::any{i}});
  }
  const std::size_t sent = sender.send_batch(batch);
  ASSERT_GT(sent, 0u);
  ASSERT_LT(sent, batch.size());
  EXPECT_EQ(sender.stats().send_would_block, 1u);
  // The refused tail is untouched and can be retried verbatim.
  EXPECT_EQ(std::any_cast<int>(batch[sent].payload), static_cast<int>(sent));
  world.sim.run();
  EXPECT_GT(sender.send_batch(std::span(batch).subspan(sent)), 0u);
}

TEST(Udp, WritabilityNotificationFires) {
  TwoHosts world(DataRate::megabits_per_second(1), /*queue=*/4096);
  UdpEndpoint sender(*world.a);
  UdpEndpoint receiver(*world.b, 5000);
  while (sender.send_to(world.b->id(), 5000, 1400, std::any{})) {
  }
  bool notified = false;
  world.a->notify_writable([&] { notified = true; });
  world.sim.run();
  EXPECT_TRUE(notified);
}

TEST(Udp, RxBufferOverflowDropsWhenAppNotDraining) {
  TwoHosts world(DataRate::megabits_per_second(100), /*queue=*/1024 * 1024);
  UdpEndpoint sender(*world.a);
  // Tiny 4 KB socket buffer at the receiver.
  UdpEndpoint receiver(*world.b, 5000, 4096);
  for (int i = 0; i < 20; ++i) sender.send_to(world.b->id(), 5000, 1000, std::any{});
  world.sim.run();  // app never drains
  EXPECT_GT(receiver.stats().rx_overflow_drops, 0u);
  EXPECT_LE(receiver.buffered_bytes(), 4096);
  // Draining frees space for new arrivals.
  const auto drops_before = receiver.stats().rx_overflow_drops;
  while (receiver.try_recv()) {
  }
  sender.send_to(world.b->id(), 5000, 1000, std::any{});
  world.sim.run();
  EXPECT_EQ(receiver.stats().rx_overflow_drops, drops_before);
  EXPECT_TRUE(receiver.has_data());
}

TEST(Udp, RxNotifyFiresOnceOnEmptyToNonEmpty) {
  TwoHosts world;
  UdpEndpoint sender(*world.a);
  UdpEndpoint receiver(*world.b, 5000);
  int notifications = 0;
  receiver.set_rx_notify([&] { ++notifications; });
  sender.send_to(world.b->id(), 5000, 100, std::any{});
  sender.send_to(world.b->id(), 5000, 100, std::any{});
  world.sim.run();
  EXPECT_EQ(notifications, 1);  // one-shot, armed once
  EXPECT_EQ(receiver.buffered_datagrams(), 2u);
}

TEST(Host, BindUnbindLifecycle) {
  TwoHosts world;
  {
    UdpEndpoint temp(*world.b, 6000);
    UdpEndpoint sender(*world.a);
    sender.send_to(world.b->id(), 6000, 10, std::any{});
    world.sim.run();
    EXPECT_TRUE(temp.has_data());
  }
  // Port 6000 is free again; traffic to it is dropped, not crashed.
  UdpEndpoint sender(*world.a);
  sender.send_to(world.b->id(), 6000, 10, std::any{});
  world.sim.run();
  EXPECT_EQ(world.b->no_port_drops(), 1u);
}

}  // namespace
}  // namespace fobs
