// Batched datagram I/O layer tests: DatagramChannel mechanics (mode
// resolution, option validation, batched round-trips, garbage and short
// datagrams landing mid-recvmmsg-batch), byte-identical transfers with
// the fast path forced on and forced off, per-datagram fault injection
// inside gathered batches, and the syscalls-per-packet win the batched
// path exists for.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fobs/posix/codec.h"
#include "fobs/posix/posix_transfer.h"
#include "fobs/sim_transfer.h"
#include "net/datagram_channel.h"

namespace fobs {
namespace {

// Distinct port bases per test to avoid rebind races (clear of the
// 36xxx / 37xxx / 38xxx blocks used by the other POSIX suites).
std::uint16_t port_base(int offset) { return static_cast<std::uint16_t>(39000 + offset); }

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  return addr;
}

/// RAII guard for the FOBS_IO_MODE environment override.
class IoModeEnv {
 public:
  explicit IoModeEnv(const char* value) { ::setenv("FOBS_IO_MODE", value, 1); }
  ~IoModeEnv() { ::unsetenv("FOBS_IO_MODE"); }
};

// ---------------------------------------------------------------------------
// IoOptions validation
// ---------------------------------------------------------------------------

TEST(IoOptionsValidation, RejectsOutOfRangeValues) {
  net::IoOptions io;
  EXPECT_TRUE(io.validate().empty());

  io.send_batch = 0;
  EXPECT_NE(io.validate().find("send_batch"), std::string::npos);
  io.send_batch = net::kMaxBatchDatagrams + 1;
  EXPECT_NE(io.validate().find("send_batch"), std::string::npos);
  io.send_batch = net::kMaxBatchDatagrams;
  EXPECT_TRUE(io.validate().empty());

  io.recv_batch = -3;
  EXPECT_NE(io.validate().find("recv_batch"), std::string::npos);
  io.recv_batch = 1;
  EXPECT_TRUE(io.validate().empty());

  io.send_buffer_bytes = -1;
  EXPECT_NE(io.validate().find("send_buffer_bytes"), std::string::npos);
  io.send_buffer_bytes = 0;  // 0 = system default, valid
  io.recv_buffer_bytes = -1;
  EXPECT_NE(io.validate().find("recv_buffer_bytes"), std::string::npos);
}

TEST(IoOptionsValidation, BadIoOptionsYieldBadOptionsBeforeAnySocket) {
  const std::vector<std::uint8_t> object(1024, 0xAA);
  posix::SenderOptions send_opts;
  send_opts.data_port = port_base(0);
  send_opts.control_port = port_base(1);
  send_opts.endpoint.io.send_batch = 1000;
  auto sender = posix::send_object(send_opts, object);
  EXPECT_EQ(sender.status, posix::TransferStatus::kBadOptions);
  EXPECT_NE(sender.error.find("send_batch"), std::string::npos) << sender.error;

  std::vector<std::uint8_t> sink(1024, 0);
  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(0);
  recv_opts.control_port = port_base(1);
  recv_opts.endpoint.io.recv_batch = 0;
  auto receiver = posix::receive_object(recv_opts, sink);
  EXPECT_EQ(receiver.status, posix::TransferStatus::kBadOptions);
  EXPECT_NE(receiver.error.find("recv_batch"), std::string::npos) << receiver.error;
}

TEST(IoOptionsValidation, OpenRejectsInvalidOptions) {
  net::IoOptions io;
  io.recv_batch = 0;
  std::string error;
  auto channel = net::DatagramChannel::open(io, 2048, std::nullopt, &error);
  EXPECT_FALSE(channel.valid());
  EXPECT_NE(error.find("recv_batch"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Channel mechanics
// ---------------------------------------------------------------------------

TEST(IoChannel, ModeSwitchesSelectTheExpectedPath) {
  std::string error;
  net::IoOptions io;

  io.mode = net::IoMode::kFallback;
  auto fallback = net::DatagramChannel::open(io, 2048, std::nullopt, &error);
  ASSERT_TRUE(fallback.valid()) << error;
  EXPECT_FALSE(fallback.batched());

#if defined(__linux__)
  io.mode = net::IoMode::kBatched;
  auto batched = net::DatagramChannel::open(io, 2048, std::nullopt, &error);
  ASSERT_TRUE(batched.valid()) << error;
  EXPECT_TRUE(batched.batched());

  // The environment override resolves kAuto without a recompile.
  io.mode = net::IoMode::kAuto;
  {
    IoModeEnv env("fallback");
    auto forced = net::DatagramChannel::open(io, 2048, std::nullopt, &error);
    ASSERT_TRUE(forced.valid()) << error;
    EXPECT_FALSE(forced.batched());
  }
  auto auto_mode = net::DatagramChannel::open(io, 2048, std::nullopt, &error);
  ASSERT_TRUE(auto_mode.valid()) << error;
  EXPECT_TRUE(auto_mode.batched());
#endif
}

TEST(IoChannel, BatchRoundTripsGatheredDatagramsByteExact) {
  std::string error;
  net::IoOptions io;
  constexpr std::size_t kHeaderBytes = 4;
  constexpr std::size_t kPayloadBytes = 512;
  auto rx = net::DatagramChannel::open(io, kHeaderBytes + kPayloadBytes, 0, &error);
  ASSERT_TRUE(rx.valid()) << error;
  ASSERT_NE(rx.local_port(), 0);
  auto tx = net::DatagramChannel::open(io, kHeaderBytes + kPayloadBytes, std::nullopt, &error);
  ASSERT_TRUE(tx.valid()) << error;

  // 40 two-piece datagrams: a distinct header + a slice of one shared
  // payload buffer, exercising the scatter-gather path end to end.
  constexpr int kCount = 40;
  std::vector<std::array<std::uint8_t, kHeaderBytes>> headers(kCount);
  std::vector<std::uint8_t> payload(kCount * kPayloadBytes);
  util::Rng rng(0x10C4);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next());
  std::vector<net::DatagramView> batch;
  for (int i = 0; i < kCount; ++i) {
    headers[i] = {static_cast<std::uint8_t>(i), 0xAB, 0xCD,
                  static_cast<std::uint8_t>(~i)};
    batch.push_back({std::span<const std::uint8_t>(headers[i]),
                     std::span<const std::uint8_t>(payload.data() + i * kPayloadBytes,
                                                   kPayloadBytes)});
  }
  const auto dest = loopback(rx.local_port());
  ASSERT_TRUE(tx.send_batch(batch, dest, &error)) << error;
  EXPECT_EQ(tx.stats().datagrams_sent, static_cast<std::uint64_t>(kCount));

  // Drain, tolerating loopback scheduling: everything must arrive, in
  // order, byte-identical to header||payload.
  std::vector<net::RecvView> views(16);
  int received = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received < kCount && std::chrono::steady_clock::now() < deadline) {
    const int got = rx.recv_batch(views, &error);
    ASSERT_GE(got, 0) << error;
    if (got == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    for (int i = 0; i < got; ++i, ++received) {
      ASSERT_EQ(views[i].data.size(), kHeaderBytes + kPayloadBytes);
      EXPECT_EQ(views[i].data[0], static_cast<std::uint8_t>(received));
      EXPECT_EQ(std::memcmp(views[i].data.data() + kHeaderBytes,
                            payload.data() + received * kPayloadBytes, kPayloadBytes),
                0);
    }
  }
  ASSERT_EQ(received, kCount);
#if defined(__linux__)
  // The whole point: far fewer syscalls than datagrams on both sides.
  EXPECT_LE(tx.stats().send_syscalls * 4, tx.stats().datagrams_sent);
  EXPECT_LT(rx.stats().recv_syscalls, rx.stats().datagrams_received);
  EXPECT_EQ(tx.stats().copy_bytes_avoided,
            static_cast<std::int64_t>(kCount * kPayloadBytes));
#endif
}

TEST(IoChannel, GarbageAndShortDatagramsSurviveMidBatch) {
  // A recvmmsg batch containing a mix of valid FOBS data packets,
  // truncated packets, and raw junk: every slot must come back with its
  // exact size and bytes — one bad datagram must not poison its batch.
  std::string error;
  net::IoOptions io;
  auto rx = net::DatagramChannel::open(io, 2048, 0, &error);
  ASSERT_TRUE(rx.valid()) << error;
  auto tx = net::DatagramChannel::open(io, 2048, std::nullopt, &error);
  ASSERT_TRUE(tx.valid()) << error;

  std::vector<std::vector<std::uint8_t>> wire;
  util::Rng rng(0xBAD);
  for (int i = 0; i < 30; ++i) {
    std::vector<std::uint8_t> datagram;
    switch (i % 3) {
      case 0: {  // valid-looking data packet
        datagram.resize(posix::kDataHeaderSize + 64);
        for (auto& byte : datagram) byte = static_cast<std::uint8_t>(rng.next());
        posix::encode_data_header(posix::DataHeader{i, 0}, datagram.data());
        break;
      }
      case 1:  // short datagram (one lone byte)
        datagram = {static_cast<std::uint8_t>(i)};
        break;
      default:  // mid-size junk
        datagram.resize(1 + rng.next() % 256);
        for (auto& byte : datagram) byte = static_cast<std::uint8_t>(rng.next());
        break;
    }
    wire.push_back(std::move(datagram));
  }
  std::vector<net::DatagramView> batch;
  for (const auto& datagram : wire) {
    batch.push_back({std::span<const std::uint8_t>(datagram)});
  }
  ASSERT_TRUE(tx.send_batch(batch, loopback(rx.local_port()), &error)) << error;

  std::vector<net::RecvView> views(8);
  std::size_t received = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received < wire.size() && std::chrono::steady_clock::now() < deadline) {
    const int got = rx.recv_batch(views, &error);
    ASSERT_GE(got, 0) << error;
    if (got == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    for (int i = 0; i < got; ++i, ++received) {
      ASSERT_EQ(views[i].data.size(), wire[received].size());
      EXPECT_EQ(std::memcmp(views[i].data.data(), wire[received].data(),
                            wire[received].size()),
                0);
    }
  }
  ASSERT_EQ(received, wire.size());
}

// ---------------------------------------------------------------------------
// End-to-end transfers: batched vs fallback
// ---------------------------------------------------------------------------

struct TransferPair {
  posix::SenderResult sender;
  posix::ReceiverResult receiver;
};

TransferPair run_pair(const posix::SenderOptions& send_opts,
                      const posix::ReceiverOptions& recv_opts,
                      std::span<const std::uint8_t> object, std::span<std::uint8_t> sink) {
  TransferPair out;
  std::thread receiver_thread([&] { out.receiver = posix::receive_object(recv_opts, sink); });
  out.sender = posix::send_object(send_opts, object);
  receiver_thread.join();
  return out;
}

TransferPair run_mode_pair(int port_offset, net::IoMode mode,
                           std::span<const std::uint8_t> object,
                           std::span<std::uint8_t> sink, const std::string& fault_plan = {}) {
  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(port_offset);
  recv_opts.control_port = port_base(port_offset + 1);
  recv_opts.endpoint.timeout_ms = 30'000;
  recv_opts.endpoint.io.mode = mode;

  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.timeout_ms = 30'000;
  send_opts.endpoint.io.mode = mode;
  send_opts.endpoint.fault_plan = fault_plan;
  // A protocol batch large enough that the gather path has something to
  // gather (the paper's default of 2 packets per batch caps sendmmsg at
  // 2 datagrams per syscall).
  send_opts.core.batch_size = 32;
  return run_pair(send_opts, recv_opts, object, sink);
}

TEST(IoTransfer, BatchedAndFallbackTransfersAreByteIdentical) {
  const auto object = core::make_pattern(512 * 1024, 0x10AD);

  std::vector<std::uint8_t> fallback_sink(object.size(), 0);
  const auto fallback = run_mode_pair(10, net::IoMode::kFallback, object, fallback_sink);
  ASSERT_TRUE(fallback.receiver.completed()) << fallback.receiver.error;
  ASSERT_TRUE(fallback.sender.completed()) << fallback.sender.error;
  EXPECT_EQ(fallback_sink, object);
  // Fallback is the classic one-syscall-per-datagram path.
  EXPECT_EQ(fallback.sender.io.send_syscalls, fallback.sender.io.datagrams_sent);
  EXPECT_EQ(fallback.sender.io.copy_bytes_avoided, 0);

#if defined(__linux__)
  std::vector<std::uint8_t> batched_sink(object.size(), 0);
  const auto batched = run_mode_pair(12, net::IoMode::kBatched, object, batched_sink);
  ASSERT_TRUE(batched.receiver.completed()) << batched.receiver.error;
  ASSERT_TRUE(batched.sender.completed()) << batched.sender.error;
  EXPECT_EQ(batched_sink, object);
  EXPECT_EQ(batched_sink, fallback_sink);

  // Acceptance: the batched path must issue >=4x fewer data-plane send
  // syscalls per packet than the fallback path.
  ASSERT_GT(batched.sender.io.send_syscalls, 0u);
  EXPECT_LE(batched.sender.io.send_syscalls * 4, batched.sender.io.datagrams_sent);
  // Every payload byte went out gathered straight from the object.
  EXPECT_GE(batched.sender.io.copy_bytes_avoided,
            static_cast<std::int64_t>(object.size()));
#endif
}

TEST(IoTransfer, EnvOverrideForcesFallbackForAutoMode) {
  IoModeEnv env("fallback");
  const auto object = core::make_pattern(64 * 1024, 0xE27);
  std::vector<std::uint8_t> sink(object.size(), 0);
  const auto pair = run_mode_pair(14, net::IoMode::kAuto, object, sink);
  ASSERT_TRUE(pair.receiver.completed()) << pair.receiver.error;
  ASSERT_TRUE(pair.sender.completed()) << pair.sender.error;
  EXPECT_EQ(sink, object);
  EXPECT_EQ(pair.sender.io.send_syscalls, pair.sender.io.datagrams_sent);
  EXPECT_EQ(pair.sender.io.copy_bytes_avoided, 0);
}

TEST(IoTransfer, TransferSurvivesGarbageSprayedIntoBatches) {
  // Junk datagrams interleave with real data inside the receiver's
  // recvmmsg batches; the transfer must complete byte-identical.
  const auto object = core::make_pattern(256 * 1024, 0xF00D);
  std::vector<std::uint8_t> sink(object.size(), 0);

  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = port_base(16);
  recv_opts.control_port = port_base(17);
  recv_opts.endpoint.timeout_ms = 30'000;
  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.timeout_ms = 30'000;

  std::atomic<bool> stop{false};
  std::thread garbage_thread([&] {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    const sockaddr_in to = loopback(recv_opts.data_port);
    util::Rng rng(0xBAD2);
    std::vector<std::uint8_t> junk(256);
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.next());
      const std::size_t len = 1 + static_cast<std::size_t>(rng.next() % junk.size());
      ::sendto(fd, junk.data(), len, 0, reinterpret_cast<const sockaddr*>(&to), sizeof to);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ::close(fd);
  });

  const auto pair = run_pair(send_opts, recv_opts, object, sink);
  stop.store(true);
  garbage_thread.join();

  ASSERT_TRUE(pair.receiver.completed()) << pair.receiver.error;
  ASSERT_TRUE(pair.sender.completed()) << pair.sender.error;
  EXPECT_EQ(sink, object);
}

// ---------------------------------------------------------------------------
// Fault injection must act per-datagram inside gathered batches
// ---------------------------------------------------------------------------

TEST(IoFaults, CorruptFaultHitsSingleDatagramsInsideBatches) {
  const auto object = core::make_pattern(256 * 1024, 0xC0DE);
  std::vector<std::uint8_t> sink(object.size(), 0);
  const auto pair =
      run_mode_pair(18, net::IoMode::kAuto, object, sink, "seed=11;data.corrupt=0.05");
  ASSERT_TRUE(pair.receiver.completed()) << pair.receiver.error;
  ASSERT_TRUE(pair.sender.completed()) << pair.sender.error;
  EXPECT_EQ(sink, object);
  // Some datagrams of each gathered batch were corrupted and rejected
  // by the receiver's CRC, while their batch-mates landed fine.
  EXPECT_GT(pair.receiver.corrupt_packets_dropped, 0);
  EXPECT_GT(pair.sender.packets_sent, pair.sender.packets_needed);
}

TEST(IoFaults, DropAndDuplicateFaultsActPerDatagramInsideBatches) {
  const auto object = core::make_pattern(256 * 1024, 0xD0D0);
  std::vector<std::uint8_t> sink(object.size(), 0);
  const auto pair = run_mode_pair(20, net::IoMode::kAuto, object, sink,
                                  "seed=7;data.drop=0.05;data.dup=0.05");
  ASSERT_TRUE(pair.receiver.completed()) << pair.receiver.error;
  ASSERT_TRUE(pair.sender.completed()) << pair.sender.error;
  EXPECT_EQ(sink, object);
  // Duplicated datagrams ride in the same batch as their original and
  // show up receiver-side as protocol duplicates.
  EXPECT_GT(pair.receiver.duplicates, 0);
  // Dropped datagrams cost resends: the sender selected more packets
  // than the object needs.
  EXPECT_GT(pair.sender.packets_sent, pair.sender.packets_needed);
}

}  // namespace
}  // namespace fobs
