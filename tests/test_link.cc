// Unit tests for links: serialization timing, drop-tail queueing,
// propagation, loss models, and space callbacks.
#include <gtest/gtest.h>

#include <vector>

#include "sim/link.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs::sim {
namespace {

using fobs::util::DataRate;
using fobs::util::Duration;
using fobs::util::TimePoint;

/// Records every delivered packet with its arrival time.
class RecordingSink final : public PacketSink {
 public:
  explicit RecordingSink(Simulation& sim) : sim_(sim) {}
  void deliver(Packet packet) override {
    arrivals.push_back({sim_.now(), packet.uid});
  }
  struct Arrival {
    TimePoint when;
    std::uint64_t uid;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulation& sim_;
};

Packet make_packet(std::uint64_t uid, std::int64_t bytes) {
  Packet pkt;
  pkt.uid = uid;
  pkt.size_bytes = bytes;
  return pkt;
}

TEST(Link, SerializationPlusPropagation) {
  Simulation sim;
  LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(100);  // 1250 B = 100 us
  cfg.propagation_delay = Duration::milliseconds(1);
  Link link(sim, cfg);
  RecordingSink sink(sim);
  link.set_sink(&sink);

  link.deliver(make_packet(1, 1250));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].when.us(), 100 + 1000);
  EXPECT_EQ(link.stats().packets_delivered, 1u);
  EXPECT_EQ(link.stats().bytes_delivered, 1250);
}

TEST(Link, BackToBackPacketsPipelineThroughPropagation) {
  Simulation sim;
  LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(100);
  cfg.propagation_delay = Duration::milliseconds(10);
  Link link(sim, cfg);
  RecordingSink sink(sim);
  link.set_sink(&sink);

  link.deliver(make_packet(1, 1250));
  link.deliver(make_packet(2, 1250));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  // Second packet arrives one serialization time after the first —
  // propagation overlaps (the wire is a pipe, not a lock).
  EXPECT_EQ(sink.arrivals[0].when.us(), 100 + 10000);
  EXPECT_EQ(sink.arrivals[1].when.us(), 200 + 10000);
}

TEST(Link, DropTailOnQueueOverflow) {
  Simulation sim;
  LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(1);  // slow: queue builds
  cfg.queue_capacity_bytes = 3000;
  Link link(sim, cfg);
  RecordingSink sink(sim);
  link.set_sink(&sink);

  // First starts transmitting (not queued); then 3000 bytes fit; the
  // rest drop.
  for (std::uint64_t i = 0; i < 6; ++i) link.deliver(make_packet(i, 1000));
  EXPECT_EQ(link.stats().drops_overflow, 2u);
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 4u);
  EXPECT_EQ(link.stats().packets_offered, 6u);
}

TEST(Link, HasRoomForReflectsQueueState) {
  Simulation sim;
  LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(1);
  cfg.queue_capacity_bytes = 2000;
  Link link(sim, cfg);
  RecordingSink sink(sim);
  link.set_sink(&sink);

  EXPECT_TRUE(link.has_room_for(2000));
  link.deliver(make_packet(1, 1000));  // transmitting, queue empty
  EXPECT_TRUE(link.has_room_for(2000));
  link.deliver(make_packet(2, 1500));  // queued
  EXPECT_FALSE(link.has_room_for(1000));
  EXPECT_TRUE(link.has_room_for(500));
  EXPECT_EQ(link.queued_bytes(), 1500);
}

TEST(Link, SpaceCallbackFiresWhenQueueDrains) {
  Simulation sim;
  LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(100);
  Link link(sim, cfg);
  RecordingSink sink(sim);
  link.set_sink(&sink);
  int fires = 0;
  link.set_space_callback([&] { ++fires; });

  // Spurious wakeups are allowed (select() semantics); the guarantee is
  // that a drain event always produces at least one callback.
  link.deliver(make_packet(1, 1250));  // starts transmitting immediately
  link.deliver(make_packet(2, 1250));  // queued
  const int fires_before_drain = fires;
  sim.run();
  EXPECT_GE(fires, fires_before_drain + 1);  // fired when packet 2 left the queue
}

TEST(Link, RandomLossModelDropsAndCounts) {
  Simulation sim;
  LinkConfig cfg;
  cfg.rate = DataRate::gigabits_per_second(10);
  cfg.queue_capacity_bytes = 100 * 1024 * 1024;
  Link link(sim, cfg);
  RecordingSink sink(sim);
  link.set_sink(&sink);
  link.set_loss_model(std::make_unique<BernoulliLoss>(0.5, 1500), fobs::util::Rng(1));

  const int n = 2000;
  for (int i = 0; i < n; ++i) link.deliver(make_packet(static_cast<std::uint64_t>(i), 1000));
  sim.run();
  EXPECT_NEAR(static_cast<double>(link.stats().drops_random) / n, 0.5, 0.05);
  EXPECT_EQ(link.stats().drops_random + sink.arrivals.size(), static_cast<std::size_t>(n));
}

TEST(Link, UtilizationAccounting) {
  Simulation sim;
  LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(100);
  Link link(sim, cfg);
  RecordingSink sink(sim);
  link.set_sink(&sink);

  // 10 packets x 100 us = 1 ms busy.
  for (int i = 0; i < 10; ++i) link.deliver(make_packet(static_cast<std::uint64_t>(i), 1250));
  sim.run();
  EXPECT_EQ(link.stats().busy_time.us(), 1000);
  EXPECT_NEAR(link.stats().utilization(Duration::milliseconds(2)), 0.5, 1e-9);
}

}  // namespace
}  // namespace fobs::sim
