// Unit tests for loss models and cross-traffic generators.
#include <gtest/gtest.h>

#include "sim/cross_traffic.h"
#include "sim/link.h"
#include "sim/loss.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs::sim {
namespace {

using fobs::util::DataRate;
using fobs::util::Duration;
using fobs::util::Rng;

Packet sized_packet(std::int64_t bytes) {
  Packet pkt;
  pkt.size_bytes = bytes;
  return pkt;
}

TEST(LossModels, FragmentCount) {
  EXPECT_EQ(fragment_count(100, 1500), 1);
  EXPECT_EQ(fragment_count(1500, 1500), 1);
  EXPECT_EQ(fragment_count(1501, 1500), 2);
  EXPECT_EQ(fragment_count(32768, 1500), 22);
  EXPECT_EQ(fragment_count(9000, 0), 1);  // fragmentation disabled
}

TEST(LossModels, BernoulliZeroAndOne) {
  Rng rng(1);
  BernoulliLoss none(0.0);
  BernoulliLoss all(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(none.should_drop(sized_packet(1000), rng));
    EXPECT_TRUE(all.should_drop(sized_packet(1000), rng));
  }
}

TEST(LossModels, BernoulliRate) {
  Rng rng(2);
  BernoulliLoss loss(0.1);
  int drops = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) drops += loss.should_drop(sized_packet(1000), rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.1, 0.01);
}

TEST(LossModels, FragmentationAmplifiesLoss) {
  // A 32 KB datagram fragments into 22 pieces; with per-fragment loss p
  // its survival is (1-p)^22, so its drop rate is much higher.
  Rng rng1(3), rng2(3);
  BernoulliLoss loss_small(0.01, 1500);
  BernoulliLoss loss_big(0.01, 1500);
  int small_drops = 0, big_drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    small_drops += loss_small.should_drop(sized_packet(1000), rng1) ? 1 : 0;
    big_drops += loss_big.should_drop(sized_packet(32768), rng2) ? 1 : 0;
  }
  const double p_small = static_cast<double>(small_drops) / n;
  const double p_big = static_cast<double>(big_drops) / n;
  EXPECT_NEAR(p_small, 0.01, 0.005);
  EXPECT_NEAR(p_big, 1.0 - std::pow(0.99, 22), 0.02);
  EXPECT_GT(p_big, 5 * p_small);
}

TEST(LossModels, GilbertElliottBurstiness) {
  // Bad state drops heavily; dwell times are geometric, so drops come
  // in runs. Check aggregate rate is between the two states' rates.
  Rng rng(4);
  GilbertElliottLoss ge(/*p_good_to_bad=*/0.001, /*p_bad_to_good=*/0.05,
                        /*loss_good=*/0.0, /*loss_bad=*/0.5);
  int drops = 0;
  const int n = 200000;
  int run_max = 0, run = 0;
  for (int i = 0; i < n; ++i) {
    if (ge.should_drop(sized_packet(1000), rng)) {
      ++drops;
      run_max = std::max(run_max, ++run);
    } else {
      run = 0;
    }
  }
  const double rate = static_cast<double>(drops) / n;
  // Stationary bad-state fraction = 0.001/(0.001+0.05) ~ 1.96%; times
  // 50% loss => ~1% aggregate.
  EXPECT_NEAR(rate, 0.0098, 0.004);
  EXPECT_GE(run_max, 3);  // losses cluster
}

TEST(CrossTraffic, CbrOfferedLoadMatchesRate) {
  Simulation sim;
  fobs::sim::Network net(sim);
  auto& sink_node = net.add_blackhole("sink");
  CbrSource cbr(sim, sink_node, 100, sink_node.id(), 1000,
                DataRate::megabits_per_second(8), Rng(5));
  cbr.start();
  sim.run_until(fobs::util::TimePoint::from_ns(Duration::seconds(1).ns()));
  // 8 Mb/s with 1000 B packets = 1000 packets/s.
  EXPECT_NEAR(static_cast<double>(cbr.stats().packets_sent), 1000.0, 2.0);
  EXPECT_EQ(sink_node.packets_received(), cbr.stats().packets_sent);
}

TEST(CrossTraffic, PoissonMeanRate) {
  Simulation sim;
  fobs::sim::Network net(sim);
  auto& sink_node = net.add_blackhole("sink");
  PoissonSource src(sim, sink_node, 100, sink_node.id(), 1000,
                    DataRate::megabits_per_second(8), Rng(6));
  src.start();
  sim.run_until(fobs::util::TimePoint::from_ns(Duration::seconds(5).ns()));
  EXPECT_NEAR(static_cast<double>(src.stats().packets_sent) / 5.0, 1000.0, 50.0);
}

TEST(CrossTraffic, OnOffAverageLoadIsDutyCycleFraction) {
  Simulation sim;
  fobs::sim::Network net(sim);
  auto& sink_node = net.add_blackhole("sink");
  // Peak 40 Mb/s, on 50 ms / off 150 ms => ~25% duty => ~10 Mb/s avg.
  OnOffSource src(sim, sink_node, 100, sink_node.id(), 1000,
                  DataRate::megabits_per_second(40), Duration::milliseconds(50),
                  Duration::milliseconds(150), Rng(7));
  src.start();
  sim.run_until(fobs::util::TimePoint::from_ns(Duration::seconds(20).ns()));
  const double avg_mbps =
      static_cast<double>(src.stats().bytes_sent) * 8.0 / 20.0 / 1e6;
  EXPECT_NEAR(avg_mbps, 10.0, 3.0);
}

TEST(CrossTraffic, StopHaltsEmission) {
  Simulation sim;
  fobs::sim::Network net(sim);
  auto& sink_node = net.add_blackhole("sink");
  CbrSource cbr(sim, sink_node, 100, sink_node.id(), 1000,
                DataRate::megabits_per_second(8), Rng(8));
  cbr.start();
  sim.run_until(fobs::util::TimePoint::from_ns(Duration::milliseconds(100).ns()));
  cbr.stop();
  const auto sent = cbr.stats().packets_sent;
  sim.run_until(fobs::util::TimePoint::from_ns(Duration::seconds(1).ns()));
  EXPECT_LE(cbr.stats().packets_sent, sent + 1);  // at most one in-flight event
}

TEST(CrossTraffic, StartIsIdempotent) {
  Simulation sim;
  fobs::sim::Network net(sim);
  auto& sink_node = net.add_blackhole("sink");
  CbrSource cbr(sim, sink_node, 100, sink_node.id(), 1000,
                DataRate::megabits_per_second(8), Rng(9));
  cbr.start();
  cbr.start();  // must not double the rate
  sim.run_until(fobs::util::TimePoint::from_ns(Duration::seconds(1).ns()));
  EXPECT_NEAR(static_cast<double>(cbr.stats().packets_sent), 1000.0, 2.0);
}

}  // namespace
}  // namespace fobs::sim
