// Validates the simulator against the closed-form models — if these
// drift apart, either the math or the simulation has a bug.
#include <gtest/gtest.h>

#include "baselines/tcp_bulk.h"
#include "exp/models.h"
#include "exp/runner.h"

namespace fobs::exp {
namespace {

using util::DataRate;
using util::DataSize;
using util::Duration;

TEST(Models, WindowLimitedFormula) {
  // 64 KiB over 65 ms ~ 8.06 Mb/s.
  const auto rate = models::tcp_window_limited(DataSize::bytes(65535),
                                               Duration::milliseconds(65));
  EXPECT_NEAR(rate.mbps(), 8.06, 0.05);
}

TEST(Models, WindowLimitedMatchesSimulatedTcp) {
  auto spec = spec_for(PathId::kLongHaul);
  spec.fwd_loss = 0;
  spec.rev_loss = 0;
  Testbed bed(spec);
  const auto result = baselines::run_tcp_transfer(bed.network(), bed.src(), bed.dst(),
                                                  16 * 1024 * 1024,
                                                  baselines::tcp_without_lwe());
  ASSERT_TRUE(result.completed);
  const auto predicted = models::tcp_window_limited(DataSize::bytes(65535), spec.rtt());
  // Slow start + delayed acks cost a little; within 15%.
  EXPECT_NEAR(result.goodput_mbps, predicted.mbps(), predicted.mbps() * 0.15);
}

TEST(Models, MathisThroughputScalesAsRootLoss) {
  const auto at_1e4 = models::tcp_mathis(1460, Duration::milliseconds(65), 1e-4);
  const auto at_4e4 = models::tcp_mathis(1460, Duration::milliseconds(65), 4e-4);
  EXPECT_NEAR(at_1e4.bps() / at_4e4.bps(), 2.0, 0.01);  // sqrt(4) = 2
}

TEST(Models, SlowStartTime) {
  // 2 segments to ~1433 segments at 1.5x per RTT: log1.5(716) ~ 16.2 RTT.
  const auto t = models::slow_start_time(DataSize::bytes(2 * 1460),
                                         DataSize::bytes(1433 * 1460),
                                         Duration::milliseconds(65), 1.5);
  EXPECT_NEAR(t.seconds(), 16.2 * 0.065, 0.05);
  // Already past the target: zero.
  EXPECT_EQ(models::slow_start_time(DataSize::bytes(1 << 20), DataSize::bytes(1 << 10),
                                    Duration::milliseconds(10)),
            Duration::zero());
}

TEST(Models, ReceiverCeilingMatchesFigure3Endpoint) {
  // The gigabit testbed's receive path at 1 KiB datagrams.
  const auto spec = spec_for(PathId::kGigabitOc12);
  const auto ceiling = models::receiver_cpu_ceiling(
      spec.dst_cpu, DataSize::bytes(1024 + 16));
  // recv cost = 70us + ~19.3us => ~93 Mb/s of datagram bytes.
  EXPECT_NEAR(ceiling.mbps(), (1040.0 * 8) / 89.8, 5.0);
}

TEST(Models, FobsPredictionMatchesSimOnGigabitPath) {
  const auto spec = spec_for(PathId::kGigabitOc12);
  for (std::int64_t packet : {std::int64_t{1024}, std::int64_t{8192}}) {
    const auto predicted =
        models::fobs_throughput(spec.backbone, spec.src_cpu, spec.dst_cpu, packet, 64);
    FobsRunParams params;
    params.packet_bytes = packet;
    params.receiver_socket_buffer_bytes = 256 * 1024;
    const auto measured = run_fobs(spec, params);
    ASSERT_TRUE(measured.completed);
    EXPECT_NEAR(measured.goodput_mbps, predicted.goodput.mbps(),
                predicted.goodput.mbps() * 0.15)
        << "packet=" << packet;
    EXPECT_EQ(predicted.constraint,
              models::FobsPrediction::Constraint::kReceiverCpu);
  }
}

TEST(Models, FobsPredictionMatchesSimOnNicBottleneckedPath) {
  const auto spec = spec_for(PathId::kShortHaul);
  const auto predicted =
      models::fobs_throughput(spec.src_nic, spec.src_cpu, spec.dst_cpu, 1024, 64);
  EXPECT_EQ(predicted.constraint, models::FobsPrediction::Constraint::kWire);
  FobsRunParams params;
  const auto measured = run_fobs(spec, params);
  ASSERT_TRUE(measured.completed);
  EXPECT_NEAR(measured.goodput_mbps, predicted.goodput.mbps(),
              predicted.goodput.mbps() * 0.05);
}

TEST(Models, EndgameWasteFloorExplainsTable2Waste) {
  // ~480 Mb/s sender over a 32.5 ms one-way on a 40 MB object: ~5%.
  const double floor = models::endgame_waste_floor(
      DataRate::megabits_per_second(480), Duration::milliseconds(32),
      40ll * 1024 * 1024);
  EXPECT_NEAR(floor, 0.046, 0.005);
  // The measured contended-path waste must be at least this floor.
  const auto spec = spec_for(PathId::kGigabitContended);
  FobsRunParams params;
  const auto measured = run_fobs(spec, params);
  ASSERT_TRUE(measured.completed);
  EXPECT_GE(measured.waste, floor * 0.8);
}

TEST(Models, ReceiverAckStallCeilingExplainsFigure1LeftEdge) {
  // Short haul, F=1: recv(1040B) ~ 8.1us + 150us ack stall per packet.
  const auto spec = spec_for(PathId::kShortHaul);
  const auto ceiling = models::receiver_cpu_ceiling_with_acks(
      spec.dst_cpu, DataSize::bytes(1040), 1);
  FobsRunParams params;
  params.ack_frequency = 1;
  const auto measured = run_fobs(spec, params);
  ASSERT_TRUE(measured.completed);
  // Goodput ~ ceiling * payload share; generous 20% envelope (the
  // sender keeps the lossy pipe full, retransmissions interleave).
  const double predicted_mbps = ceiling.mbps() * 1024.0 / 1040.0;
  EXPECT_NEAR(measured.goodput_mbps, predicted_mbps, predicted_mbps * 0.2);
}

}  // namespace
}  // namespace fobs::exp
