// Concurrent FOBS transfers between the same host pair (distinct port
// bases): they must all complete, share the NIC, and contend for the
// hosts' CPUs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exp/testbeds.h"
#include "fobs/sim_driver.h"

namespace fobs {
namespace {

using exp::PathId;
using exp::Testbed;

struct Flow {
  std::unique_ptr<core::SimSender> sender;
  std::unique_ptr<core::SimReceiver> receiver;
  bool done = false;
};

double run_flows(int count, double* sum_seconds = nullptr) {
  Testbed bed(PathId::kShortHaul);
  auto& sim = bed.sim();
  core::TransferSpec spec{4 * 1024 * 1024, 1024};
  std::vector<Flow> flows(static_cast<std::size_t>(count));
  int done = 0;
  for (int i = 0; i < count; ++i) {
    const auto base = static_cast<sim::PortId>(core::kFobsPortBase + 100 * i);
    auto& flow = flows[static_cast<std::size_t>(i)];
    flow.sender = std::make_unique<core::SimSender>(bed.src(), spec, core::SenderConfig{},
                                                    nullptr, bed.dst().id(), base);
    flow.receiver = std::make_unique<core::SimReceiver>(
        bed.dst(), spec, core::ReceiverConfig{}, nullptr, bed.src().id(), 64 * 1024, base);
    flow.sender->set_on_finished([&flow, &done] {
      flow.done = true;
      ++done;
    });
    flow.receiver->start();
    flow.sender->start();
  }
  while (done < count && sim.now().seconds() < 300 && sim.step()) {
  }
  double last = 0.0;
  double sum = 0.0;
  for (auto& flow : flows) {
    if (!flow.done || !flow.receiver->complete()) return -1.0;
    last = std::max(last, flow.receiver->completed_at().seconds());
    sum += flow.receiver->completed_at().seconds();
  }
  if (sum_seconds != nullptr) *sum_seconds = sum;
  return last;
}

TEST(MultiTransfer, TwoConcurrentFlowsBothComplete) {
  const double t = run_flows(2);
  ASSERT_GT(t, 0.0);
}

TEST(MultiTransfer, ConcurrentFlowsShareTheNic) {
  const double one = run_flows(1);
  const double two = run_flows(2);
  ASSERT_GT(one, 0.0);
  ASSERT_GT(two, 0.0);
  // Two 4 MB objects through one 100 Mb/s NIC take roughly twice as
  // long as one; allow slack for interleaving effects.
  EXPECT_GT(two, 1.6 * one);
  EXPECT_LT(two, 2.6 * one);
}

TEST(MultiTransfer, FourFlowsFairAndComplete) {
  Testbed bed(PathId::kShortHaul);
  auto& sim = bed.sim();
  core::TransferSpec spec{2 * 1024 * 1024, 1024};
  std::vector<Flow> flows(4);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    const auto base = static_cast<sim::PortId>(core::kFobsPortBase + 100 * i);
    auto& flow = flows[static_cast<std::size_t>(i)];
    flow.sender = std::make_unique<core::SimSender>(bed.src(), spec, core::SenderConfig{},
                                                    nullptr, bed.dst().id(), base);
    flow.receiver = std::make_unique<core::SimReceiver>(
        bed.dst(), spec, core::ReceiverConfig{}, nullptr, bed.src().id(), 64 * 1024, base);
    flow.sender->set_on_finished([&done] { ++done; });
    flow.receiver->start();
    flow.sender->start();
  }
  while (done < 4 && sim.now().seconds() < 300 && sim.step()) {
  }
  ASSERT_EQ(done, 4);
  // Completion times should be clustered (greedy flows through one
  // queue still round-robin fairly thanks to the shared NIC pacing).
  double lo = 1e9, hi = 0;
  for (auto& flow : flows) {
    const double t = flow.receiver->completed_at().seconds();
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_LT(hi / lo, 1.6);
}

}  // namespace
}  // namespace fobs
