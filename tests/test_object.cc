// Unit tests for TransferObject (memory, pattern, mmap backings).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fobs/object.h"

namespace fobs::core {
namespace {

std::string temp_path(const char* tag) {
  return std::string("/tmp/fobs_object_test_") + tag + "_" + std::to_string(::getpid());
}

TEST(TransferObject, AllocateIsZeroed) {
  auto object = TransferObject::allocate(1000);
  EXPECT_EQ(object.size(), 1000);
  for (auto byte : object.view()) EXPECT_EQ(byte, 0);
  EXPECT_FALSE(object.is_mapped());
}

TEST(TransferObject, PatternIsDeterministic) {
  auto a = TransferObject::pattern(4096, 7);
  auto b = TransferObject::pattern(4096, 7);
  auto c = TransferObject::pattern(4096, 8);
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_NE(a.checksum(), c.checksum());
  EXPECT_TRUE(std::equal(a.view().begin(), a.view().end(), b.view().begin()));
}

TEST(TransferObject, PatternTailBytesForOddSizes) {
  auto object = TransferObject::pattern(1001, 3);
  EXPECT_EQ(object.size(), 1001);
  // Not all zero at the tail (the final partial word is filled).
  bool tail_nonzero = false;
  for (std::size_t i = 996; i < 1001; ++i) tail_nonzero |= object.view()[i] != 0;
  EXPECT_TRUE(tail_nonzero);
}

TEST(TransferObject, FromVectorAdoptsContent) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  auto object = TransferObject::from_vector(data);
  EXPECT_EQ(object.size(), 5);
  EXPECT_EQ(object.view()[4], 5);
}

TEST(TransferObject, MoveTransfersOwnership) {
  auto a = TransferObject::pattern(128, 1);
  const auto sum = a.checksum();
  TransferObject b = std::move(a);
  EXPECT_EQ(b.size(), 128);
  EXPECT_EQ(b.checksum(), sum);
  EXPECT_EQ(a.size(), 0);  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(TransferObject, FileRoundTripThroughMmap) {
  const std::string path = temp_path("roundtrip");
  auto original = TransferObject::pattern(100'000, 99);
  ASSERT_TRUE(original.write_to_file(path));

  auto mapped = TransferObject::map_file(path);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_TRUE(mapped->is_mapped());
  EXPECT_EQ(mapped->size(), 100'000);
  EXPECT_EQ(mapped->checksum(), original.checksum());
  std::remove(path.c_str());
}

TEST(TransferObject, MapMissingFileFails) {
  EXPECT_FALSE(TransferObject::map_file("/nonexistent/definitely/not/here").has_value());
}

TEST(TransferObject, MapEmptyFileFails) {
  const std::string path = temp_path("empty");
  { std::ofstream out(path); }
  EXPECT_FALSE(TransferObject::map_file(path).has_value());
  std::remove(path.c_str());
}

TEST(TransferObject, MapFileRwPersistsWritesAcrossMappings) {
  const std::string path = temp_path("rw");
  std::remove(path.c_str());
  {
    auto mapping = TransferObject::map_file_rw(path, 4096);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_TRUE(mapping->is_mapped());
    EXPECT_TRUE(mapping->is_writable());
    EXPECT_EQ(mapping->size(), 4096);
    auto view = mapping->mutable_view();
    for (std::size_t i = 0; i < view.size(); ++i) {
      view[i] = static_cast<std::uint8_t>(i * 7);
    }
    EXPECT_TRUE(mapping->sync());
  }  // unmapped here, as after a process death
  auto reopened = TransferObject::map_file_rw(path, 4096);
  ASSERT_TRUE(reopened.has_value());
  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(reopened->view()[i], static_cast<std::uint8_t>(i * 7)) << "byte " << i;
  }
  std::remove(path.c_str());
}

TEST(TransferObject, MapFileRwCreatesAndResizes) {
  const std::string path = temp_path("rw_resize");
  std::remove(path.c_str());
  // Creates a zero-filled file of the requested size.
  {
    auto mapping = TransferObject::map_file_rw(path, 100);
    ASSERT_TRUE(mapping.has_value());
    for (auto byte : mapping->view()) EXPECT_EQ(byte, 0);
    mapping->mutable_view()[0] = 0xAA;
  }
  // A size mismatch resizes; surviving bytes within range are kept.
  auto resized = TransferObject::map_file_rw(path, 200);
  ASSERT_TRUE(resized.has_value());
  EXPECT_EQ(resized->size(), 200);
  EXPECT_EQ(resized->view()[0], 0xAA);
  EXPECT_EQ(resized->view()[199], 0);
  EXPECT_FALSE(TransferObject::map_file_rw(path, 0).has_value());
  std::remove(path.c_str());
}

TEST(TransferObject, ChecksumDetectsCorruption) {
  auto object = TransferObject::pattern(1024, 5);
  const auto before = object.checksum();
  object.mutable_view()[512] ^= 0xFF;
  EXPECT_NE(object.checksum(), before);
}

}  // namespace
}  // namespace fobs::core
