// Unit tests for TransferObject (memory, pattern, mmap backings).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fobs/object.h"

namespace fobs::core {
namespace {

std::string temp_path(const char* tag) {
  return std::string("/tmp/fobs_object_test_") + tag + "_" + std::to_string(::getpid());
}

TEST(TransferObject, AllocateIsZeroed) {
  auto object = TransferObject::allocate(1000);
  EXPECT_EQ(object.size(), 1000);
  for (auto byte : object.view()) EXPECT_EQ(byte, 0);
  EXPECT_FALSE(object.is_mapped());
}

TEST(TransferObject, PatternIsDeterministic) {
  auto a = TransferObject::pattern(4096, 7);
  auto b = TransferObject::pattern(4096, 7);
  auto c = TransferObject::pattern(4096, 8);
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_NE(a.checksum(), c.checksum());
  EXPECT_TRUE(std::equal(a.view().begin(), a.view().end(), b.view().begin()));
}

TEST(TransferObject, PatternTailBytesForOddSizes) {
  auto object = TransferObject::pattern(1001, 3);
  EXPECT_EQ(object.size(), 1001);
  // Not all zero at the tail (the final partial word is filled).
  bool tail_nonzero = false;
  for (std::size_t i = 996; i < 1001; ++i) tail_nonzero |= object.view()[i] != 0;
  EXPECT_TRUE(tail_nonzero);
}

TEST(TransferObject, FromVectorAdoptsContent) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  auto object = TransferObject::from_vector(data);
  EXPECT_EQ(object.size(), 5);
  EXPECT_EQ(object.view()[4], 5);
}

TEST(TransferObject, MoveTransfersOwnership) {
  auto a = TransferObject::pattern(128, 1);
  const auto sum = a.checksum();
  TransferObject b = std::move(a);
  EXPECT_EQ(b.size(), 128);
  EXPECT_EQ(b.checksum(), sum);
  EXPECT_EQ(a.size(), 0);  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(TransferObject, FileRoundTripThroughMmap) {
  const std::string path = temp_path("roundtrip");
  auto original = TransferObject::pattern(100'000, 99);
  ASSERT_TRUE(original.write_to_file(path));

  auto mapped = TransferObject::map_file(path);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_TRUE(mapped->is_mapped());
  EXPECT_EQ(mapped->size(), 100'000);
  EXPECT_EQ(mapped->checksum(), original.checksum());
  std::remove(path.c_str());
}

TEST(TransferObject, MapMissingFileFails) {
  EXPECT_FALSE(TransferObject::map_file("/nonexistent/definitely/not/here").has_value());
}

TEST(TransferObject, MapEmptyFileFails) {
  const std::string path = temp_path("empty");
  { std::ofstream out(path); }
  EXPECT_FALSE(TransferObject::map_file(path).has_value());
  std::remove(path.c_str());
}

TEST(TransferObject, ChecksumDetectsCorruption) {
  auto object = TransferObject::pattern(1024, 5);
  const auto before = object.checksum();
  object.mutable_view()[512] ^= 0xFF;
  EXPECT_NE(object.checksum(), before);
}

}  // namespace
}  // namespace fobs::core
