// Tests for the link packet tracer.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/link.h"
#include "sim/node.h"
#include "sim/packet_trace.h"
#include "sim/simulation.h"

namespace fobs::sim {
namespace {

using util::DataRate;
using util::Duration;

struct TraceWorld {
  Simulation sim;
  Network net{sim};
  BlackholeNode* sink;
  Link* link;
  PacketTrace trace;

  explicit TraceWorld(std::int64_t queue_bytes = 4096,
                      double loss = 0.0) {
    sink = &net.add_blackhole("sink");
    LinkConfig cfg;
    cfg.rate = DataRate::megabits_per_second(8);  // 1000 B = 1 ms
    cfg.queue_capacity_bytes = queue_bytes;
    link = &net.add_link(cfg);
    link->set_sink(sink);
    link->set_observer(&trace);
    if (loss > 0) {
      link->set_loss_model(std::make_unique<BernoulliLoss>(loss), util::Rng(1));
    }
  }

  void offer(std::uint64_t uid, std::int64_t bytes = 1000) {
    Packet pkt;
    pkt.uid = uid;
    pkt.size_bytes = bytes;
    link->deliver(std::move(pkt));
  }
};

TEST(PacketTrace, RecordsEnqueueAndDelivery) {
  TraceWorld world;
  world.offer(1);
  world.offer(2);
  world.sim.run();
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kEnqueued), 2u);
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDelivered), 2u);
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDropOverflow), 0u);
  ASSERT_EQ(world.trace.events().size(), 4u);
  // Delivery happens one serialization time after enqueue.
  EXPECT_EQ(world.trace.events()[0].kind, TraceEvent::Kind::kEnqueued);
  EXPECT_GT(world.trace.events()[2].when.ns(), world.trace.events()[0].when.ns());
}

TEST(PacketTrace, RecordsOverflowDrops) {
  TraceWorld world(/*queue_bytes=*/2000);
  for (std::uint64_t i = 0; i < 6; ++i) world.offer(i);
  world.sim.run();
  // 1 transmitting + 2 queued accepted; 3 dropped.
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDropOverflow), 3u);
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDelivered), 3u);
}

TEST(PacketTrace, RecordsRandomDrops) {
  TraceWorld world(/*queue_bytes=*/10'000'000, /*loss=*/1.0);
  world.offer(1);
  world.sim.run();
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDropRandom), 1u);
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDelivered), 0u);
}

TEST(PacketTrace, BoundedLogKeepsCounting) {
  TraceWorld world(10'000'000);
  world.trace = PacketTrace(/*max_events=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) world.offer(i);
  world.sim.run();
  EXPECT_LE(world.trace.events().size(), 4u);
  EXPECT_TRUE(world.trace.truncated());
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDelivered), 10u);
}

TEST(PacketTrace, DropsPerBucketTimeline) {
  TraceWorld world(/*queue_bytes=*/1000);
  // Fill immediately: several drops in the first millisecond.
  for (std::uint64_t i = 0; i < 5; ++i) world.offer(i);
  world.sim.run();
  const auto timeline = world.trace.drops_per_bucket(Duration::milliseconds(1),
                                                     Duration::milliseconds(10));
  ASSERT_GE(timeline.size(), 10u);
  EXPECT_EQ(timeline[0], 3u);  // 1 transmitting + 1 queued accepted
  EXPECT_EQ(timeline[5], 0u);
}

TEST(PacketTrace, CsvOutput) {
  TraceWorld world;
  world.offer(7, 500);
  world.sim.run();
  std::ostringstream oss;
  world.trace.write_csv(oss);
  const std::string csv = oss.str();
  EXPECT_NE(csv.find("time_s,kind,uid,size,src,dst"), std::string::npos);
  EXPECT_NE(csv.find("enqueued,7,500"), std::string::npos);
  EXPECT_NE(csv.find("delivered,7,500"), std::string::npos);
}

TEST(PacketTrace, ClearResets) {
  TraceWorld world;
  world.offer(1);
  world.sim.run();
  world.trace.clear();
  EXPECT_EQ(world.trace.total_events(), 0u);
  EXPECT_TRUE(world.trace.events().empty());
  EXPECT_EQ(world.trace.count(TraceEvent::Kind::kDelivered), 0u);
}

}  // namespace
}  // namespace fobs::sim
