// Packet reordering (link jitter): FOBS is order-agnostic by design;
// TCP generates dup acks but must still complete correctly.
#include <gtest/gtest.h>

#include <any>
#include <memory>

#include "exp/testbeds.h"
#include "fobs/sim_transfer.h"
#include "host/host.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "sim/node.h"

namespace fobs {
namespace {

using host::Host;
using host::HostConfig;
using util::DataRate;
using util::Duration;

HostConfig named_host(const char* name) {
  HostConfig config;
  config.name = name;
  return config;
}

TEST(Reordering, JitterActuallyReordersDatagrams) {
  sim::Simulation simulation;
  sim::Network net(simulation);
  auto& a = Host::create(net, named_host("a"));
  auto& b = Host::create(net, named_host("b"));
  sim::LinkConfig cfg;
  cfg.rate = DataRate::gigabits_per_second(1);
  cfg.propagation_delay = Duration::milliseconds(1);
  cfg.jitter = Duration::milliseconds(1);  // comparable to serialization
  auto& ab = net.add_link(cfg);
  ab.set_sink(&b);
  a.set_egress(&ab);
  auto& ba = net.add_link(cfg);
  ba.set_sink(&a);
  b.set_egress(&ba);

  net::UdpEndpoint tx(a);
  net::UdpEndpoint rx(b, 9000);
  for (int i = 0; i < 200; ++i) tx.send_to(b.id(), 9000, 1000, i);
  simulation.run();

  int inversions = 0;
  int previous = -1;
  while (auto pkt = rx.try_recv()) {
    const int value = std::any_cast<int>(pkt->payload);
    if (value < previous) ++inversions;
    previous = std::max(previous, value);
  }
  EXPECT_GT(inversions, 10);  // jitter >> inter-packet gap reorders a lot
}

TEST(Reordering, FobsIsUnaffectedByHeavyReordering) {
  auto spec = exp::spec_for(exp::PathId::kShortHaul);
  exp::Testbed plain(spec);
  exp::Testbed jittered(spec);
  // Retro-fit jitter onto the jittered testbed's backbone by rebuilding
  // is invasive; instead compare FOBS on a jitter-free path against a
  // custom jittery two-host world.
  core::SimTransferConfig config;
  config.spec.object_bytes = 4 * 1024 * 1024;
  config.carry_data = true;
  const auto baseline =
      core::run_sim_transfer(plain.network(), plain.src(), plain.dst(), config);
  ASSERT_TRUE(baseline.completed);

  sim::Simulation simulation;
  sim::Network net(simulation);
  auto& a = Host::create(net, named_host("a"));
  auto& b = Host::create(net, named_host("b"));
  sim::LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(100);
  cfg.propagation_delay = Duration::milliseconds(13);
  cfg.jitter = Duration::milliseconds(3);  // heavy reordering
  cfg.queue_capacity_bytes = 256 * 1024;
  auto& ab = net.add_link(cfg);
  auto& ba = net.add_link(cfg);
  ab.set_sink(&b);
  ba.set_sink(&a);
  a.set_egress(&ab);
  b.set_egress(&ba);

  core::SimSender sender(a, config.spec, core::SenderConfig{},
                         nullptr, b.id());
  core::SimReceiver receiver(b, config.spec, core::ReceiverConfig{}, nullptr, a.id(),
                             64 * 1024);
  bool done = false;
  sender.set_on_finished([&done] { done = true; });
  receiver.start();
  sender.start();
  while (!done && simulation.now().seconds() < 120 && simulation.step()) {
  }
  ASSERT_TRUE(done);
  const double jittered_seconds = receiver.completed_at().seconds();
  // Order does not matter to the bitmap protocol: throughput within a
  // few percent of the in-order path. Waste grows a little because the
  // jitter inflates the effective RTT (staler sender view near the
  // end), but stays bounded — contrast with TCP, where this much
  // reordering triggers spurious fast retransmits and cwnd collapses.
  EXPECT_NEAR(jittered_seconds, baseline.receiver_elapsed.seconds(),
              baseline.receiver_elapsed.seconds() * 0.1);
  EXPECT_LT(sender.core().waste(), 0.2);
}

TEST(Reordering, TcpSurvivesReorderingWithSpuriousRetransmits) {
  sim::Simulation simulation;
  sim::Network net(simulation);
  auto& a = Host::create(net, named_host("a"));
  auto& b = Host::create(net, named_host("b"));
  sim::LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(100);
  cfg.propagation_delay = Duration::milliseconds(10);
  cfg.jitter = Duration::microseconds(500);  // > 3 segment times: dup acks
  cfg.queue_capacity_bytes = 512 * 1024;
  auto& ab = net.add_link(cfg);
  auto& ba = net.add_link(cfg);
  ab.set_sink(&b);
  ba.set_sink(&a);
  a.set_egress(&ab);
  b.set_egress(&ba);

  net::TcpConfig config;
  config.recv_buffer_bytes = 2 * 1024 * 1024;
  const net::Seq bytes = 2 * 1024 * 1024;
  net::Seq delivered = 0;
  std::unique_ptr<net::TcpConnection> server;
  net::TcpListener listener(b, 5001, config, [&](std::unique_ptr<net::TcpConnection> conn) {
    server = std::move(conn);
    server->set_on_delivered([&](net::Seq d) { delivered = d; });
  });
  net::TcpConnection client(a, config);
  client.set_on_connected([&] { client.offer_bytes(bytes); });
  client.connect(b.id(), 5001);
  while (delivered < bytes && simulation.now().seconds() < 120 && simulation.step()) {
  }
  EXPECT_EQ(delivered, bytes);
  // Reordering produced dup acks; some spurious fast retransmits are
  // expected (the classic TCP-vs-reordering pathology), but no storm.
  EXPECT_GT(client.stats().dup_acks_received, 0u);
}

}  // namespace
}  // namespace fobs
