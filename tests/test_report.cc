// Tests for the gnuplot report writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "exp/report.h"

namespace fobs::exp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

PlotSpec sample_spec() {
  PlotSpec spec;
  spec.name = "test_plot";
  spec.title = "A test";
  spec.xlabel = "x";
  spec.ylabel = "y";
  spec.xs = {1.0, 2.0, 4.0};
  spec.series = {{"alpha", {10.0, 20.0, 30.0}}, {"beta", {1.5, 2.5, 3.5}}};
  return spec;
}

TEST(Report, WritesDatAndGnuplotFiles) {
  const std::string dir = "/tmp/fobs_report_test_" + std::to_string(::getpid());
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  ASSERT_TRUE(write_plot(dir, sample_spec()));

  const std::string dat = slurp(dir + "/test_plot.dat");
  EXPECT_NE(dat.find("# x alpha beta"), std::string::npos);
  EXPECT_NE(dat.find("1 10 1.5"), std::string::npos);
  EXPECT_NE(dat.find("4 30 3.5"), std::string::npos);

  const std::string gp = slurp(dir + "/test_plot.gp");
  EXPECT_NE(gp.find("set output 'test_plot.png'"), std::string::npos);
  EXPECT_NE(gp.find("using 1:2"), std::string::npos);
  EXPECT_NE(gp.find("using 1:3"), std::string::npos);
  EXPECT_NE(gp.find("title 'alpha'"), std::string::npos);
  EXPECT_EQ(gp.find("logscale"), std::string::npos);  // log_x off by default

  (void)::system(("rm -rf " + dir).c_str());
}

TEST(Report, LogScaleEmittedWhenRequested) {
  const std::string dir = "/tmp/fobs_report_test_log_" + std::to_string(::getpid());
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  auto spec = sample_spec();
  spec.log_x = true;
  ASSERT_TRUE(write_plot(dir, spec));
  EXPECT_NE(slurp(dir + "/test_plot.gp").find("set logscale x 2"), std::string::npos);
  (void)::system(("rm -rf " + dir).c_str());
}

TEST(Report, MissingDirectoryFails) {
  EXPECT_FALSE(write_plot("/nonexistent/fobs/dir", sample_spec()));
}

TEST(Report, PlotDirFromEnv) {
  ::unsetenv("FOBS_BENCH_PLOT");
  EXPECT_TRUE(plot_dir_from_env().empty());
  ::setenv("FOBS_BENCH_PLOT", "/tmp/somewhere", 1);
  EXPECT_EQ(plot_dir_from_env(), "/tmp/somewhere");
  ::unsetenv("FOBS_BENCH_PLOT");
}

}  // namespace
}  // namespace fobs::exp
