// Unit tests for the deterministic PRNG and its distributions.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace fobs::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 30u);  // not degenerate
}

TEST(Rng, ForkIsIndependent) {
  Rng a(7);
  Rng forked = a.fork();
  // The fork must not replay the parent's stream.
  Rng fresh(7);
  fresh.next();  // parent consumed one draw for the fork
  EXPECT_NE(forked.next(), fresh.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialDurationMean) {
  Rng rng(16);
  Duration total = Duration::zero();
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(Duration::milliseconds(10));
  EXPECT_NEAR((total / n).seconds(), 0.010, 0.001);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

}  // namespace
}  // namespace fobs::util
