// Unit tests for the RTT estimator / RTO calculation.
#include <gtest/gtest.h>

#include "net/rtt_estimator.h"

namespace fobs::net {
namespace {

using fobs::util::Duration;

TEST(RttEstimator, InitialRtoBeforeAnySample) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), Duration::seconds(1));
}

TEST(RttEstimator, FirstSampleSetsSrttAndVar) {
  RttEstimator est;
  est.add_sample(Duration::milliseconds(100));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt().ms(), 100);
  EXPECT_EQ(est.rttvar().ms(), 50);
  // RTO = srtt + 4*rttvar = 300 ms.
  EXPECT_EQ(est.rto().ms(), 300);
}

TEST(RttEstimator, ConvergesOnSteadyRtt) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(Duration::milliseconds(80));
  EXPECT_NEAR(static_cast<double>(est.srtt().ms()), 80.0, 1.0);
  // Variance decays; RTO approaches the configured floor or srtt+small.
  EXPECT_LE(est.rto().ms(), 250);
  EXPECT_GE(est.rto().ms(), 200);  // min_rto default
}

TEST(RttEstimator, RespectsMinimumRto) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.add_sample(Duration::milliseconds(1));
  EXPECT_EQ(est.rto().ms(), 200);  // clamped to min
}

TEST(RttEstimator, BackoffDoublesUntilCap) {
  RttEstimator::Config config;
  config.max_rto = Duration::seconds(8);
  RttEstimator est(config);
  est.add_sample(Duration::milliseconds(500));
  const auto base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto().ns(), (base * 2).ns());
  est.backoff();
  EXPECT_EQ(est.rto().ns(), (base * 4).ns());
  for (int i = 0; i < 10; ++i) est.backoff();
  EXPECT_EQ(est.rto(), Duration::seconds(8));  // capped
  EXPECT_GT(est.backoff_count(), 0);
}

TEST(RttEstimator, NewSampleClearsBackoff) {
  RttEstimator est;
  est.add_sample(Duration::milliseconds(100));
  est.backoff();
  est.backoff();
  EXPECT_GT(est.rto().ms(), 1000);
  est.add_sample(Duration::milliseconds(100));
  EXPECT_EQ(est.backoff_count(), 0);
  EXPECT_LE(est.rto().ms(), 400);
}

TEST(RttEstimator, VarianceTracksJitter) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) {
    est.add_sample(Duration::milliseconds(i % 2 == 0 ? 50 : 150));
  }
  // srtt near 100 ms, rttvar near 50 ms -> rto near 300 ms.
  EXPECT_NEAR(static_cast<double>(est.srtt().ms()), 100.0, 15.0);
  EXPECT_GT(est.rto().ms(), 250);
}

TEST(RttEstimator, NegativeSampleClamped) {
  RttEstimator est;
  est.add_sample(Duration::milliseconds(-5));
  EXPECT_GE(est.srtt().ns(), 0);
  EXPECT_GE(est.rto().ms(), 200);
}

}  // namespace
}  // namespace fobs::net
