// Tests for the uniform experiment runners.
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace fobs::exp {
namespace {

TEST(Runner, DefaultSeedsAreDistinctAndStable) {
  const auto five = default_seeds(5);
  ASSERT_EQ(five.size(), 5u);
  for (std::size_t i = 0; i < five.size(); ++i) {
    EXPECT_EQ(five[i], i + 1);
  }
  EXPECT_EQ(default_seeds(2), (std::vector<std::uint64_t>{1, 2}));
}

TEST(Runner, MakeFobsConfigForwardsEveryField) {
  FobsRunParams params;
  params.object_bytes = 123456;
  params.packet_bytes = 512;
  params.ack_frequency = 7;
  params.batch_size = 5;
  params.selection = core::SelectionKind::kRandomUnacked;
  params.batch_policy = core::BatchPolicy::kAckAdaptive;
  params.receiver_socket_buffer_bytes = 12345;
  params.carry_data = true;
  params.adaptive.enabled = true;
  const auto config = make_fobs_config(params);
  EXPECT_EQ(config.spec.object_bytes, 123456);
  EXPECT_EQ(config.spec.packet_bytes, 512);
  EXPECT_EQ(config.receiver.ack_frequency, 7);
  EXPECT_EQ(config.sender.batch_size, 5);
  EXPECT_EQ(config.sender.selection, core::SelectionKind::kRandomUnacked);
  EXPECT_EQ(config.sender.batch_policy, core::BatchPolicy::kAckAdaptive);
  EXPECT_EQ(config.receiver_socket_buffer_bytes, 12345);
  EXPECT_TRUE(config.carry_data);
  EXPECT_TRUE(config.sender.adaptive.enabled);
}

TEST(Runner, FobsAveragedAggregatesAcrossSeeds) {
  auto spec = spec_for(PathId::kShortHaul);
  FobsRunParams params;
  params.object_bytes = 2 * 1024 * 1024;
  const auto avg = run_fobs_averaged(spec, params, {1, 2, 3});
  EXPECT_EQ(avg.completed_runs, 3);
  EXPECT_GT(avg.fraction, 0.5);
  EXPECT_GE(avg.waste, 0.0);
  EXPECT_GT(avg.goodput_mbps, 0.0);
}

TEST(Runner, FobsRunIsDeterministicPerSeed) {
  const auto spec = spec_for(PathId::kLongHaul);
  FobsRunParams params;
  params.object_bytes = 2 * 1024 * 1024;
  const auto a = run_fobs(spec, params, 4);
  const auto b = run_fobs(spec, params, 4);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.receiver_elapsed.ns(), b.receiver_elapsed.ns());
}

TEST(Runner, TcpAveragedCountsOnlyCompletedRuns) {
  auto spec = spec_for(PathId::kShortHaul);
  const auto avg = run_tcp_averaged(spec, 2 * 1024 * 1024, baselines::tcp_with_lwe(), {1, 2});
  EXPECT_EQ(avg.completed_runs, 2);
  EXPECT_GT(avg.goodput_mbps, 0.0);
}

TEST(Runner, PaperConstantsMatchThePaper) {
  EXPECT_EQ(kPaperObjectBytes, 40ll * 1024 * 1024);
  EXPECT_EQ(kPaperPacketBytes, 1024);
}

}  // namespace
}  // namespace fobs::exp
