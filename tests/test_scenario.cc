// Tests for the scripted-scenario layer.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "fobs/sim_transfer.h"

namespace fobs::exp {
namespace {

TEST(ScheduledLoss, ProbabilityChangesTakeEffect) {
  ScheduledLoss loss;
  util::Rng rng(1);
  sim::Packet pkt;
  pkt.size_bytes = 1000;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(loss.should_drop(pkt, rng));
  loss.set_probability(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(loss.should_drop(pkt, rng));
  loss.set_probability(0.0);
  EXPECT_FALSE(loss.should_drop(pkt, rng));
}

TEST(Scenario, AllPrebuiltScenariosConstruct) {
  for (const auto& scenario : all_scenarios()) {
    ScenarioRuntime runtime(scenario, 3);
    EXPECT_FALSE(scenario.name.empty());
    // Topology is live: endpoints exist and the clock is at zero.
    EXPECT_EQ(runtime.testbed().sim().now().ns(), 0);
  }
}

TEST(Scenario, TrafficPhasesStartAndStop) {
  auto scenario = scenario_congestion_episode();
  ScenarioRuntime runtime(scenario, 5);
  auto& sim = runtime.testbed().sim();

  sim.run_until(util::TimePoint::from_ns(util::Duration::milliseconds(400).ns()));
  const auto before_episode = runtime.cross_packets_offered();
  EXPECT_GT(before_episode, 0u);  // background phase active

  sim.run_until(util::TimePoint::from_ns(util::Duration::milliseconds(2400).ns()));
  const auto during_episode = runtime.cross_packets_offered();
  // 2 ms window of the hot phase: rate much higher than background.
  const double background_rate = static_cast<double>(before_episode) / 0.4;
  const double episode_rate =
      static_cast<double>(during_episode - before_episode) / 2.0;
  EXPECT_GT(episode_rate, 1.5 * background_rate);

  sim.run_until(util::TimePoint::from_ns(util::Duration::milliseconds(4400).ns()));
  const auto after_episode = runtime.cross_packets_offered();
  const double post_rate = static_cast<double>(after_episode - during_episode) / 2.0;
  EXPECT_LT(post_rate, 0.7 * episode_rate);  // hot sources stopped
}

TEST(Scenario, IdenticalSeedsGiveIdenticalWeather) {
  ScenarioRuntime a(scenario_steady_contention(), 11);
  ScenarioRuntime b(scenario_steady_contention(), 11);
  a.testbed().sim().run_until(util::TimePoint::from_ns(util::Duration::seconds(1).ns()));
  b.testbed().sim().run_until(util::TimePoint::from_ns(util::Duration::seconds(1).ns()));
  EXPECT_EQ(a.cross_packets_offered(), b.cross_packets_offered());
}

TEST(Scenario, TransferCompletesUnderEveryScenario) {
  for (const auto& scenario : all_scenarios()) {
    ScenarioRuntime runtime(scenario, 7);
    core::SimTransferConfig config;
    config.spec.object_bytes = 2 * 1024 * 1024;
    config.carry_data = true;
    const auto result =
        core::run_sim_transfer(runtime.testbed().network(), runtime.testbed().src(),
                               runtime.testbed().dst(), config);
    EXPECT_TRUE(result.completed) << scenario.name;
    EXPECT_TRUE(result.data_verified) << scenario.name;
  }
}

TEST(Scenario, LossyWanPhasesChangeTheDropRate) {
  auto scenario = scenario_lossy_wan();
  ScenarioRuntime runtime(scenario, 13);
  auto& bed = runtime.testbed();
  // Continuously transfer so packets traverse the backbone during all
  // phases; waste should be driven by the hot middle phase.
  core::SimTransferConfig config;
  config.spec.object_bytes = 24 * 1024 * 1024;  // ~2s at 100 Mb/s
  const auto result = core::run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(bed.backbone().stats().drops_random, 0u);
}

}  // namespace
}  // namespace fobs::exp
