// Unit + property tests for the interval set used by TCP reassembly and
// the SACK scoreboard.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "net/seq_range_set.h"

namespace fobs::net {
namespace {

TEST(SeqRangeSet, InsertDisjoint) {
  SeqRangeSet s;
  EXPECT_EQ(s.insert(10, 20), 10);
  EXPECT_EQ(s.insert(30, 40), 10);
  EXPECT_EQ(s.range_count(), 2u);
  EXPECT_EQ(s.covered_bytes(), 20);
  EXPECT_TRUE(s.contains(15));
  EXPECT_FALSE(s.contains(25));
  EXPECT_FALSE(s.contains(20));  // half-open
  EXPECT_TRUE(s.contains(30));
}

TEST(SeqRangeSet, InsertCoalescesAdjacent) {
  SeqRangeSet s;
  s.insert(10, 20);
  s.insert(20, 30);  // abuts
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_TRUE(s.contains_range(10, 30));
}

TEST(SeqRangeSet, InsertCoalescesOverlapping) {
  SeqRangeSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.insert(15, 35), 10);  // bridges the two, 10 new bytes
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.covered_bytes(), 30);
}

TEST(SeqRangeSet, InsertSubsumedAddsNothing) {
  SeqRangeSet s;
  s.insert(10, 50);
  EXPECT_EQ(s.insert(20, 30), 0);
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.covered_bytes(), 40);
}

TEST(SeqRangeSet, InsertEmptyRangeIsNoop) {
  SeqRangeSet s;
  EXPECT_EQ(s.insert(5, 5), 0);
  EXPECT_TRUE(s.empty());
}

TEST(SeqRangeSet, EraseBelowDropsAndTrims) {
  SeqRangeSet s;
  s.insert(0, 10);
  s.insert(20, 40);
  s.erase_below(25);
  EXPECT_FALSE(s.contains(5));
  EXPECT_FALSE(s.contains(24));
  EXPECT_TRUE(s.contains(25));
  EXPECT_EQ(s.covered_bytes(), 15);
  s.erase_below(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.covered_bytes(), 0);
}

TEST(SeqRangeSet, ContiguousEndFrom) {
  SeqRangeSet s;
  s.insert(10, 30);
  EXPECT_EQ(s.contiguous_end_from(10).value(), 30);
  EXPECT_EQ(s.contiguous_end_from(29).value(), 30);
  EXPECT_FALSE(s.contiguous_end_from(30).has_value());
  EXPECT_FALSE(s.contiguous_end_from(5).has_value());
}

TEST(SeqRangeSet, FirstMissing) {
  SeqRangeSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.first_missing(0, 100), 10);
  EXPECT_EQ(s.first_missing(10, 100), 10);
  EXPECT_EQ(s.first_missing(12, 100), 12);
  EXPECT_EQ(s.first_missing(20, 100), 30);
  EXPECT_EQ(s.first_missing(0, 5), 5);  // everything below limit covered
}

TEST(SeqRangeSet, MaxEnd) {
  SeqRangeSet s;
  EXPECT_EQ(s.max_end(), 0);
  s.insert(10, 20);
  s.insert(100, 200);
  EXPECT_EQ(s.max_end(), 200);
  s.erase_below(150);
  EXPECT_EQ(s.max_end(), 200);
}

// Property: matches a per-byte reference model under random inserts and
// erases.
class SeqRangeSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeqRangeSetProperty, MatchesByteModel) {
  fobs::util::Rng rng(GetParam());
  SeqRangeSet s;
  std::set<std::int64_t> model;  // set of covered bytes
  constexpr std::int64_t kSpace = 500;

  for (int op = 0; op < 500; ++op) {
    if (rng.bernoulli(0.8)) {
      const std::int64_t b = rng.uniform_int(0, kSpace - 1);
      const std::int64_t e = b + rng.uniform_int(1, 30);
      std::int64_t added_model = 0;
      for (std::int64_t i = b; i < e; ++i) added_model += model.insert(i).second ? 1 : 0;
      EXPECT_EQ(s.insert(b, e), added_model);
    } else {
      const std::int64_t cut = rng.uniform_int(0, kSpace);
      s.erase_below(cut);
      model.erase(model.begin(), model.lower_bound(cut));
    }
    EXPECT_EQ(s.covered_bytes(), static_cast<std::int64_t>(model.size()));
    // Spot-check membership and first_missing.
    const std::int64_t probe = rng.uniform_int(0, kSpace + 30);
    EXPECT_EQ(s.contains(probe), model.count(probe) > 0);
    std::int64_t expect_missing = probe;
    while (expect_missing < kSpace + 60 && model.count(expect_missing)) ++expect_missing;
    EXPECT_EQ(s.first_missing(probe, kSpace + 60),
              std::min<std::int64_t>(expect_missing, kSpace + 60));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqRangeSetProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fobs::net
