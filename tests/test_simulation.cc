// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace fobs::sim {
namespace {

using fobs::util::Duration;
using fobs::util::TimePoint;

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_ns(30), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::from_ns(10), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::from_ns(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns(), 30);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, SameTimeIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePoint::from_ns(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  TimePoint fired;
  sim.schedule_in(Duration::microseconds(5), [&] {
    fired = sim.now();
    sim.schedule_in(Duration::microseconds(10), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired.us(), 15);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  bool ran = false;
  sim.schedule_in(Duration::nanoseconds(-100), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now().ns(), 0);
}

TEST(Simulation, CancelDropsEvent) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule_in(Duration::microseconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulation, CancelInvalidIdIsNoop) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(kInvalidEventId));
  EXPECT_FALSE(sim.cancel(9999));
}

TEST(Simulation, RunUntilAdvancesClockToHorizon) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePoint::from_ns(100), [&] { ++fired; });
  sim.schedule_at(TimePoint::from_ns(500), [&] { ++fired; });
  sim.run_until(TimePoint::from_ns(200));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), 200);  // clock reaches the horizon
  sim.run_until(TimePoint::from_ns(1000));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().ns(), 1000);
}

TEST(Simulation, RunForIsRelative) {
  Simulation sim;
  sim.run_for(Duration::microseconds(3));
  EXPECT_EQ(sim.now().us(), 3);
  sim.run_for(Duration::microseconds(2));
  EXPECT_EQ(sim.now().us(), 5);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePoint::from_ns(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(TimePoint::from_ns(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  sim.clear_stop();
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_in(Duration::zero(), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, EventsScheduledDuringEventRun) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(Duration::nanoseconds(10), recurse);
  };
  sim.schedule_in(Duration::zero(), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now().ns(), 40);
}

TEST(Simulation, PendingEventsTracksLiveEvents) {
  Simulation sim;
  const EventId a = sim.schedule_in(Duration::microseconds(1), [] {});
  sim.schedule_in(Duration::microseconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace fobs::sim
