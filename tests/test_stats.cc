// Unit tests for the statistics toolkit.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace fobs::util {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeMatchesCombined) {
  Rng rng(5);
  OnlineStats a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10, 3);
    combined.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);  // merging empty changes nothing
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // merging into empty copies
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);  // interpolation
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);  // triggers re-sort on next query
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Histogram, BinningAndEdges) {
  Histogram h(0.0, 10.0, 5);  // bins of width 2
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
}

TEST(Histogram, UnderAndOverflowClampIntoEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

}  // namespace
}  // namespace fobs::util
