// Striped multi-flow FOBS: the acceptance suite for the striping
// subsystem (fobs/stripe/).
//
//  - StripePlan: both layouts partition the packet space disjointly and
//    completely, the shared round_robin_split rule, rejection edges.
//  - FOBSSTRP codec: round-trips and garbage rejection.
//  - PortAllocator: contiguous block leases, exhaustion, fragmentation,
//    multi-threaded contention, and the engine's block API.
//  - Checkpoints: object-level <-> per-stripe sidecar merge/split.
//  - Loopback transfers over real sockets: a 4-stripe >= 64 MiB
//    transfer lands byte-identical (checksum-verified); killing one
//    stripe's flow mid-transfer degrades but stays resumable, and the
//    resume completes byte-identical; a striped fetch against a plain
//    pre-striping sender falls back to one flow cleanly.
//
// Port block: 37300-37499 (test_engine owns 37000-37099, fileserver
// 37100-37199, fault suites 38xxx/39xxx).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <numeric>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/bitmap.h"
#include "fobs/object.h"
#include "fobs/posix/checkpoint.h"
#include "fobs/posix/engine.h"
#include "fobs/posix/fileserver.h"
#include "fobs/posix/port_allocator.h"
#include "fobs/stripe/negotiate.h"
#include "fobs/stripe/plan.h"
#include "fobs/stripe/striped_transfer.h"

namespace fobs {
namespace {

using core::TransferSpec;
using stripe::StripeLayout;
using stripe::StripePlan;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// StripePlan
// ---------------------------------------------------------------------------

void expect_partition_is_disjoint_and_complete(const StripePlan& plan) {
  const auto& spec = plan.spec();
  const std::int64_t packets = spec.packet_count();
  std::int64_t total_packets = 0;
  std::int64_t total_bytes = 0;
  std::set<std::int64_t> seen;
  for (int s = 0; s < plan.stripe_count(); ++s) {
    EXPECT_GE(plan.stripe_packets(s), 1) << "stripe " << s << " is empty";
    total_packets += plan.stripe_packets(s);
    total_bytes += plan.stripe_bytes(s);
    for (std::int64_t local = 0; local < plan.stripe_packets(s); ++local) {
      const auto global = plan.to_global(s, local);
      EXPECT_GE(global, 0);
      EXPECT_LT(global, packets);
      EXPECT_TRUE(seen.insert(global).second) << "global " << global << " owned twice";
      // to_local is the exact inverse.
      const auto [back_s, back_local] = plan.to_local(global);
      EXPECT_EQ(back_s, s);
      EXPECT_EQ(back_local, local);
      // The plan's offset matches the whole-object offset of the
      // global packet, and the stripe-local spec's payload size
      // matches the global packet's payload size.
      EXPECT_EQ(plan.global_offset(s, local), spec.offset_of(global));
      EXPECT_EQ(plan.stripe_spec(s).payload_bytes(local), spec.payload_bytes(global));
    }
  }
  EXPECT_EQ(total_packets, packets);
  EXPECT_EQ(total_bytes, spec.object_bytes);
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), packets);
}

TEST(StripePlan, PartitionsAreDisjointAndCompleteForBothLayouts) {
  // Geometries chosen to cover: even split, remainder packets, a short
  // last packet, stripes == packets, and a single packet.
  const std::vector<TransferSpec> specs = {
      {64 * 1024, 1024},     // 64 even packets
      {65 * 1024 + 17, 1024},  // short last packet, remainder spread
      {7 * 512 + 100, 512},  // 8 packets, short tail
      {1000, 1000},          // exactly one packet
  };
  for (const auto& spec : specs) {
    for (const auto layout : {StripeLayout::kContiguous, StripeLayout::kRoundRobin}) {
      const int max = StripePlan::max_stripes(spec);
      for (int stripes : {1, 2, 3, 4, max}) {
        if (stripes < 1 || stripes > max) continue;
        StripePlan plan;
        std::string error;
        ASSERT_TRUE(StripePlan::make(spec, stripes, layout, &plan, &error))
            << to_string(layout) << " x" << stripes << ": " << error;
        expect_partition_is_disjoint_and_complete(plan);
      }
    }
  }
}

TEST(StripePlan, ShortLastPacketIsTheLastLocalPacketOfItsStripe) {
  const TransferSpec spec{10 * 1024 + 7, 1024};  // 11 packets, last is 7 B
  for (const auto layout : {StripeLayout::kContiguous, StripeLayout::kRoundRobin}) {
    StripePlan plan;
    ASSERT_TRUE(StripePlan::make(spec, 4, layout, &plan));
    const auto [owner, local] = plan.to_local(spec.packet_count() - 1);
    EXPECT_EQ(local, plan.stripe_packets(owner) - 1)
        << to_string(layout) << ": short packet must be its stripe's last local packet";
    EXPECT_EQ(plan.stripe_spec(owner).payload_bytes(local), 7);
  }
}

TEST(StripePlan, RejectsUnsatisfiableRequests) {
  StripePlan plan;
  std::string error;
  // More stripes than packets: an empty stripe would dead-lock.
  EXPECT_FALSE(StripePlan::make({4 * 1024, 1024}, 5, StripeLayout::kContiguous, &plan, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(StripePlan::make({4 * 1024, 1024}, 0, StripeLayout::kContiguous, &plan));
  EXPECT_FALSE(StripePlan::make({0, 1024}, 1, StripeLayout::kContiguous, &plan));
  EXPECT_FALSE(StripePlan::make({1024, 0}, 1, StripeLayout::kContiguous, &plan));
  // max_stripes is the usable clamp.
  EXPECT_EQ(StripePlan::max_stripes({4 * 1024, 1024}), 4);
  EXPECT_EQ(StripePlan::max_stripes({1024 * 1024, 1024}), stripe::kMaxStripes);
  EXPECT_EQ(StripePlan::max_stripes({0, 1024}), 0);
}

TEST(StripePlan, RoundRobinSplitFrontLoadsTheRemainder) {
  // The one shared partition rule (also used by the PSockets baseline):
  // bucket i gets total/parts + (i < total % parts).
  const auto split = stripe::round_robin_split(10, 4);
  EXPECT_EQ(split, (std::vector<std::int64_t>{3, 3, 2, 2}));
  const auto even = stripe::round_robin_split(8, 4);
  EXPECT_EQ(even, (std::vector<std::int64_t>{2, 2, 2, 2}));
  const auto big = stripe::round_robin_split(40'000'000, 7);
  EXPECT_EQ(std::accumulate(big.begin(), big.end(), std::int64_t{0}), 40'000'000);
  EXPECT_LE(big.front() - big.back(), 1);
}

// ---------------------------------------------------------------------------
// FOBSSTRP codec
// ---------------------------------------------------------------------------

TEST(StripeNegotiate, RequestRoundTrips) {
  stripe::StripeRequest request;
  request.layout = StripeLayout::kRoundRobin;
  request.object_bytes = 123'456'789;
  request.packet_bytes = 8192;
  request.data_ports = {40001, 40002, 40003};
  const auto wire = stripe::encode_stripe_request(request);
  EXPECT_EQ(wire.size(), stripe::stripe_request_size(3));
  const auto decoded = stripe::decode_stripe_request(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->layout, request.layout);
  EXPECT_EQ(decoded->object_bytes, request.object_bytes);
  EXPECT_EQ(decoded->packet_bytes, request.packet_bytes);
  EXPECT_EQ(decoded->data_ports, request.data_ports);
}

TEST(StripeNegotiate, ResponseRoundTripsIncludingRefusal) {
  stripe::StripeResponse response;
  response.layout = StripeLayout::kContiguous;
  response.control_ports = {41001, 41002};
  const auto wire = stripe::encode_stripe_response(response);
  const auto decoded = stripe::decode_stripe_response(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->accepted(), 2);
  EXPECT_EQ(decoded->control_ports, response.control_ports);

  // Zero accepted stripes is the explicit "run single-flow" refusal.
  const auto refusal_wire = stripe::encode_stripe_response({StripeLayout::kContiguous, {}});
  const auto refusal = stripe::decode_stripe_response(refusal_wire.data(), refusal_wire.size());
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->accepted(), 0);
}

TEST(StripeNegotiate, RejectsGarbage) {
  stripe::StripeRequest request;
  request.object_bytes = 4096;
  request.packet_bytes = 1024;
  request.data_ports = {40001};
  auto wire = stripe::encode_stripe_request(request);
  // Bad token.
  auto bad_token = wire;
  bad_token[0] ^= 0xFF;
  EXPECT_FALSE(stripe::decode_stripe_request(bad_token.data(), bad_token.size()).has_value());
  // Bad version.
  auto bad_version = wire;
  bad_version[8] = 99;
  EXPECT_FALSE(
      stripe::decode_stripe_request(bad_version.data(), bad_version.size()).has_value());
  // Flipped payload bit breaks the CRC seal.
  auto bad_crc = wire;
  bad_crc[15] ^= 0x01;
  EXPECT_FALSE(stripe::decode_stripe_request(bad_crc.data(), bad_crc.size()).has_value());
  // Truncated frame.
  EXPECT_FALSE(stripe::decode_stripe_request(wire.data(), wire.size() - 1).has_value());
  // A zero-stripe *request* is malformed (only responses may refuse).
  stripe::StripeRequest empty;
  empty.object_bytes = 4096;
  empty.packet_bytes = 1024;
  const auto empty_wire = stripe::encode_stripe_request(empty);
  EXPECT_FALSE(stripe::decode_stripe_request(empty_wire.data(), empty_wire.size()).has_value());
}

// ---------------------------------------------------------------------------
// PortAllocator block leases
// ---------------------------------------------------------------------------

TEST(PortAllocator, BlockLeaseIsContiguousAndFirstFit) {
  posix::PortAllocator ports(40000, 16);
  const auto a = ports.allocate_block(4);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 40000);
  const auto b = ports.allocate_block(4);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 40004);
  EXPECT_EQ(ports.free_count(), 8u);
  ports.release_block(*a, 4);
  // First fit: the freed low block is reused.
  const auto c = ports.allocate_block(3);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 40000);
}

TEST(PortAllocator, BlockExhaustionAndFragmentation) {
  posix::PortAllocator ports(40100, 8);
  const auto a = ports.allocate_block(8);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(ports.allocate_block(1).has_value());  // exhausted
  // Free a single port in the middle: a 2-block cannot fit, a single
  // allocation can.
  ports.release(40103);
  EXPECT_FALSE(ports.allocate_block(2).has_value());
  const auto single = ports.allocate();
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(*single, 40103);
  // Freeing two adjacent ports makes a 2-block fit again.
  ports.release(40104);
  ports.release(40105);
  const auto pair = ports.allocate_block(2);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(*pair, 40104);
  // Oversized and zero-sized requests never succeed.
  EXPECT_FALSE(ports.allocate_block(9).has_value());
  EXPECT_FALSE(ports.allocate_block(0).has_value());
}

TEST(PortAllocator, ConcurrentBlockLeasesNeverOverlap) {
  posix::PortAllocator ports(41000, 64);
  std::atomic<bool> overlap{false};
  std::atomic<int> leases{0};
  std::mutex mu;
  std::set<std::uint16_t> in_use;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t want = 1 + static_cast<std::size_t>(t % 4);
      for (int i = 0; i < 200; ++i) {
        const auto first = ports.allocate_block(want);
        if (!first) continue;
        {
          std::lock_guard lock(mu);
          for (std::size_t j = 0; j < want; ++j) {
            if (!in_use.insert(static_cast<std::uint16_t>(*first + j)).second) {
              overlap.store(true);
            }
          }
        }
        leases.fetch_add(1);
        {
          std::lock_guard lock(mu);
          for (std::size_t j = 0; j < want; ++j) {
            in_use.erase(static_cast<std::uint16_t>(*first + j));
          }
        }
        ports.release_block(*first, want);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(overlap.load()) << "two threads held the same port at once";
  EXPECT_GT(leases.load(), 0);
  EXPECT_EQ(ports.free_count(), 64u);  // everything returned
}

TEST(PortAllocator, EngineExposesBlockLeases) {
  posix::EngineOptions options;
  options.workers = 1;
  options.control_port_base = 37460;
  options.control_port_count = 8;
  posix::TransferEngine engine(options);
  EXPECT_EQ(engine.control_port_capacity(), 8u);
  const auto block = engine.allocate_control_port_block(4);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, 37460);
  EXPECT_EQ(engine.free_control_ports(), 4u);
  EXPECT_FALSE(engine.allocate_control_port_block(5).has_value());
  // Block ports may be released individually (sessions own one each).
  engine.release_control_port(static_cast<std::uint16_t>(*block + 1));
  EXPECT_EQ(engine.free_control_ports(), 5u);
  engine.release_control_port_block(*block, 4);  // re-release is ignored
  EXPECT_EQ(engine.control_port_capacity(), 8u);
  EXPECT_EQ(engine.free_control_ports(), 8u);
}

// ---------------------------------------------------------------------------
// Striped checkpoints
// ---------------------------------------------------------------------------

TEST(StripedCheckpoint, SplitThenMergeRoundTripsTheBitmap) {
  const std::string base = ::testing::TempDir() + "fobs_stripes_roundtrip.ckpt";
  posix::remove_striped_checkpoints(base);
  const TransferSpec spec{64 * 1024 + 321, 4096};
  StripePlan plan;
  ASSERT_TRUE(StripePlan::make(spec, 4, StripeLayout::kRoundRobin, &plan));
  const auto packets = static_cast<std::size_t>(spec.packet_count());

  // Object-level checkpoint with every third packet received.
  util::Bitmap original(packets);
  for (std::size_t i = 0; i < packets; i += 3) original.set(i);
  posix::Checkpoint object_level;
  object_level.object_bytes = spec.object_bytes;
  object_level.packet_bytes = spec.packet_bytes;
  object_level.received_count = static_cast<std::int64_t>(original.count());
  object_level.bitmap = original.extract_range(0, packets);
  ASSERT_TRUE(posix::save_checkpoint(base, object_level));

  // Split: base is consumed, per-stripe sidecars appear in stripe-local
  // geometry.
  ASSERT_TRUE(posix::split_striped_checkpoint(base, plan));
  EXPECT_FALSE(posix::load_checkpoint(base).has_value());
  std::int64_t sidecar_bits = 0;
  for (int s = 0; s < plan.stripe_count(); ++s) {
    const auto sidecar = posix::load_checkpoint(posix::stripe_checkpoint_path(base, s));
    if (!sidecar) continue;
    EXPECT_EQ(sidecar->object_bytes, plan.stripe_bytes(s));
    EXPECT_EQ(sidecar->packet_bytes, spec.packet_bytes);
    sidecar_bits += sidecar->received_count;
  }
  EXPECT_EQ(sidecar_bits, static_cast<std::int64_t>(original.count()));

  // Merge: the object-level bitmap is recomposed exactly.
  const auto merged = posix::merge_striped_checkpoint(base, plan);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->object_bytes, spec.object_bytes);
  EXPECT_EQ(merged->received_count, static_cast<std::int64_t>(original.count()));
  util::Bitmap recomposed(packets);
  recomposed.merge_range(0, packets, merged->bitmap.data(), merged->bitmap.size());
  for (std::size_t i = 0; i < packets; ++i) {
    EXPECT_EQ(recomposed.test(i), original.test(i)) << "bit " << i;
  }
  posix::remove_striped_checkpoints(base);
}

TEST(StripedCheckpoint, MergeIgnoresIncompatibleSidecars) {
  const std::string base = ::testing::TempDir() + "fobs_stripes_incompat.ckpt";
  posix::remove_striped_checkpoints(base);
  const TransferSpec spec{16 * 1024, 1024};
  StripePlan plan;
  ASSERT_TRUE(StripePlan::make(spec, 2, StripeLayout::kContiguous, &plan));
  // A sidecar from a different plan (wrong stripe geometry) is skipped
  // rather than corrupting the merge.
  posix::Checkpoint foreign;
  foreign.object_bytes = 999;
  foreign.packet_bytes = 128;
  util::Bitmap bits(8);
  bits.set_all();
  foreign.received_count = 8;
  foreign.bitmap = bits.extract_range(0, 8);
  ASSERT_TRUE(posix::save_checkpoint(posix::stripe_checkpoint_path(base, 0), foreign));
  EXPECT_FALSE(posix::merge_striped_checkpoint(base, plan).has_value());
  posix::remove_striped_checkpoints(base);
}

// ---------------------------------------------------------------------------
// Loopback striped transfers (real sockets)
// ---------------------------------------------------------------------------

struct LoopbackRun {
  posix::StripedResult sender;
  posix::StripedResult receiver;
};

/// Runs one striped sender/receiver pair over loopback; the sender on
/// its own thread (run_striped_* must not run on an engine worker).
LoopbackRun run_striped_loopback(posix::TransferEngine& sender_engine,
                                 posix::TransferEngine& receiver_engine,
                                 const posix::StripedSenderOptions& send,
                                 const posix::StripedReceiverOptions& recv,
                                 std::span<const std::uint8_t> object,
                                 std::span<std::uint8_t> buffer) {
  LoopbackRun run;
  std::thread sender(
      [&] { run.sender = sender_engine.run_striped_sender(send, object); });
  run.receiver = receiver_engine.run_striped_receiver(recv, buffer);
  sender.join();
  return run;
}

TEST(StripedTransfer, FourStripes64MiBLandByteIdentical) {
  constexpr std::int64_t kObjectBytes = 64 * 1024 * 1024;
  constexpr std::int64_t kPacketBytes = 8 * 1024;
  auto object = core::TransferObject::pattern(kObjectBytes, 0x57121FE5);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(kObjectBytes), 0);

  posix::EngineOptions sender_options;
  sender_options.workers = 4;
  sender_options.control_port_base = 37320;
  sender_options.control_port_count = 8;
  posix::TransferEngine sender_engine(sender_options);
  posix::EngineOptions receiver_options;
  receiver_options.workers = 4;
  posix::TransferEngine receiver_engine(receiver_options);

  posix::StripedSenderOptions send;
  send.negotiation_port = 37310;
  send.endpoint.packet_bytes = kPacketBytes;
  posix::StripedReceiverOptions recv;
  recv.negotiation_port = 37310;
  recv.data_port_base = 37312;
  recv.stripes = 4;
  recv.endpoint.packet_bytes = kPacketBytes;

  const auto run =
      run_striped_loopback(sender_engine, receiver_engine, send, recv, object.view(), buffer);
  ASSERT_TRUE(run.receiver.completed()) << run.receiver.error;
  ASSERT_TRUE(run.sender.completed()) << run.sender.error;
  EXPECT_EQ(run.receiver.stripes, 4);
  EXPECT_EQ(run.receiver.stripes_completed, 4);
  EXPECT_FALSE(run.receiver.fallback_single_flow);
  EXPECT_EQ(run.sender.stripes, 4);
  // Byte-identical, checksum-verified.
  EXPECT_EQ(fnv1a(buffer.data(), buffer.size()),
            fnv1a(object.view().data(), object.view().size()));
  EXPECT_EQ(std::memcmp(buffer.data(), object.view().data(), buffer.size()), 0);
  EXPECT_GT(run.receiver.goodput_mbps, 0.0);
}

TEST(StripedTransfer, RoundRobinLayoutLandsByteIdentical) {
  constexpr std::int64_t kObjectBytes = 4 * 1024 * 1024 + 999;  // short last packet
  constexpr std::int64_t kPacketBytes = 4 * 1024;
  auto object = core::TransferObject::pattern(kObjectBytes, 0x0BB1);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(kObjectBytes), 0);

  posix::EngineOptions sender_options;
  sender_options.workers = 3;
  sender_options.control_port_base = 37340;
  sender_options.control_port_count = 8;
  posix::TransferEngine sender_engine(sender_options);
  posix::EngineOptions receiver_options;
  receiver_options.workers = 3;
  posix::TransferEngine receiver_engine(receiver_options);

  posix::StripedSenderOptions send;
  send.negotiation_port = 37330;
  send.endpoint.packet_bytes = kPacketBytes;
  posix::StripedReceiverOptions recv;
  recv.negotiation_port = 37330;
  recv.data_port_base = 37332;
  recv.stripes = 3;
  recv.layout = StripeLayout::kRoundRobin;
  recv.endpoint.packet_bytes = kPacketBytes;

  const auto run =
      run_striped_loopback(sender_engine, receiver_engine, send, recv, object.view(), buffer);
  ASSERT_TRUE(run.receiver.completed()) << run.receiver.error;
  EXPECT_EQ(run.receiver.layout, StripeLayout::kRoundRobin);
  EXPECT_EQ(run.receiver.stripes, 3);
  EXPECT_EQ(std::memcmp(buffer.data(), object.view().data(), buffer.size()), 0);
}

TEST(StripedTransfer, KilledStripeDegradesThenResumesByteIdentical) {
  constexpr std::int64_t kObjectBytes = 8 * 1024 * 1024;
  constexpr std::int64_t kPacketBytes = 8 * 1024;
  auto object = core::TransferObject::pattern(kObjectBytes, 0xDEAD51);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(kObjectBytes), 0);
  const std::string checkpoint_base = ::testing::TempDir() + "fobs_stripes_kill.ckpt";
  posix::remove_striped_checkpoints(checkpoint_base);

  posix::EngineOptions sender_options;
  sender_options.workers = 4;
  sender_options.control_port_base = 37360;
  sender_options.control_port_count = 8;
  posix::EngineOptions receiver_options;
  receiver_options.workers = 4;

  // Attempt 1: stripe 1's data flow is blackholed from the first packet
  // — that stripe can never progress, the other three complete.
  {
    posix::TransferEngine sender_engine(sender_options);
    posix::TransferEngine receiver_engine(receiver_options);
    posix::StripedSenderOptions send;
    send.negotiation_port = 37350;
    send.endpoint.packet_bytes = kPacketBytes;
    send.endpoint.timeout_ms = 4'000;  // give up on the dead stripe fast
    posix::StripedReceiverOptions recv;
    recv.negotiation_port = 37350;
    recv.data_port_base = 37354;
    recv.stripes = 4;
    recv.checkpoint_base = checkpoint_base;
    recv.endpoint.packet_bytes = kPacketBytes;
    recv.endpoint.timeout_ms = 4'000;
    recv.stripe_fault_plans = {"", "seed=7;data.blackhole=0+1000000", "", ""};

    const auto run = run_striped_loopback(sender_engine, receiver_engine, send, recv,
                                          object.view(), buffer);
    EXPECT_FALSE(run.receiver.completed());
    EXPECT_TRUE(run.receiver.degraded())
        << "expected some stripes delivered, got " << run.receiver.stripes_completed
        << " of " << run.receiver.stripes << ": " << run.receiver.error;
    EXPECT_EQ(run.receiver.stripes_completed, 3);
    EXPECT_TRUE(run.receiver.resumable);
    EXPECT_NE(run.receiver.stripe_receivers[1].status, posix::TransferStatus::kCompleted);
    // The merged object-level checkpoint exists, so even a plain
    // single-flow retry could resume this transfer.
    StripePlan plan;
    ASSERT_TRUE(StripePlan::make({kObjectBytes, kPacketBytes}, 4,
                                 StripeLayout::kContiguous, &plan));
    EXPECT_TRUE(posix::load_checkpoint(checkpoint_base).has_value());
  }

  // Attempt 2: same buffer, no faults — resumes from the sidecars and
  // completes without refetching the three delivered stripes.
  {
    posix::TransferEngine sender_engine(sender_options);
    posix::TransferEngine receiver_engine(receiver_options);
    posix::StripedSenderOptions send;
    send.negotiation_port = 37350;
    send.endpoint.packet_bytes = kPacketBytes;
    posix::StripedReceiverOptions recv;
    recv.negotiation_port = 37350;
    recv.data_port_base = 37354;
    recv.stripes = 4;
    recv.checkpoint_base = checkpoint_base;
    recv.endpoint.packet_bytes = kPacketBytes;

    const auto run = run_striped_loopback(sender_engine, receiver_engine, send, recv,
                                          object.view(), buffer);
    ASSERT_TRUE(run.receiver.completed()) << run.receiver.error;
    EXPECT_GT(run.receiver.packets_restored, 0)
        << "the resume must restore the completed stripes from checkpoints";
    EXPECT_EQ(std::memcmp(buffer.data(), object.view().data(), buffer.size()), 0);
    EXPECT_EQ(fnv1a(buffer.data(), buffer.size()),
              fnv1a(object.view().data(), object.view().size()));
  }
  posix::remove_striped_checkpoints(checkpoint_base);
}

TEST(StripedTransfer, FallsBackToOneFlowAgainstPlainSender) {
  constexpr std::int64_t kObjectBytes = 1 * 1024 * 1024 + 77;
  constexpr std::int64_t kPacketBytes = 4 * 1024;
  auto object = core::TransferObject::pattern(kObjectBytes, 0xFA11);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(kObjectBytes), 0);

  // A pre-striping sender: a plain session that has never heard of
  // FOBSSTRP. It drops the unknown token and keeps accepting, so the
  // receiver's fallback single flow pairs with it cleanly.
  posix::EngineOptions sender_options;
  sender_options.workers = 1;
  posix::TransferEngine sender_engine(sender_options);
  posix::SenderOptions plain;
  plain.data_port = 37390;
  plain.control_port = 37391;
  plain.endpoint.packet_bytes = kPacketBytes;
  auto handle = sender_engine.submit_send(plain, object.view());

  posix::EngineOptions receiver_options;
  receiver_options.workers = 1;
  posix::TransferEngine receiver_engine(receiver_options);
  posix::StripedReceiverOptions recv;
  recv.negotiation_port = 37391;  // the plain sender's control port
  recv.data_port_base = 37390;
  recv.stripes = 4;
  recv.endpoint.packet_bytes = kPacketBytes;
  const auto result = receiver_engine.run_striped_receiver(recv, buffer);

  ASSERT_TRUE(result.completed()) << result.error;
  EXPECT_TRUE(result.fallback_single_flow);
  EXPECT_EQ(result.stripes, 1);
  EXPECT_EQ(handle.wait(), posix::TransferStatus::kCompleted);
  EXPECT_EQ(std::memcmp(buffer.data(), object.view().data(), buffer.size()), 0);
}

// ---------------------------------------------------------------------------
// Striped fetch through the file server
// ---------------------------------------------------------------------------

TEST(StripedTransfer, StripedFetchThroughFileServerIsByteIdentical) {
  const std::string dir = ::testing::TempDir() + "fobs_stripes_fetch";
  ::mkdir(dir.c_str(), 0755);
  auto original = core::TransferObject::pattern(6 * 1024 * 1024 + 13, 0xF57);
  const auto checksum = original.checksum();
  ASSERT_TRUE(original.write_to_file(dir + "/dataset.bin"));

  posix::FileServerOptions server_options;
  server_options.dir = dir;
  server_options.catalog_port = 37400;  // control ports 37401..37432
  server_options.max_stripes = 8;
  server_options.quiet = true;
  server_options.endpoint.timeout_ms = 30'000;
  posix::FileServer server(server_options);
  ASSERT_TRUE(server.start());

  posix::FetchOptions fetch;
  fetch.catalog_port = server_options.catalog_port;
  fetch.name = "dataset.bin";
  fetch.out_path = dir + "/fetched.bin";
  fetch.data_port = 37440;
  fetch.stripes = 4;
  fetch.quiet = true;
  fetch.endpoint.timeout_ms = 30'000;
  const auto result = posix::fetch_file(fetch);
  ASSERT_TRUE(result.completed()) << result.error;
  EXPECT_EQ(result.stripes, 4);
  EXPECT_FALSE(result.fallback_single_flow);
  EXPECT_EQ(result.checksum, checksum);

  // The same client against a server that refuses striping degrades to
  // one flow and still verifies.
  server.stop();
  server_options.max_stripes = 1;
  server_options.catalog_port = 37470;
  posix::FileServer plain_server(server_options);
  ASSERT_TRUE(plain_server.start());
  fetch.catalog_port = server_options.catalog_port;
  fetch.out_path = dir + "/fetched_plain.bin";
  fetch.data_port = 37480;
  const auto fallback = posix::fetch_file(fetch);
  ASSERT_TRUE(fallback.completed()) << fallback.error;
  EXPECT_TRUE(fallback.fallback_single_flow);
  EXPECT_EQ(fallback.stripes, 1);
  EXPECT_EQ(fallback.checksum, checksum);
  plain_server.stop();
}

}  // namespace
}  // namespace fobs
