// Unit tests for the parallel sweep engine.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "exp/sweep.h"

namespace fobs::exp {
namespace {

TEST(Sweep, PreservesInputOrder) {
  std::vector<int> params{5, 3, 8, 1};
  const auto results =
      sweep<int, int>(params, [](const int& x) { return x * x; }, /*threads=*/4);
  EXPECT_EQ(results, (std::vector<int>{25, 9, 64, 1}));
}

TEST(Sweep, EmptyInput) {
  const auto results = sweep<int, int>({}, [](const int& x) { return x; });
  EXPECT_TRUE(results.empty());
}

TEST(Sweep, GridCartesianProduct) {
  const auto cells = grid<int, char>({1, 2}, {'a', 'b', 'c'});
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0], std::make_pair(1, 'a'));
  EXPECT_EQ(cells[2], std::make_pair(1, 'c'));
  EXPECT_EQ(cells[5], std::make_pair(2, 'c'));
}

TEST(Sweep, RunsIndependentSimulationsConcurrently) {
  // Each cell runs its own deterministic computation; results must be
  // reproducible regardless of scheduling.
  std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
  auto run = [](const std::uint64_t& seed) {
    fobs::util::Rng rng(seed);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) sum += rng.uniform();
    return sum;
  };
  const auto a = sweep<std::uint64_t, double>(seeds, run, 4);
  const auto b = sweep<std::uint64_t, double>(seeds, run, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fobs::exp
