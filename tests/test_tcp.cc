// TCP behaviour tests: handshake, option negotiation, window limits,
// loss recovery (fast retransmit, SACK, RTO), messages, and teardown.
#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <set>
#include <vector>

#include "host/host.h"
#include "net/tcp.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs::net {
namespace {

using host::Host;
using host::HostConfig;
using sim::LinkConfig;
using sim::Network;
using sim::Packet;
using sim::Simulation;
using util::DataRate;
using util::Duration;

HostConfig named_host(const char* name) {
  HostConfig config;
  config.name = name;
  return config;
}

/// Drops the data segments whose (1-based) data-segment index is listed.
/// Control/ack segments (tiny) are never dropped.
class DropNthDataSegments final : public sim::LossModel {
 public:
  explicit DropNthDataSegments(std::set<int> drops) : drops_(std::move(drops)) {}
  bool should_drop(const Packet& packet, util::Rng&) override {
    if (packet.size_bytes < 200) return false;  // acks/control
    ++count_;
    return drops_.count(count_) > 0;
  }

 private:
  std::set<int> drops_;
  int count_ = 0;
};

struct TcpWorld {
  Simulation sim;
  Network net{sim};
  Host* a;
  Host* b;
  sim::Link* ab;
  sim::Link* ba;

  TcpWorld(DataRate rate, Duration one_way, std::int64_t queue_bytes) {
    a = &Host::create(net, named_host("a"));
    b = &Host::create(net, named_host("b"));
    LinkConfig cfg;
    cfg.rate = rate;
    cfg.propagation_delay = one_way;
    cfg.queue_capacity_bytes = queue_bytes;
    ab = &net.add_link(cfg);
    ba = &net.add_link(cfg);
    ab->set_sink(b);
    ba->set_sink(a);
    a->set_egress(ab);
    b->set_egress(ba);
  }
};

struct TransferHarness {
  std::unique_ptr<TcpConnection> server;
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpConnection> client;
  Seq delivered = 0;
  bool connected = false;
  bool peer_closed = false;
  bool send_complete = false;
  std::vector<std::string> messages;

  TransferHarness(TcpWorld& world, const TcpConfig& client_config,
                  const TcpConfig& server_config, Seq bytes) {
    listener = std::make_unique<TcpListener>(
        *world.b, 5001, server_config, [this](std::unique_ptr<TcpConnection> conn) {
          server = std::move(conn);
          server->set_on_delivered([this](Seq d) { delivered = d; });
          server->set_on_message([this](const std::any& m) {
            messages.push_back(std::any_cast<std::string>(m));
          });
          server->set_on_peer_closed([this] { peer_closed = true; });
        });
    client = std::make_unique<TcpConnection>(*world.a, client_config);
    client->set_on_connected([this, bytes] {
      connected = true;
      if (bytes > 0) client->offer_bytes(bytes);
    });
    client->set_on_send_complete([this] { send_complete = true; });
    client->connect(world.b->id(), 5001);
  }
};

TcpConfig lwe_config(std::int64_t buffer = 4 * 1024 * 1024) {
  TcpConfig config;
  config.window_scaling = true;
  config.sack_enabled = true;
  config.recv_buffer_bytes = buffer;
  return config;
}

TcpConfig plain_config() {
  TcpConfig config;
  config.window_scaling = false;
  config.sack_enabled = false;
  config.recv_buffer_bytes = 64 * 1024;
  return config;
}

void run_until_done(TcpWorld& world, const std::function<bool()>& done, double max_seconds) {
  while (!done() && world.sim.now().seconds() < max_seconds && world.sim.step()) {
  }
}

TEST(Tcp, HandshakeEstablishesBothSides) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 256 * 1024);
  TransferHarness h(world, lwe_config(), lwe_config(), 0);
  run_until_done(world, [&] { return h.connected && h.server != nullptr; }, 1.0);
  EXPECT_TRUE(h.connected);
  ASSERT_NE(h.server, nullptr);
  EXPECT_TRUE(h.client->established());
  // Roughly 1.5 RTT for SYN / SYN-ACK / ACK.
  EXPECT_LT(world.sim.now().seconds(), 0.1);
}

TEST(Tcp, CleanTransferDeliversAllBytesWithoutRetransmission) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(5), 256 * 1024);
  const Seq bytes = 2 * 1024 * 1024;
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  // Run until the final ACK has also returned to the sender.
  run_until_done(world, [&] { return h.delivered >= bytes && h.send_complete; }, 30.0);
  EXPECT_EQ(h.delivered, bytes);
  EXPECT_TRUE(h.send_complete);
  EXPECT_EQ(h.client->stats().retransmissions, 0u);
  EXPECT_EQ(h.client->stats().timeouts, 0u);
}

TEST(Tcp, WithoutWindowScalingThroughputIsWindowLimited) {
  // 64 KiB window over 40 ms RTT -> ~13.1 Mb/s ceiling.
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(20), 256 * 1024);
  const Seq bytes = 4 * 1024 * 1024;
  TransferHarness h(world, plain_config(), plain_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 60.0);
  ASSERT_EQ(h.delivered, bytes);
  const double elapsed = world.sim.now().seconds();
  const double mbps = static_cast<double>(bytes) * 8 / elapsed / 1e6;
  EXPECT_LT(mbps, 14.0);
  EXPECT_GT(mbps, 8.0);
}

TEST(Tcp, WindowScalingUnlocksTheSamePath) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(20), 256 * 1024);
  const Seq bytes = 4 * 1024 * 1024;
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 60.0);
  ASSERT_EQ(h.delivered, bytes);
  const double mbps = static_cast<double>(bytes) * 8 / world.sim.now().seconds() / 1e6;
  EXPECT_GT(mbps, 30.0);  // far beyond the 13 Mb/s 64K ceiling
}

TEST(Tcp, WindowScalingRequiresBothSides) {
  // Client offers scaling but the server stack doesn't: the connection
  // must fall back to the 64 KiB ceiling (Table 1's "without LWE" case
  // happened exactly this way on the SGI).
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(20), 256 * 1024);
  const Seq bytes = 2 * 1024 * 1024;
  TransferHarness h(world, lwe_config(), plain_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 60.0);
  ASSERT_EQ(h.delivered, bytes);
  const double mbps = static_cast<double>(bytes) * 8 / world.sim.now().seconds() / 1e6;
  EXPECT_LT(mbps, 14.0);
}

TEST(Tcp, SingleLossRecoversByFastRetransmit) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 512 * 1024);
  world.ab->set_loss_model(std::make_unique<DropNthDataSegments>(std::set<int>{100}),
                           util::Rng(1));
  const Seq bytes = 2 * 1024 * 1024;
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 30.0);
  ASSERT_EQ(h.delivered, bytes);
  EXPECT_GE(h.client->stats().fast_retransmits, 1u);
  EXPECT_EQ(h.client->stats().timeouts, 0u);
  EXPECT_GE(h.client->stats().retransmissions, 1u);
  EXPECT_LE(h.client->stats().retransmissions, 5u);  // no go-back-N storm
}

TEST(Tcp, BurstLossRecoversWithSack) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 512 * 1024);
  std::set<int> drops;
  for (int i = 200; i < 240; ++i) drops.insert(i);  // 40-segment burst
  world.ab->set_loss_model(std::make_unique<DropNthDataSegments>(drops), util::Rng(1));
  const Seq bytes = 2 * 1024 * 1024;
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 60.0);
  ASSERT_EQ(h.delivered, bytes);
  EXPECT_GE(h.client->stats().retransmissions, 40u);
  EXPECT_LE(h.client->stats().retransmissions, 120u);
}

TEST(Tcp, TailLossRecoversByTimeout) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 512 * 1024);
  // Drop the very last data segment: no dupacks can follow, so only the
  // retransmission timer can save the transfer.
  const Seq bytes = 100 * 1460;
  world.ab->set_loss_model(std::make_unique<DropNthDataSegments>(std::set<int>{100}),
                           util::Rng(1));
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 30.0);
  ASSERT_EQ(h.delivered, bytes);
  EXPECT_GE(h.client->stats().timeouts, 1u);
}

TEST(Tcp, RenoWithoutSackStillRecovers) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 512 * 1024);
  std::set<int> drops{150, 300, 450};
  world.ab->set_loss_model(std::make_unique<DropNthDataSegments>(drops), util::Rng(1));
  auto config = plain_config();
  config.recv_buffer_bytes = 1024 * 1024;  // avoid window limiting
  config.window_scaling = true;
  config.sack_enabled = false;
  const Seq bytes = 2 * 1024 * 1024;
  TransferHarness h(world, config, config, bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 60.0);
  EXPECT_EQ(h.delivered, bytes);
}

TEST(Tcp, LossyBothDirectionsCompletes) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 512 * 1024);
  world.ab->set_loss_model(std::make_unique<sim::BernoulliLoss>(0.005), util::Rng(3));
  world.ba->set_loss_model(std::make_unique<sim::BernoulliLoss>(0.005), util::Rng(4));
  const Seq bytes = 1024 * 1024;
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 120.0);
  EXPECT_EQ(h.delivered, bytes);
}

TEST(Tcp, MessagesDeliveredInOrderAcrossLoss) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 512 * 1024);
  world.ab->set_loss_model(std::make_unique<DropNthDataSegments>(std::set<int>{2, 5}),
                           util::Rng(1));
  TransferHarness h(world, lwe_config(), lwe_config(), 0);
  run_until_done(world, [&] { return h.connected; }, 5.0);
  ASSERT_TRUE(h.connected);
  for (int i = 0; i < 8; ++i) {
    h.client->send_message(10'000, std::string("msg") + std::to_string(i));
  }
  run_until_done(world, [&] { return h.messages.size() == 8; }, 30.0);
  ASSERT_EQ(h.messages.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(h.messages[static_cast<std::size_t>(i)], "msg" + std::to_string(i));
  }
}

TEST(Tcp, CloseAfterSendDeliversPeerClosed) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(5), 256 * 1024);
  const Seq bytes = 100'000;
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  run_until_done(world, [&] { return h.connected; }, 5.0);
  h.client->close();  // FIN defers until all data is acked
  run_until_done(
      world, [&] { return h.peer_closed && h.client->state() == TcpState::kDone; }, 30.0);
  EXPECT_TRUE(h.peer_closed);
  EXPECT_EQ(h.delivered, bytes);
  EXPECT_EQ(h.client->state(), TcpState::kDone);
}

TEST(Tcp, SmallReceiveBufferWithLossDoesNotDeadlock) {
  // Regression: a hole at rcv_nxt with a full out-of-order buffer used
  // to advertise a zero window the sender could never reopen.
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(10), 512 * 1024);
  world.ab->set_loss_model(std::make_unique<DropNthDataSegments>(std::set<int>{10}),
                           util::Rng(1));
  auto config = lwe_config(/*buffer=*/64 * 1024);
  const Seq bytes = 1024 * 1024;
  TransferHarness h(world, config, config, bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 60.0);
  EXPECT_EQ(h.delivered, bytes);
}

TEST(Tcp, DelayedAcksReduceAckTraffic) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(5), 512 * 1024);
  const Seq bytes = 1024 * 1024;
  TransferHarness h(world, lwe_config(), lwe_config(), bytes);
  run_until_done(world, [&] { return h.delivered >= bytes; }, 30.0);
  ASSERT_EQ(h.delivered, bytes);
  // Roughly one ack per two segments on a clean in-order path.
  EXPECT_LT(h.server->stats().acks_sent, h.client->stats().data_segments_sent * 3 / 4);
}

TEST(Tcp, SynRetryEventuallyConnectsThroughLossyHandshake) {
  TcpWorld world(DataRate::megabits_per_second(100), Duration::milliseconds(5), 256 * 1024);
  // Drop ALL small packets a few times: the first SYN attempts die.
  class DropFirstN final : public sim::LossModel {
   public:
    explicit DropFirstN(int n) : remaining_(n) {}
    bool should_drop(const Packet&, util::Rng&) override {
      if (remaining_ > 0) {
        --remaining_;
        return true;
      }
      return false;
    }

   private:
    int remaining_;
  } ;
  world.ab->set_loss_model(std::make_unique<DropFirstN>(2), util::Rng(1));
  TransferHarness h(world, lwe_config(), lwe_config(), 1000);
  run_until_done(world, [&] { return h.delivered >= 1000; }, 30.0);
  EXPECT_EQ(h.delivered, 1000);
}

}  // namespace
}  // namespace fobs::net
