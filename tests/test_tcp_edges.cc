// Edge-case tests for the TCP implementation surface: listener
// behaviour, incremental writes, concurrent connections, stray traffic.
#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <vector>

#include "host/host.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs::net {
namespace {

using host::Host;
using host::HostConfig;
using sim::LinkConfig;
using sim::Network;
using sim::Simulation;
using util::DataRate;
using util::Duration;

HostConfig named_host(const char* name) {
  HostConfig config;
  config.name = name;
  return config;
}

struct Pair {
  Simulation sim;
  Network net{sim};
  Host* a;
  Host* b;

  Pair() {
    a = &Host::create(net, named_host("a"));
    b = &Host::create(net, named_host("b"));
    LinkConfig cfg;
    cfg.rate = DataRate::megabits_per_second(100);
    cfg.propagation_delay = Duration::milliseconds(2);
    cfg.queue_capacity_bytes = 256 * 1024;
    auto& ab = net.add_link(cfg);
    auto& ba = net.add_link(cfg);
    ab.set_sink(b);
    ba.set_sink(a);
    a->set_egress(&ab);
    b->set_egress(&ba);
  }

  void run(double seconds) {
    sim.run_until(util::TimePoint::from_ns(util::Duration::from_seconds(seconds).ns()));
  }
};

TcpConfig config() {
  TcpConfig c;
  c.recv_buffer_bytes = 1 << 20;
  return c;
}

TEST(TcpEdges, ListenerIgnoresNonSynTraffic) {
  Pair world;
  int accepted = 0;
  TcpListener listener(*world.b, 5001, config(),
                       [&](std::unique_ptr<TcpConnection>) { ++accepted; });
  // A UDP datagram to the listening port must be ignored, not crash.
  UdpEndpoint udp(*world.a);
  udp.send_to(world.b->id(), 5001, 100, std::string("not tcp"));
  // A non-SYN TCP segment (stray ACK) must be ignored too.
  TcpConnection stray(*world.a, config());
  stray.connect(world.b->id(), 4999);  // nobody listens there
  world.run(0.5);
  EXPECT_EQ(accepted, 0);
}

TEST(TcpEdges, ListenerAcceptsManyConcurrentConnections) {
  Pair world;
  std::vector<std::unique_ptr<TcpConnection>> servers;
  std::int64_t total_delivered = 0;
  TcpListener listener(*world.b, 5001, config(), [&](std::unique_ptr<TcpConnection> conn) {
    auto* raw = conn.get();
    servers.push_back(std::move(conn));
    auto last = std::make_shared<Seq>(0);
    raw->set_on_delivered([&, last](Seq d) {
      total_delivered += d - *last;
      *last = d;
    });
  });

  std::vector<std::unique_ptr<TcpConnection>> clients;
  constexpr int kClients = 6;
  constexpr Seq kEach = 200'000;
  for (int i = 0; i < kClients; ++i) {
    auto client = std::make_unique<TcpConnection>(*world.a, config());
    auto* raw = client.get();
    raw->set_on_connected([raw] { raw->offer_bytes(kEach); });
    raw->connect(world.b->id(), 5001);
    clients.push_back(std::move(client));
  }
  world.run(10);
  EXPECT_EQ(servers.size(), static_cast<std::size_t>(kClients));
  EXPECT_EQ(total_delivered, kClients * kEach);
}

TEST(TcpEdges, IncrementalOfferKeepsStreaming) {
  Pair world;
  std::unique_ptr<TcpConnection> server;
  Seq delivered = 0;
  TcpListener listener(*world.b, 5001, config(), [&](std::unique_ptr<TcpConnection> conn) {
    server = std::move(conn);
    server->set_on_delivered([&](Seq d) { delivered = d; });
  });
  TcpConnection client(*world.a, config());
  client.connect(world.b->id(), 5001);
  world.run(0.2);
  // Offer in five chunks with idle gaps between them.
  for (int chunk = 0; chunk < 5; ++chunk) {
    client.offer_bytes(50'000);
    world.run(0.2 * (chunk + 2));
  }
  world.run(5);
  EXPECT_EQ(delivered, 250'000);
  EXPECT_TRUE(client.send_complete());
}

TEST(TcpEdges, MessagesInterleavedWithRawBytes) {
  Pair world;
  std::unique_ptr<TcpConnection> server;
  std::vector<int> messages;
  TcpListener listener(*world.b, 5001, config(), [&](std::unique_ptr<TcpConnection> conn) {
    server = std::move(conn);
    server->set_on_message(
        [&](const std::any& m) { messages.push_back(std::any_cast<int>(m)); });
  });
  TcpConnection client(*world.a, config());
  client.connect(world.b->id(), 5001);
  world.run(0.2);
  client.offer_bytes(10'000);      // raw
  client.send_message(5'000, 1);   // framed
  client.offer_bytes(20'000);      // raw
  client.send_message(5'000, 2);
  world.run(5);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0], 1);
  EXPECT_EQ(messages[1], 2);
  EXPECT_EQ(server->delivered_bytes(), 40'000);
}

TEST(TcpEdges, ZeroByteTransferWithCloseOnly) {
  Pair world;
  std::unique_ptr<TcpConnection> server;
  bool closed = false;
  TcpListener listener(*world.b, 5001, config(), [&](std::unique_ptr<TcpConnection> conn) {
    server = std::move(conn);
    server->set_on_peer_closed([&] { closed = true; });
  });
  TcpConnection client(*world.a, config());
  client.set_on_connected([&] { client.close(); });
  client.connect(world.b->id(), 5001);
  world.run(5);
  EXPECT_TRUE(closed);
  EXPECT_EQ(client.state(), TcpState::kDone);
}

TEST(TcpEdges, ConnectionIgnoresPacketsFromStrangers) {
  Pair world;
  std::unique_ptr<TcpConnection> server;
  TcpListener listener(*world.b, 5001, config(), [&](std::unique_ptr<TcpConnection> conn) {
    server = std::move(conn);
  });
  TcpConnection client(*world.a, config());
  client.set_on_connected([&] { client.offer_bytes(10'000); });
  client.connect(world.b->id(), 5001);
  world.run(1);
  ASSERT_NE(server, nullptr);
  // A third host's segments to the client's port must be ignored.
  auto& c = Host::create(world.net, named_host("c"));
  LinkConfig cfg;
  cfg.rate = DataRate::megabits_per_second(100);
  auto& ca = world.net.add_link(cfg);
  ca.set_sink(world.a);
  c.set_egress(&ca);
  TcpSegment forged;
  forged.flags = TcpSegment::kAck;
  forged.ack = 999'999;  // absurd ack that would corrupt state if accepted
  sim::Packet pkt;
  pkt.dst = world.a->id();
  pkt.dst_port = client.local_port();
  pkt.size_bytes = 40;
  pkt.payload = forged;
  c.send(std::move(pkt));
  world.run(2);
  EXPECT_EQ(client.acked_bytes(), 10'000);  // unaffected by the forgery
}

TEST(TcpEdges, HandshakeGivesUpAfterMaxRetries) {
  Pair world;
  // Forward link drops everything: the SYN can never arrive.
  world.a->egress()->set_loss_model(std::make_unique<sim::BernoulliLoss>(1.0),
                                    util::Rng(1));
  TcpConnection client(*world.a, config());
  client.connect(world.b->id(), 5001);
  world.run(30);
  EXPECT_EQ(client.state(), TcpState::kClosed);
}

}  // namespace
}  // namespace fobs::net
