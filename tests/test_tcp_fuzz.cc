// Property fuzz for TCP: across a grid of loss rates, configurations,
// and seeds, every transfer must deliver all bytes in order, with no
// stalls (a regression net for the recovery state machine).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "host/host.h"
#include "net/tcp.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace fobs::net {
namespace {

using host::Host;
using host::HostConfig;
using sim::LinkConfig;
using sim::Network;
using sim::Simulation;
using util::DataRate;
using util::Duration;

HostConfig named_host(const char* name) {
  HostConfig config;
  config.name = name;
  return config;
}

struct Params {
  double loss;
  bool sack;
  bool fast_recovery;
  std::int64_t recv_buffer;
  std::uint64_t seed;
};

class TcpFuzz : public ::testing::TestWithParam<Params> {};

TEST_P(TcpFuzz, DeliversEverythingInOrder) {
  const auto params = GetParam();
  Simulation simulation;
  Network net(simulation);
  auto& a = Host::create(net, named_host("a"));
  auto& b = Host::create(net, named_host("b"));
  LinkConfig link_cfg;
  link_cfg.rate = DataRate::megabits_per_second(100);
  link_cfg.propagation_delay = Duration::milliseconds(8);
  link_cfg.queue_capacity_bytes = 256 * 1024;
  auto& ab = net.add_link(link_cfg);
  auto& ba = net.add_link(link_cfg);
  ab.set_sink(&b);
  ba.set_sink(&a);
  a.set_egress(&ab);
  b.set_egress(&ba);
  if (params.loss > 0) {
    ab.set_loss_model(std::make_unique<sim::BernoulliLoss>(params.loss),
                      util::Rng(params.seed));
    ba.set_loss_model(std::make_unique<sim::BernoulliLoss>(params.loss / 4),
                      util::Rng(params.seed + 1));
  }

  TcpConfig config;
  config.sack_enabled = params.sack;
  config.fast_recovery = params.fast_recovery;
  config.recv_buffer_bytes = params.recv_buffer;
  config.window_scaling = params.recv_buffer > 65535;

  const Seq bytes = 3 * 1024 * 1024;
  Seq delivered = 0;
  std::unique_ptr<TcpConnection> server;
  TcpListener listener(b, 5001, config, [&](std::unique_ptr<TcpConnection> conn) {
    server = std::move(conn);
    server->set_on_delivered([&](Seq d) { delivered = d; });
  });
  TcpConnection client(a, config);
  client.set_on_connected([&] { client.offer_bytes(bytes); });
  client.connect(b.id(), 5001);

  // Generous horizon: heavy loss with Tahoe and a 64K window is slow,
  // but must never stall outright.
  while (delivered < bytes && simulation.now().seconds() < 300 && simulation.step()) {
  }
  EXPECT_EQ(delivered, bytes) << "loss=" << params.loss << " sack=" << params.sack
                              << " fr=" << params.fast_recovery
                              << " buf=" << params.recv_buffer << " seed=" << params.seed;
}

std::vector<Params> fuzz_grid() {
  std::vector<Params> grid;
  for (double loss : {0.0, 0.002, 0.02}) {
    for (bool sack : {false, true}) {
      for (bool fast_recovery : {false, true}) {
        for (std::int64_t buffer : {std::int64_t{64} * 1024, std::int64_t{1} << 20}) {
          for (std::uint64_t seed : {1ull, 2ull}) {
            grid.push_back(Params{loss, sack, fast_recovery, buffer, seed});
          }
        }
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, TcpFuzz, ::testing::ValuesIn(fuzz_grid()));

}  // namespace
}  // namespace fobs::net
