// Telemetry subsystem tests: EventTracer semantics, the metrics
// registry under concurrency, and — most importantly — schema
// validation of the JSONL traces every transfer path emits. The schema
// checks parse each emitted line back into its fields and require an
// exact re-serialization match, so any drift in the wire format of the
// traces (docs/TELEMETRY.md) fails here first.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/tcp_bulk.h"
#include "exp/runner.h"
#include "exp/testbeds.h"
#include "fobs/posix/posix_transfer.h"
#include "fobs/sim_transfer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace fobs::telemetry {
namespace {

// ---------------------------------------------------------------------------
// JSONL schema validation helpers.

struct ParsedLine {
  long long t_ns = 0;
  std::string event;
  long long seq = 0;
  long long value = 0;
};

/// Parses one trace line; nullopt unless the line is EXACTLY
///   {"t_ns":<int>,"event":"<name>","seq":<int>,"value":<int>}
/// (verified by re-serializing the parsed fields and comparing).
std::optional<ParsedLine> parse_trace_line(const std::string& line) {
  ParsedLine parsed;
  char event[64] = {0};
  if (std::sscanf(line.c_str(), "{\"t_ns\":%lld,\"event\":\"%63[a-z_]\",\"seq\":%lld,\"value\":%lld}",
                  &parsed.t_ns, event, &parsed.seq, &parsed.value) != 4) {
    return std::nullopt;
  }
  parsed.event = event;
  char round_trip[256];
  std::snprintf(round_trip, sizeof round_trip, "{\"t_ns\":%lld,\"event\":\"%s\",\"seq\":%lld,\"value\":%lld}",
                parsed.t_ns, event, parsed.seq, parsed.value);
  if (line != round_trip) return std::nullopt;
  return parsed;
}

bool is_known_event_name(const std::string& name) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    if (name == to_string(static_cast<EventType>(i))) return true;
  }
  return false;
}

/// Asserts every line of a tracer's JSONL export parses, names a known
/// event, and carries non-decreasing timestamps. Returns the lines.
std::vector<ParsedLine> validate_jsonl(const EventTracer& tracer) {
  std::ostringstream os;
  tracer.write_jsonl(os);
  std::istringstream is(os.str());
  std::vector<ParsedLine> lines;
  std::string line;
  long long prev_t = 0;
  while (std::getline(is, line)) {
    const auto parsed = parse_trace_line(line);
    EXPECT_TRUE(parsed.has_value()) << "malformed trace line: " << line;
    if (!parsed) continue;
    EXPECT_TRUE(is_known_event_name(parsed->event)) << "unknown event: " << parsed->event;
    EXPECT_GE(parsed->t_ns, prev_t) << "timestamps went backwards at: " << line;
    prev_t = parsed->t_ns;
    lines.push_back(*parsed);
  }
  EXPECT_EQ(lines.size(), tracer.size());
  return lines;
}

// ---------------------------------------------------------------------------
// EventTracer semantics.

TEST(EventTracer, RecordsEventsWithInjectedClock) {
  std::int64_t now = 0;
  EventTracer tracer([&now] { return now; });
  tracer.record(EventType::kTransferStart, -1, 42);
  now = 1'000;
  tracer.record(EventType::kBatchSent, -1, 2);
  now = 2'000;
  tracer.record(EventType::kAckProcessed, 7, 64);

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::kTransferStart);
  EXPECT_EQ(events[0].t_ns, 0);
  EXPECT_EQ(events[0].value, 42);
  EXPECT_EQ(events[1].t_ns, 1'000);
  EXPECT_EQ(events[2].t_ns, 2'000);
  EXPECT_EQ(events[2].seq, 7);
  EXPECT_EQ(tracer.count(EventType::kAckProcessed), 1);
  EXPECT_EQ(tracer.count(EventType::kTimeout), 0);
}

TEST(EventTracer, RetentionCapKeepsCountsExact) {
  EventTracer tracer({}, /*max_events=*/4);
  for (int i = 0; i < 10; ++i) tracer.record(EventType::kBatchSent, i);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Counts stay exact past the cap — the summary is still truthful.
  EXPECT_EQ(tracer.count(EventType::kBatchSent), 10);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].seq, 0);  // the oldest events are the ones kept
  EXPECT_EQ(events[3].seq, 3);
}

TEST(EventTracer, ClearResetsEverything) {
  EventTracer tracer({}, 2);
  tracer.record(EventType::kError);
  tracer.record(EventType::kError);
  tracer.record(EventType::kError);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.count(EventType::kError), 0);
}

TEST(EventTracer, SummaryListsOneRowPerObservedType) {
  EventTracer tracer;
  tracer.record_at(10, EventType::kTransferStart);
  tracer.record_at(20, EventType::kBatchSent);
  tracer.record_at(30, EventType::kBatchSent);
  const auto table = tracer.summary();
  // Header-free row count: only the two observed types appear.
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(EventTracer, JsonlExportMatchesSnapshot) {
  EventTracer tracer;
  tracer.record_at(5, EventType::kPacketPlaced, 3, 1);
  tracer.record_at(9, EventType::kCompletion, -1, 100);
  const auto lines = validate_jsonl(tracer);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].event, "packet_placed");
  EXPECT_EQ(lines[0].seq, 3);
  EXPECT_EQ(lines[1].event, "completion");
  EXPECT_EQ(lines[1].value, 100);
}

TEST(EventTracer, EveryEventTypeHasAUniqueWireName) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const std::string name = to_string(static_cast<EventType>(i));
    EXPECT_FALSE(name.empty());
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NE(name, to_string(static_cast<EventType>(j)));
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  auto& transfers = registry.counter("transfers");
  transfers.inc();
  transfers.inc(4);
  EXPECT_EQ(transfers.value(), 5);

  auto& inflight = registry.gauge("inflight");
  inflight.set(10);
  inflight.add(-3);
  EXPECT_EQ(inflight.value(), 7);

  auto& latency = registry.histogram("latency_ms", {10, 100});
  latency.observe(5);
  latency.observe(50);
  latency.observe(500);
  EXPECT_EQ(latency.count(), 3);
  EXPECT_EQ(latency.sum(), 555);
  ASSERT_EQ(latency.bucket_count(), 3u);
  EXPECT_EQ(latency.bucket(0), 1);  // <= 10
  EXPECT_EQ(latency.bucket(1), 1);  // <= 100
  EXPECT_EQ(latency.bucket(2), 1);  // overflow
  EXPECT_DOUBLE_EQ(latency.mean(), 185.0);

  // Same name, same kind: the identical instrument comes back.
  EXPECT_EQ(&registry.counter("transfers"), &transfers);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(Metrics, HistogramBoundariesAreInclusive) {
  MetricsRegistry registry;
  auto& h = registry.histogram("h", {0, 10});
  h.observe(0);    // lands in bucket 0 (<= 0)
  h.observe(10);   // lands in bucket 1 (<= 10)
  h.observe(11);   // overflow
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
}

TEST(Metrics, DisabledMeansNoOp) {
  MetricsRegistry registry;
  auto& c = registry.counter("c");
  MetricsRegistry::set_enabled(false);
  c.inc(100);
  registry.gauge("g").set(5);
  registry.histogram("h", {1}).observe(7);
  MetricsRegistry::set_enabled(true);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(registry.gauge("g").value(), 0);
  EXPECT_EQ(registry.histogram("h", {1}).count(), 0);
  c.inc();
  EXPECT_EQ(c.value(), 1);
}

TEST(Metrics, SnapshotAndJsonlCoverEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("a").inc(3);
  registry.gauge("b").set(-2);
  registry.histogram("c", {5}).observe(4);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a");
  EXPECT_EQ(samples[0].value, 3);
  EXPECT_EQ(samples[1].value, -2);
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[2].value, 1);  // histogram count
  EXPECT_EQ(samples[2].sum, 4);

  std::ostringstream os;
  registry.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"metric\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"kind\":"), std::string::npos) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

// The registry's core concurrency contract: writers never lose updates
// and never tear, even with snapshot readers running alongside.
TEST(Metrics, ConcurrentHammerLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20'000;
  MetricsRegistry registry;
  std::atomic<bool> stop{false};

  // A reader thread snapshots continuously while writers hammer.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto samples = registry.snapshot();
      for (const auto& s : samples) {
        EXPECT_GE(s.value, 0);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Half the threads share instruments; half register their own
      // (exercising concurrent registration against the map mutex).
      auto& shared = registry.counter("shared");
      auto& own = registry.counter("own." + std::to_string(t % 4));
      auto& hist = registry.histogram("hist", {8, 64, 512});
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.inc();
        own.inc();
        hist.observe(i % 1024);
        registry.gauge("last").set(i);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(registry.counter("shared").value(), kThreads * kOpsPerThread);
  std::int64_t own_total = 0;
  for (int t = 0; t < 4; ++t) own_total += registry.counter("own." + std::to_string(t)).value();
  EXPECT_EQ(own_total, kThreads * kOpsPerThread);
  auto& hist = registry.histogram("hist", {8, 64, 512});
  EXPECT_EQ(hist.count(), kThreads * kOpsPerThread);
  std::int64_t bucket_total = 0;
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) bucket_total += hist.bucket(b);
  EXPECT_EQ(bucket_total, hist.count());
}

// The tracer is shared between a driver thread and (potentially) a
// monitoring thread; concurrent record + snapshot must stay coherent.
TEST(EventTracer, ConcurrentRecordAndSnapshot) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 10'000;
  EventTracer tracer;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto events = tracer.snapshot();
      EXPECT_LE(events.size(), static_cast<std::size_t>(kThreads) * kEventsPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        tracer.record(EventType::kPacketPlaced, i);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(tracer.count(EventType::kPacketPlaced), kThreads * kEventsPerThread);
  EXPECT_EQ(tracer.size() + tracer.dropped(),
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
}

// ---------------------------------------------------------------------------
// End-to-end: every transfer path emits a schema-valid JSONL trace.

TEST(TraceSchema, SimTransferEmitsValidJsonl) {
  auto spec = exp::spec_for(exp::PathId::kShortHaul);
  exp::Testbed bed(spec, 7);

  EventTracer sender_trace;
  EventTracer receiver_trace;
  core::SimTransferConfig config;
  config.spec = {2 * 1024 * 1024, 1024};
  config.carry_data = false;
  config.sender_tracer = &sender_trace;
  config.receiver_tracer = &receiver_trace;
  const auto result = core::run_sim_transfer(bed.network(), bed.src(), bed.dst(), config);
  ASSERT_TRUE(result.completed);

  const auto sender_lines = validate_jsonl(sender_trace);
  const auto receiver_lines = validate_jsonl(receiver_trace);
  ASSERT_FALSE(sender_lines.empty());
  ASSERT_FALSE(receiver_lines.empty());
  EXPECT_EQ(sender_lines.front().event, "transfer_start");
  EXPECT_EQ(receiver_lines.front().event, "transfer_start");
  EXPECT_EQ(sender_trace.count(EventType::kCompletion), 1);
  EXPECT_EQ(receiver_trace.count(EventType::kCompletion), 1);

  // Trace counts agree with the transfer's own accounting.
  EXPECT_EQ(receiver_trace.count(EventType::kPacketPlaced), result.packets_needed);
  EXPECT_EQ(receiver_trace.count(EventType::kDuplicate), result.duplicates_at_receiver);
  EXPECT_EQ(receiver_trace.count(EventType::kAckSent),
            static_cast<std::int64_t>(result.acks_sent));
  EXPECT_GT(sender_trace.count(EventType::kBatchSent), 0);
}

TEST(TraceSchema, TcpBaselineEmitsValidJsonl) {
  auto spec = exp::spec_for(exp::PathId::kShortHaul);
  exp::Testbed bed(spec, 3);
  EventTracer trace;
  const auto result = fobs::baselines::run_tcp_transfer(
      bed.network(), bed.src(), bed.dst(), 512 * 1024, fobs::baselines::tcp_with_lwe(),
      fobs::util::Duration::seconds(600), &trace);
  ASSERT_TRUE(result.completed);
  const auto lines = validate_jsonl(trace);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines.front().event, "transfer_start");
  EXPECT_EQ(lines.back().event, "completion");
  EXPECT_GT(lines.back().t_ns, lines.front().t_ns);
}

TEST(TraceSchema, PosixTransferEmitsValidJsonl) {
  const std::int64_t object_bytes = 256 * 1024;
  const auto object = core::make_pattern(object_bytes, 0xF0B5);
  std::vector<std::uint8_t> sink(object.size(), 0);

  EventTracer sender_trace;
  EventTracer receiver_trace;

  posix::ReceiverOptions recv_opts;
  recv_opts.data_port = 36050;
  recv_opts.control_port = 36051;
  recv_opts.endpoint.timeout_ms = 30'000;
  recv_opts.endpoint.tracer = &receiver_trace;

  posix::SenderOptions send_opts;
  send_opts.data_port = recv_opts.data_port;
  send_opts.control_port = recv_opts.control_port;
  send_opts.endpoint.timeout_ms = 30'000;
  send_opts.endpoint.tracer = &sender_trace;

  posix::ReceiverResult recv_result;
  std::thread receiver_thread([&] {
    recv_result = posix::receive_object(recv_opts, std::span<std::uint8_t>(sink));
  });
  const auto send_result =
      posix::send_object(send_opts, std::span<const std::uint8_t>(object));
  receiver_thread.join();
  ASSERT_TRUE(send_result.completed()) << send_result.error;
  ASSERT_TRUE(recv_result.completed()) << recv_result.error;

  const auto sender_lines = validate_jsonl(sender_trace);
  const auto receiver_lines = validate_jsonl(receiver_trace);
  ASSERT_FALSE(sender_lines.empty());
  ASSERT_FALSE(receiver_lines.empty());
  EXPECT_EQ(sender_lines.front().event, "transfer_start");
  EXPECT_EQ(receiver_lines.front().event, "transfer_start");
  EXPECT_EQ(sender_trace.count(EventType::kCompletion), 1);
  EXPECT_EQ(receiver_trace.count(EventType::kCompletion), 1);
  EXPECT_EQ(sender_trace.count(EventType::kTimeout), 0);
  EXPECT_EQ(receiver_trace.count(EventType::kPacketPlaced), recv_result.packets_received);
}

}  // namespace
}  // namespace fobs::telemetry
