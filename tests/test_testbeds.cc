// Tests for the paper-path testbeds: geometry, wiring, cross traffic.
#include <gtest/gtest.h>

#include <any>

#include "exp/testbeds.h"
#include "net/udp.h"

namespace fobs::exp {
namespace {

TEST(Testbeds, PaperRttGeometry) {
  EXPECT_NEAR(spec_for(PathId::kShortHaul).rtt().seconds(), 0.026, 0.001);
  EXPECT_NEAR(spec_for(PathId::kLongHaul).rtt().seconds(), 0.065, 0.001);
  EXPECT_NEAR(spec_for(PathId::kGigabitOc12).rtt().seconds(), 0.026, 0.001);
  EXPECT_NEAR(spec_for(PathId::kGigabitContended).rtt().seconds(), 0.065, 0.001);
}

TEST(Testbeds, PaperBottlenecks) {
  EXPECT_DOUBLE_EQ(spec_for(PathId::kShortHaul).max_bandwidth.mbps(), 100.0);
  EXPECT_DOUBLE_EQ(spec_for(PathId::kLongHaul).max_bandwidth.mbps(), 100.0);
  EXPECT_DOUBLE_EQ(spec_for(PathId::kGigabitOc12).max_bandwidth.mbps(), 622.0);
  EXPECT_DOUBLE_EQ(spec_for(PathId::kGigabitContended).max_bandwidth.mbps(), 622.0);
}

TEST(Testbeds, ForwardAndReversePathsWork) {
  Testbed bed(PathId::kShortHaul);
  net::UdpEndpoint at_src(bed.src(), 9000);
  net::UdpEndpoint at_dst(bed.dst(), 9001);
  at_src.send_to(bed.dst().id(), 9001, 100, std::string("fwd"));
  at_dst.send_to(bed.src().id(), 9000, 100, std::string("rev"));
  bed.sim().run();
  auto fwd = at_dst.try_recv();
  auto rev = at_src.try_recv();
  ASSERT_TRUE(fwd && rev);
  EXPECT_EQ(std::any_cast<std::string>(fwd->payload), "fwd");
  EXPECT_EQ(std::any_cast<std::string>(rev->payload), "rev");
}

TEST(Testbeds, OneWayLatencyMatchesSpec) {
  Testbed bed(PathId::kLongHaul);
  net::UdpEndpoint at_src(bed.src(), 9000);
  net::UdpEndpoint at_dst(bed.dst(), 9001);
  at_src.send_to(bed.dst().id(), 9001, 100, std::any{});
  util::TimePoint arrival;
  bool got = false;
  at_dst.set_rx_notify([&] {
    arrival = bed.sim().now();
    got = true;
  });
  bed.sim().run();
  ASSERT_TRUE(got);
  // Propagation (32.5 ms) plus tiny serialization.
  EXPECT_NEAR(arrival.seconds(), bed.spec().one_way_delay().seconds(), 0.001);
}

TEST(Testbeds, ContendedPathCarriesCrossTraffic) {
  Testbed bed(PathId::kGigabitContended);
  EXPECT_FALSE(bed.cross_sources().empty());
  bed.sim().run_until(util::TimePoint::from_ns(util::Duration::seconds(2).ns()));
  std::uint64_t offered = 0;
  for (const auto& src : bed.cross_sources()) offered += src->stats().packets_sent;
  EXPECT_GT(offered, 10000u);
  EXPECT_GT(bed.cross_sink().packets_received(), 0u);
}

TEST(Testbeds, CleanPathsHaveNoCrossTraffic) {
  Testbed bed(PathId::kShortHaul);
  EXPECT_TRUE(bed.cross_sources().empty());
}

TEST(Testbeds, DistinctSeedsGiveDistinctCrossTraffic) {
  Testbed bed1(PathId::kGigabitContended, 1);
  Testbed bed2(PathId::kGigabitContended, 2);
  bed1.sim().run_until(util::TimePoint::from_ns(util::Duration::seconds(1).ns()));
  bed2.sim().run_until(util::TimePoint::from_ns(util::Duration::seconds(1).ns()));
  // Same aggregate intent but different realizations.
  EXPECT_NE(bed1.cross_sources()[0]->stats().packets_sent,
            bed2.cross_sources()[0]->stats().packets_sent);
}

TEST(Testbeds, BackboneIsTheForwardBottleneckLink) {
  Testbed bed(PathId::kGigabitOc12);
  EXPECT_DOUBLE_EQ(bed.backbone().config().rate.mbps(), 622.0);
}

}  // namespace
}  // namespace fobs::exp
