// Unit tests for the strong time/size/rate types.
#include <gtest/gtest.h>

#include <sstream>

#include "common/units.h"

namespace fobs::util {
namespace {

using namespace fobs::util::literals;

TEST(Duration, ConstructionAndConversion) {
  EXPECT_EQ(Duration::microseconds(3).ns(), 3000);
  EXPECT_EQ(Duration::milliseconds(2).us(), 2000);
  EXPECT_EQ(Duration::seconds(1).ms(), 1000);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(1500).seconds(), 1.5);
  EXPECT_EQ((1500_us).ns(), 1'500'000);
  EXPECT_EQ((2_s).ms(), 2000);
}

TEST(Duration, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(2.5e-9).ns(), 3);  // rounds to nearest
  EXPECT_EQ(Duration::from_seconds(-1e-9).ns(), -1);
  EXPECT_EQ(Duration::from_seconds(0.0).ns(), 0);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((5_ms + 5_ms).ms(), 10);
  EXPECT_EQ((10_ms - 4_ms).ms(), 6);
  EXPECT_EQ((3_us * 4).us(), 12);
  EXPECT_EQ((4 * 3_us).us(), 12);
  EXPECT_EQ((10_us / 4).ns(), 2500);
  EXPECT_DOUBLE_EQ(10_ms / 4_ms, 2.5);
  EXPECT_EQ((10_us * 1.5).us(), 15);
  Duration d = 1_ms;
  d += 1_ms;
  d -= 500_us;
  EXPECT_EQ(d.us(), 1500);
}

TEST(Duration, Comparison) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_GE(Duration::zero(), Duration::nanoseconds(-1));
  EXPECT_EQ(1000_ns, 1_us);
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + 5_ms;
  EXPECT_EQ((t1 - t0).ms(), 5);
  EXPECT_EQ((t1 - 2_ms).ns(), (3_ms).ns());
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::from_ns(42).ns(), 42);
}

TEST(DataSize, ConversionsAndArithmetic) {
  EXPECT_EQ((1_KiB).bytes(), 1024);
  EXPECT_EQ((2_MiB).bytes(), 2 * 1024 * 1024);
  EXPECT_EQ((3_B).bits(), 24);
  EXPECT_DOUBLE_EQ((512_B).kilobytes(), 0.5);
  EXPECT_EQ((1_KiB + 1_KiB).bytes(), 2048);
  EXPECT_EQ((2_KiB - 1_KiB), 1_KiB);
  EXPECT_EQ((1_KiB * 3).bytes(), 3072);
  EXPECT_DOUBLE_EQ(2_MiB / 1_MiB, 2.0);
}

TEST(DataRate, ConversionsAndArithmetic) {
  EXPECT_DOUBLE_EQ((100_Mbps).bps(), 1e8);
  EXPECT_DOUBLE_EQ((1_Gbps).mbps(), 1000.0);
  EXPECT_DOUBLE_EQ((8_Mbps).bytes_per_second(), 1e6);
  EXPECT_TRUE(DataRate::zero().is_zero());
  EXPECT_DOUBLE_EQ((100_Mbps * 0.5).mbps(), 50.0);
  EXPECT_DOUBLE_EQ((100_Mbps / 100_Mbps), 1.0);
  EXPECT_DOUBLE_EQ((100_Mbps + 22_Mbps).mbps(), 122.0);
  EXPECT_DOUBLE_EQ((100_Mbps - 22_Mbps).mbps(), 78.0);
}

TEST(Units, TransmissionTime) {
  // 1250 bytes at 100 Mb/s = 10000 bits / 1e8 bps = 100 us.
  EXPECT_EQ(transmission_time(DataSize::bytes(1250), 100_Mbps).us(), 100);
  EXPECT_EQ(transmission_time(1_KiB, DataRate::zero()), Duration::zero());
}

TEST(Units, RateOf) {
  // 1 MB in 1 second = 8 Mb/s.
  EXPECT_DOUBLE_EQ(rate_of(DataSize::bytes(1'000'000), 1_s).mbps(), 8.0);
  EXPECT_TRUE(rate_of(1_MiB, Duration::zero()).is_zero());
}

TEST(Units, BandwidthDelayProduct) {
  // 100 Mb/s x 65 ms = 812500 bytes.
  EXPECT_EQ(bandwidth_delay_product(100_Mbps, Duration::milliseconds(65)).bytes(), 812500);
}

TEST(Units, ToStringPicksSensibleUnits) {
  EXPECT_EQ(to_string(1500_ns), "1.500 us");
  EXPECT_EQ(to_string(Duration::milliseconds(2)), "2.000 ms");
  EXPECT_EQ(to_string(Duration::seconds(3)), "3.000 s");
  EXPECT_EQ(to_string(12_B), "12 B");
  EXPECT_EQ(to_string(DataSize::kilobytes(2)), "2.000 KiB");
  EXPECT_EQ(to_string(100_Mbps), "100.000 Mb/s");
  std::ostringstream oss;
  oss << 1_us << " " << 1_KiB;
  EXPECT_EQ(oss.str(), "1.000 us 1.000 KiB");
}

}  // namespace
}  // namespace fobs::util
